
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/harness.cpp" "src/eval/CMakeFiles/figdb_eval.dir/harness.cpp.o" "gcc" "src/eval/CMakeFiles/figdb_eval.dir/harness.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/figdb_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/figdb_eval.dir/metrics.cpp.o.d"
  "/root/repo/src/eval/oracle.cpp" "src/eval/CMakeFiles/figdb_eval.dir/oracle.cpp.o" "gcc" "src/eval/CMakeFiles/figdb_eval.dir/oracle.cpp.o.d"
  "/root/repo/src/eval/report.cpp" "src/eval/CMakeFiles/figdb_eval.dir/report.cpp.o" "gcc" "src/eval/CMakeFiles/figdb_eval.dir/report.cpp.o.d"
  "/root/repo/src/eval/significance.cpp" "src/eval/CMakeFiles/figdb_eval.dir/significance.cpp.o" "gcc" "src/eval/CMakeFiles/figdb_eval.dir/significance.cpp.o.d"
  "/root/repo/src/eval/training.cpp" "src/eval/CMakeFiles/figdb_eval.dir/training.cpp.o" "gcc" "src/eval/CMakeFiles/figdb_eval.dir/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/figdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/figdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/figdb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/recsys/CMakeFiles/figdb_recsys.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/figdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/figdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/figdb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/figdb_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/figdb_social.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
