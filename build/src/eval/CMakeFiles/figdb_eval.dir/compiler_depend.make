# Empty compiler generated dependencies file for figdb_eval.
# This may be replaced when dependencies are built.
