file(REMOVE_RECURSE
  "libfigdb_eval.a"
)
