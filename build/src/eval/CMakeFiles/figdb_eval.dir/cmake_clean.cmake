file(REMOVE_RECURSE
  "CMakeFiles/figdb_eval.dir/harness.cpp.o"
  "CMakeFiles/figdb_eval.dir/harness.cpp.o.d"
  "CMakeFiles/figdb_eval.dir/metrics.cpp.o"
  "CMakeFiles/figdb_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/figdb_eval.dir/oracle.cpp.o"
  "CMakeFiles/figdb_eval.dir/oracle.cpp.o.d"
  "CMakeFiles/figdb_eval.dir/report.cpp.o"
  "CMakeFiles/figdb_eval.dir/report.cpp.o.d"
  "CMakeFiles/figdb_eval.dir/significance.cpp.o"
  "CMakeFiles/figdb_eval.dir/significance.cpp.o.d"
  "CMakeFiles/figdb_eval.dir/training.cpp.o"
  "CMakeFiles/figdb_eval.dir/training.cpp.o.d"
  "libfigdb_eval.a"
  "libfigdb_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
