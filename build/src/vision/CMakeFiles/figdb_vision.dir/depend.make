# Empty dependencies file for figdb_vision.
# This may be replaced when dependencies are built.
