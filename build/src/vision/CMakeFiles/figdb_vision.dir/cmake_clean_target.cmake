file(REMOVE_RECURSE
  "libfigdb_vision.a"
)
