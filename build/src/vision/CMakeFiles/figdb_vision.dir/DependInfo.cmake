
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vision/block_features.cpp" "src/vision/CMakeFiles/figdb_vision.dir/block_features.cpp.o" "gcc" "src/vision/CMakeFiles/figdb_vision.dir/block_features.cpp.o.d"
  "/root/repo/src/vision/image.cpp" "src/vision/CMakeFiles/figdb_vision.dir/image.cpp.o" "gcc" "src/vision/CMakeFiles/figdb_vision.dir/image.cpp.o.d"
  "/root/repo/src/vision/image_synth.cpp" "src/vision/CMakeFiles/figdb_vision.dir/image_synth.cpp.o" "gcc" "src/vision/CMakeFiles/figdb_vision.dir/image_synth.cpp.o.d"
  "/root/repo/src/vision/kmeans.cpp" "src/vision/CMakeFiles/figdb_vision.dir/kmeans.cpp.o" "gcc" "src/vision/CMakeFiles/figdb_vision.dir/kmeans.cpp.o.d"
  "/root/repo/src/vision/visual_vocabulary.cpp" "src/vision/CMakeFiles/figdb_vision.dir/visual_vocabulary.cpp.o" "gcc" "src/vision/CMakeFiles/figdb_vision.dir/visual_vocabulary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
