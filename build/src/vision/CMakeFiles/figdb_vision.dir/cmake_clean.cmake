file(REMOVE_RECURSE
  "CMakeFiles/figdb_vision.dir/block_features.cpp.o"
  "CMakeFiles/figdb_vision.dir/block_features.cpp.o.d"
  "CMakeFiles/figdb_vision.dir/image.cpp.o"
  "CMakeFiles/figdb_vision.dir/image.cpp.o.d"
  "CMakeFiles/figdb_vision.dir/image_synth.cpp.o"
  "CMakeFiles/figdb_vision.dir/image_synth.cpp.o.d"
  "CMakeFiles/figdb_vision.dir/kmeans.cpp.o"
  "CMakeFiles/figdb_vision.dir/kmeans.cpp.o.d"
  "CMakeFiles/figdb_vision.dir/visual_vocabulary.cpp.o"
  "CMakeFiles/figdb_vision.dir/visual_vocabulary.cpp.o.d"
  "libfigdb_vision.a"
  "libfigdb_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
