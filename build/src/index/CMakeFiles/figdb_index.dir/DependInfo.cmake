
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/inverted_index.cpp" "src/index/CMakeFiles/figdb_index.dir/inverted_index.cpp.o" "gcc" "src/index/CMakeFiles/figdb_index.dir/inverted_index.cpp.o.d"
  "/root/repo/src/index/retrieval_engine.cpp" "src/index/CMakeFiles/figdb_index.dir/retrieval_engine.cpp.o" "gcc" "src/index/CMakeFiles/figdb_index.dir/retrieval_engine.cpp.o.d"
  "/root/repo/src/index/storage.cpp" "src/index/CMakeFiles/figdb_index.dir/storage.cpp.o" "gcc" "src/index/CMakeFiles/figdb_index.dir/storage.cpp.o.d"
  "/root/repo/src/index/threshold_algorithm.cpp" "src/index/CMakeFiles/figdb_index.dir/threshold_algorithm.cpp.o" "gcc" "src/index/CMakeFiles/figdb_index.dir/threshold_algorithm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/figdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/figdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/figdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/figdb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/figdb_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/figdb_social.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
