file(REMOVE_RECURSE
  "libfigdb_index.a"
)
