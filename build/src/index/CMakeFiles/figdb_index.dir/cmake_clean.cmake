file(REMOVE_RECURSE
  "CMakeFiles/figdb_index.dir/inverted_index.cpp.o"
  "CMakeFiles/figdb_index.dir/inverted_index.cpp.o.d"
  "CMakeFiles/figdb_index.dir/retrieval_engine.cpp.o"
  "CMakeFiles/figdb_index.dir/retrieval_engine.cpp.o.d"
  "CMakeFiles/figdb_index.dir/storage.cpp.o"
  "CMakeFiles/figdb_index.dir/storage.cpp.o.d"
  "CMakeFiles/figdb_index.dir/threshold_algorithm.cpp.o"
  "CMakeFiles/figdb_index.dir/threshold_algorithm.cpp.o.d"
  "libfigdb_index.a"
  "libfigdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
