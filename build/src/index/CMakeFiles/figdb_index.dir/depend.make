# Empty dependencies file for figdb_index.
# This may be replaced when dependencies are built.
