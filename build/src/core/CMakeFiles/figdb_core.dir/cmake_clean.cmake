file(REMOVE_RECURSE
  "CMakeFiles/figdb_core.dir/clique.cpp.o"
  "CMakeFiles/figdb_core.dir/clique.cpp.o.d"
  "CMakeFiles/figdb_core.dir/fig.cpp.o"
  "CMakeFiles/figdb_core.dir/fig.cpp.o.d"
  "CMakeFiles/figdb_core.dir/lambda_trainer.cpp.o"
  "CMakeFiles/figdb_core.dir/lambda_trainer.cpp.o.d"
  "CMakeFiles/figdb_core.dir/potential.cpp.o"
  "CMakeFiles/figdb_core.dir/potential.cpp.o.d"
  "CMakeFiles/figdb_core.dir/similarity.cpp.o"
  "CMakeFiles/figdb_core.dir/similarity.cpp.o.d"
  "libfigdb_core.a"
  "libfigdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
