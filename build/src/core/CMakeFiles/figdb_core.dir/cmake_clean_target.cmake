file(REMOVE_RECURSE
  "libfigdb_core.a"
)
