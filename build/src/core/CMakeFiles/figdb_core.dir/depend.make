# Empty dependencies file for figdb_core.
# This may be replaced when dependencies are built.
