
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/feature_vectors.cpp" "src/baselines/CMakeFiles/figdb_baselines.dir/feature_vectors.cpp.o" "gcc" "src/baselines/CMakeFiles/figdb_baselines.dir/feature_vectors.cpp.o.d"
  "/root/repo/src/baselines/lsa.cpp" "src/baselines/CMakeFiles/figdb_baselines.dir/lsa.cpp.o" "gcc" "src/baselines/CMakeFiles/figdb_baselines.dir/lsa.cpp.o.d"
  "/root/repo/src/baselines/rankboost.cpp" "src/baselines/CMakeFiles/figdb_baselines.dir/rankboost.cpp.o" "gcc" "src/baselines/CMakeFiles/figdb_baselines.dir/rankboost.cpp.o.d"
  "/root/repo/src/baselines/tensor_product.cpp" "src/baselines/CMakeFiles/figdb_baselines.dir/tensor_product.cpp.o" "gcc" "src/baselines/CMakeFiles/figdb_baselines.dir/tensor_product.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/figdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/figdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/figdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/figdb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/figdb_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/figdb_social.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
