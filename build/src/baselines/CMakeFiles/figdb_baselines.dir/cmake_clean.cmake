file(REMOVE_RECURSE
  "CMakeFiles/figdb_baselines.dir/feature_vectors.cpp.o"
  "CMakeFiles/figdb_baselines.dir/feature_vectors.cpp.o.d"
  "CMakeFiles/figdb_baselines.dir/lsa.cpp.o"
  "CMakeFiles/figdb_baselines.dir/lsa.cpp.o.d"
  "CMakeFiles/figdb_baselines.dir/rankboost.cpp.o"
  "CMakeFiles/figdb_baselines.dir/rankboost.cpp.o.d"
  "CMakeFiles/figdb_baselines.dir/tensor_product.cpp.o"
  "CMakeFiles/figdb_baselines.dir/tensor_product.cpp.o.d"
  "libfigdb_baselines.a"
  "libfigdb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
