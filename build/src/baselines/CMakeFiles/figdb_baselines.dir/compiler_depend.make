# Empty compiler generated dependencies file for figdb_baselines.
# This may be replaced when dependencies are built.
