file(REMOVE_RECURSE
  "libfigdb_baselines.a"
)
