file(REMOVE_RECURSE
  "CMakeFiles/figdb_text.dir/porter_stemmer.cpp.o"
  "CMakeFiles/figdb_text.dir/porter_stemmer.cpp.o.d"
  "CMakeFiles/figdb_text.dir/stopwords.cpp.o"
  "CMakeFiles/figdb_text.dir/stopwords.cpp.o.d"
  "CMakeFiles/figdb_text.dir/taxonomy.cpp.o"
  "CMakeFiles/figdb_text.dir/taxonomy.cpp.o.d"
  "CMakeFiles/figdb_text.dir/tokenizer.cpp.o"
  "CMakeFiles/figdb_text.dir/tokenizer.cpp.o.d"
  "CMakeFiles/figdb_text.dir/vocabulary.cpp.o"
  "CMakeFiles/figdb_text.dir/vocabulary.cpp.o.d"
  "libfigdb_text.a"
  "libfigdb_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
