file(REMOVE_RECURSE
  "libfigdb_text.a"
)
