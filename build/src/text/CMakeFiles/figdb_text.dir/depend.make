# Empty dependencies file for figdb_text.
# This may be replaced when dependencies are built.
