# Empty compiler generated dependencies file for figdb_stats.
# This may be replaced when dependencies are built.
