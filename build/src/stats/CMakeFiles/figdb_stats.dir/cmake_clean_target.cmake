file(REMOVE_RECURSE
  "libfigdb_stats.a"
)
