file(REMOVE_RECURSE
  "CMakeFiles/figdb_stats.dir/correlation.cpp.o"
  "CMakeFiles/figdb_stats.dir/correlation.cpp.o.d"
  "CMakeFiles/figdb_stats.dir/cors.cpp.o"
  "CMakeFiles/figdb_stats.dir/cors.cpp.o.d"
  "CMakeFiles/figdb_stats.dir/feature_matrix.cpp.o"
  "CMakeFiles/figdb_stats.dir/feature_matrix.cpp.o.d"
  "libfigdb_stats.a"
  "libfigdb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
