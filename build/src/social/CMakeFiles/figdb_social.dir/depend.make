# Empty dependencies file for figdb_social.
# This may be replaced when dependencies are built.
