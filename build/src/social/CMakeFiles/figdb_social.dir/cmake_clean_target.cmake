file(REMOVE_RECURSE
  "libfigdb_social.a"
)
