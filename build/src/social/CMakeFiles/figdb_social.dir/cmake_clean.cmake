file(REMOVE_RECURSE
  "CMakeFiles/figdb_social.dir/user_graph.cpp.o"
  "CMakeFiles/figdb_social.dir/user_graph.cpp.o.d"
  "libfigdb_social.a"
  "libfigdb_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
