# Empty dependencies file for figdb_corpus.
# This may be replaced when dependencies are built.
