
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/corpus/corpus.cpp" "src/corpus/CMakeFiles/figdb_corpus.dir/corpus.cpp.o" "gcc" "src/corpus/CMakeFiles/figdb_corpus.dir/corpus.cpp.o.d"
  "/root/repo/src/corpus/generator.cpp" "src/corpus/CMakeFiles/figdb_corpus.dir/generator.cpp.o" "gcc" "src/corpus/CMakeFiles/figdb_corpus.dir/generator.cpp.o.d"
  "/root/repo/src/corpus/media_object.cpp" "src/corpus/CMakeFiles/figdb_corpus.dir/media_object.cpp.o" "gcc" "src/corpus/CMakeFiles/figdb_corpus.dir/media_object.cpp.o.d"
  "/root/repo/src/corpus/query_builder.cpp" "src/corpus/CMakeFiles/figdb_corpus.dir/query_builder.cpp.o" "gcc" "src/corpus/CMakeFiles/figdb_corpus.dir/query_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/figdb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/figdb_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/figdb_social.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
