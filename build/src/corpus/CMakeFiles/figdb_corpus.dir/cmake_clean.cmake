file(REMOVE_RECURSE
  "CMakeFiles/figdb_corpus.dir/corpus.cpp.o"
  "CMakeFiles/figdb_corpus.dir/corpus.cpp.o.d"
  "CMakeFiles/figdb_corpus.dir/generator.cpp.o"
  "CMakeFiles/figdb_corpus.dir/generator.cpp.o.d"
  "CMakeFiles/figdb_corpus.dir/media_object.cpp.o"
  "CMakeFiles/figdb_corpus.dir/media_object.cpp.o.d"
  "CMakeFiles/figdb_corpus.dir/query_builder.cpp.o"
  "CMakeFiles/figdb_corpus.dir/query_builder.cpp.o.d"
  "libfigdb_corpus.a"
  "libfigdb_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
