file(REMOVE_RECURSE
  "libfigdb_corpus.a"
)
