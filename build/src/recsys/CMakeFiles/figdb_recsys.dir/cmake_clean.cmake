file(REMOVE_RECURSE
  "CMakeFiles/figdb_recsys.dir/recommender.cpp.o"
  "CMakeFiles/figdb_recsys.dir/recommender.cpp.o.d"
  "CMakeFiles/figdb_recsys.dir/user_profile.cpp.o"
  "CMakeFiles/figdb_recsys.dir/user_profile.cpp.o.d"
  "libfigdb_recsys.a"
  "libfigdb_recsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_recsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
