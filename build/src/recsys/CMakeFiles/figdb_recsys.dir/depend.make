# Empty dependencies file for figdb_recsys.
# This may be replaced when dependencies are built.
