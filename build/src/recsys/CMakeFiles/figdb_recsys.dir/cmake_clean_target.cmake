file(REMOVE_RECURSE
  "libfigdb_recsys.a"
)
