file(REMOVE_RECURSE
  "libfigdb_util.a"
)
