file(REMOVE_RECURSE
  "CMakeFiles/figdb_util.dir/dense_matrix.cpp.o"
  "CMakeFiles/figdb_util.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/figdb_util.dir/rng.cpp.o"
  "CMakeFiles/figdb_util.dir/rng.cpp.o.d"
  "CMakeFiles/figdb_util.dir/sparse_vector.cpp.o"
  "CMakeFiles/figdb_util.dir/sparse_vector.cpp.o.d"
  "CMakeFiles/figdb_util.dir/string_util.cpp.o"
  "CMakeFiles/figdb_util.dir/string_util.cpp.o.d"
  "libfigdb_util.a"
  "libfigdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
