# Empty dependencies file for figdb_util.
# This may be replaced when dependencies are built.
