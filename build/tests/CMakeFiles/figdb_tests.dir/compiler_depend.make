# Empty compiler generated dependencies file for figdb_tests.
# This may be replaced when dependencies are built.
