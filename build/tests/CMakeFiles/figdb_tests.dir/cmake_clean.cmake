file(REMOVE_RECURSE
  "CMakeFiles/figdb_tests.dir/baselines_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/baselines_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/core_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/core_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/corpus_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/corpus_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/eval_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/eval_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/extensions_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/extensions_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/index_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/index_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/integration_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/integration_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/linalg_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/linalg_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/recsys_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/recsys_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/social_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/social_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/stats_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/stats_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/text_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/text_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/util_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/util_test.cpp.o.d"
  "CMakeFiles/figdb_tests.dir/vision_test.cpp.o"
  "CMakeFiles/figdb_tests.dir/vision_test.cpp.o.d"
  "figdb_tests"
  "figdb_tests.pdb"
  "figdb_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
