
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cpp" "tests/CMakeFiles/figdb_tests.dir/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/baselines_test.cpp.o.d"
  "/root/repo/tests/core_test.cpp" "tests/CMakeFiles/figdb_tests.dir/core_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/core_test.cpp.o.d"
  "/root/repo/tests/corpus_test.cpp" "tests/CMakeFiles/figdb_tests.dir/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/figdb_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/figdb_tests.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/extensions_test.cpp.o.d"
  "/root/repo/tests/index_test.cpp" "tests/CMakeFiles/figdb_tests.dir/index_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/index_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/figdb_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/linalg_test.cpp" "tests/CMakeFiles/figdb_tests.dir/linalg_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/linalg_test.cpp.o.d"
  "/root/repo/tests/recsys_test.cpp" "tests/CMakeFiles/figdb_tests.dir/recsys_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/recsys_test.cpp.o.d"
  "/root/repo/tests/social_test.cpp" "tests/CMakeFiles/figdb_tests.dir/social_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/social_test.cpp.o.d"
  "/root/repo/tests/stats_test.cpp" "tests/CMakeFiles/figdb_tests.dir/stats_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/stats_test.cpp.o.d"
  "/root/repo/tests/text_test.cpp" "tests/CMakeFiles/figdb_tests.dir/text_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/text_test.cpp.o.d"
  "/root/repo/tests/util_test.cpp" "tests/CMakeFiles/figdb_tests.dir/util_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/util_test.cpp.o.d"
  "/root/repo/tests/vision_test.cpp" "tests/CMakeFiles/figdb_tests.dir/vision_test.cpp.o" "gcc" "tests/CMakeFiles/figdb_tests.dir/vision_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/figdb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/recsys/CMakeFiles/figdb_recsys.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/figdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/figdb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/figdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/figdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/figdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/figdb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/figdb_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/figdb_social.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
