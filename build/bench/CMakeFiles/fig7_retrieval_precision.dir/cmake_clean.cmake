file(REMOVE_RECURSE
  "CMakeFiles/fig7_retrieval_precision.dir/fig7_retrieval_precision.cpp.o"
  "CMakeFiles/fig7_retrieval_precision.dir/fig7_retrieval_precision.cpp.o.d"
  "fig7_retrieval_precision"
  "fig7_retrieval_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_retrieval_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
