# Empty dependencies file for fig7_retrieval_precision.
# This may be replaced when dependencies are built.
