file(REMOVE_RECURSE
  "CMakeFiles/fig9_query_time.dir/fig9_query_time.cpp.o"
  "CMakeFiles/fig9_query_time.dir/fig9_query_time.cpp.o.d"
  "fig9_query_time"
  "fig9_query_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_query_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
