# Empty dependencies file for fig9_query_time.
# This may be replaced when dependencies are built.
