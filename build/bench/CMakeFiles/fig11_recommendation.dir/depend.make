# Empty dependencies file for fig11_recommendation.
# This may be replaced when dependencies are built.
