file(REMOVE_RECURSE
  "CMakeFiles/fig11_recommendation.dir/fig11_recommendation.cpp.o"
  "CMakeFiles/fig11_recommendation.dir/fig11_recommendation.cpp.o.d"
  "fig11_recommendation"
  "fig11_recommendation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
