# Empty compiler generated dependencies file for figdb_bench_common.
# This may be replaced when dependencies are built.
