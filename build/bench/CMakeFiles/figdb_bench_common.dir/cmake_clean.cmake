file(REMOVE_RECURSE
  "CMakeFiles/figdb_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/figdb_bench_common.dir/bench_common.cpp.o.d"
  "libfigdb_bench_common.a"
  "libfigdb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
