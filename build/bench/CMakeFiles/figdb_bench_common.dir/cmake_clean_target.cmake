file(REMOVE_RECURSE
  "libfigdb_bench_common.a"
)
