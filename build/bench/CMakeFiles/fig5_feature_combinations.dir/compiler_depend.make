# Empty compiler generated dependencies file for fig5_feature_combinations.
# This may be replaced when dependencies are built.
