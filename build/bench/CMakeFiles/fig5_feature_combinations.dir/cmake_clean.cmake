file(REMOVE_RECURSE
  "CMakeFiles/fig5_feature_combinations.dir/fig5_feature_combinations.cpp.o"
  "CMakeFiles/fig5_feature_combinations.dir/fig5_feature_combinations.cpp.o.d"
  "fig5_feature_combinations"
  "fig5_feature_combinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_feature_combinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
