# Empty compiler generated dependencies file for fig10_decay_parameter.
# This may be replaced when dependencies are built.
