file(REMOVE_RECURSE
  "CMakeFiles/fig10_decay_parameter.dir/fig10_decay_parameter.cpp.o"
  "CMakeFiles/fig10_decay_parameter.dir/fig10_decay_parameter.cpp.o.d"
  "fig10_decay_parameter"
  "fig10_decay_parameter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_decay_parameter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
