file(REMOVE_RECURSE
  "CMakeFiles/social_search.dir/social_search.cpp.o"
  "CMakeFiles/social_search.dir/social_search.cpp.o.d"
  "social_search"
  "social_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
