# Empty dependencies file for social_search.
# This may be replaced when dependencies are built.
