# Empty dependencies file for recommendation_feed.
# This may be replaced when dependencies are built.
