file(REMOVE_RECURSE
  "CMakeFiles/recommendation_feed.dir/recommendation_feed.cpp.o"
  "CMakeFiles/recommendation_feed.dir/recommendation_feed.cpp.o.d"
  "recommendation_feed"
  "recommendation_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommendation_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
