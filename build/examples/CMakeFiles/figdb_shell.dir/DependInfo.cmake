
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/figdb_shell.cpp" "examples/CMakeFiles/figdb_shell.dir/figdb_shell.cpp.o" "gcc" "examples/CMakeFiles/figdb_shell.dir/figdb_shell.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/figdb_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/recsys/CMakeFiles/figdb_recsys.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/figdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/figdb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/figdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/figdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/figdb_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/figdb_text.dir/DependInfo.cmake"
  "/root/repo/build/src/vision/CMakeFiles/figdb_vision.dir/DependInfo.cmake"
  "/root/repo/build/src/social/CMakeFiles/figdb_social.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/figdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
