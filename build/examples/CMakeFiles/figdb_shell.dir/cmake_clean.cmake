file(REMOVE_RECURSE
  "CMakeFiles/figdb_shell.dir/figdb_shell.cpp.o"
  "CMakeFiles/figdb_shell.dir/figdb_shell.cpp.o.d"
  "figdb_shell"
  "figdb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figdb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
