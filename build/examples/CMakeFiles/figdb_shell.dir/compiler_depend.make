# Empty compiler generated dependencies file for figdb_shell.
# This may be replaced when dependencies are built.
