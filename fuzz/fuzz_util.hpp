#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "corpus/corpus.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

/// \file fuzz_util.hpp
/// Shared harness layer for the figdb fuzzing subsystem.
///
/// Every untrusted-input surface gets exactly ONE harness entry point
/// (`Check*OneInput`), and every consumer drives that entry point:
///
///   * the libFuzzer targets under fuzz/targets/ (FIGDB_FUZZ builds) call
///     it from LLVMFuzzerTestOneInput;
///   * the same targets compiled WITHOUT Clang replay the checked-in
///     corpora through it via fuzz/driver_main.cpp (ctest label
///     `fuzz_regression`);
///   * the in-tree randomized loops (robustness_test's corruption fuzz,
///     util_test's WAL round-trip fuzz) synthesize inputs with util::Rng
///     and feed them to the identical harness.
///
/// A harness NEVER asserts "the input is valid" — fuzz inputs are mostly
/// garbage. It asserts the *contract*: a parser either accepts and then
/// behaves (round-trip idempotence, queryable result), or rejects with the
/// documented Status taxonomy and a non-empty message. Contract violations
/// abort via FIGDB_CHECK, which is what libFuzzer and the replay driver
/// both report as a crash.
///
/// Structure-aware mutation support (CRC fixup, frame walking) lives here
/// too so custom mutators and seed builders share one view of the framing.

namespace figdb::fuzz {

// ---------------------------------------------------------------------------
// DataProvider: carve typed values out of a fuzzer byte string.
//
// The action-script harnesses (store ops, query identity, WAL round-trip)
// interpret the fuzzer's bytes as a program; this provider is the decoder.
// It is deliberately total: running out of bytes yields zeros/lows, never
// an error, so every byte string is a valid script.
class DataProvider {
 public:
  DataProvider(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::size_t remaining() const { return size_ - pos_; }
  bool Empty() const { return pos_ >= size_; }

  std::uint8_t ConsumeByte() {
    return pos_ < size_ ? data_[pos_++] : 0;
  }

  bool ConsumeBool() { return (ConsumeByte() & 1) != 0; }

  /// Uniform-ish integral in [lo, hi] (inclusive); lo when exhausted.
  std::uint64_t ConsumeIntegralInRange(std::uint64_t lo, std::uint64_t hi);

  /// Up to \p n raw bytes (fewer when the input runs out).
  std::string ConsumeBytes(std::size_t n);

  /// Everything left, as raw bytes.
  std::string ConsumeRemaining();

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Structure-aware mutation: CRC fixup.
//
// Both persistent formats checksum their payloads, so a dumb mutator's
// flips die at the CRC gate and coverage never reaches the section/record
// parsers. These walkers re-stamp every reachable checksum after a
// mutation, letting mutated *payloads* through while the framing stays
// valid. They repair as much of the file as is walkable and return true if
// at least one checksum was patched; unwalkable prefixes are left alone
// (those inputs still probe the framing validators, which is also wanted).

/// Snapshot v2: varint magic, varint version, then per section
/// (varint payload size, fixed32 CRC, payload).
bool FixupSnapshotCrcs(std::string* bytes);

/// WAL: 8-byte header, then per frame (fixed32 size, fixed32 CRC, payload).
bool FixupWalCrcs(std::string* bytes);

/// Shard manifest: fixed32 magic, fixed32 version, fixed32 CRC over the
/// remaining payload. One checksum, re-stamped in place.
bool FixupShardManifestCrc(std::string* bytes);

/// Temporal segment manifest (SEGMENTS): same 12-byte fixed32 header
/// framing as the shard manifest — magic, version, CRC over the payload.
bool FixupSegmentManifestCrc(std::string* bytes);

/// Network wire frames: per frame (fixed32 magic, fixed32 payload_len,
/// fixed32 CRC, payload), back to back. Re-stamps every walkable frame's
/// CRC; stops at the first frame whose length claim exceeds the buffer.
bool FixupFrameCrc(std::string* bytes);

/// The corruption model the robustness suite has used since PR 1: either
/// truncate to a random prefix (seed % 3 == 0 style callers pick), or flip
/// 1-4 random bytes with random non-zero XOR masks. Deterministic in \p rng.
std::string MutateBytes(util::Rng* rng, std::string_view bytes,
                        bool truncate);

// ---------------------------------------------------------------------------
// Seed-corpus builders.

/// Small deterministic corpus (text + visual + user features) for seeds and
/// differential harness worlds; ~\p objects objects, everything derived
/// from \p seed.
corpus::Corpus BuildTinyCorpus(std::uint64_t seed, std::size_t objects);

/// Serialized snapshot of BuildTinyCorpus — a valid seed for fuzz_snapshot.
std::string BuildSnapshotSeed(std::uint64_t seed, std::size_t objects);

/// A valid WAL image: header + \p records add/remove records with strictly
/// increasing LSNs — a seed for fuzz_wal.
std::string BuildWalSeed(std::uint64_t seed, std::size_t records);

/// A valid wire-frame stream: one request frame followed by one response
/// frame carrying \p results scored hits, all fields derived from \p seed —
/// a seed for fuzz_frame.
std::string BuildFrameSeed(std::uint64_t seed, std::size_t results);

// ---------------------------------------------------------------------------
// Snapshot section surgery (edge-case tests + structure-aware seeds).

/// A snapshot split at its section joints. Only valid snapshots (walkable
/// framing) split; the payloads are the *unframed* section bodies.
struct SnapshotSections {
  std::string magic_and_version;       ///< the two leading varints, raw
  std::vector<std::string> payloads;   ///< one per section, in file order
};

/// Splits \p bytes; false if the framing is not walkable end-to-end.
bool SplitSnapshotSections(std::string_view bytes, SnapshotSections* out);

/// Reassembles a snapshot from parts, framing each payload with a correct
/// length + CRC. The inverse of SplitSnapshotSections for valid files —
/// and the way tests build CRC-valid-but-semantically-invalid snapshots:
/// split a good file, splice a poisoned payload, rebuild.
std::string BuildSnapshot(const SnapshotSections& sections);

// ---------------------------------------------------------------------------
// Harness entry points — one per untrusted-input surface.

/// What a decode harness saw, for callers that assert accept/reject on top
/// of the harness's own contract checks (e.g. "every corrupted mutant must
/// be rejected").
struct ParseOutcome {
  bool accepted = false;
  util::StatusCode code = util::StatusCode::kOk;
};

/// Snapshot loader (index::DeserializeCorpus). Accepted inputs must
/// re-serialize idempotently (serialize→parse→serialize is a fixed point);
/// rejected inputs must carry kInvalidArgument or kDataLoss and a message.
ParseOutcome CheckSnapshotOneInput(const std::uint8_t* data,
                                   std::size_t size);

/// WAL image decode (WriteAheadLog::ReplayBytes). Checks the error
/// taxonomy, torn-tail ⇔ trailing-bytes equivalence, strictly increasing
/// LSNs, and that the valid prefix replays to the same records again.
ParseOutcome CheckWalFileOneInput(const std::uint8_t* data,
                                  std::size_t size);

/// WAL write→replay→chop differential, driven by an action script: builds
/// a log from scripted records through the real Append path, replays it
/// (must match field-for-field), chops the file at a scripted offset and
/// checks the torn-tail discrimination plus prefix-replay stability.
void CheckWalRoundTripOneInput(const std::uint8_t* data, std::size_t size);

/// Serde primitives: scripted write→read round-trips must be exact, and
/// adversarial decode sequences must fail cleanly (no crash, sticky
/// failure state, no over-long reads).
void CheckSerdeOneInput(const std::uint8_t* data, std::size_t size);

/// Shard placement manifest (shard::ParseShardManifest). Accepted
/// manifests must honor the documented ranges and reach a serialize
/// fixed point (Parse(Serialize(m)) == m, byte-identical on re-serialize);
/// rejections must carry kInvalidArgument or kDataLoss and a message.
ParseOutcome CheckShardManifestOneInput(const std::uint8_t* data,
                                        std::size_t size);

/// Temporal segment manifest (temporal::ParseSegmentManifest), the file
/// the segmented store's recovery trusts to name the live time buckets.
/// Accepted manifests must honor the documented invariants (generation,
/// segment ceiling, base/epoch monotonicity, active-last) and reach a
/// serialize fixed point; rejections must carry kInvalidArgument or
/// kDataLoss and a message.
ParseOutcome CheckSegmentManifestOneInput(const std::uint8_t* data,
                                          std::size_t size);

/// Network frame decode (net::DecodeFrame), driven as a stream consumer:
/// every decoded frame must re-encode to a byte fixed point that decodes
/// back field-for-field; kNeedMoreBytes and kCorrupt must be terminal for
/// the walk (no consumed bytes claimed). Never crashes, never over-reads.
ParseOutcome CheckFrameOneInput(const std::uint8_t* data, std::size_t size);

/// Taxonomy section decode (index::ReadTaxonomySection) followed by WUP
/// queries over whatever survives: WUP ∈ (0, 1], symmetric, self = 1, and
/// the LCS is never deeper than either argument.
ParseOutcome CheckTaxonomyOneInput(const std::uint8_t* data,
                                   std::size_t size);

/// FIGDB_FAILPOINTS spec parsing (FailPoints::ActivateFromEnv, quiet).
/// Activation count is bounded by the entry count, AnyActive() agrees with
/// it, and DeactivateAll always restores the inactive state.
void CheckFailPointSpecOneInput(const std::uint8_t* data, std::size_t size);

/// Shell command parsing (cli::ParseShellCommand), one line per input
/// line: accepted commands must satisfy the documented clamp invariants,
/// rejected ones must carry a printable message.
void CheckShellCommandOneInput(const std::uint8_t* data, std::size_t size);

/// Differential store fuzz: the script drives ingest/remove/checkpoint/
/// crash/recover against a real FigDbStore while a plain in-memory model
/// shadows it; after the final recovery the store must equal the model
/// object-for-object (crash-atomicity, end to end).
void CheckStoreOpsOneInput(const std::uint8_t* data, std::size_t size);

/// Differential query fuzz: scripted (corpus, query, k, worker count)
/// tuples; the parallel QueryExecutor must be bit-identical to sequential
/// TrySearch for workers {0,1,2,4}, and TA must match exhaustive merge on
/// the stage-1 engines.
void CheckQueryIdentityOneInput(const std::uint8_t* data, std::size_t size);

}  // namespace figdb::fuzz
