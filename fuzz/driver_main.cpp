#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

/// \file driver_main.cpp
/// Plain-main replay driver for fuzz targets built WITHOUT libFuzzer.
///
/// Linked into every fuzz target when FIGDB_FUZZ is off, so the checked-in
/// corpora and regression inputs replay as ordinary ctest cases (label
/// `fuzz_regression`) on any compiler. Usage mirrors libFuzzer's: each
/// argument is a corpus file or a directory of corpus files; every input is
/// fed to LLVMFuzzerTestOneInput once. A contract violation aborts via
/// FIGDB_CHECK, which ctest reports as a failure — exactly what libFuzzer
/// would report as a crash.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // The empty input first — libFuzzer always probes it, so the regression
  // replay must survive it too.
  LLVMFuzzerTestOneInput(nullptr, 0);
  std::size_t replayed = 1;

  std::vector<std::filesystem::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec))
        if (entry.is_regular_file()) inputs.push_back(entry.path());
    } else if (std::filesystem::is_regular_file(arg, ec)) {
      inputs.push_back(arg);
    } else {
      // A missing regressions/ directory is normal until the first crash
      // is triaged into it; say so instead of failing the replay.
      std::fprintf(stderr, "note: skipping missing corpus path %s\n",
                   arg.string().c_str());
    }
  }
  // Deterministic replay order regardless of directory enumeration.
  std::sort(inputs.begin(), inputs.end());

  std::string bytes;
  for (const auto& path : inputs) {
    if (!ReadFile(path, &bytes)) {
      std::fprintf(stderr, "error: cannot read %s\n", path.string().c_str());
      return 1;
    }
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    ++replayed;
  }
  std::printf("replayed %zu inputs, all contracts held\n", replayed);
  return 0;
}
