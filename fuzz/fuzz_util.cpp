#include "fuzz_util.hpp"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <optional>

#include "cli/shell_command.hpp"
#include "corpus/generator.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "index/wal.hpp"
#include "net/wire.hpp"
#include "serve/query_executor.hpp"
#include "shard/manifest.hpp"
#include "temporal/segment_manifest.hpp"
#include "util/check.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/serde.hpp"

namespace figdb::fuzz {
namespace {

using util::BinaryReader;
using util::BinaryWriter;
using util::Status;
using util::StatusCode;

/// Per-process scratch directory for harnesses that must exercise the real
/// file paths (WAL append, store checkpoints). Created lazily, reused for
/// every input — libFuzzer and the replay driver are single-threaded, and
/// each harness clears its own sub-path before use.
const std::string& TempRoot() {
  static const std::string root = [] {
    std::string templ =
        (std::filesystem::temp_directory_path() / "figdb_fuzz_XXXXXX")
            .string();
    std::vector<char> buf(templ.begin(), templ.end());
    buf.push_back('\0');
    const char* made = ::mkdtemp(buf.data());
    FIGDB_CHECK_MSG(made != nullptr, "cannot create fuzz temp dir");
    return std::string(made);
  }();
  return root;
}

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  FIGDB_CHECK_MSG(f != nullptr, path.c_str());
  std::string bytes;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

/// The canonical single-object encoding (storage.hpp serde) — the
/// comparison currency for "the same object" across store/WAL harnesses.
std::string EncodeObject(const corpus::MediaObject& obj) {
  BinaryWriter w;
  index::WriteMediaObject(obj, &w);
  return w.Take();
}

std::uint64_t BitsOf(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

void PatchFixed32(std::string* bytes, std::size_t pos, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) (*bytes)[pos + std::size_t(i)] = char(v >> (8 * i));
}

/// Reads one LEB128 varint out of \p bytes at \p pos (advancing it);
/// false when the bytes run out or the encoding exceeds 10 bytes.
bool WalkVarint(std::string_view bytes, std::size_t* pos,
                std::uint64_t* out) {
  std::uint64_t v = 0;
  int shift = 0;
  while (*pos < bytes.size() && shift < 70) {
    const std::uint8_t b = std::uint8_t(bytes[(*pos)++]);
    v |= std::uint64_t(b & 0x7f) << (shift < 63 ? shift : 63);
    if ((b & 0x80) == 0) {
      *out = v;
      return true;
    }
    shift += 7;
  }
  return false;
}

}  // namespace

// ------------------------------------------------------------ DataProvider

std::uint64_t DataProvider::ConsumeIntegralInRange(std::uint64_t lo,
                                                   std::uint64_t hi) {
  FIGDB_CHECK(lo <= hi);
  const std::uint64_t range = hi - lo;
  std::uint64_t raw = 0;
  std::uint64_t width = range;
  while (width > 0) {
    raw = (raw << 8) | ConsumeByte();
    width >>= 8;
  }
  if (range == ~std::uint64_t{0}) return raw;
  return lo + raw % (range + 1);
}

std::string DataProvider::ConsumeBytes(std::size_t n) {
  const std::size_t take = std::min(n, remaining());
  std::string out(reinterpret_cast<const char*>(data_ + pos_), take);
  pos_ += take;
  return out;
}

std::string DataProvider::ConsumeRemaining() {
  return ConsumeBytes(remaining());
}

// --------------------------------------------------------------- CRC fixup

bool FixupSnapshotCrcs(std::string* bytes) {
  std::string_view view(*bytes);
  std::size_t pos = 0;
  std::uint64_t magic = 0, version = 0;
  if (!WalkVarint(view, &pos, &magic) || !WalkVarint(view, &pos, &version))
    return false;
  bool patched = false;
  while (pos < view.size()) {
    std::uint64_t size = 0;
    if (!WalkVarint(view, &pos, &size)) break;
    if (view.size() - pos < 4) break;
    const std::size_t crc_pos = pos;
    pos += 4;
    if (view.size() - pos < size) break;
    PatchFixed32(bytes, crc_pos,
                 util::Crc32(view.substr(pos, std::size_t(size))));
    pos += std::size_t(size);
    patched = true;
  }
  return patched;
}

bool FixupWalCrcs(std::string* bytes) {
  constexpr std::size_t kHeader = 8, kFrame = 8;
  if (bytes->size() < kHeader) return false;
  std::string_view view(*bytes);
  std::size_t pos = kHeader;
  bool patched = false;
  while (view.size() - pos >= kFrame) {
    std::uint32_t size = 0;
    for (int i = 3; i >= 0; --i)
      size = (size << 8) | std::uint8_t(view[pos + std::size_t(i)]);
    if (view.size() - pos - kFrame < size) break;
    PatchFixed32(bytes, pos + 4, util::Crc32(view.substr(pos + kFrame, size)));
    pos += kFrame + size;
    patched = true;
  }
  return patched;
}

bool FixupShardManifestCrc(std::string* bytes) {
  constexpr std::size_t kHeader = 12;  // magic + version + crc, fixed32 each
  if (bytes->size() < kHeader) return false;
  PatchFixed32(bytes, 8, util::Crc32(std::string_view(*bytes).substr(kHeader)));
  return true;
}

bool FixupSegmentManifestCrc(std::string* bytes) {
  // Identical framing to the shard manifest: 12-byte fixed32 header with
  // the CRC at offset 8 covering everything after it.
  constexpr std::size_t kHeader = 12;
  if (bytes->size() < kHeader) return false;
  PatchFixed32(bytes, 8, util::Crc32(std::string_view(*bytes).substr(kHeader)));
  return true;
}

bool FixupFrameCrc(std::string* bytes) {
  std::string_view view(*bytes);
  std::size_t pos = 0;
  bool patched = false;
  while (view.size() - pos >= net::kFrameHeaderBytes) {
    std::uint32_t len = 0;
    for (int i = 3; i >= 0; --i)
      len = (len << 8) | std::uint8_t(view[pos + 4 + std::size_t(i)]);
    if (len > net::kMaxFramePayload ||
        view.size() - pos - net::kFrameHeaderBytes < len)
      break;  // length claim exceeds the buffer: unwalkable from here
    PatchFixed32(bytes, pos + 8,
                 util::Crc32(view.substr(pos + net::kFrameHeaderBytes, len)));
    pos += net::kFrameHeaderBytes + len;
    patched = true;
  }
  return patched;
}

std::string MutateBytes(util::Rng* rng, std::string_view bytes,
                        bool truncate) {
  std::string mutant(bytes);
  if (mutant.empty()) return mutant;
  if (truncate) {
    mutant.resize(std::size_t(rng->UniformInt(mutant.size())));
  } else {
    const std::size_t flips = std::size_t(1 + rng->UniformInt(4));
    for (std::size_t f = 0; f < flips; ++f)
      mutant[std::size_t(rng->UniformInt(mutant.size()))] ^=
          char(1 + rng->UniformInt(255));
  }
  return mutant;
}

// ------------------------------------------------------------ seed builders

corpus::Corpus BuildTinyCorpus(std::uint64_t seed, std::size_t objects) {
  corpus::GeneratorConfig config;
  config.num_objects = objects;
  config.num_topics = 4;
  config.num_users = 30;
  config.visual_words = 16;
  config.seed = seed;
  return corpus::Generator(config).MakeRetrievalCorpus();
}

std::string BuildSnapshotSeed(std::uint64_t seed, std::size_t objects) {
  return index::SerializeCorpus(BuildTinyCorpus(seed, objects));
}

std::string BuildWalSeed(std::uint64_t seed, std::size_t records) {
  util::Rng rng(seed);
  BinaryWriter out;
  out.PutFixed32(index::kWalMagic);
  out.PutFixed32(index::kWalVersion);
  std::uint64_t lsn = 0;
  for (std::size_t i = 0; i < records; ++i) {
    lsn += 1 + rng.UniformInt(5);
    BinaryWriter payload;
    payload.PutVarint(lsn);
    const bool remove = rng.UniformInt(4) == 0;
    payload.PutU8(remove ? 2 : 1);
    payload.PutVarint(rng.UniformInt(400));
    if (!remove) {
      corpus::MediaObject obj;
      obj.month = std::uint16_t(rng.UniformInt(12));
      obj.topic = std::uint32_t(rng.UniformInt(8));
      const std::size_t features = std::size_t(rng.UniformInt(6));
      corpus::FeatureKey key = 0;
      for (std::size_t f = 0; f < features; ++f) {
        key += corpus::FeatureKey(1 + rng.UniformInt(40));
        obj.features.push_back({key, std::uint32_t(1 + rng.UniformInt(5))});
      }
      index::WriteMediaObject(obj, &payload);
    }
    const std::string& body = payload.Buffer();
    out.PutFixed32(std::uint32_t(body.size()));
    out.PutFixed32(util::Crc32(body));
    out.PutRaw(body);
  }
  return out.Take();
}

std::string BuildFrameSeed(std::uint64_t seed, std::size_t results) {
  util::Rng rng(seed);
  net::RequestFrame request;
  request.request_id = 1 + rng.UniformInt(1000);
  request.tenant = "tenant" + std::to_string(rng.UniformInt(8));
  request.deadline_budget_us = rng.UniformInt(2000000);
  request.query_text = "sunset beach crowd";
  request.k = 1 + rng.UniformInt(50);
  request.max_candidates = rng.UniformInt(4) == 0 ? 0 : rng.UniformInt(512);

  net::ResponseFrame response;
  response.request_id = request.request_id;
  response.code = std::uint8_t(int(util::StatusCode::kOk));
  response.truncated = rng.UniformInt(2) == 0;
  response.reranked = rng.UniformInt(2) == 0;
  response.epoch = 1 + rng.UniformInt(30);
  for (std::size_t i = 0; i < results; ++i)
    response.results.push_back(
        {rng.UniformInt(500), rng.UniformReal()});

  return net::EncodeRequestFrame(request) +
         net::EncodeResponseFrame(response);
}

// ----------------------------------------------------- section surgery

bool SplitSnapshotSections(std::string_view bytes, SnapshotSections* out) {
  std::size_t pos = 0;
  std::uint64_t magic = 0, version = 0;
  if (!WalkVarint(bytes, &pos, &magic) || !WalkVarint(bytes, &pos, &version))
    return false;
  out->magic_and_version = std::string(bytes.substr(0, pos));
  out->payloads.clear();
  while (pos < bytes.size()) {
    std::uint64_t size = 0;
    if (!WalkVarint(bytes, &pos, &size)) return false;
    if (bytes.size() - pos < 4) return false;
    pos += 4;  // stored CRC — recomputed on rebuild
    if (bytes.size() - pos < size) return false;
    out->payloads.emplace_back(bytes.substr(pos, std::size_t(size)));
    pos += std::size_t(size);
  }
  return true;
}

std::string BuildSnapshot(const SnapshotSections& sections) {
  BinaryWriter w;
  w.PutRaw(sections.magic_and_version);
  for (const std::string& payload : sections.payloads) {
    w.PutVarint(payload.size());
    w.PutFixed32(util::Crc32(payload));
    w.PutRaw(payload);
  }
  return w.Take();
}

// ------------------------------------------------------- snapshot harness

ParseOutcome CheckSnapshotOneInput(const std::uint8_t* data,
                                   std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const auto parsed = index::DeserializeCorpus(input);
  ParseOutcome outcome;
  outcome.accepted = parsed.ok();
  outcome.code = parsed.ok() ? StatusCode::kOk : parsed.status().code();
  if (!parsed.ok()) {
    // Documented decode taxonomy: magic/version skew is the caller's
    // mistake, everything else is damage — and a load error without a
    // message is useless to an operator.
    FIGDB_CHECK(outcome.code == StatusCode::kInvalidArgument ||
                outcome.code == StatusCode::kDataLoss);
    FIGDB_CHECK(!parsed.status().message().empty());
    return outcome;
  }
  // Accepted inputs need not be canonical (overlong varints re-encode
  // shorter), but ONE serialize must reach the fixed point: parse(s1) must
  // succeed and re-serialize to exactly s1.
  const std::string s1 = index::SerializeCorpus(*parsed);
  const auto reparsed = index::DeserializeCorpus(s1);
  FIGDB_CHECK_MSG(reparsed.ok(), "serialize(parse(x)) failed to re-parse");
  const std::string s2 = index::SerializeCorpus(*reparsed);
  FIGDB_CHECK_MSG(s1 == s2, "snapshot serialization is not idempotent");
  return outcome;
}

// ------------------------------------------------------------ WAL harness

ParseOutcome CheckWalFileOneInput(const std::uint8_t* data,
                                  std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const auto replayed =
      index::WriteAheadLog::ReplayBytes(input, "<fuzz input>");
  ParseOutcome outcome;
  outcome.accepted = replayed.ok();
  outcome.code = replayed.ok() ? StatusCode::kOk : replayed.status().code();
  if (!replayed.ok()) {
    FIGDB_CHECK(outcome.code == StatusCode::kInvalidArgument ||
                outcome.code == StatusCode::kDataLoss);
    FIGDB_CHECK(!replayed.status().message().empty());
    return outcome;
  }
  const auto& result = *replayed;
  FIGDB_CHECK(result.valid_bytes >= 8);
  FIGDB_CHECK(result.valid_bytes <= size);
  // The torn-tail flag IS the statement "some suffix did not parse".
  FIGDB_CHECK(result.torn_tail == (result.valid_bytes != size));
  for (std::size_t i = 1; i < result.records.size(); ++i)
    FIGDB_CHECK(result.records[i].lsn > result.records[i - 1].lsn);
  // Replaying the valid prefix must be stable: same records, no torn tail.
  const auto again = index::WriteAheadLog::ReplayBytes(
      input.substr(0, std::size_t(result.valid_bytes)), "<fuzz prefix>");
  FIGDB_CHECK_MSG(again.ok(), "valid WAL prefix failed to re-replay");
  FIGDB_CHECK(!again->torn_tail);
  FIGDB_CHECK(again->valid_bytes == result.valid_bytes);
  FIGDB_CHECK(again->records.size() == result.records.size());
  for (std::size_t i = 0; i < result.records.size(); ++i) {
    const auto& a = result.records[i];
    const auto& b = again->records[i];
    FIGDB_CHECK(a.lsn == b.lsn && a.type == b.type &&
                a.object_id == b.object_id);
    FIGDB_CHECK(EncodeObject(a.object) == EncodeObject(b.object));
  }
  return outcome;
}

void CheckWalRoundTripOneInput(const std::uint8_t* data, std::size_t size) {
  DataProvider script(data, size);
  const std::string path = TempRoot() + "/wal_roundtrip.figdb";
  std::remove(path.c_str());

  // Build scripted records and append them through the real WAL path.
  std::vector<index::WalRecord> written;
  {
    auto opened = index::WriteAheadLog::Open(path);
    FIGDB_CHECK(opened.ok());
    index::WriteAheadLog wal = std::move(*opened);
    const std::size_t records =
        std::size_t(1 + script.ConsumeIntegralInRange(0, 11));
    std::uint64_t lsn = 0;
    for (std::size_t i = 0; i < records; ++i) {
      index::WalRecord record;
      lsn += 1 + script.ConsumeIntegralInRange(0, 6);
      record.lsn = lsn;
      record.object_id =
          corpus::ObjectId(script.ConsumeIntegralInRange(0, 500));
      if (script.ConsumeIntegralInRange(0, 3) == 0) {
        record.type = index::WalRecord::Type::kRemoveObject;
      } else {
        record.type = index::WalRecord::Type::kAddObject;
        record.object.month =
            std::uint16_t(script.ConsumeIntegralInRange(0, 11));
        record.object.topic =
            std::uint32_t(script.ConsumeIntegralInRange(0, 7));
        const std::size_t features =
            std::size_t(script.ConsumeIntegralInRange(0, 6));
        corpus::FeatureKey key = 0;
        for (std::size_t f = 0; f < features; ++f) {
          key += corpus::FeatureKey(1 + script.ConsumeIntegralInRange(0, 30));
          record.object.features.push_back(
              {key, std::uint32_t(1 + script.ConsumeIntegralInRange(0, 4))});
        }
        record.object.id = record.object_id;
      }
      const Status appended = wal.Append(record);
      FIGDB_CHECK(appended.ok());
      written.push_back(std::move(record));
    }
  }

  // Full replay: every field must come back exactly.
  const std::string bytes = ReadFileBytes(path);
  const auto replayed = index::WriteAheadLog::Replay(path);
  FIGDB_CHECK(replayed.ok());
  FIGDB_CHECK(!replayed->torn_tail);
  FIGDB_CHECK(replayed->valid_bytes == bytes.size());
  FIGDB_CHECK(replayed->records.size() == written.size());
  for (std::size_t i = 0; i < written.size(); ++i) {
    const auto& w = written[i];
    const auto& r = replayed->records[i];
    FIGDB_CHECK(w.lsn == r.lsn && w.type == r.type &&
                w.object_id == r.object_id);
    if (w.type == index::WalRecord::Type::kAddObject)
      FIGDB_CHECK(EncodeObject(w.object) == EncodeObject(r.object));
  }

  // Chop anywhere after the header: replay must discriminate torn-tail
  // (anything mid-frame) from clean cuts at record boundaries, and the
  // surviving records must be a prefix of what was written.
  const std::uint64_t cut =
      8 + script.ConsumeIntegralInRange(0, bytes.size() - 8);
  const auto chopped = index::WriteAheadLog::ReplayBytes(
      std::string_view(bytes).substr(0, std::size_t(cut)), "<chopped>");
  FIGDB_CHECK(chopped.ok());
  FIGDB_CHECK(chopped->torn_tail == (chopped->valid_bytes != cut));
  FIGDB_CHECK(chopped->records.size() <= written.size());
  for (std::size_t i = 0; i < chopped->records.size(); ++i)
    FIGDB_CHECK(chopped->records[i].lsn == written[i].lsn);

  // TruncateTail to the valid prefix and replay the FILE: recovery's
  // actual torn-tail repair sequence must converge (no torn tail left).
  const Status truncated =
      index::WriteAheadLog::TruncateTail(path, chopped->valid_bytes);
  FIGDB_CHECK(truncated.ok());
  const auto repaired = index::WriteAheadLog::Replay(path);
  FIGDB_CHECK(repaired.ok());
  FIGDB_CHECK(!repaired->torn_tail);
  FIGDB_CHECK(repaired->records.size() == chopped->records.size());
}

// ----------------------------------------------------------- serde harness

void CheckSerdeOneInput(const std::uint8_t* data, std::size_t size) {
  DataProvider script(data, size);
  if (!script.ConsumeBool()) {
    // Round-trip property: whatever the script writes must read back
    // exactly, and consume the buffer completely.
    struct Op {
      std::uint8_t kind;
      std::uint64_t u64 = 0;
      std::int64_t i64 = 0;
      std::string str;
      std::vector<std::uint32_t> ids;
    };
    std::vector<Op> ops;
    BinaryWriter w;
    while (!script.Empty() && ops.size() < 64) {
      Op op;
      op.kind = std::uint8_t(script.ConsumeIntegralInRange(0, 6));
      switch (op.kind) {
        case 0:
          op.u64 = script.ConsumeIntegralInRange(0, ~std::uint64_t{0});
          w.PutVarint(op.u64);
          break;
        case 1:
          op.i64 = std::int64_t(
              script.ConsumeIntegralInRange(0, ~std::uint64_t{0}));
          w.PutSignedVarint(op.i64);
          break;
        case 2:
          op.str = script.ConsumeBytes(
              std::size_t(script.ConsumeIntegralInRange(0, 24)));
          w.PutString(op.str);
          break;
        case 3:
          op.u64 = script.ConsumeIntegralInRange(0, 255);
          w.PutU8(std::uint8_t(op.u64));
          break;
        case 4:
          op.u64 = script.ConsumeIntegralInRange(0, 0xffffffffu);
          w.PutFixed32(std::uint32_t(op.u64));
          break;
        case 5:
          // Arbitrary bit pattern, NaNs included: PutDouble/GetDouble are
          // raw copies, so the comparison is on bits, not FP semantics.
          op.u64 = script.ConsumeIntegralInRange(0, ~std::uint64_t{0});
          {
            double d;
            std::memcpy(&d, &op.u64, sizeof(d));
            w.PutDouble(d);
          }
          break;
        default: {
          const std::size_t n =
              std::size_t(script.ConsumeIntegralInRange(0, 8));
          std::uint32_t id = 0;
          for (std::size_t i = 0; i < n; ++i) {
            id += std::uint32_t(script.ConsumeIntegralInRange(0, 1000));
            op.ids.push_back(id);
          }
          w.PutSortedIds(op.ids);
          break;
        }
      }
      ops.push_back(std::move(op));
    }
    BinaryReader r(w.Buffer());
    for (const Op& op : ops) {
      switch (op.kind) {
        case 0:
          FIGDB_CHECK(r.GetVarint() == op.u64);
          break;
        case 1:
          FIGDB_CHECK(r.GetSignedVarint() == op.i64);
          break;
        case 2:
          FIGDB_CHECK(r.GetString() == op.str);
          break;
        case 3:
          FIGDB_CHECK(r.GetU8() == std::uint8_t(op.u64));
          break;
        case 4:
          FIGDB_CHECK(r.GetFixed32() == std::uint32_t(op.u64));
          break;
        case 5:
          FIGDB_CHECK(BitsOf(r.GetDouble()) == op.u64);
          break;
        default:
          FIGDB_CHECK(r.GetSortedIds() == op.ids);
          break;
      }
      FIGDB_CHECK(r.Ok());
    }
    FIGDB_CHECK(r.AtEnd());
    return;
  }

  // Adversarial decode: scripted Get* sequence over raw fuzzer bytes.
  // The reader must never read past the buffer, length claims must be
  // validated before they produce data, and failure must be sticky.
  const std::size_t op_count =
      std::size_t(script.ConsumeIntegralInRange(0, 32));
  std::vector<std::uint8_t> ops;
  for (std::size_t i = 0; i < op_count; ++i)
    ops.push_back(std::uint8_t(script.ConsumeIntegralInRange(0, 7)));
  const std::string payload = script.ConsumeRemaining();
  BinaryReader r(payload);
  bool failed = false;
  for (const std::uint8_t op : ops) {
    const std::size_t before = r.Remaining();
    switch (op) {
      case 0:
        (void)r.GetVarint();
        break;
      case 1:
        (void)r.GetSignedVarint();
        break;
      case 2: {
        const std::string s = r.GetString();
        FIGDB_CHECK(s.size() <= payload.size());
        break;
      }
      case 3:
        (void)r.GetU8();
        break;
      case 4:
        (void)r.GetFixed32();
        break;
      case 5:
        (void)r.GetDouble();
        break;
      case 6: {
        const std::vector<std::uint32_t> ids = r.GetSortedIds();
        FIGDB_CHECK(ids.size() <= payload.size());
        break;
      }
      default: {
        const std::string_view raw = r.GetRaw(before / 2 + 1);
        FIGDB_CHECK(raw.size() <= payload.size());
        break;
      }
    }
    FIGDB_CHECK(r.Remaining() <= before);
    if (failed) FIGDB_CHECK(!r.Ok());  // failure is sticky
    failed = !r.Ok();
  }
}

// -------------------------------------------- shard-manifest harness

ParseOutcome CheckShardManifestOneInput(const std::uint8_t* data,
                                        std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const auto parsed = shard::ParseShardManifest(input);
  ParseOutcome outcome;
  outcome.accepted = parsed.ok();
  outcome.code = parsed.ok() ? StatusCode::kOk : parsed.status().code();
  if (!parsed.ok()) {
    // Same taxonomy as the other persistent formats: framing/semantic skew
    // is kInvalidArgument, damage is kDataLoss, and a recovery-path error
    // without a message is useless to an operator.
    FIGDB_CHECK(outcome.code == StatusCode::kInvalidArgument ||
                outcome.code == StatusCode::kDataLoss);
    FIGDB_CHECK(!parsed.status().message().empty());
    return outcome;
  }
  // Accepted manifests must honor the documented ranges...
  FIGDB_CHECK(parsed->generation >= 1);
  FIGDB_CHECK(parsed->num_shards >= 1 &&
              parsed->num_shards <= shard::kMaxShards);
  // ...and reach a serialize fixed point (the input itself need not be
  // canonical — overlong varints re-encode shorter).
  const std::string s1 = shard::SerializeShardManifest(*parsed);
  const auto reparsed = shard::ParseShardManifest(s1);
  FIGDB_CHECK_MSG(reparsed.ok(),
                  "serialize(parse(manifest)) failed to re-parse");
  FIGDB_CHECK_MSG(*reparsed == *parsed, "manifest round-trip changed fields");
  FIGDB_CHECK(shard::SerializeShardManifest(*reparsed) == s1);
  return outcome;
}

// ------------------------------------------ segment-manifest harness

ParseOutcome CheckSegmentManifestOneInput(const std::uint8_t* data,
                                          std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  const auto parsed = temporal::ParseSegmentManifest(input);
  ParseOutcome outcome;
  outcome.accepted = parsed.ok();
  outcome.code = parsed.ok() ? StatusCode::kOk : parsed.status().code();
  if (!parsed.ok()) {
    FIGDB_CHECK(outcome.code == StatusCode::kInvalidArgument ||
                outcome.code == StatusCode::kDataLoss);
    FIGDB_CHECK(!parsed.status().message().empty());
    return outcome;
  }
  // Accepted manifests must honor the documented invariants...
  FIGDB_CHECK(parsed->generation >= 1);
  FIGDB_CHECK(parsed->segments.size() <= temporal::kMaxSegments);
  std::size_t active = 0;
  for (std::size_t i = 0; i < parsed->segments.size(); ++i) {
    const temporal::SegmentEntry& e = parsed->segments[i];
    FIGDB_CHECK(e.min_epoch <= e.max_epoch);
    if (e.state == temporal::SegmentState::kActive) {
      ++active;
      FIGDB_CHECK(i + 1 == parsed->segments.size());  // active is last
    }
    if (i > 0) {
      const temporal::SegmentEntry& prev = parsed->segments[i - 1];
      FIGDB_CHECK(e.base >= prev.base + prev.count);   // ids don't overlap
      FIGDB_CHECK(e.min_epoch >= prev.max_epoch);      // epochs monotone
    }
  }
  FIGDB_CHECK(active <= 1);
  // ...and reach a serialize fixed point (the input itself need not be
  // canonical — overlong varints re-encode shorter).
  const std::string s1 = temporal::SerializeSegmentManifest(*parsed);
  const auto reparsed = temporal::ParseSegmentManifest(s1);
  FIGDB_CHECK_MSG(reparsed.ok(),
                  "serialize(parse(segments)) failed to re-parse");
  FIGDB_CHECK_MSG(*reparsed == *parsed,
                  "segment manifest round-trip changed fields");
  FIGDB_CHECK(temporal::SerializeSegmentManifest(*reparsed) == s1);
  return outcome;
}

// ------------------------------------------------------ wire-frame harness

namespace {

bool SameRequest(const net::RequestFrame& a, const net::RequestFrame& b) {
  return a.request_id == b.request_id && a.tenant == b.tenant &&
         a.deadline_budget_us == b.deadline_budget_us &&
         a.query_text == b.query_text && a.k == b.k &&
         a.max_candidates == b.max_candidates;
}

bool SameResponse(const net::ResponseFrame& a, const net::ResponseFrame& b) {
  if (a.request_id != b.request_id || a.code != b.code ||
      a.retry_later != b.retry_later || a.message != b.message ||
      a.truncated != b.truncated || a.reranked != b.reranked ||
      a.epoch != b.epoch || a.results.size() != b.results.size())
    return false;
  for (std::size_t i = 0; i < a.results.size(); ++i)
    if (a.results[i].object != b.results[i].object ||
        a.results[i].score != b.results[i].score)
      return false;
  return true;
}

}  // namespace

ParseOutcome CheckFrameOneInput(const std::uint8_t* data, std::size_t size) {
  std::string buffer(reinterpret_cast<const char*>(data), size);
  ParseOutcome outcome;
  // Drive the decoder the way a connection handler does: decode, erase the
  // consumed prefix, decode again — a stream carries back-to-back frames.
  while (!buffer.empty()) {
    net::Frame frame;
    std::size_t consumed = 0;
    const net::DecodeResult dr = net::DecodeFrame(buffer, &frame, &consumed);
    if (dr != net::DecodeResult::kOk) {
      // Both terminal shapes end the walk; neither may claim bytes.
      if (!outcome.accepted)
        outcome.code = dr == net::DecodeResult::kCorrupt
                           ? StatusCode::kDataLoss
                           : StatusCode::kInvalidArgument;
      return outcome;
    }
    outcome.accepted = true;
    FIGDB_CHECK(consumed > 0 && consumed <= buffer.size());
    // Re-encode what was decoded: the canonical bytes must decode back to
    // the same fields (round trip) and to themselves (byte fixed point) —
    // the input need not be canonical (overlong varints shrink).
    const std::string canonical =
        frame.kind == net::FrameKind::kRequest
            ? net::EncodeRequestFrame(frame.request)
            : net::EncodeResponseFrame(frame.response);
    net::Frame again;
    std::size_t reconsumed = 0;
    FIGDB_CHECK_MSG(net::DecodeFrame(canonical, &again, &reconsumed) ==
                        net::DecodeResult::kOk,
                    "re-encoded frame failed to decode");
    FIGDB_CHECK(reconsumed == canonical.size());
    FIGDB_CHECK(again.kind == frame.kind);
    if (frame.kind == net::FrameKind::kRequest)
      FIGDB_CHECK_MSG(SameRequest(frame.request, again.request),
                      "request frame round-trip changed fields");
    else
      FIGDB_CHECK_MSG(SameResponse(frame.response, again.response),
                      "response frame round-trip changed fields");
    FIGDB_CHECK((again.kind == net::FrameKind::kRequest
                     ? net::EncodeRequestFrame(again.request)
                     : net::EncodeResponseFrame(again.response)) == canonical);
    buffer.erase(0, consumed);
  }
  return outcome;
}

// -------------------------------------------------------- taxonomy harness

ParseOutcome CheckTaxonomyOneInput(const std::uint8_t* data,
                                   std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  BinaryReader r(input);
  text::Taxonomy tax;
  const Status parsed = index::ReadTaxonomySection(&r, &tax);
  ParseOutcome outcome;
  outcome.accepted = parsed.ok();
  outcome.code = parsed.ok() ? StatusCode::kOk : parsed.code();
  if (!parsed.ok()) {
    FIGDB_CHECK(outcome.code == StatusCode::kDataLoss);
    FIGDB_CHECK(!parsed.message().empty());
    return outcome;
  }
  if (tax.NodeCount() == 0) return outcome;
  // WUP invariants over whatever hierarchy survived validation. Query
  // targets are derived deterministically from the input so replay is
  // exact.
  util::Rng rng(util::Crc32(input));
  const std::uint64_t n = tax.NodeCount();
  for (int i = 0; i < 8; ++i) {
    const auto a = text::NodeId(rng.UniformInt(n));
    const auto b = text::NodeId(rng.UniformInt(n));
    const double w = tax.Wup(a, b);
    FIGDB_CHECK(w > 0.0 && w <= 1.0);
    FIGDB_CHECK(tax.Wup(b, a) == w);
    FIGDB_CHECK(tax.Wup(a, a) == 1.0);
    const text::NodeId lcs = tax.LowestCommonSubsumer(a, b);
    FIGDB_CHECK(tax.Depth(lcs) <= std::min(tax.Depth(a), tax.Depth(b)));
    const double wt = tax.WupTerms(std::uint32_t(rng.UniformInt(1 << 16)),
                                   std::uint32_t(rng.UniformInt(1 << 16)));
    FIGDB_CHECK(wt == 0.0 || (wt > 0.0 && wt <= 1.0));
  }
  return outcome;
}

// ------------------------------------------------------ failpoint harness

void CheckFailPointSpecOneInput(const std::uint8_t* data, std::size_t size) {
  // Specs come from an environment variable in production — cap the length
  // accordingly instead of letting the fuzzer grow megabyte strings.
  const std::string spec(reinterpret_cast<const char*>(data),
                         std::min<std::size_t>(size, 512));
  const std::size_t entries =
      1 + std::size_t(std::count(spec.begin(), spec.end(), ','));
  util::FailPoints::DeactivateAll();
  const std::size_t activated =
      util::FailPoints::ActivateFromEnv(spec.c_str(), /*quiet=*/true);
  FIGDB_CHECK(activated <= entries);
  FIGDB_CHECK((activated > 0) == util::FailPoints::AnyActive());
  util::FailPoints::DeactivateAll();
  FIGDB_CHECK(!util::FailPoints::AnyActive());
}

// -------------------------------------------------- shell-command harness

void CheckShellCommandOneInput(const std::uint8_t* data, std::size_t size) {
  const std::string_view input(reinterpret_cast<const char*>(data), size);
  std::size_t start = 0, lines = 0;
  while (start <= input.size() && lines++ < 64) {
    std::size_t end = input.find('\n', start);
    if (end == std::string_view::npos) end = input.size();
    const std::string_view line = input.substr(start, end - start);
    start = end + 1;
    if (line.size() > 1024) continue;
    const auto parsed = cli::ParseShellCommand(line);
    if (!parsed.ok()) {
      // Every rejection is a printable usage/unknown-command message.
      FIGDB_CHECK(parsed.status().code() == StatusCode::kInvalidArgument);
      FIGDB_CHECK(!parsed.status().message().empty());
      continue;
    }
    // Accepted commands carry the documented clamp invariants — the shell
    // dispatches on these values without re-validating.
    const cli::ShellCommand& cmd = *parsed;
    switch (cmd.verb) {
      case cli::ShellVerb::kGen:
        FIGDB_CHECK(cmd.count >= cli::kMinGenObjects);
        break;
      case cli::ShellVerb::kServe:
        FIGDB_CHECK(std::isfinite(cmd.serve_seconds));
        FIGDB_CHECK(cmd.serve_seconds >= cli::kMinServeSeconds &&
                    cmd.serve_seconds <= cli::kMaxServeSeconds);
        FIGDB_CHECK(cmd.serve_readers >= 1 &&
                    cmd.serve_readers <= cli::kMaxServeThreads);
        FIGDB_CHECK(cmd.serve_workers <= cli::kMaxServeThreads);
        break;
      case cli::ShellVerb::kLoad:
      case cli::ShellVerb::kSave:
      case cli::ShellVerb::kAttach:
        FIGDB_CHECK(!cmd.text.empty());
        break;
      case cli::ShellVerb::kBudget:
        FIGDB_CHECK(std::isfinite(cmd.budget_ms));
        break;
      case cli::ShellVerb::kSegmentsAttach:
        FIGDB_CHECK(!cmd.text.empty());
        FIGDB_CHECK(cmd.count >= 1 &&
                    cmd.count <= cli::kMaxShellEpochsPerSegment);
        FIGDB_CHECK(cmd.retention <= cli::kMaxShellRetentionEpochs);
        break;
      case cli::ShellVerb::kSegmentsExpire:
        // Either the "use the store clock" sentinel or a uint32 epoch —
        // the shell casts without re-validating.
        FIGDB_CHECK(cmd.epoch == cli::kEpochFromClock ||
                    cmd.epoch <= 0xffffffffull);
        break;
      case cli::ShellVerb::kSegmentsBursts:
        FIGDB_CHECK(cmd.count >= 1 &&
                    cmd.count <= cli::kMaxShellBurstEvents);
        break;
      default:
        break;
    }
  }
}

// ------------------------------------------------------- store-ops harness

void CheckStoreOpsOneInput(const std::uint8_t* data, std::size_t size) {
  static const corpus::Corpus* base = [] {
    auto* c = new corpus::Corpus(BuildTinyCorpus(4242, 40));
    for (const corpus::MediaObject& obj : c->Objects())
      FIGDB_CHECK_MSG(!obj.features.empty(),
                      "store-ops base corpus must have no empty objects");
    return c;
  }();

  DataProvider script(data, size);
  const std::string dir = TempRoot() + "/store_ops";
  std::filesystem::remove_all(dir);

  // The in-memory model: one entry per id ever assigned, in the canonical
  // object encoding. The store must match it after every recovery.
  struct Slot {
    bool live;
    std::string bytes;
  };
  std::vector<Slot> model;
  model.reserve(base->Size());
  for (const corpus::MediaObject& obj : base->Objects())
    model.push_back({true, EncodeObject(obj)});

  auto created = index::FigDbStore::Create(dir, *base);
  FIGDB_CHECK(created.ok());
  std::optional<index::FigDbStore> store(std::move(*created));

  const std::size_t ops = std::size_t(script.ConsumeIntegralInRange(0, 24));
  for (std::size_t i = 0; i < ops; ++i) {
    switch (script.ConsumeIntegralInRange(0, 4)) {
      case 0:
      case 1: {  // ingest a clone of a base object
        corpus::MediaObject donor = base->Object(
            corpus::ObjectId(script.ConsumeIntegralInRange(0, base->Size() - 1)));
        donor.id = corpus::kInvalidObject;
        const std::string encoded = EncodeObject(donor);
        const auto id = store->Ingest(std::move(donor));
        FIGDB_CHECK_MSG(id.ok(), "valid ingest must succeed");
        FIGDB_CHECK(*id == corpus::ObjectId(model.size()));
        model.push_back({true, encoded});
        break;
      }
      case 2: {  // remove (valid or dangling — the script decides)
        const auto id = corpus::ObjectId(
            script.ConsumeIntegralInRange(0, model.size() + 2));
        const Status removed = store->Remove(id);
        const bool was_live = id < model.size() && model[id].live;
        FIGDB_CHECK(removed.ok() == was_live);
        if (!removed.ok())
          FIGDB_CHECK(removed.code() == StatusCode::kNotFound);
        if (was_live) model[id].live = false;
        break;
      }
      case 3: {  // checkpoint
        const Status checkpointed = store->Checkpoint();
        FIGDB_CHECK(checkpointed.ok());
        break;
      }
      default: {  // crash (drop the store mid-life) + recover
        store.reset();
        auto recovered = index::FigDbStore::Recover(dir);
        FIGDB_CHECK_MSG(recovered.ok(), "crash recovery must succeed");
        store.emplace(std::move(*recovered));
        break;
      }
    }
    FIGDB_CHECK(!store->Wounded());
    FIGDB_CHECK(store->GetCorpus().Size() == model.size());
  }

  // Final verdict: recover from disk one last time and compare the store
  // to the model object-for-object. Every acknowledged mutation was
  // WAL-logged before being applied, so nothing acked may be missing and
  // nothing unacked may appear.
  store.reset();
  auto final_store = index::FigDbStore::Recover(dir);
  FIGDB_CHECK(final_store.ok());
  const corpus::Corpus& got = final_store->GetCorpus();
  FIGDB_CHECK_MSG(got.Size() == model.size(),
                  "recovered store lost or invented objects");
  for (std::size_t id = 0; id < model.size(); ++id) {
    FIGDB_CHECK_MSG(
        final_store->IsRemoved(corpus::ObjectId(id)) == !model[id].live,
        "recovered tombstone state diverged from the model");
    if (model[id].live)
      FIGDB_CHECK_MSG(
          EncodeObject(got.Object(corpus::ObjectId(id))) == model[id].bytes,
          "recovered object bytes diverged from the model");
  }
  std::filesystem::remove_all(dir);
}

// -------------------------------------------------- query-identity harness

namespace {

struct QueryWorld {
  corpus::Corpus corpus;
  std::unique_ptr<index::FigRetrievalEngine> full;  ///< TA + stage-2 rerank
  std::unique_ptr<index::FigRetrievalEngine> ta;    ///< stage-1 only, TA
  std::unique_ptr<index::FigRetrievalEngine> ex;    ///< stage-1, exhaustive
};

const QueryWorld& GetQueryWorld(std::size_t which) {
  static QueryWorld* worlds[2] = {nullptr, nullptr};
  QueryWorld*& world = worlds[which & 1];
  if (world == nullptr) {
    world = new QueryWorld;
    world->corpus =
        BuildTinyCorpus((which & 1) == 0 ? 7 : 99, (which & 1) == 0 ? 100 : 140);
    index::EngineOptions full_opts;
    world->full =
        std::make_unique<index::FigRetrievalEngine>(world->corpus, full_opts);
    index::EngineOptions ta_opts;
    ta_opts.rerank_candidates = 0;
    world->ta =
        std::make_unique<index::FigRetrievalEngine>(world->corpus, ta_opts);
    index::EngineOptions ex_opts;
    ex_opts.rerank_candidates = 0;
    ex_opts.merge = index::EngineOptions::MergeMode::kExhaustive;
    world->ex =
        std::make_unique<index::FigRetrievalEngine>(world->corpus, ex_opts);
  }
  return *world;
}

const serve::QueryExecutor& GetExecutor(std::size_t which) {
  static constexpr std::size_t kWorkers[4] = {0, 1, 2, 4};
  static serve::QueryExecutor* executors[4] = {nullptr, nullptr, nullptr,
                                               nullptr};
  serve::QueryExecutor*& executor = executors[which & 3];
  if (executor == nullptr) {
    serve::ExecutorOptions options;
    options.workers = kWorkers[which & 3];
    executor = new serve::QueryExecutor(options);
  }
  return *executor;
}

}  // namespace

void CheckQueryIdentityOneInput(const std::uint8_t* data, std::size_t size) {
  DataProvider script(data, size);
  int rounds = 0;
  while (!script.Empty() && rounds++ < 3) {
    const QueryWorld& world = GetQueryWorld(script.ConsumeIntegralInRange(0, 1));
    const corpus::MediaObject& query = world.corpus.Object(corpus::ObjectId(
        script.ConsumeIntegralInRange(0, world.corpus.Size() - 1)));
    const std::size_t k = std::size_t(1 + script.ConsumeIntegralInRange(0, 11));
    const serve::QueryExecutor& executor =
        GetExecutor(script.ConsumeIntegralInRange(0, 3));

    // Paper-critical invariant (DESIGN.md §9): the parallel executor is
    // BIT-identical to sequential TrySearch, for any worker count.
    const auto seq = world.full->TrySearch(query, k);
    const auto par = executor.Search(*world.full, query, k);
    FIGDB_CHECK(seq.ok() == par.ok());
    if (!seq.ok()) {
      FIGDB_CHECK(seq.status().code() == par.status().code());
    } else {
      FIGDB_CHECK(seq->results.size() == par->results.size());
      for (std::size_t i = 0; i < seq->results.size(); ++i) {
        FIGDB_CHECK(seq->results[i].object == par->results[i].object);
        FIGDB_CHECK_MSG(
            BitsOf(seq->results[i].score) == BitsOf(par->results[i].score),
            "parallel score is not bit-identical to sequential");
      }
      FIGDB_CHECK(seq->truncated == par->truncated);
      FIGDB_CHECK(seq->reranked == par->reranked);
      FIGDB_CHECK(seq->scored_candidates == par->scored_candidates);
    }

    // TA vs exhaustive merge on the stage-1 engines: same objects in the
    // same order; scores agree to accumulation-order tolerance.
    const auto ta = world.ta->TrySearch(query, k);
    const auto ex = world.ex->TrySearch(query, k);
    FIGDB_CHECK(ta.ok() == ex.ok());
    if (ta.ok()) {
      FIGDB_CHECK(ta->results.size() == ex->results.size());
      for (std::size_t i = 0; i < ta->results.size(); ++i) {
        FIGDB_CHECK_MSG(ta->results[i].object == ex->results[i].object,
                        "TA returned different objects than exhaustive");
        FIGDB_CHECK(std::fabs(ta->results[i].score - ex->results[i].score) <=
                    1e-9);
      }
    }
  }
}

}  // namespace figdb::fuzz
