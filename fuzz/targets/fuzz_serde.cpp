#include <cstdint>

#include "fuzz_util.hpp"

/// Fuzzes the serde primitives (util::BinaryWriter/BinaryReader): scripted
/// write→read round-trips must be exact; adversarial decode sequences must
/// fail cleanly with sticky state and no over-long reads or allocations.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckSerdeOneInput(data, size);
  return 0;
}
