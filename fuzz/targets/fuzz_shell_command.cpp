#include <cstdint>

#include "fuzz_util.hpp"

/// Fuzzes the shell line parser (cli::ParseShellCommand), one command per
/// input line: accepted commands must already carry the shell's documented
/// clamps, rejections must carry a printable usage message.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckShellCommandOneInput(data, size);
  return 0;
}
