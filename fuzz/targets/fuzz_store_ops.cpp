#include <cstdint>

#include "fuzz_util.hpp"

/// Differential store fuzz: the input bytes script an
/// ingest/remove/checkpoint/crash/recover sequence against a real
/// FigDbStore while an in-memory model shadows every acknowledged
/// mutation; after the final recovery the store must equal the model
/// object-for-object (the crash-atomicity invariant, end to end).

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckStoreOpsOneInput(data, size);
  return 0;
}
