#include <cstdint>

#include "fuzz_util.hpp"

/// Fuzzes FIGDB_FAILPOINTS spec parsing (FailPoints::ActivateFromEnv in
/// quiet mode): the activation count is bounded by the entry count,
/// AnyActive() agrees with it, and DeactivateAll restores a clean slate.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckFailPointSpecOneInput(data, size);
  return 0;
}
