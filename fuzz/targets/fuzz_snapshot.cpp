#include <algorithm>
#include <cstdint>
#include <string>

#include "fuzz_util.hpp"

/// Fuzzes the v2 snapshot loader (index::DeserializeCorpus): accepted
/// inputs must re-serialize idempotently, rejections must carry the
/// documented kInvalidArgument/kDataLoss taxonomy. The custom mutator
/// re-stamps section CRCs after each generic mutation so coverage reaches
/// the section parsers instead of dying at the checksum gate.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckSnapshotOneInput(data, size);
  return 0;
}

#ifdef FIGDB_FUZZ_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  (void)seed;  // LLVMFuzzerMutate draws from libFuzzer's own stream
  const std::size_t new_size = LLVMFuzzerMutate(data, size, max_size);
  std::string bytes(reinterpret_cast<const char*>(data), new_size);
  // CRC fixup never changes the length, so the patched bytes fit in place.
  figdb::fuzz::FixupSnapshotCrcs(&bytes);
  std::copy(bytes.begin(), bytes.end(), reinterpret_cast<char*>(data));
  return new_size;
}
#endif  // FIGDB_FUZZ_BUILD
