#include <algorithm>
#include <cstdint>
#include <string>

#include "fuzz_util.hpp"

/// Fuzzes the WAL image decoder (WriteAheadLog::ReplayBytes): the
/// torn-tail-vs-mid-log-corruption discrimination, LSN monotonicity, and
/// valid-prefix replay stability. The custom mutator re-stamps frame CRCs
/// after each generic mutation so mutated *payloads* reach the record
/// parser and the replay state machine.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckWalFileOneInput(data, size);
  return 0;
}

#ifdef FIGDB_FUZZ_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  (void)seed;
  const std::size_t new_size = LLVMFuzzerMutate(data, size, max_size);
  std::string bytes(reinterpret_cast<const char*>(data), new_size);
  figdb::fuzz::FixupWalCrcs(&bytes);
  std::copy(bytes.begin(), bytes.end(), reinterpret_cast<char*>(data));
  return new_size;
}
#endif  // FIGDB_FUZZ_BUILD
