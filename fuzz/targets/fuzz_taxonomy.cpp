#include <cstdint>

#include "fuzz_util.hpp"

/// Fuzzes the taxonomy section decoder (index::ReadTaxonomySection) and
/// then runs WUP similarity queries over whatever hierarchy survives
/// validation: WUP ∈ (0, 1], symmetric, self-similarity 1, and the lowest
/// common subsumer never deeper than either argument.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckTaxonomyOneInput(data, size);
  return 0;
}
