#include <cstdint>

#include "fuzz_util.hpp"

/// Differential query fuzz: the input bytes script (corpus, query, k,
/// worker-count) tuples; the parallel QueryExecutor must be BIT-identical
/// to sequential TrySearch for workers {0, 1, 2, 4}, and the Threshold
/// Algorithm merge must agree with exhaustive merge on stage-1 engines.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckQueryIdentityOneInput(data, size);
  return 0;
}
