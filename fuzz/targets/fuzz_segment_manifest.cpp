#include <algorithm>
#include <cstdint>
#include <string>

#include "fuzz_util.hpp"

/// Fuzzes the temporal segment manifest parser
/// (temporal::ParseSegmentManifest), the SEGMENTS file the segmented
/// store's recovery trusts to name the live time buckets: accepted
/// manifests must honor the documented invariants (generation, segment
/// ceiling, base/epoch monotonicity, active-last) and re-serialize to a
/// fixed point, rejections must carry the kInvalidArgument/kDataLoss
/// taxonomy. The custom mutator re-stamps the single header CRC after
/// each generic mutation so coverage reaches the payload decoder instead
/// of dying at the checksum gate.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckSegmentManifestOneInput(data, size);
  return 0;
}

#ifdef FIGDB_FUZZ_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  (void)seed;  // LLVMFuzzerMutate draws from libFuzzer's own stream
  const std::size_t new_size = LLVMFuzzerMutate(data, size, max_size);
  std::string bytes(reinterpret_cast<const char*>(data), new_size);
  // CRC fixup never changes the length, so the patched bytes fit in place.
  figdb::fuzz::FixupSegmentManifestCrc(&bytes);
  std::copy(bytes.begin(), bytes.end(), reinterpret_cast<char*>(data));
  return new_size;
}
#endif  // FIGDB_FUZZ_BUILD
