#include <algorithm>
#include <cstdint>
#include <string>

#include "fuzz_util.hpp"

/// Fuzzes the network wire-frame decoder (net::DecodeFrame), the first
/// parser every byte from a remote peer meets: decoded frames must reach a
/// re-encode fixed point that round-trips field-for-field, torn prefixes
/// must ask for more bytes, and corruption must be terminal — never a
/// crash, never an over-read, never a frame conjured from damage. The
/// custom mutator re-stamps each walkable frame's CRC after the generic
/// mutation so coverage reaches the payload decoder instead of dying at
/// the checksum gate.

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  figdb::fuzz::CheckFrameOneInput(data, size);
  return 0;
}

#ifdef FIGDB_FUZZ_BUILD
extern "C" std::size_t LLVMFuzzerMutate(std::uint8_t* data, std::size_t size,
                                        std::size_t max_size);

extern "C" std::size_t LLVMFuzzerCustomMutator(std::uint8_t* data,
                                               std::size_t size,
                                               std::size_t max_size,
                                               unsigned int seed) {
  (void)seed;  // LLVMFuzzerMutate draws from libFuzzer's own stream
  const std::size_t new_size = LLVMFuzzerMutate(data, size, max_size);
  std::string bytes(reinterpret_cast<const char*>(data), new_size);
  // CRC fixup never changes the length, so the patched bytes fit in place.
  figdb::fuzz::FixupFrameCrc(&bytes);
  std::copy(bytes.begin(), bytes.end(), reinterpret_cast<char*>(data));
  return new_size;
}
#endif  // FIGDB_FUZZ_BUILD
