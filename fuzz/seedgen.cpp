#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz_util.hpp"
#include "net/wire.hpp"
#include "shard/manifest.hpp"
#include "temporal/segment_manifest.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

/// \file seedgen.cpp
/// Regenerates the checked-in seed corpora under fuzz/corpus/<target>/.
///
/// Every seed is deterministic (fixed util::Rng seeds, fixed corpus
/// generator seeds), so `fuzz_seedgen fuzz/corpus` reproduces the committed
/// files byte-for-byte — a format change that alters the seeds shows up as
/// a git diff, which is exactly when the corpora NEED regenerating.
///
/// Structured formats (snapshot, WAL) get valid images plus structurally
/// interesting variants (truncated, CRC-refreshed mutants); text surfaces
/// (shell, fail-point specs) get representative grammar coverage; action
/// scripts (store ops, query identity, serde, WAL round-trip) get fixed
/// pseudo-random byte programs long enough to reach every op.

namespace {

void WriteSeed(const std::filesystem::path& dir, const std::string& name,
               const std::string& bytes) {
  std::filesystem::create_directories(dir);
  const std::filesystem::path path = dir / name;
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  FIGDB_CHECK_MSG(f != nullptr, path.string().c_str());
  if (!bytes.empty())
    FIGDB_CHECK(std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size());
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), bytes.size());
}

/// A fixed pseudo-random byte program for the action-script harnesses.
std::string ScriptBytes(std::uint64_t seed, std::size_t n) {
  figdb::util::Rng rng(seed);
  std::string bytes;
  bytes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    bytes.push_back(char(rng.UniformInt(256)));
  return bytes;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fuzz = figdb::fuzz;
  const std::filesystem::path root = argc > 1 ? argv[1] : "fuzz/corpus";

  // fuzz_snapshot: two valid snapshots, a truncated one, and a mutant with
  // refreshed CRCs (valid framing, damaged payload) to pre-seed the deep
  // section-parser paths.
  {
    const std::string small = fuzz::BuildSnapshotSeed(5, 20);
    const std::string tiny = fuzz::BuildSnapshotSeed(11, 8);
    WriteSeed(root / "fuzz_snapshot", "valid_small.bin", small);
    WriteSeed(root / "fuzz_snapshot", "valid_tiny.bin", tiny);
    WriteSeed(root / "fuzz_snapshot", "truncated.bin",
              small.substr(0, small.size() / 3));
    figdb::util::Rng rng(20260807);
    std::string mutant = fuzz::MutateBytes(&rng, small, /*truncate=*/false);
    fuzz::FixupSnapshotCrcs(&mutant);
    WriteSeed(root / "fuzz_snapshot", "crc_fixed_mutant.bin", mutant);
  }

  // fuzz_wal: valid logs, a header-only log, and a torn tail.
  {
    const std::string log = fuzz::BuildWalSeed(3, 6);
    WriteSeed(root / "fuzz_wal", "valid_six_records.bin", log);
    WriteSeed(root / "fuzz_wal", "valid_one_record.bin",
              fuzz::BuildWalSeed(9, 1));
    WriteSeed(root / "fuzz_wal", "header_only.bin", log.substr(0, 8));
    WriteSeed(root / "fuzz_wal", "torn_tail.bin",
              log.substr(0, log.size() - 3));
  }

  // fuzz_shard_manifest: valid manifests spanning the accepted ranges, a
  // truncation, and a CRC-refreshed mutant (valid frame, damaged payload).
  {
    figdb::shard::ShardManifest m;
    WriteSeed(root / "fuzz_shard_manifest", "valid_default.bin",
              figdb::shard::SerializeShardManifest(m));
    m.generation = 41;
    m.num_shards = figdb::shard::kMaxShards;
    const std::string big = figdb::shard::SerializeShardManifest(m);
    WriteSeed(root / "fuzz_shard_manifest", "valid_max_shards.bin", big);
    WriteSeed(root / "fuzz_shard_manifest", "truncated.bin",
              big.substr(0, big.size() - 1));
    figdb::util::Rng rng(20260809);
    std::string mutant = fuzz::MutateBytes(&rng, big, /*truncate=*/false);
    fuzz::FixupShardManifestCrc(&mutant);
    WriteSeed(root / "fuzz_shard_manifest", "crc_fixed_mutant.bin", mutant);
  }

  // fuzz_segment_manifest: a default (empty) manifest, a realistic sealed+
  // active window, a truncation, and a CRC-refreshed mutant.
  {
    figdb::temporal::SegmentManifest m;
    WriteSeed(root / "fuzz_segment_manifest", "valid_default.bin",
              figdb::temporal::SerializeSegmentManifest(m));
    m.generation = 17;
    m.segments = {{.id = 0,
                   .min_epoch = 0,
                   .max_epoch = 2,
                   .base = 0,
                   .count = 90,
                   .state = figdb::temporal::SegmentState::kSealed},
                  {.id = 1,
                   .min_epoch = 3,
                   .max_epoch = 5,
                   .base = 90,
                   .count = 90,
                   .state = figdb::temporal::SegmentState::kSealed},
                  {.id = 2,
                   .min_epoch = 6,
                   .max_epoch = 8,
                   .base = 180,
                   .count = 30,
                   .state = figdb::temporal::SegmentState::kActive}};
    const std::string window =
        figdb::temporal::SerializeSegmentManifest(m);
    WriteSeed(root / "fuzz_segment_manifest", "valid_window.bin", window);
    WriteSeed(root / "fuzz_segment_manifest", "truncated.bin",
              window.substr(0, window.size() - 1));
    figdb::util::Rng rng(20260810);
    std::string mutant = fuzz::MutateBytes(&rng, window, /*truncate=*/false);
    fuzz::FixupSegmentManifestCrc(&mutant);
    WriteSeed(root / "fuzz_segment_manifest", "crc_fixed_mutant.bin", mutant);
  }

  // fuzz_frame: a valid request+response stream, a lone request, a torn
  // tail, and a CRC-refreshed mutant (valid framing, damaged payload) to
  // pre-seed the body decoders past the checksum gate.
  {
    const std::string stream = fuzz::BuildFrameSeed(13, 5);
    WriteSeed(root / "fuzz_frame", "valid_stream.bin", stream);
    figdb::net::RequestFrame request;
    request.request_id = 7;
    request.tenant = "acme";
    request.deadline_budget_us = 250000;
    request.query_text = "sunset beach";
    WriteSeed(root / "fuzz_frame", "valid_request.bin",
              figdb::net::EncodeRequestFrame(request));
    WriteSeed(root / "fuzz_frame", "torn_tail.bin",
              stream.substr(0, stream.size() - 7));
    figdb::util::Rng rng(20260811);
    std::string mutant = fuzz::MutateBytes(&rng, stream, /*truncate=*/false);
    fuzz::FixupFrameCrc(&mutant);
    WriteSeed(root / "fuzz_frame", "crc_fixed_mutant.bin", mutant);
  }

  // fuzz_serde: byte programs for both modes (round-trip and adversarial).
  WriteSeed(root / "fuzz_serde", "roundtrip_script.bin",
            std::string(1, '\0') + ScriptBytes(101, 96));
  WriteSeed(root / "fuzz_serde", "adversarial_script.bin",
            std::string(1, '\x01') + ScriptBytes(102, 96));

  // fuzz_taxonomy: the taxonomy section payload of a valid snapshot
  // (section order: meta, vocabulary, taxonomy, ...), plus a truncation.
  {
    fuzz::SnapshotSections sections;
    FIGDB_CHECK(
        fuzz::SplitSnapshotSections(fuzz::BuildSnapshotSeed(5, 20), &sections));
    FIGDB_CHECK(sections.payloads.size() == 6);
    const std::string& taxonomy = sections.payloads[2];
    WriteSeed(root / "fuzz_taxonomy", "valid_section.bin", taxonomy);
    WriteSeed(root / "fuzz_taxonomy", "truncated_section.bin",
              taxonomy.substr(0, taxonomy.size() / 2));
  }

  // fuzz_failpoint_spec: grammar coverage — plain names, counters, bounded
  // fires, unknown names, malformed counters, empties.
  WriteSeed(root / "fuzz_failpoint_spec", "valid_two_points.txt",
            "wal/fsync,checkpoint/rename:2:1");
  WriteSeed(root / "fuzz_failpoint_spec", "mixed_good_bad.txt",
            "storage/save_io:0:1,bogus/name,wal/append_io:x,serve/overload");
  WriteSeed(root / "fuzz_failpoint_spec", "degenerate.txt", ",,::,name:,:3");

  // fuzz_shell_command: every verb, clamps, and error paths.
  WriteSeed(root / "fuzz_shell_command", "verbs.txt",
            "help\ngen 5000\ngen 3\nload /tmp/db.figdb\nsave out.figdb\n"
            "stats\nquery sunset beach\nsimilar 12\nshow 0\nbudget 250 64\n"
            "budget\nattach /tmp/store\ningest sunset crowd\nremove 7\n"
            "checkpoint\nrecover\nserve 1.5 8 2\nserve 999 99 99\nserve\n"
            "shard attach /tmp/shards 4\nshard attach /tmp/shards\n"
            "shard status\nshard rebalance 2\nshard query beach sunset\n"
            "segments attach /tmp/segs 2 6\nsegments attach /tmp/segs\n"
            "segments attach /tmp/segs 999 999\nsegments status\n"
            "segments merge\nsegments expire\nsegments expire 9\n"
            "segments bursts\nsegments bursts 3\n"
            "listen\nlisten 0\nlisten 4801\n"
            "connect 127.0.0.1 4801 sunset beach\nquit\n");
  WriteSeed(root / "fuzz_shell_command", "errors.txt",
            "frobnicate\ngen many\nload\nremove nineteen\nsimilar -4\n"
            "budget fast\nserve soon\nshard\nshard attach\nshard rebalance\n"
            "shard rebalance 999\nshard frob\nsegments\nsegments attach\n"
            "segments attach /tmp/segs two\nsegments expire never\n"
            "segments expire 99999999999\nsegments bursts 0\nsegments frob\n"
            "listen 70000\nlisten x\n"
            "connect\nconnect host\nconnect host 0 q\nconnect host 99999 q\n"
            "\n   \n");

  // Action-script harnesses: fixed byte programs.
  WriteSeed(root / "fuzz_store_ops", "script_a.bin", ScriptBytes(201, 48));
  WriteSeed(root / "fuzz_store_ops", "script_b.bin", ScriptBytes(202, 48));
  WriteSeed(root / "fuzz_query_identity", "script_a.bin",
            ScriptBytes(301, 24));
  WriteSeed(root / "fuzz_query_identity", "script_b.bin",
            ScriptBytes(302, 24));

  return 0;
}
