#include <gtest/gtest.h>

#include "text/porter_stemmer.hpp"
#include "text/stopwords.hpp"
#include "text/taxonomy.hpp"
#include "text/tokenizer.hpp"
#include "text/vocabulary.hpp"

namespace figdb::text {
namespace {

// ----------------------------------------------------------- Tokenizer

TEST(TokenizerTest, SplitsAndLowercases) {
  Tokenizer t;
  const auto tokens = t.Tokenize("Hamster, eating BROCCOLI!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "hamster");
  EXPECT_EQ(tokens[1], "eating");
  EXPECT_EQ(tokens[2], "broccoli");
}

TEST(TokenizerTest, DropsPureNumbersByDefault) {
  Tokenizer t;
  const auto tokens = t.Tokenize("sunset 2008 4x4");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "sunset");
  EXPECT_EQ(tokens[1], "4x4");
}

TEST(TokenizerTest, KeepsNumbersWhenConfigured) {
  Tokenizer t({.require_alpha = false});
  EXPECT_EQ(t.Tokenize("2008").size(), 1u);
}

TEST(TokenizerTest, MinLengthFilter) {
  Tokenizer t({.min_token_length = 4});
  const auto tokens = t.Tokenize("cat hamster dog bird");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0], "hamster");
  EXPECT_EQ(tokens[1], "bird");
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("  ,.!  ").empty());
}

// -------------------------------------------------------------- Porter

struct StemCase {
  const char* word;
  const char* stem;
};

class PorterStemmerParamTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemmerParamTest, KnownStems) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem(GetParam().word), GetParam().stem);
}

// Reference pairs from Porter's published vocabulary output.
INSTANTIATE_TEST_SUITE_P(
    Vocabulary, PorterStemmerParamTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"hesitanci", "hesit"},
        StemCase{"digitizer", "digit"}, StemCase{"conformabli", "conform"},
        StemCase{"radicalli", "radic"}, StemCase{"differentli", "differ"},
        StemCase{"vileli", "vile"}, StemCase{"analogousli", "analog"},
        StemCase{"vietnamization", "vietnam"}, StemCase{"predication",
                                                        "predic"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"callousness", "callous"}, StemCase{"formaliti", "formal"},
        StemCase{"sensitiviti", "sensit"}, StemCase{"sensibiliti",
                                                    "sensibl"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti",
                                                  "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"gyroscopic", "gyroscop"},
        StemCase{"adjustable", "adjust"}, StemCase{"defensible", "defens"},
        StemCase{"irritant", "irrit"}, StemCase{"replacement", "replac"},
        StemCase{"adjustment", "adjust"}, StemCase{"dependent", "depend"},
        StemCase{"adoption", "adopt"}, StemCase{"homologou", "homolog"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous",
                                                    "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize",
                                                  "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemmerTest, ShortWordsUnchanged) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("at"), "at");
  EXPECT_EQ(stemmer.Stem("by"), "by");
}

TEST(PorterStemmerTest, PluralCollapsesToSingular) {
  PorterStemmer stemmer;
  EXPECT_EQ(stemmer.Stem("hamsters"), stemmer.Stem("hamster"));
  EXPECT_EQ(stemmer.Stem("sunsets"), stemmer.Stem("sunset"));
}

// ----------------------------------------------------------- Stopwords

TEST(StopwordsTest, CommonWordsAreStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("and"));
  EXPECT_TRUE(IsStopword("with"));
  EXPECT_TRUE(IsStopword("very"));
}

TEST(StopwordsTest, ContentWordsAreNot) {
  EXPECT_FALSE(IsStopword("hamster"));
  EXPECT_FALSE(IsStopword("sunset"));
  EXPECT_FALSE(IsStopword(""));
}

TEST(StopwordsTest, ListIsSubstantial) {
  EXPECT_GE(StopwordCount(), 150u);
}

// ---------------------------------------------------------- Vocabulary

TEST(VocabularyTest, InterningAndFrequency) {
  Vocabulary v;
  const TermId a = v.AddOccurrence("sunset");
  const TermId b = v.AddOccurrence("beach");
  const TermId a2 = v.AddOccurrence("sunset", 3);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(v.Frequency(a), 4u);
  EXPECT_EQ(v.Frequency(b), 1u);
  EXPECT_EQ(v.TermOf(a), "sunset");
  EXPECT_EQ(v.Lookup("beach"), b);
  EXPECT_EQ(v.Lookup("missing"), kInvalidTerm);
}

TEST(VocabularyTest, PruneDropsRareTerms) {
  Vocabulary v;
  v.AddOccurrence("common", 10);
  v.AddOccurrence("rare", 2);
  v.AddOccurrence("medium", 5);
  const auto remap = v.Prune(5);
  ASSERT_EQ(remap.size(), 3u);
  EXPECT_NE(remap[0], kInvalidTerm);
  EXPECT_EQ(remap[1], kInvalidTerm);
  EXPECT_NE(remap[2], kInvalidTerm);
  EXPECT_EQ(v.Size(), 2u);
  EXPECT_EQ(v.Lookup("rare"), kInvalidTerm);
  EXPECT_EQ(v.TermOf(v.Lookup("medium")), "medium");
  EXPECT_EQ(v.Frequency(v.Lookup("common")), 10u);
}

TEST(VocabularyTest, PruneKeepsIdsDense) {
  Vocabulary v;
  for (int i = 0; i < 10; ++i)
    v.AddOccurrence("t" + std::to_string(i), i % 2 == 0 ? 10 : 1);
  v.Prune(5);
  EXPECT_EQ(v.Size(), 5u);
  for (TermId id = 0; id < 5; ++id) EXPECT_FALSE(v.TermOf(id).empty());
}

// ------------------------------------------------------------ Taxonomy

class TaxonomyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = tax_.AddRoot();
    animal_ = tax_.AddChild(root_, "animal");
    plant_ = tax_.AddChild(root_, "plant");
    rodent_ = tax_.AddChild(animal_, "rodent");
    hamster_ = tax_.AddChild(rodent_, "hamster");
    mouse_ = tax_.AddChild(rodent_, "mouse");
    tree_ = tax_.AddChild(plant_, "tree");
  }
  Taxonomy tax_;
  NodeId root_, animal_, plant_, rodent_, hamster_, mouse_, tree_;
};

TEST_F(TaxonomyTest, Depths) {
  EXPECT_EQ(tax_.Depth(root_), 1u);
  EXPECT_EQ(tax_.Depth(animal_), 2u);
  EXPECT_EQ(tax_.Depth(hamster_), 4u);
}

TEST_F(TaxonomyTest, LcsSiblings) {
  EXPECT_EQ(tax_.LowestCommonSubsumer(hamster_, mouse_), rodent_);
  EXPECT_EQ(tax_.LowestCommonSubsumer(hamster_, tree_), root_);
  EXPECT_EQ(tax_.LowestCommonSubsumer(hamster_, hamster_), hamster_);
  EXPECT_EQ(tax_.LowestCommonSubsumer(hamster_, animal_), animal_);
}

TEST_F(TaxonomyTest, WupIdentityIsOne) {
  EXPECT_DOUBLE_EQ(tax_.Wup(hamster_, hamster_), 1.0);
}

TEST_F(TaxonomyTest, WupKnownValues) {
  // Siblings under rodent (depth 3): 2*3 / (4+4).
  EXPECT_DOUBLE_EQ(tax_.Wup(hamster_, mouse_), 0.75);
  // Across domains: LCS is the root (depth 1): 2*1 / (4+3).
  EXPECT_DOUBLE_EQ(tax_.Wup(hamster_, tree_), 2.0 / 7.0);
}

TEST_F(TaxonomyTest, WupCloserPairsScoreHigher) {
  EXPECT_GT(tax_.Wup(hamster_, mouse_), tax_.Wup(hamster_, tree_));
  EXPECT_GT(tax_.Wup(hamster_, rodent_), tax_.Wup(hamster_, animal_));
}

TEST_F(TaxonomyTest, WupSymmetric) {
  EXPECT_DOUBLE_EQ(tax_.Wup(hamster_, tree_), tax_.Wup(tree_, hamster_));
}

TEST_F(TaxonomyTest, TermAttachment) {
  tax_.AttachTerm(42, hamster_);
  EXPECT_EQ(tax_.NodeOfTerm(42), hamster_);
  EXPECT_EQ(tax_.NodeOfTerm(43), kInvalidNode);
  EXPECT_DOUBLE_EQ(tax_.WupTerms(42, 42), 1.0);
  EXPECT_DOUBLE_EQ(tax_.WupTerms(42, 43), 0.0);
  tax_.AttachTerm(43, mouse_);
  EXPECT_DOUBLE_EQ(tax_.WupTerms(42, 43), 0.75);
}

}  // namespace
}  // namespace figdb::text
