#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include "corpus/generator.hpp"
#include "index/figdb_store.hpp"
#include "serve/serving_store.hpp"
#include "util/epoch.hpp"
#include "util/lifetime.hpp"

/// \file lifetime_test.cpp
/// The epoch-lifetime safety layer (util/lifetime.hpp + the
/// EpochReclaimer's poison quarantine). Three layers, mirroring
/// deadlock_test.cpp:
///
/// LifetimeCanaryTest drives the canary/poison primitives directly, in
/// every build — the machinery compiles unconditionally; only the
/// per-dereference FIGDB_LIFETIME_CHECK hook is gated.
///
/// EpochLifetimeTest covers the reclaimer edge cases the validator
/// depends on: the retire-at-exact-pin-epoch boundary (strict `<`),
/// quarantine overflow falling back to immediate verify-and-free, and
/// double-retire detection — using EnableLifetimePoison so the plain
/// tree exercises the same code the instrumented tree defaults to.
///
/// LifetimePoisonTest (compiled under FIGDB_LIFETIME_POISON only — the
/// `lifetime` tree in ci/check.sh) proves the end-to-end contract: a
/// snapshot pointer held past its reader pin must abort with the
/// retiring epoch and both source_location sites.

namespace figdb::util {
namespace {

namespace lt = lifetime;

std::string& LastReport() {
  static std::string report;
  return report;
}

void CaptureReport(const std::string& report) { LastReport() = report; }

/// Installs the capturing handler for one test, restores on the way out.
class CapturingHandler {
 public:
  CapturingHandler() : prev_(lt::SetViolationHandler(&CaptureReport)) {
    LastReport().clear();
  }
  ~CapturingHandler() { lt::SetViolationHandler(prev_); }

 private:
  lt::ViolationHandler prev_;
};

/// A canary-headed object the reclaimer can track: same shape contract
/// as the snapshots (canary first, LifetimeCanary accessor), plus a
/// destruction flag so tests can observe the destroy/free split.
struct TrackedObj {
  lt::Canary canary;
  std::uint64_t payload[6];
  bool* destroyed;

  explicit TrackedObj(bool* flag) : destroyed(flag) {
    for (auto& word : payload) word = 0xABABABABABABABABull;
  }
  ~TrackedObj() {
    if (destroyed != nullptr) *destroyed = true;
  }
  const lt::Canary* LifetimeCanary() const { return &canary; }
};

/// The reclaimer frees tracked objects itself (::operator delete after
/// quarantine), so tests hand it raw news on purpose.
// figdb-lint: allow(raw-new): ownership passes to the reclaimer at RetireObject
TrackedObj* NewTracked(bool* flag = nullptr) { return new TrackedObj(flag); }

// ======================================================================
// Canary / poison primitives
// ======================================================================

TEST(LifetimeCanaryTest, FreshCanaryPassesCheck) {
  CapturingHandler capture;
  lt::Canary canary;
  canary.Check();
  EXPECT_TRUE(LastReport().empty());
}

TEST(LifetimeCanaryTest, PoisonedCanaryReportsEpochAndBothSites) {
  CapturingHandler capture;
  auto* obj = NewTracked();
  lt::PoisonStorage(obj, sizeof(*obj), obj->LifetimeCanary(), 41,
                    "src/serve/somewhere.cpp", 123);
  obj->LifetimeCanary()->Check();  // the "stale dereference"
  EXPECT_NE(LastReport().find("use-after-reclaim"), std::string::npos);
  EXPECT_NE(LastReport().find("epoch 41"), std::string::npos);
  EXPECT_NE(LastReport().find("somewhere.cpp:123"), std::string::npos);
  EXPECT_NE(LastReport().find("lifetime_test.cpp"), std::string::npos)
      << "the dereference site must name this file";
  EXPECT_NE(LastReport().find("no live reader pin"), std::string::npos);
  ::operator delete(obj);
}

TEST(LifetimeCanaryTest, TrampledCanaryReportsCorruption) {
  CapturingHandler capture;
  lt::Canary canary;
  canary.magic = 0x1234;  // neither alive nor poisoned
  canary.Check();
  EXPECT_NE(LastReport().find("canary destroyed"), std::string::npos);
}

TEST(LifetimeCanaryTest, VerifyPoisonCatchesStaleWrites) {
  auto* obj = NewTracked();
  lt::PoisonStorage(obj, sizeof(*obj), obj->LifetimeCanary(), 7,
                    "x.cpp", 1);
  EXPECT_TRUE(lt::VerifyPoison(obj, sizeof(*obj), obj->LifetimeCanary()));
  obj->payload[3] = 0;  // a write through a stale pointer
  EXPECT_FALSE(lt::VerifyPoison(obj, sizeof(*obj), obj->LifetimeCanary()));
  ::operator delete(obj);
}

TEST(LifetimeCanaryTest, ThreadPinEpochTracksNestedGuards) {
  EpochReclaimer ebr;
  EXPECT_EQ(lt::ThreadPinEpoch(), 0u);
  {
    EpochReclaimer::ReadGuard outer(ebr);
    const std::uint64_t pinned = lt::ThreadPinEpoch();
    EXPECT_NE(pinned, 0u);
    {
      EpochReclaimer::ReadGuard inner(ebr);
      EXPECT_EQ(lt::ThreadPinEpoch(), pinned) << "no retire in between";
    }
    EXPECT_EQ(lt::ThreadPinEpoch(), pinned);
  }
  EXPECT_EQ(lt::ThreadPinEpoch(), 0u);
}

// ======================================================================
// Reclaimer edge cases the validator depends on
// ======================================================================

TEST(EpochLifetimeTest, RetireObjectWithoutPoisonFreesLikeDelete) {
  bool destroyed = false;
  EpochReclaimer ebr;
  ebr.RetireObject(NewTracked(&destroyed));
  EXPECT_TRUE(destroyed) << "no readers: reclaimed on the retire itself";
  EXPECT_EQ(ebr.TotalReclaimed(), 1u);
#ifndef FIGDB_LIFETIME_POISON
  // The instrumented tree default-enables the quarantine, so only the
  // plain tree may assert the storage went straight back to the heap.
  EXPECT_EQ(ebr.QuarantineDepth(), 0u);
#endif
}

TEST(EpochLifetimeTest, RetireAtExactPinEpochBoundaryIsBlocked) {
  bool destroyed = false;
  EpochReclaimer ebr;
  auto guard = std::make_unique<EpochReclaimer::ReadGuard>(ebr);
  // The guard pinned the CURRENT epoch e; this retirement is tagged e as
  // well. The reclaim comparison is strictly `retired < min_active`, so
  // the boundary case — reader and retirement at the same epoch — must
  // keep the object alive: that reader may have loaded the pointer.
  ebr.RetireObject(NewTracked(&destroyed));
  ebr.TryReclaim();
  EXPECT_FALSE(destroyed) << "equal epochs must block reclamation";
  EXPECT_EQ(ebr.PendingRetired(), 1u);
  guard.reset();
  ebr.TryReclaim();
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(ebr.PendingRetired(), 0u);
}

TEST(EpochLifetimeTest, QuarantineOverflowEvictsOldestThroughVerify) {
  const lt::Stats before = lt::GetStats();
  bool destroyed[4] = {};
  {
    EpochReclaimer ebr;
    ebr.EnableLifetimePoison(2);
    for (bool& flag : destroyed) ebr.RetireObject(NewTracked(&flag));
    for (const bool flag : destroyed)
      EXPECT_TRUE(flag) << "destruction never waits on the quarantine";
    EXPECT_EQ(ebr.QuarantineDepth(), 2u);
    const lt::Stats mid = lt::GetStats();
    EXPECT_EQ(mid.quarantined, before.quarantined + 4);
    EXPECT_EQ(mid.verified, before.verified + 2)
        << "two overflow evictions, each through the poison check";
    EXPECT_EQ(mid.violations, before.violations);
  }
  // Reclaimer teardown drains the rest through the same verify path.
  const lt::Stats after = lt::GetStats();
  EXPECT_EQ(after.verified, before.verified + 4);
  EXPECT_EQ(after.violations, before.violations);
}

TEST(EpochLifetimeTest, ZeroCapacityQuarantineStillRunsTheCanaryCheck) {
  const lt::Stats before = lt::GetStats();
  bool destroyed = false;
  EpochReclaimer ebr;
  ebr.EnableLifetimePoison(0);
  ebr.RetireObject(NewTracked(&destroyed));
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(ebr.QuarantineDepth(), 0u) << "capacity 0 never parks storage";
  const lt::Stats after = lt::GetStats();
  EXPECT_EQ(after.quarantined, before.quarantined + 1);
  EXPECT_EQ(after.verified, before.verified + 1)
      << "immediate free still goes through the verify step";
}

TEST(EpochLifetimeTest, DoubleRetireWhilePendingIsReportedAndDropped) {
  CapturingHandler capture;
  bool destroyed = false;
  EpochReclaimer ebr;
  TrackedObj* obj = NewTracked(&destroyed);
  auto guard = std::make_unique<EpochReclaimer::ReadGuard>(ebr);
  ebr.RetireObject(obj);
  EXPECT_TRUE(LastReport().empty());
  ebr.RetireObject(obj);  // the caller's bookkeeping bug
  EXPECT_NE(LastReport().find("double retire"), std::string::npos);
  EXPECT_NE(LastReport().find("lifetime_test.cpp"), std::string::npos);
  guard.reset();
  ebr.TryReclaim();
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(ebr.TotalReclaimed(), 1u)
      << "the duplicate must be dropped, not double-freed";
}

TEST(EpochLifetimeTest, DoubleRetireOfQuarantinedStorageIsDetected) {
  CapturingHandler capture;
  EpochReclaimer ebr;
  ebr.EnableLifetimePoison(4);
  TrackedObj* obj = NewTracked();
  ebr.RetireObject(obj);  // no readers: destroyed + quarantined right away
  EXPECT_EQ(ebr.QuarantineDepth(), 1u);
  ASSERT_TRUE(LastReport().empty());
  ebr.RetireObject(obj);  // stale pointer retired again
  EXPECT_NE(LastReport().find("double retire"), std::string::npos);
}

TEST(EpochLifetimeTest, StaleDereferenceAfterReclaimReportsProvenance) {
  CapturingHandler capture;
  EpochReclaimer ebr;
  ebr.EnableLifetimePoison(4);
  TrackedObj* stale = NewTracked();
  ebr.RetireObject(stale);
  ASSERT_EQ(ebr.QuarantineDepth(), 1u) << "storage must still be mapped";
  // What FIGDB_LIFETIME_CHECK does in the instrumented tree, spelled out
  // so the plain tree covers the same path:
  stale->LifetimeCanary()->Check();
  EXPECT_NE(LastReport().find("use-after-reclaim"), std::string::npos);
  EXPECT_NE(LastReport().find("lifetime_test.cpp"), std::string::npos)
      << "retire and dereference sites are both in this file";
}

TEST(EpochLifetimeTest, StaleWriteInQuarantineIsReportedAtEviction) {
  CapturingHandler capture;
  EpochReclaimer ebr;
  // Capacity 1 keeps the storage parked until a second retirement
  // overflows the FIFO and forces the eviction-time verify.
  ebr.EnableLifetimePoison(1);
  TrackedObj* stale = NewTracked();
  ebr.RetireObject(stale);
  ASSERT_EQ(ebr.QuarantineDepth(), 1u);
  stale->payload[0] = 0xBAD;  // stale write through the old pointer
  ebr.RetireObject(NewTracked());  // overflow: evicts + verifies `stale`
  EXPECT_NE(LastReport().find("reclaimed-memory corruption"),
            std::string::npos);
  EXPECT_NE(LastReport().find("lifetime_test.cpp"), std::string::npos)
      << "the report names the retire site of the corrupted object";
}

// ======================================================================
// End-to-end: the instrumented tree's abort contract
// ======================================================================

#ifdef FIGDB_LIFETIME_POISON

/// Builds a minimal ServingStore, leaks a snapshot pointer past its pin,
/// publishes until the snapshot is reclaimed (destroyed + poisoned into
/// the quarantine), then dereferences the stale pointer. Must abort via
/// the canary in StoreSnapshot::Engine().
void DriveUseAfterUnpin() {
  corpus::GeneratorConfig config;
  config.num_objects = 24;
  config.num_topics = 3;
  config.num_users = 12;
  config.visual_words = 16;
  config.seed = 99;
  const corpus::Corpus base =
      corpus::Generator(config).MakeRetrievalCorpus();
  const auto dir =
      std::filesystem::temp_directory_path() / "figdb_lifetime_death";
  std::filesystem::remove_all(dir);
  auto store = index::FigDbStore::Create(dir.string(), base);
  if (!store.ok()) return;  // death test then fails: no abort happened
  serve::ServingStore serving(std::move(*store), serve::ServeOptions{});

  const serve::StoreSnapshot* stale = nullptr;
  {
    auto handle = serving.Acquire();
    FIGDB_PIN_ESCAPE_OK("seeded use-after-unpin: this escape IS the test");
    stale = handle.get();
  }  // pin dies here; `stale` is now a contract violation waiting to fire
  // figdb-lint: allow(discarded-status): death-test driver — the abort below is the assertion
  (void)serving.Publish();  // retires + reclaims the snapshot under stale
  (void)serving.Stats();    // opportunistic sweep, belt and braces
  (void)stale->Engine();    // poisoned canary: aborts with both sites
}

TEST(LifetimePoisonTest, UseAfterUnpinAbortsWithBothSites) {
  // gtest death matchers are POSIX ERE: (.|\n)* is the portable
  // "anything, across lines". The report must carry the retire site
  // (serving_store.cpp's RetireObject call) and the dereference site
  // (the FIGDB_LIFETIME_CHECK in snapshot.hpp's Engine()).
  EXPECT_DEATH(DriveUseAfterUnpin(),
               "use-after-reclaim(.|\n)*serving_store.cpp(.|\n)*"
               "dereferenced at(.|\n)*snapshot.hpp");
}

#endif  // FIGDB_LIFETIME_POISON

}  // namespace
}  // namespace figdb::util
