#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "corpus/generator.hpp"
#include "index/clique_key.hpp"
#include "index/inverted_index.hpp"
#include "index/retrieval_engine.hpp"
#include "index/threshold_algorithm.hpp"
#include "util/rng.hpp"

namespace figdb::index {
namespace {

using corpus::FeatureType;
using corpus::MakeFeatureKey;

// -------------------------------------------------------------- CliqueKey

TEST(CliqueKeyTest, DeterministicAndDistinct) {
  const std::vector<corpus::FeatureKey> a = {
      MakeFeatureKey(FeatureType::kText, 1),
      MakeFeatureKey(FeatureType::kText, 2)};
  const std::vector<corpus::FeatureKey> b = {
      MakeFeatureKey(FeatureType::kText, 1),
      MakeFeatureKey(FeatureType::kText, 3)};
  EXPECT_EQ(MakeCliqueKey(a), MakeCliqueKey(a));
  EXPECT_NE(MakeCliqueKey(a), MakeCliqueKey(b));
}

TEST(CliqueKeyTest, SubsetsHaveDistinctKeys) {
  const std::vector<corpus::FeatureKey> a = {
      MakeFeatureKey(FeatureType::kText, 1)};
  const std::vector<corpus::FeatureKey> ab = {
      MakeFeatureKey(FeatureType::kText, 1),
      MakeFeatureKey(FeatureType::kText, 2)};
  EXPECT_NE(MakeCliqueKey(a), MakeCliqueKey(ab));
}

TEST(CliqueKeyTest, NoCollisionsOnRandomSets) {
  util::Rng rng(31337);
  std::set<CliqueKey> keys;
  std::set<std::vector<corpus::FeatureKey>> sets;
  for (int i = 0; i < 20000; ++i) {
    std::vector<corpus::FeatureKey> f;
    const std::size_t n = 1 + rng.UniformInt(3);
    while (f.size() < n) {
      const auto k = MakeFeatureKey(FeatureType::kText,
                                    std::uint32_t(rng.UniformInt(5000)));
      if (std::find(f.begin(), f.end(), k) == f.end()) f.push_back(k);
    }
    std::sort(f.begin(), f.end());
    if (sets.insert(f).second) keys.insert(MakeCliqueKey(f));
  }
  EXPECT_EQ(keys.size(), sets.size());
}

// ------------------------------------------------------ ThresholdAlgorithm

ScoredList MakeList(std::initializer_list<core::SearchResult> entries) {
  ScoredList l;
  l.entries = entries;
  return l;
}

TEST(ThresholdMergeTest, SimpleAggregation) {
  std::vector<ScoredList> lists;
  lists.push_back(MakeList({{1, 1.0}, {2, 0.5}}));
  lists.push_back(MakeList({{2, 0.9}, {3, 0.2}}));
  const auto r = ThresholdMerge(lists, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].object, 2u);  // 1.4
  EXPECT_DOUBLE_EQ(r[0].score, 1.4);
  EXPECT_EQ(r[1].object, 1u);  // 1.0
}

TEST(ThresholdMergeTest, EmptyLists) {
  EXPECT_TRUE(ThresholdMerge({}, 5).empty());
  std::vector<ScoredList> lists;
  lists.push_back(MakeList({}));
  EXPECT_TRUE(ThresholdMerge(lists, 5).empty());
}

TEST(ThresholdMergeTest, MatchesExhaustiveOnRandomInputs) {
  util::Rng rng(4242);
  for (int round = 0; round < 40; ++round) {
    std::vector<ScoredList> lists(1 + rng.UniformInt(8));
    for (auto& list : lists) {
      const std::size_t n = rng.UniformInt(60);
      for (std::size_t i = 0; i < n; ++i) {
        list.entries.push_back({corpus::ObjectId(rng.UniformInt(40)),
                                rng.UniformReal(0.0, 2.0)});
      }
      // An object may legitimately appear once per list only; dedup by
      // keeping the max (the merge sums per list internally either way,
      // but Algorithm 1 produces unique candidates per clique).
      std::sort(list.entries.begin(), list.entries.end(),
                [](const core::SearchResult& a, const core::SearchResult& b) {
                  return a.object < b.object;
                });
      list.entries.erase(
          std::unique(list.entries.begin(), list.entries.end(),
                      [](const core::SearchResult& a,
                         const core::SearchResult& b) {
                        return a.object == b.object;
                      }),
          list.entries.end());
    }
    const std::size_t k = 1 + rng.UniformInt(10);
    const auto ta = ThresholdMerge(lists, k);
    const auto ex = ExhaustiveMerge(lists, k);
    ASSERT_EQ(ta.size(), ex.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].object, ex[i].object) << "round " << round;
      EXPECT_NEAR(ta[i].score, ex[i].score, 1e-9);
    }
  }
}

TEST(ThresholdMergeTest, EarlyTerminationStillExact) {
  // One dominant list: TA should stop early yet return the right answer.
  std::vector<ScoredList> lists;
  ScoredList big;
  for (int i = 0; i < 1000; ++i)
    big.entries.push_back({corpus::ObjectId(i), 1000.0 - i});
  lists.push_back(std::move(big));
  lists.push_back(MakeList({{999, 0.5}}));
  const auto r = ThresholdMerge(lists, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].object, 0u);
  EXPECT_EQ(r[1].object, 1u);
  EXPECT_EQ(r[2].object, 2u);
}

// ----------------------------------------------------- Index + Engine

class EngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 500;
    config.num_topics = 8;
    config.num_users = 150;
    config.visual_words = 64;
    config.seed = 4040;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
    engine_ = new FigRetrievalEngine(*corpus_, EngineOptions{});
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete corpus_;
    engine_ = nullptr;
    corpus_ = nullptr;
  }
  static corpus::Corpus* corpus_;
  static FigRetrievalEngine* engine_;
};

corpus::Corpus* EngineFixture::corpus_ = nullptr;
FigRetrievalEngine* EngineFixture::engine_ = nullptr;

TEST_F(EngineFixture, IndexPostingsAreComplete) {
  // Every object that contains a clique's features appears in its postings
  // list; verify by recomputing for a few query cliques.
  const auto qm = engine_->Scorer().Compile(corpus_->Object(3));
  ASSERT_FALSE(qm.cliques.empty());
  std::size_t checked = 0;
  for (const core::Clique& c : qm.cliques) {
    if (checked++ > 20) break;
    const auto& postings = engine_->Index().Lookup(c.features);
    // The query object itself contains all its cliques' features, so it
    // must be present (it is object 3 of the indexed corpus).
    EXPECT_TRUE(std::binary_search(postings.begin(), postings.end(),
                                   corpus::ObjectId(3)))
        << "missing source object in postings";
    for (corpus::ObjectId id : postings) {
      for (corpus::FeatureKey f : c.features)
        EXPECT_TRUE(corpus_->Object(id).Contains(f));
    }
  }
}

TEST_F(EngineFixture, SearchMatchesSequentialReference) {
  for (corpus::ObjectId q : {0u, 17u, 123u, 499u}) {
    const auto fast = engine_->Search(corpus_->Object(q), 10);
    const auto slow = engine_->SearchSequential(corpus_->Object(q), 10);
    ASSERT_EQ(fast.size(), slow.size()) << "query " << q;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].object, slow[i].object) << "query " << q;
      EXPECT_NEAR(fast[i].score, slow[i].score, 1e-9);
    }
  }
}

TEST_F(EngineFixture, ExhaustiveMergeModeAgreesWithTa) {
  EngineOptions options;
  options.merge = EngineOptions::MergeMode::kExhaustive;
  FigRetrievalEngine exhaustive(*corpus_, options);
  for (corpus::ObjectId q : {5u, 77u}) {
    const auto a = engine_->Search(corpus_->Object(q), 8);
    const auto b = exhaustive.Search(corpus_->Object(q), 8);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i].object, b[i].object);
  }
}

TEST_F(EngineFixture, SelfIsTopResult) {
  for (corpus::ObjectId q : {1u, 50u, 321u}) {
    const auto results = engine_->Search(corpus_->Object(q), 3);
    ASSERT_FALSE(results.empty());
    EXPECT_EQ(results[0].object, q);
  }
}

TEST_F(EngineFixture, ResultsSortedByScore) {
  const auto results = engine_->Search(corpus_->Object(9), 20);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].score, results[i].score);
}

TEST_F(EngineFixture, RankRestrictsToCandidates) {
  const std::vector<corpus::ObjectId> candidates = {10, 20, 30, 40};
  const auto results = engine_->Rank(corpus_->Object(10), candidates, 4);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), r.object) !=
                candidates.end());
  }
  EXPECT_EQ(results[0].object, 10u);  // self scores highest
}

TEST_F(EngineFixture, SetLambdaChangesScores) {
  EngineOptions options;
  FigRetrievalEngine engine(*corpus_, options);
  const auto before = engine.Search(corpus_->Object(2), 5);
  engine.SetLambda({1.0, 0.0, 0.0});  // unigram-only model
  const auto after = engine.Search(corpus_->Object(2), 5);
  ASSERT_FALSE(before.empty());
  ASSERT_FALSE(after.empty());
  // Scores must differ (higher-order cliques no longer contribute).
  EXPECT_NE(before[0].score, after[0].score);
}

TEST_F(EngineFixture, TypeMaskEngineUsesOnlyThatModality) {
  EngineOptions options;
  options.type_mask = core::kTextMask;
  FigRetrievalEngine text_engine(*corpus_, options);
  const auto qm = text_engine.Scorer().Compile(corpus_->Object(4),
                                               core::kTextMask);
  for (const core::Clique& c : qm.cliques)
    for (corpus::FeatureKey f : c.features)
      EXPECT_EQ(corpus::TypeOf(f), FeatureType::kText);
  const auto results = text_engine.Search(corpus_->Object(4), 5);
  EXPECT_FALSE(results.empty());
}

TEST_F(EngineFixture, IndexStatisticsPopulated) {
  EXPECT_GT(engine_->Index().DistinctCliques(), corpus_->Size());
  EXPECT_GT(engine_->Index().TotalPostings(),
            engine_->Index().DistinctCliques());
}

}  // namespace
}  // namespace figdb::index
