#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/clique.hpp"
#include "core/fig.hpp"
#include "core/lambda_trainer.hpp"
#include "core/potential.hpp"
#include "core/similarity.hpp"
#include "corpus/corpus.hpp"
#include "util/rng.hpp"

namespace figdb::core {
namespace {

using corpus::FeatureKey;
using corpus::FeatureType;
using corpus::MakeFeatureKey;
using corpus::MediaObject;

FeatureKey Tag(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kText, id);
}
FeatureKey Vw(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kVisual, id);
}
FeatureKey User(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kUser, id);
}

/// Fixture with a tiny corpus where the correlation structure is fully
/// known: tags 0-1 siblings (WUP 2/3 >= threshold), tag 2 unrelated;
/// visual words 0-1 near-identical; users 0-1 share a group.
class CoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<corpus::Corpus>();
    corpus::Context& ctx = corpus_->MutableContext();
    const auto root = ctx.taxonomy.AddRoot();
    const auto animal = ctx.taxonomy.AddChild(root, "animal");
    const auto thing = ctx.taxonomy.AddChild(root, "thing");
    ctx.taxonomy.AttachTerm(0, ctx.taxonomy.AddChild(animal, "t0"));
    ctx.taxonomy.AttachTerm(1, ctx.taxonomy.AddChild(animal, "t1"));
    ctx.taxonomy.AttachTerm(
        2, ctx.taxonomy.AddChild(ctx.taxonomy.AddChild(thing, "sub"), "t2"));
    vision::Descriptor d0{}, d1{}, d2{};
    d1[0] = 0.05f;
    d2.fill(0.9f);
    ctx.visual_vocabulary =
        vision::VisualVocabulary::FromCentroids({d0, d1, d2});
    for (int i = 0; i < 3; ++i) ctx.user_graph.AddUser();
    const auto g = ctx.user_graph.AddGroup();
    ctx.user_graph.AddMembership(0, g);
    ctx.user_graph.AddMembership(1, g);

    // Objects engineered so feature statistics are non-degenerate.
    AddObject({{Tag(0), 1}, {Tag(1), 1}, {Vw(0), 2}, {User(0), 1}}, 0, 0);
    AddObject({{Tag(0), 1}, {Vw(1), 1}, {User(1), 1}}, 0, 1);
    AddObject({{Tag(2), 2}, {Vw(2), 1}, {User(2), 1}}, 1, 2);
    AddObject({{Tag(1), 1}, {Tag(2), 1}, {Vw(0), 1}}, 1, 3);
    AddObject({{Tag(0), 2}, {Tag(1), 1}, {User(0), 1}, {User(1), 1}}, 0, 4);

    matrix_ = std::make_shared<stats::FeatureMatrix>(
        stats::FeatureMatrix::Build(*corpus_));
    correlations_ = std::make_shared<stats::CorrelationModel>(
        corpus_->SharedContext(), matrix_);
    cors_ = std::make_shared<stats::CorSCalculator>(matrix_);
  }

  void AddObject(std::vector<corpus::FeatureOccurrence> features,
                 std::uint32_t topic, std::uint16_t month) {
    MediaObject obj;
    obj.features = std::move(features);
    obj.topic = topic;
    obj.month = month;
    obj.Normalize();
    corpus_->Add(std::move(obj));
  }

  std::shared_ptr<PotentialEvaluator> MakeEvaluator(MrfOptions options = {}) {
    return std::make_shared<PotentialEvaluator>(correlations_, cors_,
                                                options);
  }

  std::unique_ptr<corpus::Corpus> corpus_;
  std::shared_ptr<stats::FeatureMatrix> matrix_;
  std::shared_ptr<stats::CorrelationModel> correlations_;
  std::shared_ptr<stats::CorSCalculator> cors_;
};

// ------------------------------------------------------------------- FIG

TEST_F(CoreFixture, FigHasOneNodePerFeature) {
  const auto fig = FeatureInteractionGraph::Build(corpus_->Object(0),
                                                  *correlations_);
  EXPECT_EQ(fig.NodeCount(), 4u);
}

TEST_F(CoreFixture, FigEdgesFollowCorrelationRules) {
  const auto fig = FeatureInteractionGraph::Build(corpus_->Object(0),
                                                  *correlations_);
  // Node order = sorted features: Tag0, Tag1, Vw0, User0.
  ASSERT_EQ(fig.NodeCount(), 4u);
  EXPECT_TRUE(fig.HasEdge(0, 1));  // sibling tags, WUP 2/3
  EXPECT_FALSE(fig.HasEdge(0, 0));
}

TEST_F(CoreFixture, FigTypeMaskRestrictsNodes) {
  const auto fig = FeatureInteractionGraph::Build(
      corpus_->Object(0), *correlations_, kTextMask);
  EXPECT_EQ(fig.NodeCount(), 2u);
  const auto fig2 = FeatureInteractionGraph::Build(
      corpus_->Object(0), *correlations_, kTextMask | kUserMask);
  EXPECT_EQ(fig2.NodeCount(), 3u);
}

TEST_F(CoreFixture, FigEdgeCountSymmetric) {
  const auto fig = FeatureInteractionGraph::Build(corpus_->Object(4),
                                                  *correlations_);
  std::size_t manual = 0;
  for (std::size_t i = 0; i < fig.NodeCount(); ++i)
    for (std::size_t j = i + 1; j < fig.NodeCount(); ++j)
      if (fig.HasEdge(i, j)) ++manual;
  EXPECT_EQ(fig.EdgeCount(), manual);
}

// --------------------------------------------------------------- Cliques

/// Brute-force reference: all subsets of nodes that are pairwise adjacent.
std::set<std::vector<FeatureKey>> BruteForceCliques(
    const FeatureInteractionGraph& fig, std::size_t max_features) {
  std::set<std::vector<FeatureKey>> out;
  const std::size_t n = fig.NodeCount();
  for (std::size_t mask = 1; mask < (std::size_t(1) << n); ++mask) {
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < n; ++i)
      if (mask & (std::size_t(1) << i)) members.push_back(i);
    if (members.size() > max_features) continue;
    bool complete = true;
    for (std::size_t a = 0; a < members.size() && complete; ++a)
      for (std::size_t b = a + 1; b < members.size(); ++b)
        if (!fig.HasEdge(members[a], members[b])) {
          complete = false;
          break;
        }
    if (!complete) continue;
    std::vector<FeatureKey> features;
    for (std::size_t i : members) features.push_back(fig.Node(i).feature);
    std::sort(features.begin(), features.end());
    out.insert(features);
  }
  return out;
}

TEST_F(CoreFixture, CliqueEnumerationMatchesBruteForce) {
  for (corpus::ObjectId id = 0; id < corpus_->Size(); ++id) {
    const auto fig =
        FeatureInteractionGraph::Build(corpus_->Object(id), *correlations_);
    const auto cliques = EnumerateCliques(fig, {.max_features = 3});
    std::set<std::vector<FeatureKey>> got;
    for (const Clique& c : cliques) got.insert(c.features);
    EXPECT_EQ(got.size(), cliques.size()) << "duplicates for object " << id;
    EXPECT_EQ(got, BruteForceCliques(fig, 3)) << "object " << id;
  }
}

TEST(CliqueEnumerationTest, RandomGraphsMatchBruteForce) {
  util::Rng rng(2024);
  for (int round = 0; round < 30; ++round) {
    FeatureInteractionGraph fig;
    const std::size_t n = 2 + rng.UniformInt(9);
    for (std::size_t i = 0; i < n; ++i)
      fig.AddNode({Tag(std::uint32_t(i)), 1, 0});
    fig.FinalizeNodes();
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        if (rng.Bernoulli(0.4)) fig.SetEdge(i, j);
    const std::size_t max_features = 1 + rng.UniformInt(4);
    const auto cliques = EnumerateCliques(fig, {.max_features = max_features});
    std::set<std::vector<FeatureKey>> got;
    for (const Clique& c : cliques) got.insert(c.features);
    EXPECT_EQ(got.size(), cliques.size());
    EXPECT_EQ(got, BruteForceCliques(fig, max_features));
  }
}

TEST(CliqueEnumerationTest, MaxCliquesCapIsRespected) {
  FeatureInteractionGraph fig;
  for (std::uint32_t i = 0; i < 12; ++i) fig.AddNode({Tag(i), 1, 0});
  fig.FinalizeNodes();
  for (std::size_t i = 0; i < 12; ++i)
    for (std::size_t j = i + 1; j < 12; ++j) fig.SetEdge(i, j);
  const auto cliques =
      EnumerateCliques(fig, {.max_features = 4, .max_cliques = 50});
  EXPECT_LE(cliques.size(), 50u);
}

TEST(CliqueEnumerationTest, MinFeaturesSkipsSingletons) {
  FeatureInteractionGraph fig;
  for (std::uint32_t i = 0; i < 3; ++i) fig.AddNode({Tag(i), 1, 0});
  fig.FinalizeNodes();
  fig.SetEdge(0, 1);
  const auto cliques = EnumerateCliques(
      fig, {.max_features = 3, .max_cliques = 100, .min_features = 2});
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].features.size(), 2u);
}

TEST_F(CoreFixture, CliqueMonthIsMaxOfMembers) {
  FeatureInteractionGraph fig;
  fig.AddNode({Tag(0), 1, 2});
  fig.AddNode({Tag(1), 1, 5});
  fig.FinalizeNodes();
  fig.SetEdge(0, 1);
  const auto cliques = EnumerateCliques(fig, {.max_features = 2});
  for (const Clique& c : cliques) {
    if (c.features.size() == 2) EXPECT_EQ(c.month, 5);
  }
}

// ------------------------------------------------------------- Potential

TEST_F(CoreFixture, JointProbabilityPureFrequencyWhenAlphaOne) {
  auto eval = MakeEvaluator({.alpha = 1.0});
  const MediaObject& obj = corpus_->Object(0);  // |O| = 1+1+2+1 = 5
  EXPECT_DOUBLE_EQ(eval->JointProbability({Tag(0)}, obj), 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(eval->JointProbability({Vw(0)}, obj), 2.0 / 5.0);
  // min(freq) rule for multi-feature cliques.
  EXPECT_DOUBLE_EQ(eval->JointProbability({Tag(0), Vw(0)}, obj), 1.0 / 5.0);
  // Absent feature zeroes the frequency part.
  EXPECT_DOUBLE_EQ(eval->JointProbability({Tag(2)}, obj), 0.0);
}

TEST_F(CoreFixture, SmoothingAddsCorrelationMass) {
  auto pure = MakeEvaluator({.alpha = 1.0});
  auto smooth = MakeEvaluator({.alpha = 0.5});
  const MediaObject& obj = corpus_->Object(0);
  // Tag(1) is correlated with Tag(0) which is in the object, so smoothing
  // gives a clique over Tag(1) extra mass relative to the pure-frequency
  // model (scaled by alpha).
  const double p_pure = pure->JointProbability({Tag(1)}, obj);
  const double p_smooth = smooth->JointProbability({Tag(1)}, obj);
  EXPECT_GT(p_smooth, 0.5 * p_pure);
}

TEST_F(CoreFixture, JointProbabilityWithinUnitRange) {
  auto eval = MakeEvaluator({.alpha = 0.7});
  for (corpus::ObjectId id = 0; id < corpus_->Size(); ++id) {
    const MediaObject& obj = corpus_->Object(id);
    for (FeatureKey f : {Tag(0), Tag(1), Tag(2), Vw(0), User(0)}) {
      const double p = eval->JointProbability({f}, obj);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
    }
  }
}

TEST_F(CoreFixture, PhiZeroForNonContainedClique) {
  auto eval = MakeEvaluator();
  Clique c;
  c.features = {Tag(2)};
  EXPECT_DOUBLE_EQ(eval->Phi(c, corpus_->Object(0)), 0.0);
}

TEST_F(CoreFixture, PhiCountsPartialCliquesWhenEnabled) {
  auto eval = MakeEvaluator({.alpha = 0.5, .count_partial_cliques = true});
  Clique c;
  c.features = {Tag(1)};  // absent from object 1 but correlated with Tag(0)
  EXPECT_GT(eval->Phi(c, corpus_->Object(1)), 0.0);
}

TEST_F(CoreFixture, PhiScalesWithLambda) {
  auto small = MakeEvaluator({.lambda = {0.5}});
  auto large = MakeEvaluator({.lambda = {2.0}});
  Clique c;
  c.features = {Tag(0)};
  const double a = small->Phi(c, corpus_->Object(0));
  const double b = large->Phi(c, corpus_->Object(0));
  EXPECT_NEAR(b, 4.0 * a, 1e-12);
}

TEST_F(CoreFixture, LambdaBucketsBySize) {
  auto eval = MakeEvaluator({.lambda = {1.0, 0.5, 0.25}});
  EXPECT_DOUBLE_EQ(eval->LambdaFor(1), 1.0);
  EXPECT_DOUBLE_EQ(eval->LambdaFor(2), 0.5);
  EXPECT_DOUBLE_EQ(eval->LambdaFor(3), 0.25);
  EXPECT_DOUBLE_EQ(eval->LambdaFor(7), 0.25);  // clamps to last
  EXPECT_DOUBLE_EQ(eval->LambdaFor(0), 0.0);
}

TEST_F(CoreFixture, CorsWeightTogglable) {
  auto with = MakeEvaluator({.use_cors_weight = true});
  auto without = MakeEvaluator({.use_cors_weight = false});
  Clique c;
  c.features = {Tag(0), Tag(1)};
  EXPECT_DOUBLE_EQ(without->CliqueWeight(c), 1.0);
  EXPECT_EQ(with->CliqueWeight(c), cors_->Compute(c.features));
}

// ---------------------------------------------------------------- Scorer

TEST_F(CoreFixture, ScoreOfSelfIsHighAmongCorpus) {
  auto eval = MakeEvaluator();
  FigScorer scorer(eval);
  const QueryModel qm = scorer.Compile(corpus_->Object(0));
  const double self = scorer.Score(qm, corpus_->Object(0));
  for (corpus::ObjectId id = 1; id < corpus_->Size(); ++id)
    EXPECT_GE(self, scorer.Score(qm, corpus_->Object(id)));
}

TEST_F(CoreFixture, ScoreIsNonNegative) {
  auto eval = MakeEvaluator();
  FigScorer scorer(eval);
  for (corpus::ObjectId q = 0; q < corpus_->Size(); ++q) {
    const QueryModel qm = scorer.Compile(corpus_->Object(q));
    for (corpus::ObjectId o = 0; o < corpus_->Size(); ++o)
      EXPECT_GE(scorer.Score(qm, corpus_->Object(o)), 0.0);
  }
}

TEST_F(CoreFixture, SequentialSearchOrdersByScore) {
  auto eval = MakeEvaluator();
  FigScorer scorer(eval);
  const QueryModel qm = scorer.Compile(corpus_->Object(0));
  const auto results = scorer.SequentialSearch(*corpus_, qm, 10);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].score, results[i].score);
}

TEST_F(CoreFixture, TypeMaskChangesQueryModel) {
  auto eval = MakeEvaluator();
  FigScorer scorer(eval);
  const QueryModel all = scorer.Compile(corpus_->Object(0));
  const QueryModel text = scorer.Compile(corpus_->Object(0), kTextMask);
  EXPECT_GT(all.cliques.size(), text.cliques.size());
  for (const Clique& c : text.cliques)
    for (FeatureKey f : c.features)
      EXPECT_EQ(corpus::TypeOf(f), FeatureType::kText);
}

// --------------------------------------------------------- LambdaTrainer

TEST(LambdaTrainerTest, FindsOptimumOfSimpleObjective) {
  LambdaTrainerOptions options;
  options.grid = {0.0, 0.25, 0.5, 0.75, 1.0};
  options.sweeps = 3;
  const LambdaTrainer trainer(options);
  // Objective maximised at lambda = (1, 0.5, 0.75).
  const auto best = trainer.Train({1.0, 0.0, 0.0}, [](const auto& l) {
    return -(l[1] - 0.5) * (l[1] - 0.5) - (l[2] - 0.75) * (l[2] - 0.75);
  });
  ASSERT_EQ(best.size(), 3u);
  EXPECT_DOUBLE_EQ(best[0], 1.0);  // pinned
  EXPECT_DOUBLE_EQ(best[1], 0.5);
  EXPECT_DOUBLE_EQ(best[2], 0.75);
}

TEST(LambdaTrainerTest, NeverReturnsWorseThanInitial) {
  util::Rng rng(5);
  const LambdaTrainer trainer;
  auto noisy = [&rng](const std::vector<double>& l) {
    return l[1] * (1.0 - l[1]) + rng.UniformReal() * 0.001;
  };
  const std::vector<double> initial = {1.0, 0.4};
  // Re-evaluate both to compare on the same (stochastic) objective scale.
  const auto best = trainer.Train(initial, noisy);
  EXPECT_GE(best[1] * (1.0 - best[1]), initial[1] * (1.0 - initial[1]) - 0.01);
}

}  // namespace
}  // namespace figdb::core
