#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>

#include "util/deadlock.hpp"
#include "util/thread_annotations.hpp"

/// \file deadlock_test.cpp
/// The runtime lock-order validator (util/deadlock.hpp). Two layers:
///
/// DeadlockRegistryTest drives the registry DIRECTLY with fake lock
/// addresses, in every build — the registry compiles unconditionally;
/// only the wrapper hooks are gated on FIGDB_DEADLOCK_DETECT. Note the
/// recursion case is deliberately tested this way and never through real
/// wrappers: OnAcquire reports a recursive acquisition and returns, but a
/// real re-locked Mutex would then block forever on the actual lock.
///
/// DeadlockDetectTest (compiled under FIGDB_DEADLOCK_DETECT only — the
/// `deadlock` tree in ci/check.sh) exercises the instrumented
/// Mutex/MutexLock wrappers end to end: a seeded ABBA inversion must be
/// reported with both lock names and both acquisition sites, and the
/// default handler must abort the process.

namespace figdb::util {
namespace {

namespace dl = deadlock;

std::string& LastReport() {
  static std::string report;
  return report;
}

void CaptureReport(const std::string& report) { LastReport() = report; }

/// Installs the capturing handler for one test and restores the previous
/// handler (plus a pristine edge set) on the way out.
class CapturingHandler {
 public:
  CapturingHandler() : prev_(dl::SetViolationHandler(&CaptureReport)) {
    LastReport().clear();
  }
  ~CapturingHandler() {
    dl::SetViolationHandler(prev_);
    dl::ResetForTest();
  }

 private:
  dl::ViolationHandler prev_;
};

/// A fake lock: the registry only ever sees addresses, so any distinct
/// object works as a lock identity without risking a real wedge.
struct FakeLock {
  explicit FakeLock(const char* name) { dl::OnCreate(this, name); }
  ~FakeLock() { dl::OnDestroy(this); }
  void Acquire() { dl::OnAcquire(this, dl::Kind::kExclusive, loc()); }
  void Release() { dl::OnRelease(this); }
  static std::source_location loc(
      std::source_location here = std::source_location::current()) {
    return here;
  }
};

TEST(DeadlockRegistryTest, FirstObservedEdgeIsRecordedOnce) {
  CapturingHandler capture;
  const auto before = dl::GetStats();
  FakeLock a("test.registry.edge_a");
  FakeLock b("test.registry.edge_b");
  for (int round = 0; round < 3; ++round) {
    a.Acquire();
    b.Acquire();
    b.Release();
    a.Release();
  }
  const auto after = dl::GetStats();
  EXPECT_EQ(after.edges, before.edges + 1)
      << "re-observing a known edge must not duplicate it";
  EXPECT_EQ(after.violations, before.violations);
  EXPECT_TRUE(LastReport().empty());
}

TEST(DeadlockRegistryTest, AbbaInversionReportsNamesAndSites) {
  CapturingHandler capture;
  FakeLock a("test.registry.abba_a");
  FakeLock b("test.registry.abba_b");
  a.Acquire();
  b.Acquire();  // establishes a -> b
  b.Release();
  a.Release();

  b.Acquire();
  a.Acquire();  // closes the cycle: must report, handler captures
  EXPECT_NE(LastReport().find("lock-order cycle"), std::string::npos);
  EXPECT_NE(LastReport().find("test.registry.abba_a"), std::string::npos);
  EXPECT_NE(LastReport().find("test.registry.abba_b"), std::string::npos);
  // Acquisition sites: every OnAcquire in this test funnels through
  // FakeLock::Acquire, so its line is the recorded site in this file.
  EXPECT_NE(LastReport().find("deadlock_test.cpp"), std::string::npos);
  a.Release();
  b.Release();
}

TEST(DeadlockRegistryTest, HandlerReturnSuppressesTheOffendingEdge) {
  CapturingHandler capture;
  FakeLock a("test.registry.suppress_a");
  FakeLock b("test.registry.suppress_b");
  a.Acquire();
  b.Acquire();
  b.Release();
  a.Release();
  const auto before = dl::GetStats();
  for (int round = 0; round < 2; ++round) {
    b.Acquire();
    a.Acquire();
    a.Release();
    b.Release();
  }
  const auto after = dl::GetStats();
  // Both rounds violate: the first report did NOT insert b -> a (a
  // capture-and-continue handler leaves the graph as acyclic as it found
  // it), so the second round trips over the same established order again.
  EXPECT_EQ(after.violations, before.violations + 2);
  EXPECT_EQ(after.edges, before.edges);
}

TEST(DeadlockRegistryTest, RecursiveAcquisitionIsReported) {
  CapturingHandler capture;
  FakeLock a("test.registry.recursive");
  a.Acquire();
  a.Acquire();  // figdb mutexes are non-recursive: report, not wedge
  EXPECT_NE(LastReport().find("recursive acquisition"), std::string::npos);
  EXPECT_NE(LastReport().find("test.registry.recursive"), std::string::npos);
  a.Release();
}

TEST(DeadlockRegistryTest, SameRoleInstancesShareOneGraphNode) {
  CapturingHandler capture;
  FakeLock first("test.registry.shared_role");
  FakeLock second("test.registry.shared_role");
  FakeLock other("test.registry.other");
  // Instance `first` orders before `other`...
  first.Acquire();
  other.Acquire();
  other.Release();
  first.Release();
  // ...and the INVERSION via instance `second` still closes the cycle,
  // because both instances are the same role node.
  other.Acquire();
  second.Acquire();
  EXPECT_NE(LastReport().find("lock-order cycle"), std::string::npos);
  EXPECT_NE(LastReport().find("test.registry.shared_role"), std::string::npos);
  second.Release();
  other.Release();
}

TEST(DeadlockRegistryTest, SameRoleSiblingNestingIsASelfCycle) {
  CapturingHandler capture;
  FakeLock first("test.registry.sibling");
  FakeLock second("test.registry.sibling");
  first.Acquire();
  second.Acquire();  // two live instances of one role: order undefined
  EXPECT_NE(LastReport().find("lock-order cycle"), std::string::npos);
  second.Release();
  first.Release();
}

TEST(DeadlockRegistryTest, DestroyingLastInstanceDropsNodeAndEdges) {
  CapturingHandler capture;
  const auto before = dl::GetStats();
  {
    FakeLock a("test.registry.transient_a");
    FakeLock b("test.registry.transient_b");
    a.Acquire();
    b.Acquire();
    b.Release();
    a.Release();
    const auto mid = dl::GetStats();
    EXPECT_EQ(mid.nodes, before.nodes + 2);
    EXPECT_EQ(mid.edges, before.edges + 1);
  }
  const auto after = dl::GetStats();
  EXPECT_EQ(after.nodes, before.nodes);
  EXPECT_EQ(after.edges, before.edges)
      << "edges must not outlive their endpoint nodes";
}

TEST(DeadlockRegistryTest, HeldCountTracksThisThreadOnly) {
  CapturingHandler capture;
  FakeLock a("test.registry.held_a");
  ASSERT_EQ(dl::HeldByThisThread(), 0u);
  a.Acquire();
  EXPECT_EQ(dl::HeldByThisThread(), 1u);
  std::thread other([] { EXPECT_EQ(dl::HeldByThisThread(), 0u); });
  other.join();
  a.Release();
  EXPECT_EQ(dl::HeldByThisThread(), 0u);
}

#ifdef FIGDB_DEADLOCK_DETECT

TEST(DeadlockDetectTest, WrapperAbbaIsReportedBeforeWedging) {
  CapturingHandler capture;
  Mutex a("test.wrapper.abba_a");
  Mutex b("test.wrapper.abba_b");
  // One thread establishes a -> b and fully drains...
  std::thread establish([&] {
    MutexLock hold_a(a);
    MutexLock hold_b(b);
  });
  establish.join();
  // ...so the inverted acquisition cannot actually block — the detector
  // must still report the ORDER violation, which is the whole point:
  // the report fires on the first run that exercises both orders, not
  // the unlucky run where two threads interleave into the wedge.
  {
    MutexLock hold_b(b);
    MutexLock hold_a(a);
    EXPECT_NE(LastReport().find("lock-order cycle"), std::string::npos);
    EXPECT_NE(LastReport().find("test.wrapper.abba_a"), std::string::npos);
    EXPECT_NE(LastReport().find("test.wrapper.abba_b"), std::string::npos);
    // Both acquisition sites land in this file via source_location.
    EXPECT_NE(LastReport().find("deadlock_test.cpp"), std::string::npos);
  }
}

TEST(DeadlockDetectTest, SharedAndExclusiveParticipateInOneOrder) {
  CapturingHandler capture;
  SharedMutex cache("test.wrapper.shared_cache");
  Mutex writer("test.wrapper.shared_writer");
  {
    SharedLock read(cache);
    MutexLock write(writer);  // cache -> writer
  }
  {
    MutexLock write(writer);
    SharedLock read(cache);  // writer -> cache: inversion
  }
  EXPECT_NE(LastReport().find("lock-order cycle"), std::string::npos)
      << "a shared holder deadlocks against a queued writer just the same";
}

TEST(DeadlockDetectTest, ScopedGuardsBalanceTheHeldStack) {
  CapturingHandler capture;
  Mutex a("test.wrapper.balance");
  ASSERT_EQ(dl::HeldByThisThread(), 0u);
  {
    MutexLock hold(a);
    EXPECT_EQ(dl::HeldByThisThread(), 1u);
  }
  EXPECT_EQ(dl::HeldByThisThread(), 0u);
}

TEST(DeadlockDetectTest, DefaultHandlerAbortsWithBothNames) {
  // The acceptance contract: without a test handler installed, a seeded
  // ABBA dies loudly with both lock names and sites on stderr.
  EXPECT_DEATH(
      {
        Mutex a("test.death.abba_a");
        Mutex b("test.death.abba_b");
        std::thread establish([&] {
          MutexLock hold_a(a);
          MutexLock hold_b(b);
        });
        establish.join();
        MutexLock hold_b(b);
        MutexLock hold_a(a);  // aborts here
      },
      // gtest death matchers are POSIX ERE: (.|\n)* is the portable
      // "anything, across lines" — [\s\S] would be a literal class here.
      "lock-order cycle(.|\n)*test.death.abba_a(.|\n)*test.death.abba_b");
}

#endif  // FIGDB_DEADLOCK_DETECT

}  // namespace
}  // namespace figdb::util
