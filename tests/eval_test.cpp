#include <gtest/gtest.h>

#include <sstream>

#include "corpus/generator.hpp"
#include "eval/harness.hpp"
#include "eval/metrics.hpp"
#include "eval/oracle.hpp"
#include "eval/report.hpp"

namespace figdb::eval {
namespace {

using core::SearchResult;
using corpus::ObjectId;

// ---------------------------------------------------------------- Metrics

TEST(MetricsTest, PrecisionAtNCountsHits) {
  const std::vector<SearchResult> results = {{1, 0.9}, {2, 0.8}, {3, 0.7},
                                             {4, 0.6}};
  auto relevant = [](ObjectId id) { return id % 2 == 1; };  // 1 and 3
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, 1, relevant), 1.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, 2, relevant), 0.5);
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, 4, relevant), 0.5);
}

TEST(MetricsTest, PrecisionShortListCountsMissingAsMiss) {
  const std::vector<SearchResult> results = {{1, 0.9}};
  auto relevant = [](ObjectId) { return true; };
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, 4, relevant), 0.25);
  EXPECT_DOUBLE_EQ(PrecisionAtN({}, 4, relevant), 0.0);
  EXPECT_DOUBLE_EQ(PrecisionAtN(results, 0, relevant), 0.0);
}

TEST(MetricsTest, AveragePrecisionPerfectRanking) {
  const std::vector<SearchResult> results = {{1, 3}, {2, 2}, {3, 1}};
  auto relevant = [](ObjectId id) { return id <= 2; };
  EXPECT_DOUBLE_EQ(AveragePrecision(results, 2, relevant), 1.0);
}

TEST(MetricsTest, AveragePrecisionPartial) {
  // Relevant at positions 2 and 4 of 4, two relevant total:
  // AP = (1/2 + 2/4) / 2 = 0.5.
  const std::vector<SearchResult> results = {{9, 4}, {1, 3}, {8, 2}, {2, 1}};
  auto relevant = [](ObjectId id) { return id <= 2; };
  EXPECT_DOUBLE_EQ(AveragePrecision(results, 2, relevant), 0.5);
  EXPECT_DOUBLE_EQ(AveragePrecision(results, 0, relevant), 0.0);
}

TEST(MetricsTest, Mean) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

// ----------------------------------------------------------------- Oracle

TEST(OracleTest, RelevanceIsTopicEquality) {
  corpus::Corpus c;
  corpus::MediaObject a, b, d;
  a.topic = 1;
  b.topic = 1;
  d.topic = 2;
  c.Add(a);
  c.Add(b);
  c.Add(d);
  const TopicOracle oracle(&c);
  EXPECT_TRUE(oracle.Relevant(c.Object(0), 1));
  EXPECT_FALSE(oracle.Relevant(c.Object(0), 2));
  const auto set = oracle.RelevantSet(c.Object(0));
  EXPECT_EQ(set.size(), 1u);  // excludes self
  EXPECT_TRUE(set.count(1));
}

TEST(OracleTest, InvalidTopicNeverRelevant) {
  corpus::Corpus c;
  corpus::MediaObject a, b;
  a.topic = corpus::MediaObject::kInvalidTopic;
  b.topic = corpus::MediaObject::kInvalidTopic;
  c.Add(a);
  c.Add(b);
  const TopicOracle oracle(&c);
  EXPECT_FALSE(oracle.Relevant(c.Object(0), 1));
}

TEST(OracleTest, SampleQueriesDeterministicAndDistinct) {
  corpus::Corpus c;
  for (int i = 0; i < 100; ++i) c.Add(corpus::MediaObject{});
  const auto a = SampleQueries(c, 20, 9);
  const auto b = SampleQueries(c, 20, 9);
  EXPECT_EQ(a, b);
  std::set<ObjectId> set(a.begin(), a.end());
  EXPECT_EQ(set.size(), 20u);
}

// ---------------------------------------------------------------- Harness

/// A retriever that always returns objects 0..k-1 in order.
class FixedRetriever : public core::Retriever {
 public:
  std::string Name() const override { return "fixed"; }
  std::vector<SearchResult> Search(const corpus::MediaObject&,
                                   std::size_t k) const override {
    std::vector<SearchResult> out;
    for (std::size_t i = 0; i < k; ++i)
      out.push_back({ObjectId(i), double(k - i)});
    return out;
  }
  std::vector<SearchResult> Rank(const corpus::MediaObject&,
                                 const std::vector<ObjectId>& candidates,
                                 std::size_t k) const override {
    std::vector<SearchResult> out;
    for (std::size_t i = 0; i < std::min(k, candidates.size()); ++i)
      out.push_back({candidates[i], double(k - i)});
    return out;
  }
};

TEST(HarnessTest, RetrievalEvalExcludesQuery) {
  corpus::Corpus c;
  for (int i = 0; i < 10; ++i) {
    corpus::MediaObject o;
    o.topic = std::uint32_t(i % 2);
    c.Add(o);
  }
  const TopicOracle oracle(&c);
  const FixedRetriever retriever;
  RetrievalEvalOptions options;
  options.cutoffs = {2};
  // Query object 0 (topic 0). FixedRetriever returns 0,1,2 for k=3; after
  // excluding the query we evaluate {1, 2}: object 2 relevant, 1 not.
  const auto result =
      EvaluateRetrieval(retriever, c, {0}, oracle, options);
  EXPECT_EQ(result.num_queries, 1u);
  EXPECT_DOUBLE_EQ(result.precision[0], 0.5);
}

TEST(HarnessTest, RecommendationEvalMatchesHeldOut) {
  corpus::RecommendationDataset ds;
  for (int i = 0; i < 8; ++i) ds.corpus.Add(corpus::MediaObject{});
  corpus::RecommendationUser user;
  user.profile = {0};
  user.held_out = {4, 6};
  ds.users.push_back(user);
  ds.candidates = {4, 5, 6, 7};
  RecommendationEvalOptions options;
  options.cutoffs = {2, 4};
  const auto result = EvaluateRecommendation(
      ds,
      [&](const corpus::RecommendationUser&, std::size_t k) {
        std::vector<SearchResult> out;
        for (std::size_t i = 0; i < std::min(k, ds.candidates.size()); ++i)
          out.push_back({ds.candidates[i], double(k - i)});
        return out;
      },
      options);
  EXPECT_EQ(result.num_users, 1u);
  EXPECT_DOUBLE_EQ(result.precision[0], 0.5);   // {4,5}: one hit
  EXPECT_DOUBLE_EQ(result.precision[1], 0.5);   // {4,5,6,7}: two hits
}

TEST(HarnessTest, SkipsUsersWithoutHistory) {
  corpus::RecommendationDataset ds;
  ds.users.push_back({});  // empty profile and held_out
  const auto result = EvaluateRecommendation(
      ds, [](const corpus::RecommendationUser&, std::size_t) {
        return std::vector<SearchResult>{};
      });
  EXPECT_EQ(result.num_users, 0u);
}

// ------------------------------------------------------------------ Table

TEST(TableTest, PrintsAlignedRows) {
  Table t("demo", {"P@3", "P@5"});
  t.AddRow("FIG", {0.9, 0.85});
  t.AddRow("LSA", {0.7, 0.65});
  std::ostringstream os;
  t.Print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("FIG"), std::string::npos);
  EXPECT_NE(s.find("0.9000"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t("demo", {"a", "b"});
  t.AddRow("x", {1.0, 2.0});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "label,a,b\nx,1,2\n");
}

}  // namespace
}  // namespace figdb::eval
