// End-to-end integration tests: the full pipeline from corpus synthesis
// through retrieval/recommendation quality, mirroring the paper's headline
// claims at test scale.

#include <gtest/gtest.h>

#include <memory>

#include "baselines/lsa.hpp"
#include "baselines/rankboost.hpp"
#include "baselines/tensor_product.hpp"
#include "corpus/generator.hpp"
#include "eval/harness.hpp"
#include "eval/oracle.hpp"
#include "eval/training.hpp"
#include "index/retrieval_engine.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"

namespace figdb {
namespace {

class PipelineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 1500;
    config.num_topics = 12;
    config.num_users = 400;
    config.visual_words = 96;
    config.seed = 555;
    // Mirror the benchmark harness's noise levels so no method saturates
    // and the paper's ordering can show at test scale.
    config.mean_tags_per_object = 5.0;
    config.tags_per_topic = 45;
    config.generic_tag_probability = 0.45;
    config.user_topic_affinity = 0.6;
    config.visual_topic_purity = 0.25;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
    engine_ = new index::FigRetrievalEngine(*corpus_,
                                            index::EngineOptions{});
    oracle_ = new eval::TopicOracle(corpus_);
    queries_ = eval::SampleQueries(*corpus_, 12, 42);
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete engine_;
    delete corpus_;
    oracle_ = nullptr;
    engine_ = nullptr;
    corpus_ = nullptr;
  }

  static corpus::Corpus* corpus_;
  static index::FigRetrievalEngine* engine_;
  static eval::TopicOracle* oracle_;
  static std::vector<corpus::ObjectId> queries_;
};

corpus::Corpus* PipelineFixture::corpus_ = nullptr;
index::FigRetrievalEngine* PipelineFixture::engine_ = nullptr;
eval::TopicOracle* PipelineFixture::oracle_ = nullptr;
std::vector<corpus::ObjectId> PipelineFixture::queries_;

TEST_F(PipelineFixture, FigPrecisionWellAboveTopicBaseRate) {
  const auto r = eval::EvaluateRetrieval(*engine_, *corpus_, queries_,
                                         *oracle_);
  // Base rate = 1/12; expect an order of magnitude above it.
  EXPECT_GT(r.precision[0], 0.5) << "P@3";
  EXPECT_GT(r.precision[2], 0.4) << "P@10";
}

TEST_F(PipelineFixture, FullFigBeatsVisualOnly) {
  index::EngineOptions visual_options;
  visual_options.type_mask = core::kVisualMask;
  index::FigRetrievalEngine visual(*corpus_, visual_options);
  const auto full = eval::EvaluateRetrieval(*engine_, *corpus_, queries_,
                                            *oracle_);
  const auto vis = eval::EvaluateRetrieval(visual, *corpus_, queries_,
                                           *oracle_);
  EXPECT_GT(full.precision[2], vis.precision[2]);
}

TEST_F(PipelineFixture, FigBeatsEveryBaselineAtP10) {
  const auto fig = eval::EvaluateRetrieval(*engine_, *corpus_, queries_,
                                           *oracle_);

  // LSA rank below the topic count, as in the benchmark harness (a rank
  // >= #topics lets the latent space capture the synthetic corpus fully).
  const baselines::LsaRetriever lsa(*corpus_, {.rank = 4});
  auto vectors = std::make_shared<baselines::TypedVectors>(
      baselines::TypedVectors::Build(*corpus_));
  const baselines::TensorProductRetriever tp(*corpus_, vectors,
                                             engine_->Matrix());
  auto weighted = std::make_shared<baselines::TypedVectors>(
      baselines::TypedVectors::Build(*corpus_, {.use_idf = true},
                                     engine_->Matrix().get()));
  baselines::RankBoostRetriever rb(*corpus_, weighted, engine_->Matrix());
  const auto train = eval::SampleQueries(*corpus_, 6, 1234);
  rb.Train(eval::MakeRankBoostQueries(*corpus_, train, *oracle_));

  const auto lsa_r = eval::EvaluateRetrieval(lsa, *corpus_, queries_,
                                             *oracle_);
  const auto tp_r = eval::EvaluateRetrieval(tp, *corpus_, queries_,
                                            *oracle_);
  const auto rb_r = eval::EvaluateRetrieval(rb, *corpus_, queries_,
                                            *oracle_);
  EXPECT_GT(fig.precision[2], lsa_r.precision[2]);
  EXPECT_GT(fig.precision[2], tp_r.precision[2]);
  EXPECT_GE(fig.precision[2], rb_r.precision[2]);
  // All methods are meaningfully above the 1/12 base rate.
  EXPECT_GT(lsa_r.precision[2], 0.15);
  EXPECT_GT(tp_r.precision[2], 0.15);
  EXPECT_GT(rb_r.precision[2], 0.15);
}

TEST_F(PipelineFixture, LambdaTrainingDoesNotDegrade) {
  index::FigRetrievalEngine engine(*corpus_, index::EngineOptions{});
  const auto train = eval::SampleQueries(*corpus_, 6, 777);
  eval::RetrievalEvalOptions eo;
  eo.cutoffs = {10};
  const auto before =
      eval::EvaluateRetrieval(engine, *corpus_, train, *oracle_, eo);
  eval::LambdaTrainingOptions options;
  options.sweeps = 1;
  const auto lambda =
      eval::TrainEngineLambda(&engine, train, *oracle_, options);
  EXPECT_EQ(lambda.size(), 3u);
  const auto after =
      eval::EvaluateRetrieval(engine, *corpus_, train, *oracle_, eo);
  EXPECT_GE(after.precision[0], before.precision[0] - 1e-9);
}

TEST_F(PipelineFixture, PrefixCorporaScaleMonotonically) {
  // Smaller database -> the same queries find fewer good matches; P@10
  // should not be (much) higher than the full corpus. This is the Fig. 8
  // trend at test scale.
  const corpus::Corpus small = corpus_->Prefix(300);
  index::FigRetrievalEngine small_engine(small, index::EngineOptions{});
  std::vector<corpus::ObjectId> small_queries;
  for (corpus::ObjectId q : queries_)
    if (q < 300) small_queries.push_back(q);
  ASSERT_FALSE(small_queries.empty());
  const auto small_r = eval::EvaluateRetrieval(small_engine, small,
                                               small_queries, *oracle_);
  const auto full_r = eval::EvaluateRetrieval(*engine_, *corpus_,
                                              small_queries, *oracle_);
  EXPECT_GE(full_r.precision[2] + 0.15, small_r.precision[2]);
}

TEST(RecommendationIntegrationTest, FigVariantsBeatBaselines) {
  corpus::GeneratorConfig config;
  config.num_objects = 1800;
  config.num_topics = 12;
  config.num_users = 300;
  config.visual_words = 96;
  config.seed = 321;
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 20;
  rc.mean_favorites_per_month = 15.0;
  const corpus::RecommendationDataset ds =
      corpus::Generator(config).MakeRecommendationDataset(rc);

  index::EngineOptions eo;
  eo.build_index = false;
  index::FigRetrievalEngine engine(ds.corpus, eo);
  const recsys::ProfileBuilder builder(engine.Correlations());
  const std::uint16_t now = std::uint16_t(config.num_months - 1);

  eval::RecommendationEvalOptions options;
  options.cutoffs = {10};

  auto eval_fig = [&](double decay) {
    const recsys::FigRecommender rec(ds.corpus, engine.ExactPotential(),
                                     engine.Potential(), {.decay = decay});
    return eval::EvaluateRecommendation(
        ds,
        [&](const corpus::RecommendationUser& user, std::size_t k) {
          const recsys::UserProfile p = builder.Build(ds.corpus,
                                                      user.profile);
          return rec.Recommend(p, ds.candidates, k, now);
        },
        options);
  };

  const auto fig = eval_fig(1.0);
  const auto fig_t = eval_fig(0.5);

  const baselines::LsaRetriever lsa(ds.corpus, {.rank = 48});
  const auto lsa_r = eval::EvaluateRecommendation(
      ds,
      [&](const corpus::RecommendationUser& user, std::size_t k) {
        const recsys::UserProfile p = builder.Build(ds.corpus, user.profile);
        return lsa.Rank(p.merged, ds.candidates, k);
      },
      options);

  EXPECT_GT(fig.precision[0], 0.05);
  EXPECT_GE(fig_t.precision[0], fig.precision[0]);
  EXPECT_GT(fig_t.precision[0], lsa_r.precision[0]);
}

}  // namespace
}  // namespace figdb
