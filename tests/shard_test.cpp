#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "index/retrieval_engine.hpp"
#include "shard/manifest.hpp"
#include "shard/placement.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_store.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/serde.hpp"
#include "util/shared_deadline.hpp"

/// \file shard_test.cpp
/// The sharded-store layer: SharedDeadline edge cases, manifest framing,
/// placement arithmetic, create/recover/rebalance (including the
/// exhaustive rebalance crash matrix), and the router's scatter-gather
/// guarantees — bit-identity to the unsharded engine when every shard
/// answers, PARTIAL = exact top-k of the surviving shards' union when not.

namespace figdb::shard {
namespace {

using corpus::ObjectId;
using index::EngineOptions;
using index::FigRetrievalEngine;
using util::QueryBudget;
using util::ScopedFailPoint;
using util::SharedDeadline;
using util::StatusCode;

/// Feature-list equality (FeatureOccurrence has no operator==).
bool SameFeatures(const corpus::MediaObject& a, const corpus::MediaObject& b) {
  if (a.features.size() != b.features.size()) return false;
  for (std::size_t i = 0; i < a.features.size(); ++i)
    if (a.features[i].feature != b.features[i].feature ||
        a.features[i].frequency != b.features[i].frequency)
      return false;
  return true;
}

// ===================================================================
// SharedDeadline — the primitive every scatter leg polls. These edge
// cases are exactly the races the router's dispatch/merge protocol
// leans on (concurrency-labelled: the race tests spin real threads).
// ===================================================================

TEST(SharedDeadlineTest, ZeroAndNegativeBudgetsNeverArm) {
  for (double limit : {0.0, -1.0, -1e-9}) {
    QueryBudget budget;
    budget.wall_limit_seconds = limit;
    SharedDeadline deadline(budget);
    EXPECT_FALSE(deadline.Armed()) << "limit=" << limit;
    EXPECT_FALSE(deadline.ExpiredNow()) << "limit=" << limit;
    EXPECT_FALSE(deadline.Expired()) << "limit=" << limit;
  }
}

TEST(SharedDeadlineTest, UnarmedDeadlineCanStillBeForceExpired) {
  SharedDeadline deadline{QueryBudget{}};
  EXPECT_FALSE(deadline.Armed());
  deadline.ForceExpire();
  EXPECT_TRUE(deadline.Expired());
  EXPECT_TRUE(deadline.ExpiredNow());
}

TEST(SharedDeadlineTest, TimePointAlreadyInThePastExpiresOnFirstPoll) {
  // A scatter dispatched with zero (or negative) remaining budget: the
  // deadline instant precedes construction, so the FIRST poll must
  // observe expiry — but only a poll, never the latch-only read.
  SharedDeadline deadline(SharedDeadline::Clock::now() -
                          std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.Armed());
  EXPECT_FALSE(deadline.Expired());  // nobody has polled yet
  EXPECT_TRUE(deadline.ExpiredNow());
  EXPECT_TRUE(deadline.Expired());  // and now it is latched for everyone
}

TEST(SharedDeadlineTest, ExpiryBetweenDispatchAndMergeNeedsAPoll) {
  // The dispatch/merge race from the file comment: the deadline passes
  // while no thread happens to poll. Expired() keeps answering false
  // (it never consults the clock) — the merge boundary must call
  // ExpiredNow() to catch it, which is what executor and router do.
  QueryBudget budget;
  budget.wall_limit_seconds = 0.002;
  SharedDeadline deadline(budget);
  EXPECT_FALSE(deadline.ExpiredNow());  // dispatch-time: still alive
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(deadline.Expired());   // latch-only read misses it
  EXPECT_TRUE(deadline.ExpiredNow());  // the merge-boundary poll catches it
  EXPECT_TRUE(deadline.Expired());
}

TEST(SharedDeadlineTest, DoubleExpiryRaceIsIdempotent) {
  // Clock expiry and ForceExpire race from many threads; the latch must
  // end up set exactly once semantically — every observer agrees, and
  // no poll after the latch can un-expire it.
  SharedDeadline deadline(SharedDeadline::Clock::now() +
                          std::chrono::milliseconds(1));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&deadline, t] {
      if (t % 2 == 0) {
        while (!deadline.ExpiredNow()) std::this_thread::yield();
      } else {
        deadline.ForceExpire();
      }
      EXPECT_TRUE(deadline.Expired());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(deadline.Expired());
  EXPECT_TRUE(deadline.ExpiredNow());
}

TEST(SharedDeadlineTest, LatchIsVisibleAcrossThreads) {
  QueryBudget budget;
  budget.wall_limit_seconds = 3600.0;  // far future: only the latch fires
  SharedDeadline deadline(budget);
  std::thread forcer([&deadline] { deadline.ForceExpire(); });
  forcer.join();
  EXPECT_TRUE(deadline.Expired());
  EXPECT_TRUE(deadline.ExpiredNow());
}

// ===================================================================
// Manifest framing — the one untrusted-bytes surface of the shard
// layer (shared with fuzz_shard_manifest).
// ===================================================================

TEST(ShardManifestTest, RoundTripsAcrossTheValidRange) {
  const ShardManifest cases[] = {
      {},
      {.generation = 7, .num_shards = 256},
      {.generation = std::uint64_t{1} << 40, .num_shards = 3},
  };
  for (const ShardManifest& m : cases) {
    auto parsed = ParseShardManifest(SerializeShardManifest(m));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, m);
  }
}

TEST(ShardManifestTest, TruncationBelowTheHeaderIsDataLoss) {
  const std::string bytes = SerializeShardManifest({});
  for (std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    auto parsed = ParseShardManifest(bytes.substr(0, len));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << len;
  }
}

TEST(ShardManifestTest, WrongMagicAndVersionAreInvalidArgument) {
  std::string bad_magic = SerializeShardManifest({});
  bad_magic[0] = char(bad_magic[0] ^ 0x5a);
  EXPECT_EQ(ParseShardManifest(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = SerializeShardManifest({});
  bad_version[4] = char(bad_version[4] ^ 0x01);
  EXPECT_EQ(ParseShardManifest(bad_version).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardManifestTest, PayloadCorruptionIsDataLoss) {
  // Any flip in the payload (or a lost tail byte) must trip the CRC, not
  // decode into a different placement.
  const std::string bytes = SerializeShardManifest({.num_shards = 8});
  for (std::size_t i = 12; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = char(corrupt[i] ^ 0x80);
    EXPECT_EQ(ParseShardManifest(corrupt).status().code(),
              StatusCode::kDataLoss)
        << "flipped byte " << i;
  }
  EXPECT_EQ(ParseShardManifest(bytes.substr(0, bytes.size() - 1))
                .status()
                .code(),
            StatusCode::kDataLoss);
}

/// Frames an arbitrary payload with a CORRECT CRC, so the structural
/// validators (not the checksum) are what reject it.
std::string FrameWithValidCrc(const std::string& payload) {
  util::BinaryWriter out;
  out.PutFixed32(kManifestMagic);
  out.PutFixed32(kManifestVersion);
  out.PutFixed32(util::Crc32(payload));
  out.PutRaw(payload);
  return out.Take();
}

TEST(ShardManifestTest, TrailingBytesWithValidCrcAreRejected) {
  util::BinaryWriter payload;
  payload.PutVarint(1);   // generation
  payload.PutVarint(2);   // num_shards
  payload.PutU8(0);       // kModulo
  payload.PutU8(0xee);    // trailing garbage the CRC covers
  auto parsed = ParseShardManifest(FrameWithValidCrc(payload.Buffer()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ShardManifestTest, ShortPayloadWithValidCrcIsDataLoss) {
  util::BinaryWriter payload;
  payload.PutVarint(1);  // generation only — num_shards/kind missing
  auto parsed = ParseShardManifest(FrameWithValidCrc(payload.Buffer()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);
}

TEST(ShardManifestTest, SemanticRangeViolationsAreInvalidArgument) {
  const ShardManifest bad[] = {
      {.generation = 0},
      {.num_shards = 0},
      {.num_shards = kMaxShards + 1},
      {.placement = static_cast<PlacementKind>(9)},
  };
  for (const ShardManifest& m : bad) {
    auto parsed = ParseShardManifest(SerializeShardManifest(m));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

// ===================================================================
// Placement arithmetic.
// ===================================================================

TEST(PlacementTest, ModuloEquationsAreMutuallyInverse) {
  for (std::uint32_t n : {1u, 2u, 3u, 7u}) {
    const Placement p(ShardManifest{.num_shards = n});
    std::vector<std::size_t> per_shard(n, 0);
    for (ObjectId g = 0; g < 100; ++g) {
      const std::uint32_t s = p.ShardOf(g);
      ASSERT_LT(s, n);
      EXPECT_EQ(p.GlobalOf(s, p.LocalOf(g)), g);
      // Local ids fill densely in global order within the shard.
      EXPECT_EQ(p.LocalOf(g), per_shard[s]);
      ++per_shard[s];
    }
    std::size_t total = 0;
    for (std::uint32_t s = 0; s < n; ++s) {
      EXPECT_EQ(per_shard[s], p.ShardSize(100, s));
      total += p.ShardSize(100, s);
    }
    EXPECT_EQ(total, 100u);
  }
}

// ===================================================================
// ShardedStore + ShardRouter fixture.
// ===================================================================

class ShardedStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 160;
    config.num_topics = 5;
    config.num_users = 60;
    config.visual_words = 32;
    config.seed = 20107;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  /// A fresh, empty directory under the system temp dir.
  static std::string TempDir(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("figdb_shard_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
  }

  static ShardedStore::Options MakeOptions(std::uint32_t num_shards,
                                           std::size_t rerank) {
    ShardedStore::Options options;
    options.num_shards = num_shards;
    options.engine.rerank_candidates = rerank;
    return options;
  }

  /// Asserts that a router query over \p store matches \p baseline result
  /// bit for bit (ids AND scores) — the tentpole's central claim.
  static void ExpectBitIdentical(const ShardedStore& store,
                                 const FigRetrievalEngine& baseline,
                                 const corpus::MediaObject& probe,
                                 std::size_t k, std::size_t workers) {
    ShardRouter router(RouterOptions{.workers = workers});
    auto got = router.Search(store, probe, k);
    auto want = baseline.TrySearch(probe, k);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_TRUE(want.ok()) << want.status().ToString();
    EXPECT_TRUE(got->Complete());
    EXPECT_EQ(got->shards_answered, store.NumShards());
    EXPECT_EQ(got->response.reranked, want->reranked);
    EXPECT_EQ(got->response.truncated, want->truncated);
    ASSERT_EQ(got->response.results.size(), want->results.size());
    for (std::size_t i = 0; i < want->results.size(); ++i) {
      EXPECT_EQ(got->response.results[i].object, want->results[i].object)
          << "rank " << i;
      EXPECT_EQ(got->response.results[i].score, want->results[i].score)
          << "rank " << i;  // bitwise, not approximate
    }
  }

  static corpus::Corpus* corpus_;
};

corpus::Corpus* ShardedStoreTest::corpus_ = nullptr;

TEST_F(ShardedStoreTest, CreatePartitionsByModuloAndRecoverRoundTrips) {
  const std::string dir = TempDir("create");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(4, 48));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ(store->NumShards(), 4u);
  EXPECT_EQ(store->TotalObjects(), corpus_->Size());
  EXPECT_EQ(store->LiveObjects(), corpus_->Size());
  EXPECT_FALSE(store->AnyWounded());

  const Placement placement = store->GetPlacement();
  for (std::uint32_t s = 0; s < 4; ++s) {
    const corpus::Corpus& sc = store->ShardStore(s).GetCorpus();
    ASSERT_EQ(sc.Size(), placement.ShardSize(corpus_->Size(), s));
    // Spot-check the feature payload landed on the right shard slot.
    for (ObjectId local = 0; local < sc.Size(); local += 7) {
      const ObjectId global = placement.GlobalOf(s, local);
      EXPECT_TRUE(SameFeatures(sc.Object(local), corpus_->Object(global)))
          << "shard " << s << " local " << local;
    }
  }

  // A second Create on the same directory must refuse, not clobber.
  auto clobber = ShardedStore::Create(dir, *corpus_, MakeOptions(4, 48));
  ASSERT_FALSE(clobber.ok());
  EXPECT_EQ(clobber.status().code(), StatusCode::kFailedPrecondition);

  { auto moved = std::move(*store); }  // "crash": drop the live store
  auto recovered = ShardedStore::Recover(dir, MakeOptions(4, 48));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->NumShards(), 4u);
  EXPECT_EQ(recovered->TotalObjects(), corpus_->Size());
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedStoreTest, IngestRoutesByGlobalIdAndRemoveTombstones) {
  const std::string dir = TempDir("ingest");
  const corpus::Corpus base = corpus_->Prefix(100);
  auto store = ShardedStore::Create(dir, base, MakeOptions(3, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  // Ingest the generator's next 20 objects: global ids must continue the
  // dense sequence and land on shard g % 3 at slot g / 3.
  for (ObjectId g = 100; g < 120; ++g) {
    auto id = store->Ingest(corpus_->Object(g));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    EXPECT_EQ(*id, g);
    const corpus::Corpus& sc = store->ShardStore(g % 3).GetCorpus();
    EXPECT_TRUE(SameFeatures(sc.Object(g / 3), corpus_->Object(g)));
  }
  EXPECT_EQ(store->TotalObjects(), 120u);
  EXPECT_EQ(store->LiveObjects(), 120u);

  ASSERT_TRUE(store->Remove(7).ok());
  ASSERT_TRUE(store->Remove(110).ok());
  EXPECT_EQ(store->LiveObjects(), 118u);
  EXPECT_EQ(store->Remove(110).code(), StatusCode::kNotFound);  // again
  EXPECT_EQ(store->Remove(500).code(), StatusCode::kNotFound);  // past end
  ASSERT_TRUE(store->Checkpoint().ok());
  ASSERT_TRUE(store->Publish().ok());

  { auto moved = std::move(*store); }
  auto recovered = ShardedStore::Recover(dir, MakeOptions(3, 0));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->TotalObjects(), 120u);
  EXPECT_EQ(recovered->LiveObjects(), 118u);
  EXPECT_EQ(recovered->Remove(7).code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedStoreTest, RecoverRejectsAMissingShard) {
  const std::string dir = TempDir("missing_shard");
  {
    auto store = ShardedStore::Create(dir, corpus_->Prefix(60),
                                      MakeOptions(3, 0));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
  }
  std::filesystem::remove_all(ShardedStore::ShardDir(dir, 1, 1));
  auto recovered = ShardedStore::Recover(dir, MakeOptions(3, 0));
  ASSERT_FALSE(recovered.ok());
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedStoreTest, WoundedShardBlocksMutationsAndRebalance) {
  const std::string dir = TempDir("wounded");
  auto store = ShardedStore::Create(dir, corpus_->Prefix(90),
                                    MakeOptions(3, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  {
    // The next ingest routes to shard 90 % 3 = 0; its WAL append fails,
    // wounding exactly that shard.
    ScopedFailPoint fp("wal/append_io", {.max_fires = 1});
    auto id = store->Ingest(corpus_->Object(90));
    ASSERT_FALSE(id.ok());
  }
  EXPECT_TRUE(store->AnyWounded());
  EXPECT_TRUE(store->ShardStore(0).Wounded());
  // The id space admits no gaps, so the routed ingest keeps failing…
  EXPECT_FALSE(store->Ingest(corpus_->Object(90)).ok());
  // …and a rebalance of a half-durable store is refused outright.
  EXPECT_EQ(store->Rebalance(2).code(), StatusCode::kFailedPrecondition);
  // Publish skips the wounded shard instead of failing the healthy ones.
  EXPECT_TRUE(store->Publish().ok());

  { auto moved = std::move(*store); }
  auto recovered = ShardedStore::Recover(dir, MakeOptions(3, 0));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_FALSE(recovered->AnyWounded());
  EXPECT_TRUE(recovered->Ingest(corpus_->Object(90)).ok());
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedStoreTest, RebalancePreservesAnswersBitForBit) {
  const std::string dir = TempDir("rebalance");
  const EngineOptions eopts = MakeOptions(1, 48).engine;
  const FigRetrievalEngine baseline(*corpus_, eopts);
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(4, 48));
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::uint64_t generation = store->Manifest().generation;
  for (std::uint32_t n : {2u, 5u, 1u}) {
    ASSERT_TRUE(store->Rebalance(n).ok());
    EXPECT_EQ(store->NumShards(), n);
    EXPECT_GT(store->Manifest().generation, generation);
    generation = store->Manifest().generation;
    EXPECT_EQ(store->TotalObjects(), corpus_->Size());
    ExpectBitIdentical(*store, baseline, corpus_->Object(17), 10, 0);
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ShardedStoreTest, RebalanceCrashMatrixRecoversOldOrNewNeverAMix) {
  // Drive `shard/rebalance_crash` through EVERY numbered crash site of
  // two transitions (2→4 grows the generation loop, 4→2 shrinks it).
  // After each injected crash the directory must recover to exactly the
  // old placement or exactly the new one — detected structurally (the
  // manifest) and semantically (recovered answers stay bit-identical to
  // the unsharded baseline, which no mixed placement could produce).
  const corpus::Corpus base = corpus_->Prefix(60);
  const EngineOptions eopts = MakeOptions(1, 16).engine;
  const FigRetrievalEngine baseline(base, eopts);
  std::size_t crash_points = 0;

  const struct {
    std::uint32_t from, to;
  } transitions[] = {{2, 4}, {4, 2}};
  for (const auto& tr : transitions) {
    bool exhausted = false;
    for (std::uint64_t skip = 0; !exhausted; ++skip) {
      SCOPED_TRACE(std::to_string(tr.from) + "->" + std::to_string(tr.to) +
                   " skip=" + std::to_string(skip));
      const std::string dir =
          TempDir("crash_" + std::to_string(tr.from) + "_" +
                  std::to_string(tr.to) + "_" + std::to_string(skip));
      {
        auto store = ShardedStore::Create(dir, base,
                                          MakeOptions(tr.from, 16));
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        ScopedFailPoint fp("shard/rebalance_crash",
                           {.skip_hits = skip, .max_fires = 1});
        const util::Status st = store->Rebalance(tr.to);
        if (fp.HitCount() <= skip) {
          // The rebalance ran clean past every remaining site: the
          // matrix for this transition is exhausted.
          ASSERT_TRUE(st.ok()) << st.ToString();
          exhausted = true;
        } else {
          ASSERT_FALSE(st.ok())
              << "site " << skip << " fired but Rebalance reported OK";
          EXPECT_EQ(st.code(), StatusCode::kUnavailable);
          ++crash_points;
        }
        // The store object dies here — the "crash".
      }
      auto recovered = ShardedStore::Recover(dir, MakeOptions(tr.from, 16));
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_TRUE(recovered->NumShards() == tr.from ||
                  recovered->NumShards() == tr.to)
          << "recovered onto " << recovered->NumShards()
          << " shards — neither the old nor the new placement";
      EXPECT_EQ(recovered->TotalObjects(), base.Size());
      // No intent file and no second generation may survive recovery.
      EXPECT_FALSE(
          std::filesystem::exists(ShardedStore::IntentPath(dir)));
      ExpectBitIdentical(*recovered, baseline, base.Object(11), 8, 0);
      std::filesystem::remove_all(dir);
    }
  }
  // 8 fixed sites + 2 per new shard: 16 for 2→4 plus 12 for 4→2.
  EXPECT_GE(crash_points, 20u);
}

// ===================================================================
// ShardRouter — scatter-gather semantics (concurrency-labelled).
// ===================================================================

class ShardRouterTest : public ShardedStoreTest {};

TEST_F(ShardRouterTest, MergedResultsBitIdenticalToUnshardedEngine) {
  EngineOptions eopts;
  eopts.rerank_candidates = 48;
  const FigRetrievalEngine baseline(*corpus_, eopts);
  for (std::uint32_t n : {1u, 2u, 3u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(n));
    const std::string dir = TempDir("ident_" + std::to_string(n));
    auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(n, 48));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (ObjectId probe : {ObjectId{3}, ObjectId{17}, ObjectId{41},
                           ObjectId{73}, ObjectId{128}}) {
      ExpectBitIdentical(*store, baseline, corpus_->Object(probe), 10,
                         /*workers=*/2);
    }
    std::filesystem::remove_all(dir);
  }
}

TEST_F(ShardRouterTest, StageOneOnlyPathIsAlsoBitIdentical) {
  EngineOptions eopts;
  eopts.rerank_candidates = 0;
  const FigRetrievalEngine baseline(*corpus_, eopts);
  const std::string dir = TempDir("stage1");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(4, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ExpectBitIdentical(*store, baseline, corpus_->Object(29), 12, 2);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, IngestThenRecoverMatchesUnshardedEngine) {
  // Grow the sharded store past its Create corpus, recover (which
  // re-derives the global statistics from the union), and compare to an
  // unsharded engine over the same logical corpus.
  const std::string dir = TempDir("grown");
  {
    auto store = ShardedStore::Create(dir, corpus_->Prefix(120),
                                      MakeOptions(3, 48));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    for (ObjectId g = 120; g < 140; ++g)
      ASSERT_TRUE(store->Ingest(corpus_->Object(g)).ok());
  }
  auto recovered = ShardedStore::Recover(dir, MakeOptions(3, 48));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const corpus::Corpus logical = corpus_->Prefix(140);
  const FigRetrievalEngine baseline(logical, MakeOptions(1, 48).engine);
  ExpectBitIdentical(*recovered, baseline, corpus_->Object(61), 10, 2);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, PartialIsExactlyTheSurvivingShardsTopK) {
  // Stage-1-only store so the oracle is computable: kill shard 1 of 2
  // for every attempt, and check the PARTIAL answer equals the full
  // (unsharded) ranking with shard 1's objects deleted — scored under
  // the UNION statistics, which is precisely the documented contract.
  const std::string dir = TempDir("partial");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const FigRetrievalEngine baseline(*corpus_, MakeOptions(1, 0).engine);
  const corpus::MediaObject& probe = corpus_->Object(17);

  // Workers=0 runs legs inline in shard order, so hit 1 is shard 0's leg
  // (passes) and every later hit is one of shard 1's attempts.
  ShardRouter router(RouterOptions{.workers = 0, .max_retries = 2});
  ScopedFailPoint fp("shard/wounded", {.skip_hits = 1});
  auto got = router.Search(*store, probe, 8);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got->Complete());
  EXPECT_EQ(got->shards_answered, 1u);
  EXPECT_EQ(got->shards_total, 2u);
  EXPECT_EQ(got->retries, 2u);
  EXPECT_TRUE(got->response.truncated);  // degradation is never silent

  auto full = baseline.TrySearch(probe, corpus_->Size());
  ASSERT_TRUE(full.ok());
  std::vector<core::SearchResult> survivors;
  for (const core::SearchResult& r : full->results)
    if (r.object % 2 == 0) survivors.push_back(r);  // shard 0 = even ids
  if (survivors.size() > 8) survivors.resize(8);
  ASSERT_EQ(got->response.results.size(), survivors.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(got->response.results[i].object, survivors[i].object);
    EXPECT_EQ(got->response.results[i].score, survivors[i].score);
  }

  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.partial, 1u);
  EXPECT_EQ(stats.retries, 2u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, DroppedScatterAnswerIsRetriedToCompletion) {
  const std::string dir = TempDir("drop");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 32));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ShardRouter router(RouterOptions{.workers = 0, .max_retries = 1});
  const corpus::MediaObject& probe = corpus_->Object(44);

  auto clean = router.Search(*store, probe, 6);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();

  // Shard 1's first answer is lost in transit; the retry redoes the work
  // against the SAME pinned snapshot and the final answer is unchanged.
  ScopedFailPoint fp("shard/scatter_drop", {.skip_hits = 1, .max_fires = 1});
  auto retried = router.Search(*store, probe, 6);
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_TRUE(retried->Complete());
  EXPECT_EQ(retried->retries, 1u);
  ASSERT_EQ(retried->response.results.size(), clean->response.results.size());
  for (std::size_t i = 0; i < clean->response.results.size(); ++i) {
    EXPECT_EQ(retried->response.results[i].object,
              clean->response.results[i].object);
    EXPECT_EQ(retried->response.results[i].score,
              clean->response.results[i].score);
  }
  EXPECT_EQ(router.Stats().retries, 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, AllShardsFailingIsAnErrorNotAnEmptyAnswer) {
  const std::string dir = TempDir("allfail");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ShardRouter router(RouterOptions{.workers = 0, .max_retries = 0});
  ScopedFailPoint fp("shard/wounded");
  auto got = router.Search(*store, corpus_->Object(3), 5);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(got.status().message().find("all 2 shards failed"),
            std::string::npos)
      << got.status().message();
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, DeadlineBeforeAnyAnswerIsDeadlineExceeded) {
  const std::string dir = TempDir("deadline");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ShardRouter router(RouterOptions{.workers = 0, .max_retries = 2});
  // Every inline leg sleeps past the 1 ms budget, then observes expiry on
  // its first poll — the dispatch-to-merge race at router scale.
  ScopedFailPoint fp("shard/slow");
  auto got = router.Search(*store, corpus_->Object(3), 5,
                           QueryBudget::Deadline(0.001));
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, StragglerIsAbandonedAndTheRestAnswer) {
  const std::string dir = TempDir("straggler");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  // Two workers, one leg slowed 50 ms, a 25 ms deadline: the slow leg is
  // abandoned at the deadline (it drains detached, releasing its epoch
  // pin), the fast leg's shard answers → PARTIAL, not an error.
  ShardRouter router(RouterOptions{.workers = 2, .max_retries = 0});
  ScopedFailPoint fp("shard/slow", {.max_fires = 1});
  auto got = router.Search(*store, corpus_->Object(9), 5,
                           QueryBudget::Deadline(0.025));
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_FALSE(got->Complete());
  EXPECT_EQ(got->shards_answered, 1u);
  EXPECT_TRUE(got->response.truncated);
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.stragglers, 1u);
  EXPECT_EQ(stats.partial, 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, HardCapRejectionNamesTheCapAndTheLoad) {
  const std::string dir = TempDir("hardcap");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ShardRouter router(RouterOptions{.workers = 1,
                                   .max_retries = 0,
                                   .max_concurrent = 1,
                                   .degrade_concurrent = 1});
  // Hold one query in flight (its first leg sleeps 50 ms on the single
  // worker), then submit a second: it must be rejected by the HARD cap
  // with a message naming which cap fired and the load that tripped it.
  ScopedFailPoint fp("shard/slow", {.max_fires = 1});
  std::thread holder([&] {
    auto r = router.Search(*store, corpus_->Object(3), 5);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto rejected = router.Search(*store, corpus_->Object(3), 5);
  holder.join();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  const std::string& msg = rejected.status().message();
  EXPECT_NE(msg.find("hard concurrency cap"), std::string::npos) << msg;
  EXPECT_NE(msg.find("1 queries already in flight"), std::string::npos)
      << msg;
  EXPECT_NE(msg.find("soft cap 1"), std::string::npos) << msg;
  const RouterStats stats = router.Stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.admitted, 1u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, SoftCapShedsTheRerankStageInsteadOfRejecting) {
  const std::string dir = TempDir("softcap");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 32));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ShardRouter router(RouterOptions{.workers = 1,
                                   .max_retries = 0,
                                   .max_concurrent = 8,
                                   .degrade_concurrent = 1});
  ScopedFailPoint fp("shard/slow", {.max_fires = 1});
  std::thread holder([&] {
    auto r = router.Search(*store, corpus_->Object(3), 5);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (r.ok()) EXPECT_TRUE(r->response.reranked);  // below the soft cap
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto degraded = router.Search(*store, corpus_->Object(3), 5);
  holder.join();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(degraded->Complete());
  EXPECT_FALSE(degraded->response.reranked);
  EXPECT_TRUE(degraded->response.truncated);  // shed work is never silent
  EXPECT_EQ(router.Stats().degraded, 1u);
  EXPECT_EQ(router.Stats().rejected, 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(ShardRouterTest, ValidationErrorsComeBackAsInvalidArgument) {
  const std::string dir = TempDir("validate");
  auto store = ShardedStore::Create(dir, *corpus_, MakeOptions(2, 0));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ShardRouter router(RouterOptions{.workers = 0});
  EXPECT_EQ(router.Search(*store, corpus_->Object(3), 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      router.Search(*store, corpus::MediaObject{}, 5).status().code(),
      StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace figdb::shard
