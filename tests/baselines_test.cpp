#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "baselines/feature_vectors.hpp"
#include "baselines/lsa.hpp"
#include "baselines/rankboost.hpp"
#include "baselines/tensor_product.hpp"
#include "corpus/generator.hpp"
#include "eval/oracle.hpp"
#include "util/rng.hpp"

namespace figdb::baselines {
namespace {

using corpus::FeatureKey;
using corpus::FeatureType;
using corpus::MakeFeatureKey;
using corpus::MediaObject;
using corpus::ObjectId;

FeatureKey Tag(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kText, id);
}
FeatureKey Vw(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kVisual, id);
}
FeatureKey User(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kUser, id);
}

corpus::Corpus MakeHandCorpus() {
  corpus::Corpus c;
  auto add = [&](std::vector<corpus::FeatureOccurrence> f) {
    MediaObject o;
    o.features = std::move(f);
    o.Normalize();
    c.Add(std::move(o));
  };
  add({{Tag(0), 2}, {Vw(0), 1}, {User(0), 1}});
  add({{Tag(0), 1}, {Tag(1), 1}, {User(0), 1}});
  add({{Tag(2), 1}, {Vw(1), 2}});
  add({{Tag(1), 3}, {Vw(0), 1}, {User(1), 1}});
  return c;
}

// ----------------------------------------------------------- TypedVectors

TEST(TypedVectorsTest, VectorsMatchObjects) {
  const corpus::Corpus c = MakeHandCorpus();
  const TypedVectors tv = TypedVectors::Build(c);
  EXPECT_EQ(tv.NumObjects(), 4u);
  EXPECT_FLOAT_EQ(tv.Vector(0, FeatureType::kText).Get(Tag(0)), 2.0f);
  EXPECT_FLOAT_EQ(tv.Vector(0, FeatureType::kVisual).Get(Vw(0)), 1.0f);
  EXPECT_TRUE(tv.Vector(2, FeatureType::kUser).Empty());
  EXPECT_EQ(tv.FullVector(0).NonZeros(), 3u);
}

TEST(TypedVectorsTest, ToVectorFiltersModality) {
  const corpus::Corpus c = MakeHandCorpus();
  const auto v = TypedVectors::ToVector(c.Object(0), FeatureType::kText);
  EXPECT_EQ(v.NonZeros(), 1u);
  EXPECT_FLOAT_EQ(v.Get(Tag(0)), 2.0f);
}

TEST(TypedVectorsTest, CandidatesShareAFeature) {
  const corpus::Corpus c = MakeHandCorpus();
  const auto matrix = stats::FeatureMatrix::Build(c);
  const auto candidates = TypedVectors::Candidates(c.Object(0), matrix);
  // Object 0 shares Tag0 with 1, Vw0 with 3, User0 with 1; not object 2.
  EXPECT_EQ(candidates, (std::vector<ObjectId>{0, 1, 3}));
}

// -------------------------------------------------------------------- LSA

TEST(LsaTest, ExactDuplicateRetrievedFirst) {
  corpus::GeneratorConfig config;
  config.num_objects = 300;
  config.num_topics = 6;
  config.num_users = 100;
  config.visual_words = 48;
  config.seed = 2;
  const corpus::Corpus c =
      corpus::Generator(config).MakeRetrievalCorpus();
  const LsaRetriever lsa(c, {.rank = 32});
  for (ObjectId q : {3u, 42u, 137u}) {
    const auto results = lsa.Search(c.Object(q), 3);
    ASSERT_FALSE(results.empty());
    // The object itself must be (or tie) the best match; the truncated
    // rank loses a little self-similarity mass, hence the loose bound.
    EXPECT_GT(results[0].score, 0.97);
    bool self_found = false;
    for (const auto& r : results)
      if (r.object == q) self_found = true;
    EXPECT_TRUE(self_found);
  }
}

TEST(LsaTest, LowRankMatrixRecoveredAccurately) {
  // Build a corpus whose object-feature matrix has rank 2 (two disjoint
  // feature blocks); LSA with rank >= 2 must embed the two groups into
  // clearly separated directions.
  corpus::Corpus c;
  for (int i = 0; i < 20; ++i) {
    MediaObject o;
    if (i % 2 == 0) {
      o.features = {{Tag(0), 1}, {Tag(1), 1}};
    } else {
      o.features = {{Tag(2), 1}, {Tag(3), 1}};
    }
    o.Normalize();
    c.Add(std::move(o));
  }
  const LsaRetriever lsa(c, {.rank = 2});
  const auto results = lsa.Search(c.Object(0), 20);
  ASSERT_EQ(results.size(), 20u);
  // Top 10 must be the 10 even-indexed (same-group) objects.
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(results[i].object % 2, 0u) << "rank " << i;
}

TEST(LsaTest, EmbeddingDimensionEqualsRank) {
  const corpus::Corpus c = MakeHandCorpus();
  const LsaRetriever lsa(c, {.rank = 3});
  EXPECT_EQ(lsa.LatentRank(), 3u);
  EXPECT_EQ(lsa.Embed(c.Object(0)).size(), 3u);
  EXPECT_EQ(lsa.SingularValues().size(), 3u);
  // Singular values are returned descending.
  for (std::size_t i = 1; i < lsa.SingularValues().size(); ++i)
    EXPECT_GE(lsa.SingularValues()[i - 1], lsa.SingularValues()[i] - 1e-9);
}

TEST(LsaTest, RankClampsToMatrixSize) {
  const corpus::Corpus c = MakeHandCorpus();  // 4 objects
  const LsaRetriever lsa(c, {.rank = 100});
  EXPECT_LE(lsa.LatentRank(), 4u);
}

TEST(LsaTest, UnknownQueryFeaturesIgnored) {
  const corpus::Corpus c = MakeHandCorpus();
  const LsaRetriever lsa(c, {.rank = 2});
  MediaObject query;
  query.features = {{Tag(999), 5}};  // never seen
  query.Normalize();
  const auto results = lsa.Search(query, 2);
  for (const auto& r : results) EXPECT_EQ(r.score, 0.0);
}

// --------------------------------------------------------------------- TP

class TpFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<corpus::Corpus>(MakeHandCorpus());
    vectors_ = std::make_shared<TypedVectors>(TypedVectors::Build(*corpus_));
    matrix_ = std::make_shared<stats::FeatureMatrix>(
        stats::FeatureMatrix::Build(*corpus_));
  }
  std::unique_ptr<corpus::Corpus> corpus_;
  std::shared_ptr<TypedVectors> vectors_;
  std::shared_ptr<stats::FeatureMatrix> matrix_;
};

TEST_F(TpFixture, KernelMatchesHandComputation) {
  const TensorProductRetriever tp(*corpus_, vectors_, matrix_);
  // query = object 0 vs object 1:
  //   kT = cos({t0:2}, {t0:1, t1:1}) = 2 / (2 * sqrt2) = 1/sqrt2
  //   kV = 0 (object 1 has no visual), kU = 1 (identical {u0}).
  const double kt = 1.0 / std::sqrt(2.0);
  const double expected = (kt + 0.0 + 1.0) + (kt * 0.0 + kt * 1.0 + 0.0);
  EXPECT_NEAR(tp.Similarity(corpus_->Object(0), 1), expected, 1e-9);
}

TEST_F(TpFixture, SelfSimilarityIsMaximal) {
  const TensorProductRetriever tp(*corpus_, vectors_, matrix_);
  const auto results = tp.Search(corpus_->Object(0), 4);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].object, 0u);
  // Self: all three kernels 1 -> additive 3 + products 3 = 6.
  EXPECT_NEAR(results[0].score, 6.0, 1e-9);
}

TEST_F(TpFixture, AdditiveTermsTogglable) {
  const TensorProductRetriever products_only(
      *corpus_, vectors_, matrix_, {.include_additive = false});
  EXPECT_NEAR(products_only.Similarity(corpus_->Object(0), 0), 3.0, 1e-9);
}

TEST_F(TpFixture, SearchSkipsNonOverlappingObjects) {
  const TensorProductRetriever tp(*corpus_, vectors_, matrix_);
  const auto results = tp.Search(corpus_->Object(0), 10);
  for (const auto& r : results) EXPECT_NE(r.object, 2u);
}

// -------------------------------------------------------------- RankBoost

TEST(RankBoostTest, DefaultWeightsUsedUntrained) {
  const corpus::Corpus c = MakeHandCorpus();
  auto vectors = std::make_shared<TypedVectors>(TypedVectors::Build(c));
  auto matrix = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(c));
  const RankBoostRetriever rb(c, vectors, matrix);
  ASSERT_EQ(rb.Weights().size(), corpus::kNumFeatureTypes);
  EXPECT_GT(rb.Weights()[0], 0.0);
}

TEST(RankBoostTest, TrainingLearnsInformativeModality) {
  // Synthetic corpus where ONLY the text modality carries the topic signal:
  // visual words and users are uniformly random. RankBoost must end up
  // weighting text far above the noise modalities.
  util::Rng rng(77);
  corpus::Corpus c;
  for (int i = 0; i < 200; ++i) {
    MediaObject o;
    const std::uint32_t topic = i % 4;
    o.topic = topic;
    o.features.push_back({Tag(topic * 3 + std::uint32_t(rng.UniformInt(3))),
                          1});
    o.features.push_back({Tag(topic * 3 + std::uint32_t(rng.UniformInt(3))),
                          1});
    o.features.push_back({Vw(std::uint32_t(rng.UniformInt(30))), 1});
    o.features.push_back({User(std::uint32_t(rng.UniformInt(30))), 1});
    o.Normalize();
    c.Add(std::move(o));
  }
  auto vectors = std::make_shared<TypedVectors>(TypedVectors::Build(c));
  auto matrix = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(c));
  RankBoostRetriever rb(c, vectors, matrix);

  eval::TopicOracle oracle(&c);
  std::vector<RankBoostTrainingQuery> queries;
  for (ObjectId q : {0u, 1u, 2u, 3u, 10u, 11u}) {
    RankBoostTrainingQuery tq;
    tq.query = c.Object(q);
    tq.relevant = oracle.RelevantSet(tq.query);
    queries.push_back(std::move(tq));
  }
  rb.Train(queries);
  const auto& w = rb.Weights();
  EXPECT_GT(w[0], w[1]);  // text > visual
  EXPECT_GT(w[0], w[2]);  // text > user
}

TEST(RankBoostTest, TrainedRetrievalBeatsNoiseModality) {
  corpus::GeneratorConfig config;
  config.num_objects = 400;
  config.num_topics = 8;
  config.num_users = 120;
  config.visual_words = 48;
  config.seed = 909;
  const corpus::Corpus c =
      corpus::Generator(config).MakeRetrievalCorpus();
  auto vectors = std::make_shared<TypedVectors>(TypedVectors::Build(c));
  auto matrix = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(c));
  RankBoostRetriever rb(c, vectors, matrix);
  eval::TopicOracle oracle(&c);

  std::vector<RankBoostTrainingQuery> queries;
  for (ObjectId q : {5u, 50u, 150u}) {
    RankBoostTrainingQuery tq;
    tq.query = c.Object(q);
    tq.relevant = oracle.RelevantSet(tq.query);
    queries.push_back(std::move(tq));
  }
  rb.Train(queries);

  // Precision@5 on a held-out query should be well above the topic base
  // rate (1/8).
  const auto results = rb.Search(c.Object(200), 6);
  std::size_t hits = 0;
  for (const auto& r : results) {
    if (r.object == 200u) continue;
    if (oracle.Relevant(c.Object(200), r.object)) ++hits;
  }
  EXPECT_GE(hits, 2u);
}

TEST(RankBoostTest, RankOnExplicitCandidates) {
  const corpus::Corpus c = MakeHandCorpus();
  auto vectors = std::make_shared<TypedVectors>(TypedVectors::Build(c));
  auto matrix = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(c));
  const RankBoostRetriever rb(c, vectors, matrix);
  const auto results = rb.Rank(c.Object(0), {1, 2, 3}, 3);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].score, results[i].score);
}

}  // namespace
}  // namespace figdb::baselines
