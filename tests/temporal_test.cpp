#include <algorithm>
#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corpus/generator.hpp"
#include "temporal/burst_detector.hpp"
#include "temporal/burst_eval.hpp"
#include "temporal/decay.hpp"
#include "temporal/segment_manifest.hpp"
#include "temporal/segmented_store.hpp"
#include "temporal/temporal_merger.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/serde.hpp"

/// \file temporal_test.cpp
/// The temporal serving layer: segment manifest framing, the decay
/// factorization, the merge-time top-k fold, burst detection against the
/// generator's injected ground truth, and the SegmentedStore itself —
/// merge-time δ-decay equivalent to exhaustive decayed rescoring across
/// segment counts {1, 2, 4, 8}, the segment clock's clamp/roll routing,
/// sliding-window retention, and the seal/merge/retention crash matrices
/// (old-or-new-never-a-mix, the shard rebalance discipline).

namespace figdb::temporal {
namespace {

using corpus::ObjectId;
using util::ScopedFailPoint;
using util::StatusCode;

// ===================================================================
// Segment manifest framing — the untrusted-bytes surface shared with
// fuzz_segment_manifest.
// ===================================================================

SegmentManifest TwoSegmentManifest() {
  SegmentManifest m;
  m.generation = 3;
  m.segments.push_back({.id = 0,
                        .min_epoch = 0,
                        .max_epoch = 1,
                        .base = 0,
                        .count = 10,
                        .state = SegmentState::kSealed});
  m.segments.push_back({.id = 1,
                        .min_epoch = 2,
                        .max_epoch = 3,
                        .base = 10,
                        .count = 4,
                        .state = SegmentState::kActive});
  return m;
}

TEST(SegmentManifestTest, RoundTripsAcrossTheValidRange) {
  SegmentManifest merged_first = TwoSegmentManifest();
  merged_first.segments[0].id = 7;  // fresh merge id, earliest base: legal
  const SegmentManifest cases[] = {
      {},  // no segments: legal framing (Recover rejects it separately)
      TwoSegmentManifest(),
      merged_first,
      {.generation = std::uint64_t{1} << 40,
       .segments = {{.id = 2,
                     .min_epoch = 5,
                     .max_epoch = 9,
                     .base = 100,
                     .count = 0,
                     .state = SegmentState::kActive}}},
  };
  for (const SegmentManifest& m : cases) {
    auto parsed = ParseSegmentManifest(SerializeSegmentManifest(m));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(*parsed, m);
  }
}

TEST(SegmentManifestTest, TruncationBelowTheHeaderIsDataLoss) {
  const std::string bytes = SerializeSegmentManifest(TwoSegmentManifest());
  for (std::size_t len : {std::size_t{0}, std::size_t{5}, std::size_t{11}}) {
    auto parsed = ParseSegmentManifest(bytes.substr(0, len));
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss) << len;
  }
}

TEST(SegmentManifestTest, WrongMagicAndVersionAreInvalidArgument) {
  std::string bad_magic = SerializeSegmentManifest({});
  bad_magic[0] = char(bad_magic[0] ^ 0x5a);
  EXPECT_EQ(ParseSegmentManifest(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = SerializeSegmentManifest({});
  bad_version[4] = char(bad_version[4] ^ 0x01);
  EXPECT_EQ(ParseSegmentManifest(bad_version).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SegmentManifestTest, PayloadCorruptionIsDataLoss) {
  const std::string bytes = SerializeSegmentManifest(TwoSegmentManifest());
  for (std::size_t i = 12; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = char(corrupt[i] ^ 0x80);
    EXPECT_EQ(ParseSegmentManifest(corrupt).status().code(),
              StatusCode::kDataLoss)
        << "flipped byte " << i;
  }
  EXPECT_EQ(
      ParseSegmentManifest(bytes.substr(0, bytes.size() - 1)).status().code(),
      StatusCode::kDataLoss);
}

/// Frames an arbitrary payload with a CORRECT CRC so the structural
/// validators (not the checksum) are what reject it.
std::string FrameWithValidCrc(const std::string& payload) {
  util::BinaryWriter out;
  out.PutFixed32(kSegmentManifestMagic);
  out.PutFixed32(kSegmentManifestVersion);
  out.PutFixed32(util::Crc32(payload));
  out.PutRaw(payload);
  return out.Take();
}

TEST(SegmentManifestTest, TrailingBytesWithValidCrcAreRejected) {
  util::BinaryWriter payload;
  payload.PutVarint(1);   // generation
  payload.PutVarint(0);   // num_segments
  payload.PutU8(0xee);    // trailing garbage the CRC covers
  auto parsed = ParseSegmentManifest(FrameWithValidCrc(payload.Buffer()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(SegmentManifestTest, ShortPayloadWithValidCrcIsDataLoss) {
  util::BinaryWriter payload;
  payload.PutVarint(1);  // generation only — num_segments missing
  auto parsed = ParseSegmentManifest(FrameWithValidCrc(payload.Buffer()));
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kDataLoss);

  util::BinaryWriter entry_cut;
  entry_cut.PutVarint(1);  // generation
  entry_cut.PutVarint(1);  // one segment promised…
  entry_cut.PutVarint(0);  // …but only its id delivered
  auto cut = ParseSegmentManifest(FrameWithValidCrc(entry_cut.Buffer()));
  ASSERT_FALSE(cut.ok());
  EXPECT_EQ(cut.status().code(), StatusCode::kDataLoss);
}

TEST(SegmentManifestTest, SemanticViolationsAreInvalidArgument) {
  std::vector<SegmentManifest> bad;

  bad.push_back(TwoSegmentManifest());
  bad.back().generation = 0;

  bad.push_back(TwoSegmentManifest());
  bad.back().segments[1].id = bad.back().segments[0].id;  // duplicate id

  bad.push_back(TwoSegmentManifest());
  bad.back().segments[1].base = 9;  // overlaps [0, 10)

  bad.push_back(TwoSegmentManifest());
  bad.back().segments[1].min_epoch = 0;  // regresses below seg 0's max

  bad.push_back(TwoSegmentManifest());
  std::swap(bad.back().segments[0].min_epoch,
            bad.back().segments[0].max_epoch);  // inverted range

  bad.push_back(TwoSegmentManifest());
  bad.back().segments[0].state = SegmentState::kActive;  // active not last

  SegmentManifest oversized;
  for (std::uint32_t i = 0; i <= kMaxSegments; ++i)
    oversized.segments.push_back({.id = i,
                                  .min_epoch = i,
                                  .max_epoch = i,
                                  .base = i,
                                  .count = 0,
                                  .state = SegmentState::kSealed});
  oversized.segments.back().state = SegmentState::kActive;
  bad.push_back(std::move(oversized));

  for (std::size_t i = 0; i < bad.size(); ++i) {
    auto parsed = ParseSegmentManifest(SerializeSegmentManifest(bad[i]));
    ASSERT_FALSE(parsed.ok()) << "case " << i;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "case " << i << ": " << parsed.status().ToString();
  }

  // An unknown state byte (serializer can't produce one; patch the frame).
  SegmentManifest m = TwoSegmentManifest();
  std::string bytes = SerializeSegmentManifest(m);
  const std::size_t last_state = bytes.size() - 1;  // u8 state ends an entry
  bytes[last_state] = 7;
  util::BinaryWriter refashioned;
  refashioned.PutFixed32(kSegmentManifestMagic);
  refashioned.PutFixed32(kSegmentManifestVersion);
  refashioned.PutFixed32(util::Crc32(bytes.substr(12)));
  refashioned.PutRaw(bytes.substr(12));
  auto parsed = ParseSegmentManifest(refashioned.Take());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

// ===================================================================
// The decay factorization (decay.hpp) and the merge-time fold.
// ===================================================================

TEST(DecayWeightTest, IdentityClampingAndFactorization) {
  EXPECT_EQ(DecayWeight(0.4, 0), 1.0);
  EXPECT_EQ(DecayWeight(0.4, -3), 1.0);  // negative ages clamp to identity
  EXPECT_EQ(DecayWeight(1.0, 17), 1.0);  // delta 1 never decays
  EXPECT_DOUBLE_EQ(DecayWeight(0.5, 3), 0.125);
  EXPECT_EQ(DecayWeightAt(0.4, 7, 9), 1.0);  // future epochs clamp too

  // The factorization the segmented path relies on: composing through any
  // intermediate reference epoch agrees within the documented 1e-9.
  for (double delta : {0.9, 0.6, 0.25, 0.1}) {
    for (std::uint32_t ref = 3; ref <= 11; ++ref) {
      const double direct = DecayWeightAt(delta, 11, 2);
      const double split = DecayWeightAt(delta, 11, ref) *
                           DecayWeightAt(delta, ref, 2);
      EXPECT_NEAR(split / direct, 1.0, 1e-9)
          << "delta=" << delta << " ref=" << ref;
    }
  }
}

TEST(TemporalMergerTest, FoldsWeightsBoundsAndOrderDeterministically) {
  SegmentLeg old_leg;
  old_leg.segment_id = 0;
  old_leg.weight = 0.25;
  old_leg.entries = {{.object = 4, .score = 2.0}, {.object = 9, .score = 1.6}};
  old_leg.bound = 1.6;
  SegmentLeg new_leg;
  new_leg.segment_id = 1;
  new_leg.weight = 1.0;
  new_leg.entries = {{.object = 12, .score = 0.5},
                     {.object = 10, .score = 0.4}};
  new_leg.bound = 0.3;

  const TemporalSearchResult r =
      MergeSegmentTopK({old_leg, new_leg}, /*k=*/3);
  EXPECT_EQ(r.segments_merged, 2u);
  EXPECT_EQ(r.min_weight, 0.25);
  EXPECT_EQ(r.max_weight, 1.0);
  // max(0.25 * 1.6, 1.0 * 0.3): the old leg's scaled bound dominates.
  EXPECT_DOUBLE_EQ(r.ta_bound, 0.4);
  ASSERT_EQ(r.results.size(), 3u);
  EXPECT_EQ(r.results[0].object, 4u);  // 2.0 * 0.25
  EXPECT_EQ(r.results[0].score, 0.5);
  // 0.5*1.0 vs 2.0*0.25 tie at 0.5 — the smaller id wins rank 0.
  EXPECT_EQ(r.results[1].object, 12u);
  EXPECT_EQ(r.results[1].score, 0.5);
  EXPECT_EQ(r.results[2].object, 9u);  // 1.6 * 0.25
  EXPECT_DOUBLE_EQ(r.results[2].score, 0.4);

  // Ties break toward the smaller id: 4 < 12 at equal score 0.5.
  EXPECT_LT(r.results[0].object, r.results[1].object);

  // A weight-1 leg must pass its scores through BITWISE (the IEEE
  // multiplicative identity — the single-segment bit-identity claim).
  const TemporalSearchResult solo = MergeSegmentTopK({new_leg}, 2);
  ASSERT_EQ(solo.results.size(), 2u);
  EXPECT_EQ(solo.results[0].score, 0.5);
  EXPECT_EQ(solo.results[1].score, 0.4);
  EXPECT_EQ(solo.ta_bound, 0.3);
}

// ===================================================================
// Burst detection — mechanics, then the injected-workload eval.
// ===================================================================

corpus::MediaObject ObjectWith(std::uint16_t month, corpus::FeatureKey key,
                               std::uint32_t frequency) {
  corpus::MediaObject obj;
  obj.month = month;
  obj.features.push_back({key, frequency});
  return obj;
}

TEST(BurstDetectorTest, GatesBaselineAndSupportThenScoresZ) {
  const corpus::FeatureKey f =
      corpus::MakeFeatureKey(corpus::FeatureType::kText, 1);
  BurstDetector det({.min_baseline_epochs = 2, .min_support = 10,
                     .threshold = 3.0});
  // Out-of-order epochs on purpose: the clamp fault matrix feeds these.
  det.ObserveObject(ObjectWith(3, f, 50));
  det.ObserveObject(ObjectWith(0, f, 5));
  det.ObserveObject(ObjectWith(2, f, 5));
  det.ObserveObject(ObjectWith(1, f, 5));
  EXPECT_EQ(det.ObservedObjects(), 4u);
  EXPECT_EQ(det.CountOf(f, 3), 50u);
  EXPECT_EQ(det.CountOf(f, 4), 0u);

  const auto events = det.Detect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].feature, f);
  EXPECT_EQ(events[0].epoch, 3u);
  EXPECT_EQ(events[0].count, 50u);
  EXPECT_DOUBLE_EQ(events[0].baseline_mean, 5.0);
  // stddev of a flat baseline is 0; the 1.0 floor makes z = 50 - 5.
  EXPECT_DOUBLE_EQ(events[0].score, 45.0);

  // Below min_support the same spike shape stays silent…
  BurstDetector quiet({.min_baseline_epochs = 2, .min_support = 10,
                       .threshold = 3.0});
  quiet.ObserveObject(ObjectWith(0, f, 1));
  quiet.ObserveObject(ObjectWith(1, f, 1));
  quiet.ObserveObject(ObjectWith(2, f, 9));
  EXPECT_TRUE(quiet.Detect().empty());

  // …and so does a spike with no baseline history.
  BurstDetector early({.min_baseline_epochs = 2, .min_support = 10,
                       .threshold = 3.0});
  early.ObserveObject(ObjectWith(1, f, 80));
  EXPECT_TRUE(early.Detect().empty());
}

TEST(BurstDetectorTest, EventsOrderByScoreThenEpochThenFeature) {
  const corpus::FeatureKey a =
      corpus::MakeFeatureKey(corpus::FeatureType::kText, 1);
  const corpus::FeatureKey b =
      corpus::MakeFeatureKey(corpus::FeatureType::kText, 2);
  const corpus::FeatureKey c =
      corpus::MakeFeatureKey(corpus::FeatureType::kText, 3);
  BurstDetector det({.min_baseline_epochs = 2, .min_support = 10,
                     .threshold = 3.0});
  // a and b spike identically at epoch 2; c carries its flat baseline one
  // epoch further and spikes at 3. All three baselines are flat fives
  // (stddev 0 → the 1.0 floor), so every spike scores exactly 25 − 5 = 20
  // and only the (epoch asc, feature asc) tiebreaks decide the order.
  for (std::uint16_t m = 0; m < 2; ++m) {
    det.ObserveObject(ObjectWith(m, a, 5));
    det.ObserveObject(ObjectWith(m, b, 5));
    det.ObserveObject(ObjectWith(m, c, 5));
  }
  det.ObserveObject(ObjectWith(2, a, 25));
  det.ObserveObject(ObjectWith(2, b, 25));
  det.ObserveObject(ObjectWith(2, c, 5));
  det.ObserveObject(ObjectWith(3, c, 25));

  const auto events = det.Detect();
  ASSERT_EQ(events.size(), 3u);
  for (const BurstEvent& e : events) EXPECT_DOUBLE_EQ(e.score, 20.0);
  EXPECT_EQ(events[0].feature, a);
  EXPECT_EQ(events[0].epoch, 2u);
  EXPECT_EQ(events[1].feature, b);
  EXPECT_EQ(events[1].epoch, 2u);
  EXPECT_EQ(events[2].feature, c);
  EXPECT_EQ(events[2].epoch, 3u);
}

TEST(BurstEvalTest, MatchesTermAndWindowAndHandlesVacuousCases) {
  const corpus::FeatureKey term =
      corpus::MakeFeatureKey(corpus::FeatureType::kText, 9);
  const corpus::FeatureKey user =
      corpus::MakeFeatureKey(corpus::FeatureType::kUser, 9);
  corpus::BurstLabel label;
  label.topic = 3;
  label.epochs = {4, 5};
  label.terms = {term};

  // Vacuous: no events → precision 1; no labels → recall 1.
  const auto vacuous = EvaluateBursts({}, {label});
  EXPECT_EQ(vacuous.precision, 1.0);
  EXPECT_EQ(vacuous.recall, 0.0);
  EXPECT_EQ(EvaluateBursts({}, {}).recall, 1.0);

  std::vector<BurstEvent> events;
  events.push_back({.feature = term, .epoch = 4, .score = 9.0});   // match
  events.push_back({.feature = term, .epoch = 1, .score = 8.0});   // outside
  events.push_back({.feature = user, .epoch = 4, .score = 30.0});  // not text
  const auto r = EvaluateBursts(events, {label});
  EXPECT_EQ(r.labels, 1u);
  EXPECT_EQ(r.detected_text, 2u);  // the user event is excluded
  EXPECT_EQ(r.matched_events, 1u);
  EXPECT_EQ(r.recalled_labels, 1u);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(BurstEvalTest, InjectedBurstsAreDetectedWithHighPrecisionAndRecall) {
  corpus::GeneratorConfig config;
  config.num_objects = 3000;
  config.num_topics = 20;
  config.num_users = 400;
  config.visual_words = 64;
  config.num_months = 6;
  config.seed = 20109;
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 2;  // the favourite histories are irrelevant here
  rc.num_burst_topics = 3;
  rc.burst_window_months = 1;
  rc.burst_objects_per_month = 150;
  const corpus::RecommendationDataset ds =
      corpus::Generator(config).MakeRecommendationDataset(rc);
  ASSERT_EQ(ds.bursts.size(), 3u);
  for (const corpus::BurstLabel& label : ds.bursts) {
    ASSERT_FALSE(label.terms.empty());
    ASSERT_FALSE(label.epochs.empty());
    EXPECT_GE(label.epochs.front(), std::uint32_t(ds.profile_months));
  }

  BurstDetector detector(
      {.min_baseline_epochs = 2, .min_support = 25, .threshold = 8.0});
  for (ObjectId i = 0; i < ds.corpus.Size(); ++i)
    detector.ObserveObject(ds.corpus.Object(i));

  const auto result = EvaluateBursts(detector.Detect(), ds.bursts);
  EXPECT_GT(result.detected_text, 0u);
  EXPECT_GE(result.precision, 0.7)
      << result.matched_events << "/" << result.detected_text
      << " detected text events matched a label";
  EXPECT_GE(result.recall, 0.7)
      << result.recalled_labels << "/" << result.labels
      << " injected bursts recalled";
}

TEST(BurstEvalTest, WithoutInjectionTheDatasetIsUnchanged) {
  corpus::GeneratorConfig config;
  config.num_objects = 400;
  config.num_topics = 5;
  config.num_users = 60;
  config.visual_words = 32;
  config.seed = 20110;
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 3;
  const auto plain = corpus::Generator(config).MakeRecommendationDataset(rc);
  EXPECT_TRUE(plain.bursts.empty());
  // Injection off is draw-for-draw identical: same corpus, same profiles.
  const auto again = corpus::Generator(config).MakeRecommendationDataset(rc);
  ASSERT_EQ(plain.corpus.Size(), again.corpus.Size());
  ASSERT_EQ(plain.users.size(), again.users.size());
  for (std::size_t u = 0; u < plain.users.size(); ++u)
    EXPECT_EQ(plain.users[u].profile, again.users[u].profile);
}

// ===================================================================
// SegmentedStore fixture.
// ===================================================================

class SegmentedStoreTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kMonths = 8;

  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 240;
    config.num_topics = 5;
    config.num_users = 60;
    config.visual_words = 32;
    config.num_months = kMonths;
    config.seed = 20108;
    const corpus::Corpus raw =
        corpus::Generator(config).MakeRetrievalCorpus();
    // Deterministic month coverage: i % kMonths populates every epoch
    // bucket, so epochs_per_segment in {8,4,2,1} yields {1,2,4,8} segments.
    corpus_ = new corpus::Corpus(raw.Prefix(0));
    for (ObjectId i = 0; i < raw.Size(); ++i) {
      corpus::MediaObject obj = raw.Object(i);
      obj.month = static_cast<std::uint16_t>(i % kMonths);
      corpus_->Add(std::move(obj));
    }
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  static std::string TempDir(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("figdb_temporal_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
  }

  static SegmentedStore::Options MakeOptions(std::uint32_t eps,
                                             std::uint32_t retention = 0) {
    SegmentedStore::Options options;
    options.epochs_per_segment = eps;
    options.retention_epochs = retention;
    return options;
  }

  /// A probe object with the given month (the store re-ids on ingest, so
  /// only the feature bag and the month matter).
  static corpus::MediaObject Probe(ObjectId source, std::uint16_t month) {
    corpus::MediaObject obj = corpus_->Object(source);
    obj.month = month;
    return obj;
  }

  /// The tentpole's central claim: merge-time δ-decay equals exhaustive
  /// decayed rescoring — bitwise when every leg's weight is exactly 1
  /// (single segment, or delta == 1), within a relative 1e-9 otherwise.
  static void ExpectDecayEquivalence(SegmentedStore& store,
                                     std::uint32_t now) {
    constexpr double kTol = 1e-9;
    for (ObjectId probe : {ObjectId{3}, ObjectId{17}, ObjectId{41},
                           ObjectId{73}}) {
      for (double delta : {1.0, 0.6, 0.25}) {
        SCOPED_TRACE("probe=" + std::to_string(probe) +
                     " delta=" + std::to_string(delta) +
                     " now=" + std::to_string(now));
        auto got = store.Search(corpus_->Object(probe), 10, delta, now);
        auto want =
            store.SearchExhaustiveDecayed(corpus_->Object(probe), 10, delta,
                                          now);
        ASSERT_TRUE(got.ok()) << got.status().ToString();
        ASSERT_TRUE(want.ok()) << want.status().ToString();
        EXPECT_EQ(got->segments_merged, store.NumSegments());
        // w_s == 1.0 exactly (bitwise identity) needs delta == 1, or a
        // single segment whose ref epoch IS now — querying past the
        // newest bucket decays even a lone leg.
        const bool bitwise =
            delta == 1.0 ||
            (store.NumSegments() == 1 &&
             now <= store.EntryOf(store.NumSegments() - 1).max_epoch);
        ASSERT_EQ(got->results.size(), want->size());
        for (std::size_t i = 0; i < want->size(); ++i) {
          const double a = got->results[i].score;
          const double b = (*want)[i].score;
          if (bitwise) {
            EXPECT_EQ(got->results[i].object, (*want)[i].object)
                << "rank " << i;
            EXPECT_EQ(a, b) << "rank " << i;  // bitwise, not approximate
          } else {
            const double drift =
                std::fabs(a - b) / std::max(std::fabs(b), 1e-12);
            EXPECT_LE(drift, kTol) << "rank " << i;
            // Near-ties within the tolerance may legally swap order
            // between the two paths; a swap beyond it is a real miss.
            if (got->results[i].object != (*want)[i].object) {
              EXPECT_LE(drift, kTol) << "id mismatch at rank " << i;
            }
          }
        }
      }
    }
  }

  static corpus::Corpus* corpus_;
};

corpus::Corpus* SegmentedStoreTest::corpus_ = nullptr;

TEST_F(SegmentedStoreTest, CreateBucketsByEpochAndRecoverRoundTrips) {
  const std::string dir = TempDir("create");
  auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(2));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->NumSegments(), 4u);
  EXPECT_EQ(store->TotalObjects(), corpus_->Size());
  EXPECT_EQ(store->LiveObjects(), corpus_->Size());
  EXPECT_EQ(store->ClockEpoch(), kMonths - 1);
  EXPECT_EQ(store->SkewClamped(), 0u);
  EXPECT_EQ(store->Bursts().ObservedObjects(), corpus_->Size());

  for (std::size_t s = 0; s < 4; ++s) {
    const SegmentEntry& e = store->EntryOf(s);
    EXPECT_EQ(e.min_epoch, 2 * s);
    EXPECT_EQ(e.max_epoch, 2 * s + 1);
    EXPECT_EQ(e.count, corpus_->Size() / 4);
    EXPECT_EQ(e.base, s * (corpus_->Size() / 4));
    EXPECT_EQ(e.state,
              s == 3 ? SegmentState::kActive : SegmentState::kSealed);
    // Every object landed in its epoch bucket.
    const corpus::Corpus& sc = store->StoreOf(s).GetCorpus();
    for (ObjectId l = 0; l < sc.Size(); ++l) {
      EXPECT_GE(std::uint32_t(sc.Object(l).month), e.min_epoch);
      EXPECT_LE(std::uint32_t(sc.Object(l).month), e.max_epoch);
    }
  }

  // A second Create on the same directory must refuse, not clobber.
  auto clobber = SegmentedStore::Create(dir, *corpus_, MakeOptions(2));
  ASSERT_FALSE(clobber.ok());
  EXPECT_EQ(clobber.status().code(), StatusCode::kFailedPrecondition);

  const SegmentManifest manifest = store->Manifest();
  { auto moved = std::move(*store); }  // "crash": drop the live store
  auto recovered = SegmentedStore::Recover(dir, MakeOptions(2));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->Manifest(), manifest);
  EXPECT_EQ(recovered->TotalObjects(), corpus_->Size());
  EXPECT_EQ(recovered->ClockEpoch(), kMonths - 1);
  EXPECT_EQ(recovered->Bursts().ObservedObjects(), corpus_->Size());
  ExpectDecayEquivalence(*recovered, kMonths - 1);
  std::filesystem::remove_all(dir);
}

TEST_F(SegmentedStoreTest, MergeTimeDecayMatchesExhaustiveAcrossCounts) {
  for (std::uint32_t eps : {8u, 4u, 2u, 1u}) {
    SCOPED_TRACE("epochs_per_segment=" + std::to_string(eps));
    const std::string dir = TempDir("equiv_" + std::to_string(eps));
    auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(eps));
    ASSERT_TRUE(store.ok()) << store.status().ToString();
    ASSERT_EQ(store->NumSegments(), kMonths / eps);
    ExpectDecayEquivalence(*store, kMonths - 1);   // now == newest epoch
    ExpectDecayEquivalence(*store, kMonths + 2);   // querying the future
    std::filesystem::remove_all(dir);
  }
}

TEST_F(SegmentedStoreTest, SearchValidatesDeltaAndNow) {
  const std::string dir = TempDir("validate");
  auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(4));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  const corpus::MediaObject& q = corpus_->Object(3);
  EXPECT_EQ(store->Search(q, 5, 0.0, kMonths).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(store->Search(q, 5, 1.5, kMonths).status().code(),
            StatusCode::kInvalidArgument);
  // now behind the clock would need decay amplification: refused.
  EXPECT_EQ(store->Search(q, 5, 0.5, kMonths - 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      store->SearchExhaustiveDecayed(q, 5, 0.5, kMonths - 2).status().code(),
      StatusCode::kInvalidArgument);
  std::filesystem::remove_all(dir);
}

TEST_F(SegmentedStoreTest, IngestRoutesThroughTheSegmentClock) {
  const std::string dir = TempDir("ingest");
  auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(4));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->NumSegments(), 2u);  // buckets [0,3] and [4,7]

  // In-bucket month: appends to the active segment, dense global ids.
  auto id = store->Ingest(Probe(0, 5));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_EQ(*id, corpus_->Size());

  // Below the active floor: clamped up to it and counted.
  auto clamped = store->Ingest(Probe(1, 2));
  ASSERT_TRUE(clamped.ok()) << clamped.status().ToString();
  EXPECT_EQ(*clamped, corpus_->Size() + 1);
  EXPECT_EQ(store->SkewClamped(), 1u);
  const corpus::Corpus& active = store->StoreOf(1).GetCorpus();
  EXPECT_EQ(active.Object(active.Size() - 1).month, 4);  // the clamp
  EXPECT_EQ(store->NumSegments(), 2u);  // no roll

  // Sealed segments are immutable; the active one accepts removal.
  EXPECT_EQ(store->Remove(5).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store->Remove(*id).ok());
  EXPECT_EQ(store->Remove(corpus_->Size() + 500).code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store->LiveObjects(), corpus_->Size() + 1);

  // A month past the bucket ceiling seals the active segment and rolls.
  auto rolled = store->Ingest(Probe(2, 9));
  ASSERT_TRUE(rolled.ok()) << rolled.status().ToString();
  EXPECT_EQ(store->NumSegments(), 3u);
  EXPECT_EQ(store->EntryOf(1).state, SegmentState::kSealed);
  EXPECT_EQ(store->EntryOf(2).state, SegmentState::kActive);
  EXPECT_EQ(store->EntryOf(2).min_epoch, 8u);
  EXPECT_EQ(store->EntryOf(2).max_epoch, 11u);
  EXPECT_EQ(store->ClockEpoch(), 9u);
  EXPECT_EQ(*rolled, corpus_->Size() + 2);

  ASSERT_TRUE(store->Checkpoint().ok());
  { auto moved = std::move(*store); }
  auto recovered = SegmentedStore::Recover(dir, MakeOptions(4));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->NumSegments(), 3u);
  EXPECT_EQ(recovered->TotalObjects(), corpus_->Size() + 3);
  EXPECT_EQ(recovered->LiveObjects(), corpus_->Size() + 2);
  EXPECT_EQ(recovered->ClockEpoch(), 9u);
  ExpectDecayEquivalence(*recovered, 9);
  std::filesystem::remove_all(dir);
}

TEST_F(SegmentedStoreTest, ClockSkewFaultIsClampedAndCounted) {
  const std::string dir = TempDir("skew");
  auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(4));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  {
    // The fail point rewinds the ingest timestamp below the active floor;
    // the clamp must absorb it instead of violating the epoch invariant.
    ScopedFailPoint fp("temporal/clock_skew", {.max_fires = 1});
    auto id = store->Ingest(Probe(0, 6));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
  }
  EXPECT_EQ(store->SkewClamped(), 1u);
  const corpus::Corpus& active = store->StoreOf(1).GetCorpus();
  EXPECT_EQ(active.Object(active.Size() - 1).month, 4);
  // The burst detector saw the CLAMPED epoch — the stored truth.
  EXPECT_EQ(store->Bursts().ObservedObjects(), corpus_->Size() + 1);
  ExpectDecayEquivalence(*store, kMonths - 1);
  std::filesystem::remove_all(dir);
}

TEST_F(SegmentedStoreTest, RetentionSlidesTheWindow) {
  const std::string dir = TempDir("retention");
  auto store =
      SegmentedStore::Create(dir, *corpus_, MakeOptions(1, /*retention=*/4));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->NumSegments(), 8u);

  // Nothing has aged out at now == 3 (epoch 0 expires at 0 + 4 <= now).
  ASSERT_TRUE(store->RunRetention(3).ok());
  EXPECT_EQ(store->NumSegments(), 8u);

  // At now == 7 epochs 0..3 have aged out of the 4-epoch window.
  ASSERT_TRUE(store->RunRetention(7).ok());
  EXPECT_EQ(store->NumSegments(), 4u);
  EXPECT_EQ(store->EntryOf(0).min_epoch, 4u);
  EXPECT_EQ(store->TotalObjects(), corpus_->Size() / 2);
  for (std::uint32_t id : {0u, 1u, 2u, 3u})
    EXPECT_FALSE(std::filesystem::exists(SegmentedStore::SegmentDir(dir, id)))
        << "seg-" << id;
  ExpectDecayEquivalence(*store, kMonths - 1);

  // Idempotent: a second pass at the same now is a no-op.
  ASSERT_TRUE(store->RunRetention(7).ok());
  EXPECT_EQ(store->NumSegments(), 4u);

  { auto moved = std::move(*store); }
  auto recovered = SegmentedStore::Recover(dir, MakeOptions(1, 4));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->NumSegments(), 4u);
  EXPECT_EQ(recovered->TotalObjects(), corpus_->Size() / 2);
  ExpectDecayEquivalence(*recovered, kMonths - 1);
  std::filesystem::remove_all(dir);
}

TEST_F(SegmentedStoreTest, MergeSealedCompactsAndPreservesAnswers) {
  const std::string dir = TempDir("merge");
  auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(1));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  ASSERT_EQ(store->NumSegments(), 8u);

  ASSERT_TRUE(store->MergeSealed().ok());
  ASSERT_EQ(store->NumSegments(), 2u);
  const SegmentEntry& merged = store->EntryOf(0);
  EXPECT_EQ(merged.id, 8u);  // fresh id, earliest base
  EXPECT_EQ(merged.min_epoch, 0u);
  EXPECT_EQ(merged.max_epoch, 6u);
  EXPECT_EQ(merged.base, 0u);
  EXPECT_EQ(merged.count, corpus_->Size() - corpus_->Size() / 8);
  EXPECT_EQ(merged.state, SegmentState::kSealed);
  EXPECT_EQ(store->TotalObjects(), corpus_->Size());
  ExpectDecayEquivalence(*store, kMonths - 1);

  // With one sealed segment left a second merge is a no-op.
  ASSERT_TRUE(store->MergeSealed().ok());
  EXPECT_EQ(store->NumSegments(), 2u);

  { auto moved = std::move(*store); }
  auto recovered = SegmentedStore::Recover(dir, MakeOptions(1));
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->NumSegments(), 2u);
  ExpectDecayEquivalence(*recovered, kMonths - 1);
  std::filesystem::remove_all(dir);
}

// ===================================================================
// Crash matrices — every numbered site of the three manifest protocols,
// each followed by recovery onto exactly-old or exactly-new.
// ===================================================================

TEST_F(SegmentedStoreTest, RollCrashMatrixRecoversOldOrNew) {
  std::size_t crash_points = 0;
  bool exhausted = false;
  for (std::uint64_t skip = 0; !exhausted; ++skip) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    const std::string dir = TempDir("roll_crash_" + std::to_string(skip));
    {
      auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(1));
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ScopedFailPoint fp("temporal/merge_crash",
                         {.skip_hits = skip, .max_fires = 1});
      auto id = store->Ingest(Probe(0, kMonths));  // past the ceiling: rolls
      if (fp.HitCount() <= skip) {
        ASSERT_TRUE(id.ok()) << id.status().ToString();
        exhausted = true;
      } else {
        ASSERT_FALSE(id.ok()) << "site " << skip << " fired but Ingest OK";
        EXPECT_EQ(id.status().code(), StatusCode::kUnavailable);
        ++crash_points;
      }
      // The store object dies here — the "crash".
    }
    auto recovered = SegmentedStore::Recover(dir, MakeOptions(1));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered->NumSegments() == 8 || recovered->NumSegments() == 9)
        << "recovered onto " << recovered->NumSegments()
        << " segments — neither the old nor the new clock state";
    // The object itself is ingested after the roll commits, so a crash
    // anywhere in the roll always loses it; re-ingest must succeed.
    EXPECT_EQ(recovered->TotalObjects(),
              exhausted ? corpus_->Size() + 1 : corpus_->Size());
    if (!exhausted) {
      auto retry = recovered->Ingest(Probe(0, kMonths));
      ASSERT_TRUE(retry.ok()) << retry.status().ToString();
      EXPECT_EQ(*retry, corpus_->Size());
      EXPECT_EQ(recovered->NumSegments(), 9u);
    }
    ExpectDecayEquivalence(*recovered, kMonths);
    std::filesystem::remove_all(dir);
  }
  EXPECT_EQ(crash_points, 4u);  // the roll protocol's numbered sites
}

TEST_F(SegmentedStoreTest, MergeCrashMatrixRecoversOldOrNew) {
  std::size_t crash_points = 0;
  bool exhausted = false;
  for (std::uint64_t skip = 0; !exhausted; ++skip) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    const std::string dir = TempDir("merge_crash_" + std::to_string(skip));
    {
      auto store = SegmentedStore::Create(dir, *corpus_, MakeOptions(1));
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ScopedFailPoint fp("temporal/merge_crash",
                         {.skip_hits = skip, .max_fires = 1});
      const util::Status st = store->MergeSealed();
      if (fp.HitCount() <= skip) {
        ASSERT_TRUE(st.ok()) << st.ToString();
        exhausted = true;
      } else {
        ASSERT_FALSE(st.ok()) << "site " << skip << " fired but merge OK";
        EXPECT_EQ(st.code(), StatusCode::kUnavailable);
        ++crash_points;
      }
    }
    auto recovered = SegmentedStore::Recover(dir, MakeOptions(1));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered->NumSegments() == 8 || recovered->NumSegments() == 2)
        << "recovered onto " << recovered->NumSegments()
        << " segments — neither the old set nor the merged one";
    EXPECT_EQ(recovered->TotalObjects(), corpus_->Size());
    // No tombstones and no orphan directories survive recovery.
    for (const SegmentEntry& e : recovered->Manifest().segments)
      EXPECT_NE(e.state, SegmentState::kTombstoned);
    ExpectDecayEquivalence(*recovered, kMonths - 1);
    // The merge completes cleanly on the recovered store.
    ASSERT_TRUE(recovered->MergeSealed().ok());
    EXPECT_EQ(recovered->NumSegments(), 2u);
    std::filesystem::remove_all(dir);
  }
  EXPECT_EQ(crash_points, 6u);  // the merge protocol's numbered sites
}

TEST_F(SegmentedStoreTest, RetentionCrashMatrixRecoversOldOrNew) {
  std::size_t crash_points = 0;
  bool exhausted = false;
  for (std::uint64_t skip = 0; !exhausted; ++skip) {
    SCOPED_TRACE("skip=" + std::to_string(skip));
    const std::string dir =
        TempDir("retention_crash_" + std::to_string(skip));
    {
      auto store = SegmentedStore::Create(dir, *corpus_,
                                          MakeOptions(1, /*retention=*/4));
      ASSERT_TRUE(store.ok()) << store.status().ToString();
      ScopedFailPoint fp("temporal/retention_crash",
                         {.skip_hits = skip, .max_fires = 1});
      const util::Status st = store->RunRetention(kMonths - 1);
      if (fp.HitCount() <= skip) {
        ASSERT_TRUE(st.ok()) << st.ToString();
        exhausted = true;
      } else {
        ASSERT_FALSE(st.ok()) << "site " << skip << " fired but retention OK";
        EXPECT_EQ(st.code(), StatusCode::kUnavailable);
        ++crash_points;
      }
    }
    auto recovered = SegmentedStore::Recover(dir, MakeOptions(1, 4));
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    EXPECT_TRUE(recovered->NumSegments() == 8 || recovered->NumSegments() == 4)
        << "recovered onto " << recovered->NumSegments()
        << " segments — neither the old window nor the new one";
    for (const SegmentEntry& e : recovered->Manifest().segments) {
      EXPECT_NE(e.state, SegmentState::kTombstoned);
      // Old-or-new, no mix: either the full window or exactly epochs 4..7.
      if (recovered->NumSegments() == 4) {
        EXPECT_GE(e.min_epoch, 4u);
      }
    }
    ExpectDecayEquivalence(*recovered, kMonths - 1);
    // Re-running the slide on the recovered store converges to the new
    // window regardless of where the crash landed.
    ASSERT_TRUE(recovered->RunRetention(kMonths - 1).ok());
    EXPECT_EQ(recovered->NumSegments(), 4u);
    EXPECT_EQ(recovered->TotalObjects(), corpus_->Size() / 2);
    std::filesystem::remove_all(dir);
  }
  // 1 before + 1 after the tombstone commit, 4 per-victim deletions,
  // 1 after the clean commit.
  EXPECT_EQ(crash_points, 7u);
}

}  // namespace
}  // namespace figdb::temporal
