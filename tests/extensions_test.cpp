// Tests for the library extensions beyond the paper's core: binary
// persistence, ad-hoc query building, NRA merging, incremental indexing,
// significance testing, recommendation explanations and the co-occurrence
// text-similarity strategy.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>

#include "corpus/generator.hpp"
#include "corpus/query_builder.hpp"
#include "eval/significance.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "index/threshold_algorithm.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace figdb {
namespace {

// ------------------------------------------------------------------ serde

TEST(SerdeTest, VarintRoundTrip) {
  util::BinaryWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20,
                                  0xffffffffffffffffULL};
  for (std::uint64_t v : values) w.PutVarint(v);
  util::BinaryReader r(w.Buffer());
  for (std::uint64_t v : values) EXPECT_EQ(r.GetVarint(), v);
  EXPECT_TRUE(r.Ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, SignedVarintRoundTrip) {
  util::BinaryWriter w;
  const std::int64_t values[] = {0, -1, 1, -64, 64, -100000, 1LL << 40};
  for (std::int64_t v : values) w.PutSignedVarint(v);
  util::BinaryReader r(w.Buffer());
  for (std::int64_t v : values) EXPECT_EQ(r.GetSignedVarint(), v);
}

TEST(SerdeTest, StringAndScalarRoundTrip) {
  util::BinaryWriter w;
  w.PutString("hamster");
  w.PutDouble(3.25);
  w.PutFloat(-0.5f);
  w.PutU8(0xab);
  util::BinaryReader r(w.Buffer());
  EXPECT_EQ(r.GetString(), "hamster");
  EXPECT_DOUBLE_EQ(r.GetDouble(), 3.25);
  EXPECT_FLOAT_EQ(r.GetFloat(), -0.5f);
  EXPECT_EQ(r.GetU8(), 0xab);
  EXPECT_TRUE(r.Ok());
}

TEST(SerdeTest, SortedIdsDeltaRoundTrip) {
  util::BinaryWriter w;
  const std::vector<std::uint32_t> ids = {0, 1, 5, 5000, 5001, 1u << 30};
  w.PutSortedIds(ids);
  util::BinaryReader r(w.Buffer());
  EXPECT_EQ(r.GetSortedIds(), ids);
}

TEST(SerdeTest, TruncationFailsGracefully) {
  util::BinaryWriter w;
  w.PutString("a long enough string");
  const std::string full = w.Buffer();
  util::BinaryReader r(std::string_view(full).substr(0, 4));
  (void)r.GetString();
  EXPECT_FALSE(r.Ok());
}

// ---------------------------------------------------------------- storage

class StorageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 250;
    config.num_topics = 6;
    config.num_users = 80;
    config.visual_words = 32;
    config.seed = 1212;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static corpus::Corpus* corpus_;
};

corpus::Corpus* StorageTest::corpus_ = nullptr;

TEST_F(StorageTest, SerializeDeserializeRoundTrip) {
  const std::string bytes = index::SerializeCorpus(*corpus_);
  const auto loaded = index::DeserializeCorpus(bytes);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->Size(), corpus_->Size());
  for (corpus::ObjectId id = 0; id < corpus_->Size(); ++id) {
    const auto& a = corpus_->Object(id);
    const auto& b = loaded->Object(id);
    EXPECT_EQ(a.topic, b.topic);
    EXPECT_EQ(a.month, b.month);
    ASSERT_EQ(a.features.size(), b.features.size());
    for (std::size_t f = 0; f < a.features.size(); ++f) {
      EXPECT_EQ(a.features[f].feature, b.features[f].feature);
      EXPECT_EQ(a.features[f].frequency, b.features[f].frequency);
    }
  }
}

TEST_F(StorageTest, ContextSurvivesRoundTrip) {
  const auto loaded =
      index::DeserializeCorpus(index::SerializeCorpus(*corpus_));
  ASSERT_TRUE(loaded.has_value());
  const corpus::Context& a = corpus_->GetContext();
  const corpus::Context& b = loaded->GetContext();
  EXPECT_EQ(a.num_topics, b.num_topics);
  ASSERT_EQ(a.vocabulary.Size(), b.vocabulary.Size());
  for (std::size_t t = 0; t < a.vocabulary.Size(); ++t)
    EXPECT_EQ(a.vocabulary.TermOf(text::TermId(t)),
              b.vocabulary.TermOf(text::TermId(t)));
  EXPECT_EQ(a.taxonomy.NodeCount(), b.taxonomy.NodeCount());
  // WUP values must be identical (taxonomy structure preserved).
  EXPECT_DOUBLE_EQ(a.taxonomy.WupTerms(0, 1), b.taxonomy.WupTerms(0, 1));
  EXPECT_EQ(a.visual_vocabulary.WordCount(),
            b.visual_vocabulary.WordCount());
  EXPECT_DOUBLE_EQ(a.visual_vocabulary.Similarity(0, 1),
                   b.visual_vocabulary.Similarity(0, 1));
  EXPECT_EQ(a.user_graph.UserCount(), b.user_graph.UserCount());
  EXPECT_EQ(a.user_graph.GroupCount(), b.user_graph.GroupCount());
  for (std::size_t u = 0; u < a.user_graph.UserCount(); ++u)
    EXPECT_EQ(a.user_graph.GroupsOf(social::UserId(u)),
              b.user_graph.GroupsOf(social::UserId(u)));
}

TEST_F(StorageTest, ReloadedCorpusAnswersIdenticalQueries) {
  const auto loaded =
      index::DeserializeCorpus(index::SerializeCorpus(*corpus_));
  ASSERT_TRUE(loaded.has_value());
  const index::FigRetrievalEngine a(*corpus_, index::EngineOptions{});
  const index::FigRetrievalEngine b(*loaded, index::EngineOptions{});
  for (corpus::ObjectId q : {2u, 77u, 123u}) {
    const auto ra = a.Search(corpus_->Object(q), 5);
    const auto rb = b.Search(loaded->Object(q), 5);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].object, rb[i].object);
      EXPECT_NEAR(ra[i].score, rb[i].score, 1e-12);
    }
  }
}

TEST_F(StorageTest, RejectsCorruptSnapshots) {
  EXPECT_FALSE(index::DeserializeCorpus("").has_value());
  EXPECT_FALSE(index::DeserializeCorpus("not a snapshot").has_value());
  std::string bytes = index::SerializeCorpus(*corpus_);
  // Truncate mid-stream.
  EXPECT_FALSE(
      index::DeserializeCorpus(std::string_view(bytes).substr(0, 50))
          .has_value());
}

TEST_F(StorageTest, FileRoundTrip) {
  const std::string path = "/tmp/figdb_storage_test.bin";
  ASSERT_TRUE(index::SaveCorpus(*corpus_, path).ok());
  const auto loaded = index::LoadCorpus(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->Size(), corpus_->Size());
  std::remove(path.c_str());
  EXPECT_FALSE(index::LoadCorpus("/nonexistent/nope.bin").has_value());
}

// ------------------------------------------------------------ QueryBuilder

TEST_F(StorageTest, QueryBuilderResolvesKnownTags) {
  const corpus::Context& ctx = corpus_->GetContext();
  ASSERT_GT(ctx.vocabulary.Size(), 2u);
  const std::string tag0 = ctx.vocabulary.TermOf(0);
  const std::string tag1 = ctx.vocabulary.TermOf(1);

  corpus::QueryBuilder builder(corpus_->SharedContext());
  const corpus::MediaObject q = builder.AddText(tag0 + " " + tag1 + "s")
                                    .AddText("the and")  // stop words
                                    .AddUser(3)
                                    .AddVisualWord(5)
                                    .Build();
  EXPECT_TRUE(q.Contains(corpus::MakeFeatureKey(
      corpus::FeatureType::kText, 0)));
  EXPECT_TRUE(q.Contains(corpus::MakeFeatureKey(
      corpus::FeatureType::kText, 1)));
  EXPECT_TRUE(q.Contains(corpus::MakeFeatureKey(
      corpus::FeatureType::kUser, 3)));
  EXPECT_TRUE(q.Contains(corpus::MakeFeatureKey(
      corpus::FeatureType::kVisual, 5)));
}

TEST_F(StorageTest, QueryBuilderDropsUnknownInputs) {
  corpus::QueryBuilder builder(corpus_->SharedContext());
  const corpus::MediaObject q = builder.AddText("zzzzunknownzzzz")
                                    .AddUser(999999)
                                    .AddVisualWord(999999)
                                    .Build();
  EXPECT_TRUE(q.features.empty());
}

TEST_F(StorageTest, QueryBuilderQueriesRetrieveByTag) {
  // Build a query from one object's tag strings; the source object should
  // rank near the top.
  const corpus::Context& ctx = corpus_->GetContext();
  const corpus::MediaObject& source = corpus_->Object(11);
  corpus::QueryBuilder builder(corpus_->SharedContext());
  for (const corpus::FeatureOccurrence& f : source.features) {
    if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText)
      builder.AddText(ctx.vocabulary.TermOf(corpus::IdOf(f.feature)));
  }
  const corpus::MediaObject q = builder.Build();
  if (q.features.empty()) GTEST_SKIP() << "object 11 has no tags";
  const index::FigRetrievalEngine engine(*corpus_, index::EngineOptions{});
  const auto results = engine.Search(q, 10);
  bool found = false;
  for (const auto& r : results)
    if (r.object == source.id) found = true;
  EXPECT_TRUE(found);
}

TEST_F(StorageTest, QueryBuilderImagePath) {
  vision::Image img(32, 32);
  for (std::size_t y = 0; y < 32; ++y)
    for (std::size_t x = 0; x < 32; ++x)
      img.At(x, y) = float((x + y) % 7) / 7.0f;
  corpus::QueryBuilder builder(corpus_->SharedContext());
  const corpus::MediaObject q = builder.AddImage(img).Build();
  // 4 blocks, each quantised to a visual word.
  std::uint32_t blocks = 0;
  for (const auto& f : q.features) {
    EXPECT_EQ(corpus::TypeOf(f.feature), corpus::FeatureType::kVisual);
    blocks += f.frequency;
  }
  EXPECT_EQ(blocks, 4u);
}

// --------------------------------------------------------------------- NRA

TEST(NraMergeTest, TopKSetMatchesExhaustive) {
  util::Rng rng(777);
  for (int round = 0; round < 30; ++round) {
    std::vector<index::ScoredList> lists(1 + rng.UniformInt(6));
    for (auto& list : lists) {
      const std::size_t n = rng.UniformInt(50);
      std::set<corpus::ObjectId> used;
      for (std::size_t i = 0; i < n; ++i) {
        const corpus::ObjectId id = corpus::ObjectId(rng.UniformInt(30));
        if (!used.insert(id).second) continue;
        list.entries.push_back({id, rng.UniformReal(0.1, 2.0)});
      }
    }
    const std::size_t k = 1 + rng.UniformInt(8);
    const auto nra = index::NraMerge(lists, k);
    const auto exact = index::ExhaustiveMerge(lists, k);
    ASSERT_EQ(nra.size(), exact.size()) << "round " << round;
    std::set<corpus::ObjectId> sa, sb;
    for (const auto& e : nra) sa.insert(e.object);
    for (const auto& e : exact) sb.insert(e.object);
    EXPECT_EQ(sa, sb) << "round " << round;
  }
}

TEST(NraMergeTest, EmptyInput) {
  EXPECT_TRUE(index::NraMerge({}, 3).empty());
}

// ------------------------------------------------------- incremental index

TEST_F(StorageTest, IncrementalIndexMatchesBulkBuild) {
  const index::FigRetrievalEngine engine(*corpus_, index::EngineOptions{});
  // Rebuild: bulk over the first half, then incremental AddObject.
  index::CliqueIndexOptions options;
  const corpus::Corpus half = corpus_->Prefix(corpus_->Size() / 2);
  index::CliqueIndex incremental = index::CliqueIndex::Build(
      half, *engine.Correlations(), options);
  util::ScopedRole writer(incremental.WriterCap());
  for (corpus::ObjectId id = corpus::ObjectId(corpus_->Size() / 2);
       id < corpus_->Size(); ++id) {
    incremental.AddObject(corpus_->Object(id), *engine.Correlations());
  }
  const index::CliqueIndex bulk = index::CliqueIndex::Build(
      *corpus_, *engine.Correlations(), options);
  EXPECT_EQ(incremental.DistinctCliques(), bulk.DistinctCliques());
  EXPECT_EQ(incremental.TotalPostings(), bulk.TotalPostings());
  // Spot-check a few posting lists through query cliques.
  const auto qm = engine.Scorer().Compile(corpus_->Object(3));
  for (std::size_t c = 0; c < std::min<std::size_t>(10, qm.cliques.size());
       ++c) {
    EXPECT_EQ(incremental.Lookup(qm.cliques[c].features),
              bulk.Lookup(qm.cliques[c].features));
  }
}

TEST_F(StorageTest, AddObjectIsIdempotent) {
  const index::FigRetrievalEngine engine(*corpus_, index::EngineOptions{});
  index::CliqueIndex idx = index::CliqueIndex::Build(
      *corpus_, *engine.Correlations(), index::CliqueIndexOptions{});
  const std::size_t postings = idx.TotalPostings();
  util::ScopedRole writer(idx.WriterCap());
  idx.AddObject(corpus_->Object(5), *engine.Correlations());
  EXPECT_EQ(idx.TotalPostings(), postings);
}

// ------------------------------------------------------------ significance

TEST(SignificanceTest, ClearDifferenceIsSignificant) {
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(0.8 + 0.01 * (i % 3));
    b.push_back(0.4 + 0.01 * (i % 5));
  }
  const auto r = eval::PairedBootstrap(a, b, 2000);
  EXPECT_GT(r.mean_difference, 0.3);
  EXPECT_LT(r.p_value, 0.01);
  EXPECT_GT(eval::PairedTStatistic(a, b), 5.0);
}

TEST(SignificanceTest, NoDifferenceIsNotSignificant) {
  util::Rng rng(5);
  std::vector<double> a, b;
  for (int i = 0; i < 30; ++i) {
    const double base = rng.UniformReal();
    a.push_back(base + rng.Gaussian(0.0, 0.05));
    b.push_back(base + rng.Gaussian(0.0, 0.05));
  }
  const auto r = eval::PairedBootstrap(a, b, 2000);
  EXPECT_GT(r.p_value, 0.05);
}

TEST(SignificanceTest, SymmetricInMeanDifference) {
  const std::vector<double> a = {0.5, 0.6, 0.7};
  const std::vector<double> b = {0.4, 0.5, 0.6};
  const auto ab = eval::PairedBootstrap(a, b, 500);
  const auto ba = eval::PairedBootstrap(b, a, 500);
  EXPECT_DOUBLE_EQ(ab.mean_difference, -ba.mean_difference);
}

// ------------------------------------------------------------ explanations

TEST_F(StorageTest, RecommenderExplainsContributions) {
  const index::FigRetrievalEngine engine(*corpus_, index::EngineOptions{});
  const recsys::ProfileBuilder builder(engine.Correlations());
  const recsys::UserProfile profile =
      builder.Build(*corpus_, {0, 1, 2, 3, 4});
  const recsys::FigRecommender rec(*corpus_, engine.ExactPotential(),
                                   engine.ExactPotential(), {.decay = 0.6});
  // Explain against a profile member: contributions must exist, be sorted,
  // and sum to at most the full score.
  const auto explanations = rec.Explain(profile, corpus_->Object(1), 5, 3);
  ASSERT_FALSE(explanations.empty());
  EXPECT_LE(explanations.size(), 3u);
  double previous = 1e300;
  double total = 0.0;
  for (const auto& e : explanations) {
    EXPECT_FALSE(e.features.empty());
    EXPECT_GT(e.contribution, 0.0);
    EXPECT_LE(e.contribution, previous);
    previous = e.contribution;
    total += e.contribution;
  }
  EXPECT_LE(total, rec.Score(profile, corpus_->Object(1), 5) + 1e-9);
}

// ------------------------------------------------- co-occurrence text mode

TEST_F(StorageTest, CooccurrenceTextSimilarityIsPluggable) {
  auto matrix = std::make_shared<stats::FeatureMatrix>(
      stats::FeatureMatrix::Build(*corpus_));
  stats::CorrelationOptions options;
  options.text_similarity = stats::TextSimilarity::kCooccurrence;
  const stats::CorrelationModel model(corpus_->SharedContext(), matrix,
                                      options);
  const auto t0 = corpus::MakeFeatureKey(corpus::FeatureType::kText, 0);
  const auto t1 = corpus::MakeFeatureKey(corpus::FeatureType::kText, 1);
  // Under co-occurrence, intra-text equals the Eq. 1 cosine.
  EXPECT_DOUBLE_EQ(model.Cor(t0, t1), matrix->Cosine(t0, t1));
  EXPECT_DOUBLE_EQ(model.ThresholdFor(t0, t1),
                   options.text_cooccurrence_threshold);
  // And a co-occurrence engine still retrieves end-to-end.
  index::EngineOptions eo;
  eo.correlations = options;
  const index::FigRetrievalEngine engine(*corpus_, eo);
  const auto results = engine.Search(corpus_->Object(4), 5);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].object, 4u);
}

}  // namespace
}  // namespace figdb
