#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz_util.hpp"
#include "index/storage.hpp"
#include "index/wal.hpp"
#include "util/crc32.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"

/// \file fuzz_edge_test.cpp
/// Named regression tests for the decode edge cases the fuzzing layer
/// hunts: zero-length sections, maximum-length varint size claims, and
/// CRC-valid-but-semantically-invalid payloads (duplicate vocabulary terms,
/// dangling taxonomy parents, zero-frequency features, dangling group
/// memberships). Every crafted input also runs through the shared fuzz
/// harness entry point, so a contract regression aborts here exactly as it
/// would under the fuzzer.

namespace figdb::index {
namespace {

using util::BinaryWriter;
using util::StatusCode;

void ExpectMessageContains(const util::Status& status, const char* needle) {
  EXPECT_NE(status.message().find(needle), std::string::npos)
      << "message was: " << status.message();
}

// ------------------------------------------------------- snapshot edges

class SnapshotEdgeTest : public ::testing::Test {
 protected:
  // Section order: meta, vocabulary, taxonomy, visual vocabulary,
  // user graph, objects.
  static constexpr std::size_t kMeta = 0, kVocabulary = 1, kTaxonomy = 2;
  static constexpr std::size_t kUserGraph = 4, kObjects = 5;

  void SetUp() override {
    bytes_ = fuzz::BuildSnapshotSeed(5, 20);
    ASSERT_TRUE(fuzz::SplitSnapshotSections(bytes_, &sections_));
    ASSERT_EQ(sections_.payloads.size(), 6u);
    ASSERT_TRUE(DeserializeCorpus(bytes_).ok());
  }

  /// Rebuilds the snapshot with one section payload replaced; the framing
  /// (length + CRC) is regenerated correctly, so the corruption is purely
  /// semantic and must be caught by the section PARSER, not the checksum.
  std::string WithSection(std::size_t index, std::string payload) const {
    fuzz::SnapshotSections spliced = sections_;
    spliced.payloads[index] = std::move(payload);
    return fuzz::BuildSnapshot(spliced);
  }

  /// Deserializes and routes the same bytes through the fuzz harness (which
  /// FIGDB_CHECKs the full decode contract) — both views must agree.
  util::StatusOr<corpus::Corpus> Load(const std::string& bytes) const {
    const auto outcome = fuzz::CheckSnapshotOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    auto parsed = DeserializeCorpus(bytes);
    EXPECT_EQ(outcome.accepted, parsed.ok());
    return parsed;
  }

  std::string bytes_;
  fuzz::SnapshotSections sections_;
};

TEST_F(SnapshotEdgeTest, ZeroLengthVocabularySectionIsDataLoss) {
  const auto loaded = Load(WithSection(kVocabulary, ""));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "vocabulary");
}

TEST_F(SnapshotEdgeTest, ZeroLengthMetaSectionIsDataLoss) {
  const auto loaded = Load(WithSection(kMeta, ""));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "meta");
}

TEST_F(SnapshotEdgeTest, MaximumLengthVarintSizeClaimIsTruncation) {
  // A 10-byte varint claiming a 2^63-byte meta section: the length check
  // must reject it before any allocation happens.
  BinaryWriter w;
  w.PutRaw(sections_.magic_and_version);
  w.PutVarint(std::uint64_t{1} << 63);
  const auto loaded = Load(w.Take());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "truncated");
}

TEST_F(SnapshotEdgeTest, OverlongVarintMagicIsInvalidArgument) {
  // Eleven continuation bytes: past the 10-byte LEB128 limit, the reader
  // must fail the varint rather than keep shifting.
  const auto loaded = Load(std::string(11, '\x80'));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SnapshotEdgeTest, DuplicateVocabularyTermIsRejectedDespiteValidCrc) {
  BinaryWriter payload;
  payload.PutVarint(2);
  payload.PutString("sunset");
  payload.PutVarint(5);
  payload.PutString("sunset");  // same term again: ids can't be sequential
  payload.PutVarint(3);
  const auto loaded = Load(WithSection(kVocabulary, payload.Take()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "duplicate term");
}

TEST_F(SnapshotEdgeTest, DanglingTaxonomyParentIsRejectedDespiteValidCrc) {
  BinaryWriter payload;
  payload.PutVarint(2);   // two nodes
  payload.PutVarint(0);   // root (parent = self)
  payload.PutString("entity");
  payload.PutVarint(5);   // child's parent id 5 does not precede it
  payload.PutString("orphan");
  payload.PutVarint(0);   // no term attachments
  const auto loaded = Load(WithSection(kTaxonomy, payload.Take()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "dangling parent");
}

TEST_F(SnapshotEdgeTest, TermAttachedToDanglingNodeIsRejected) {
  BinaryWriter payload;
  payload.PutVarint(1);  // just the root
  payload.PutVarint(0);
  payload.PutString("entity");
  payload.PutVarint(1);  // one term attachment...
  payload.PutVarint(3);  // term 3
  payload.PutVarint(7);  // ...to node 7, which does not exist
  const auto loaded = Load(WithSection(kTaxonomy, payload.Take()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "dangling node");
}

TEST_F(SnapshotEdgeTest, ZeroFrequencyFeatureIsRejectedDespiteValidCrc) {
  BinaryWriter payload;
  payload.PutVarint(1);  // one object
  payload.PutVarint(0);  // month
  payload.PutVarint(0);  // topic
  payload.PutVarint(1);  // one feature...
  payload.PutVarint(9);  // feature delta
  payload.PutVarint(0);  // ...with frequency zero
  const auto loaded = Load(WithSection(kObjects, payload.Take()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "zero-frequency");
}

TEST_F(SnapshotEdgeTest, DanglingGroupMembershipIsRejected) {
  BinaryWriter payload;
  payload.PutVarint(1);  // one user
  payload.PutVarint(1);  // one group
  payload.PutVarint(1);  // the user's membership list: one entry...
  payload.PutVarint(3);  // ...group 3, out of range
  const auto loaded = Load(WithSection(kUserGraph, payload.Take()));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "dangling group");
}

TEST_F(SnapshotEdgeTest, TrailingBytesInsideSectionAreDataLoss) {
  const auto loaded =
      Load(WithSection(kVocabulary, sections_.payloads[kVocabulary] + '\0'));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "trailing bytes in section");
}

TEST_F(SnapshotEdgeTest, TrailingBytesAfterLastSectionAreDataLoss) {
  const auto loaded = Load(bytes_ + "x");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  ExpectMessageContains(loaded.status(), "trailing bytes after");
}

TEST_F(SnapshotEdgeTest, SectionSurgeryRoundTripsUnchanged) {
  // Split + rebuild with no edits must be byte-identical — the guarantee
  // the splice-based tests above and the structure-aware seeds rely on.
  EXPECT_EQ(fuzz::BuildSnapshot(sections_), bytes_);
}

// ------------------------------------------------------------ WAL edges

class WalEdgeTest : public ::testing::Test {
 protected:
  /// Frames \p payloads as WAL records with correct CRCs after a valid
  /// header — semantic corruption only, same idea as WithSection above.
  static std::string MakeWal(const std::vector<std::string>& payloads) {
    BinaryWriter w;
    w.PutFixed32(kWalMagic);
    w.PutFixed32(kWalVersion);
    for (const std::string& p : payloads) {
      w.PutFixed32(std::uint32_t(p.size()));
      w.PutFixed32(util::Crc32(p));
      w.PutRaw(p);
    }
    return w.Take();
  }

  static std::string RecordPayload(std::uint64_t lsn, std::uint8_t type,
                                   std::uint64_t id) {
    BinaryWriter p;
    p.PutVarint(lsn);
    p.PutU8(type);
    p.PutVarint(id);
    return p.Take();
  }

  /// Routes the bytes through the fuzz harness (FIGDB_CHECKs the full
  /// replay contract) and returns the replay result for local asserts.
  static util::StatusOr<WriteAheadLog::ReplayResult> Replay(
      const std::string& bytes) {
    const auto outcome = fuzz::CheckWalFileOneInput(
        reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
    auto replayed = WriteAheadLog::ReplayBytes(bytes, "'edge'");
    EXPECT_EQ(outcome.accepted, replayed.ok());
    return replayed;
  }
};

TEST_F(WalEdgeTest, HeaderOnlyLogReplaysEmpty) {
  const auto replayed = Replay(MakeWal({}));
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->records.empty());
  EXPECT_FALSE(replayed->torn_tail);
  EXPECT_EQ(replayed->valid_bytes, 8u);
}

TEST_F(WalEdgeTest, PartialFrameAfterHeaderIsTornTail) {
  const auto replayed = Replay(MakeWal({}) + "\x03\x00");
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->records.empty());
  EXPECT_TRUE(replayed->torn_tail);
  EXPECT_EQ(replayed->valid_bytes, 8u);
}

TEST_F(WalEdgeTest, CrcDamageOnFinalRecordIsTornTail) {
  std::string bytes = fuzz::BuildWalSeed(3, 2);
  bytes.back() = char(bytes.back() ^ 0x40);  // damage the LAST record
  const auto replayed = Replay(bytes);
  ASSERT_TRUE(replayed.ok());
  EXPECT_TRUE(replayed->torn_tail);
  EXPECT_EQ(replayed->records.size(), 1u);
}

TEST_F(WalEdgeTest, CrcDamageMidLogIsDataLoss) {
  std::string bytes = fuzz::BuildWalSeed(3, 3);
  bytes[16] = char(bytes[16] ^ 0x40);  // first payload byte of record 1
  const auto replayed = Replay(bytes);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalEdgeTest, NonIncreasingLsnIsDataLossDespiteValidCrcs) {
  const auto replayed = Replay(MakeWal({RecordPayload(5, 2, 0),
                                        RecordPayload(5, 2, 1)}));
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalEdgeTest, ZeroFrequencyFeatureInAddRecordIsDataLoss) {
  BinaryWriter p;
  p.PutVarint(1);  // lsn
  p.PutU8(1);      // kAddObject
  p.PutVarint(0);  // object id
  p.PutVarint(0);  // month
  p.PutVarint(0);  // topic
  p.PutVarint(1);  // one feature...
  p.PutVarint(4);  // delta
  p.PutVarint(0);  // ...frequency zero
  const auto replayed = Replay(MakeWal({p.Take()}));
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalEdgeTest, MaximumLengthVarintFeatureCountIsRejected) {
  BinaryWriter p;
  p.PutVarint(1);                       // lsn
  p.PutU8(1);                           // kAddObject
  p.PutVarint(0);                       // object id
  p.PutVarint(0);                       // month
  p.PutVarint(0);                       // topic
  p.PutVarint(std::uint64_t{1} << 63);  // 2^63 features claimed
  const auto replayed = Replay(MakeWal({p.Take()}));
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kDataLoss);
}

TEST_F(WalEdgeTest, ForeignMagicIsInvalidArgument) {
  BinaryWriter w;
  w.PutFixed32(0xdeadbeef);
  w.PutFixed32(kWalVersion);
  const auto replayed = Replay(w.Take());
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace figdb::index
