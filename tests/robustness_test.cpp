#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <unordered_map>

#include "corpus/generator.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

/// \file robustness_test.cpp
/// The hardened-query-path suite: fault injection via fail-points alone (no
/// mocks), corruption fuzzing of the snapshot format, and degraded-mode
/// correctness of the budget-aware TrySearch/TryRank/TryRecommend entry
/// points. The invariant under test throughout: malformed input and injected
/// faults produce precise util::Status errors or `truncated` best-effort
/// results — never an abort, crash or silent wrong answer.

namespace figdb::index {
namespace {

using corpus::FeatureType;
using corpus::MakeFeatureKey;
using util::FailPoints;
using util::QueryBudget;
using util::ScopedFailPoint;
using util::StatusCode;

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 220;
    config.num_topics = 6;
    config.num_users = 70;
    config.visual_words = 32;
    config.seed = 4242;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
    EngineOptions two_stage;
    two_stage.rerank_candidates = 48;
    engine_ = new FigRetrievalEngine(*corpus_, two_stage);
    EngineOptions stage1_only;
    stage1_only.rerank_candidates = 0;
    stage1_engine_ = new FigRetrievalEngine(*corpus_, stage1_only);
    snapshot_ = new std::string(SerializeCorpus(*corpus_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete stage1_engine_;
    delete snapshot_;
    delete corpus_;
    engine_ = nullptr;
    stage1_engine_ = nullptr;
    snapshot_ = nullptr;
    corpus_ = nullptr;
  }
  void TearDown() override { FailPoints::DeactivateAll(); }

  /// A query object that produces a healthy number of cliques.
  const corpus::MediaObject& Query() const { return corpus_->Object(17); }

  static corpus::Corpus* corpus_;
  static FigRetrievalEngine* engine_;
  static FigRetrievalEngine* stage1_engine_;
  static std::string* snapshot_;
};

corpus::Corpus* RobustnessTest::corpus_ = nullptr;
FigRetrievalEngine* RobustnessTest::engine_ = nullptr;
FigRetrievalEngine* RobustnessTest::stage1_engine_ = nullptr;
std::string* RobustnessTest::snapshot_ = nullptr;

// ------------------------------------------- fault injection: storage IO

TEST_F(RobustnessTest, SaveCorpusIoFailureIsUnavailable) {
  ScopedFailPoint fp("storage/save_io");
  const util::Status s = SaveCorpus(*corpus_, "/tmp/figdb_robust_save.bin");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("short write"), std::string::npos);
  std::remove("/tmp/figdb_robust_save.bin");
}

TEST_F(RobustnessTest, LoadCorpusIoFailureIsUnavailable) {
  const std::string path = "/tmp/figdb_robust_load.bin";
  ASSERT_TRUE(SaveCorpus(*corpus_, path).ok());
  {
    ScopedFailPoint fp("storage/load_io");
    const auto loaded = LoadCorpus(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  }
  // The fail-point is scoped: the same file loads fine afterwards.
  EXPECT_TRUE(LoadCorpus(path).ok());
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, MissingSnapshotFileIsNotFound) {
  const auto loaded = LoadCorpus("/nonexistent/figdb.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --------------------------------------- fault injection: snapshot parse

TEST_F(RobustnessTest, InjectedTruncationMidSectionIsDataLoss) {
  // skip_hits = 2: the meta and vocabulary sections open cleanly, the
  // taxonomy section reports truncation.
  ScopedFailPoint fp("storage/section_truncated",
                     {.skip_hits = 2});
  const auto loaded = DeserializeCorpus(*snapshot_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("taxonomy"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(RobustnessTest, InjectedCrcMismatchIsDataLoss) {
  ScopedFailPoint fp("storage/section_crc", {.skip_hits = 1});
  const auto loaded = DeserializeCorpus(*snapshot_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("vocabulary"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("CRC mismatch"),
            std::string::npos);
}

TEST_F(RobustnessTest, RealBitFlipIsCaughtBySectionCrc) {
  std::string bytes = *snapshot_;
  bytes[bytes.size() / 2] ^= 0x10;  // deep inside some section's payload
  const auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(RobustnessTest, ForeignAndOldSnapshotsAreInvalidArgument) {
  const auto foreign = DeserializeCorpus("definitely not a snapshot");
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------- corruption fuzzing

TEST_F(RobustnessTest, CorruptionFuzz500Seeds) {
  // Smaller corpus: the fuzz loop deserializes 500 mutants.
  corpus::GeneratorConfig config;
  config.num_objects = 60;
  config.num_topics = 4;
  config.num_users = 30;
  config.visual_words = 16;
  config.seed = 99;
  const corpus::Corpus small =
      corpus::Generator(config).MakeRetrievalCorpus();
  const std::string bytes = SerializeCorpus(small);
  ASSERT_TRUE(DeserializeCorpus(bytes).ok());

  util::Rng rng(20260807);
  for (int seed = 0; seed < 500; ++seed) {
    std::string mutant = bytes;
    if (seed % 3 == 0) {
      // Truncate at a random point (drop at least one byte).
      mutant.resize(rng.UniformInt(mutant.size()));
    } else {
      // Flip 1-4 random bytes with random non-zero masks.
      const std::size_t flips = 1 + rng.UniformInt(4);
      for (std::size_t f = 0; f < flips; ++f)
        mutant[rng.UniformInt(mutant.size())] ^=
            char(1 + rng.UniformInt(255));
    }
    const auto result = DeserializeCorpus(mutant);  // must not crash/throw
    ASSERT_FALSE(result.ok()) << "seed " << seed
                              << ": corrupt snapshot was accepted";
    const StatusCode code = result.status().code();
    EXPECT_TRUE(code == StatusCode::kDataLoss ||
                code == StatusCode::kInvalidArgument)
        << "seed " << seed << ": unexpected " << result.status().ToString();
    EXPECT_FALSE(result.status().message().empty());
  }
}

// ------------------------------------------------- TrySearch validation

TEST_F(RobustnessTest, TrySearchRejectsMalformedRequests) {
  const auto empty = engine_->TrySearch(corpus::MediaObject{}, 5);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  const auto zero_k = engine_->TrySearch(Query(), 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  corpus::MediaObject oov;
  oov.features = {{MakeFeatureKey(FeatureType::kText,
                                  std::uint32_t(corpus_->GetContext()
                                                    .vocabulary.Size()) +
                                      7),
                   1}};
  const auto bad = engine_->TrySearch(oov, 5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("out-of-vocabulary"),
            std::string::npos);
}

TEST_F(RobustnessTest, TryRankRejectsDanglingCandidates) {
  const auto r = engine_->TryRank(
      Query(), {0, 1, corpus::ObjectId(corpus_->Size() + 3)}, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, TrySearchWithoutIndexIsUnavailable) {
  EngineOptions opts;
  opts.build_index = false;
  const FigRetrievalEngine no_index(*corpus_, opts);
  const auto r = no_index.TrySearch(Query(), 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------- budgets & graceful shedding

TEST_F(RobustnessTest, GenerousBudgetIsBitIdenticalToSearch) {
  for (corpus::ObjectId q : {3u, 17u, 101u, 219u}) {
    const auto reference = engine_->Search(corpus_->Object(q), 10);
    QueryBudget generous;
    generous.wall_limit_seconds = 3600.0;
    generous.max_scored_candidates = 1u << 20;
    const auto response =
        engine_->TrySearch(corpus_->Object(q), 10, generous);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->truncated);
    EXPECT_TRUE(response->reranked);
    ASSERT_EQ(response->results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(response->results[i].object, reference[i].object);
      EXPECT_EQ(response->results[i].score, reference[i].score);  // bitwise
    }
  }
}

TEST_F(RobustnessTest, ZeroCandidateBudgetIsDeadlineExceededNotAbort) {
  const auto r =
      engine_->TrySearch(Query(), 10, QueryBudget::Candidates(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(RobustnessTest, TightBudgetShedsRerankBeforeCandidates) {
  // Enough allowance for the TA to admit candidates but not to re-score
  // them: the rerank stage must be shed, giving stage-1 scores.
  const auto full = engine_->TrySearch(Query(), 10);
  ASSERT_TRUE(full.ok());
  const std::size_t stage1_spent = full->scored_candidates;  // 0 (unbudgeted)
  (void)stage1_spent;

  const auto r = engine_->TrySearch(Query(), 10, QueryBudget::Candidates(20));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_FALSE(r->reranked);
  EXPECT_LE(r->scored_candidates, 20u);
  ASSERT_FALSE(r->results.empty());
}

TEST_F(RobustnessTest, DegradedResultsKeepExactStage1Scores) {
  // Reference: the same engine geometry without a rerank stage, unbudgeted.
  // Budget-truncated results must be score-consistent with it: truncation
  // sheds candidates, never corrupts the scores of what is returned.
  const auto reference = stage1_engine_->Search(Query(), 200);
  std::unordered_map<corpus::ObjectId, double> truth;
  for (const auto& e : reference) truth[e.object] = e.score;

  for (std::size_t cap : {5u, 12u, 25u, 60u}) {
    const auto r =
        stage1_engine_->TrySearch(Query(), 10, QueryBudget::Candidates(cap));
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
      continue;
    }
    // Order must be descending and every returned id must carry its exact
    // unbudgeted score.
    for (std::size_t i = 0; i + 1 < r->results.size(); ++i)
      EXPECT_GE(r->results[i].score, r->results[i + 1].score);
    for (const auto& e : r->results) {
      auto it = truth.find(e.object);
      ASSERT_NE(it, truth.end()) << "budgeted run invented candidate "
                                 << e.object;
      EXPECT_DOUBLE_EQ(e.score, it->second);
    }
  }
}

TEST_F(RobustnessTest, MergeModesAgreeUnbudgetedAndStayConsistentBudgeted) {
  EngineOptions exhaustive_opts;
  exhaustive_opts.rerank_candidates = 0;
  exhaustive_opts.merge = EngineOptions::MergeMode::kExhaustive;
  const FigRetrievalEngine exhaustive(*corpus_, exhaustive_opts);

  for (corpus::ObjectId q : {5u, 42u, 150u}) {
    // No budget: TA and exhaustive merges must agree exactly.
    const auto ta = stage1_engine_->Search(corpus_->Object(q), 10);
    const auto ex = exhaustive.Search(corpus_->Object(q), 10);
    ASSERT_EQ(ta.size(), ex.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].object, ex[i].object);
      EXPECT_NEAR(ta[i].score, ex[i].score, 1e-12);
    }
    // Budgeted exhaustive merge: still exact scores for returned ids.
    std::unordered_map<corpus::ObjectId, double> truth;
    for (const auto& e : exhaustive.Search(corpus_->Object(q), 500))
      truth[e.object] = e.score;
    const auto budgeted = exhaustive.TrySearch(corpus_->Object(q), 10,
                                               QueryBudget::Candidates(15));
    if (budgeted.ok()) {
      for (const auto& e : budgeted->results) {
        auto it = truth.find(e.object);
        ASSERT_NE(it, truth.end());
        EXPECT_DOUBLE_EQ(e.score, it->second);
      }
    }
  }
}

// --------------------------------------- fault injection: TA & index build

TEST_F(RobustnessTest, InjectedDeadlineInTaLoopTruncatesGracefully) {
  // Let the TA run a few sorted-access depths, then expire the deadline
  // from inside the loop. Best-so-far results must come back `truncated`
  // with exact stage-1 scores; no abort, no hang.
  const auto reference = stage1_engine_->Search(Query(), 200);
  std::unordered_map<corpus::ObjectId, double> truth;
  for (const auto& e : reference) truth[e.object] = e.score;

  constexpr std::uint64_t kSkip = 1;  // fire on the second TA depth
  ScopedFailPoint fp("ta/deadline", {.skip_hits = kSkip});
  const auto r = stage1_engine_->TrySearch(Query(), 10,
                                           QueryBudget::Deadline(3600.0));
  ASSERT_GT(fp.HitCount(), kSkip)
      << "the TA terminated before the injection depth; lower skip_hits";
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    return;
  }
  EXPECT_TRUE(r->truncated);
  for (const auto& e : r->results) {
    auto it = truth.find(e.object);
    ASSERT_NE(it, truth.end());
    EXPECT_DOUBLE_EQ(e.score, it->second);
  }
}

TEST_F(RobustnessTest, InjectedDeadlineShedsRerankOnTwoStageEngine) {
  // On the two-stage engine an expiry injected after some TA progress must
  // fall back to stage-1 scores (rerank shed) rather than mixing stages.
  ScopedFailPoint fp("ta/deadline", {.skip_hits = 1});
  const auto r =
      engine_->TrySearch(Query(), 10, QueryBudget::Deadline(3600.0));
  ASSERT_GT(fp.HitCount(), 1u);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    return;
  }
  EXPECT_TRUE(r->truncated);
  EXPECT_FALSE(r->reranked);
}

TEST_F(RobustnessTest, TruncatedIndexBuildYieldsDegradedEngine) {
  ScopedFailPoint fp("index/build_truncated", {.skip_hits = 100});
  EngineOptions opts;
  opts.rerank_candidates = 0;
  const FigRetrievalEngine degraded(*corpus_, opts);
  EXPECT_TRUE(degraded.Index().Degraded());
  // The engine still serves; answers are flagged as best-effort.
  const auto r = degraded.TrySearch(Query(), 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
}

// ------------------------------------------------- recommender statuses

TEST_F(RobustnessTest, TryRecommendValidatesAndDegrades) {
  // Build a profile from a couple of corpus objects, recommend over a
  // candidate window.
  recsys::ProfileBuilder builder(engine_->Correlations());
  const recsys::UserProfile profile =
      builder.Build(*corpus_, {Query().id, corpus::ObjectId(18)});
  std::vector<corpus::ObjectId> candidates;
  for (corpus::ObjectId id = 100; id < 180; ++id) candidates.push_back(id);
  recsys::FigRecommender rec(*corpus_, engine_->ExactPotential(),
                             engine_->Potential(), {});

  // Dangling candidate id.
  const auto dangling = rec.TryRecommend(
      profile, {corpus::ObjectId(corpus_->Size() + 1)}, 5, 4);
  ASSERT_FALSE(dangling.ok());
  EXPECT_EQ(dangling.status().code(), StatusCode::kNotFound);

  // k = 0.
  const auto zero_k = rec.TryRecommend(profile, candidates, 0, 4);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  // Unbudgeted TryRecommend matches Recommend exactly.
  const auto reference = rec.Recommend(profile, candidates, 10, 4);
  const auto unbudgeted = rec.TryRecommend(profile, candidates, 10, 4);
  ASSERT_TRUE(unbudgeted.ok());
  EXPECT_FALSE(unbudgeted->truncated);
  ASSERT_EQ(unbudgeted->results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(unbudgeted->results[i].object, reference[i].object);
    EXPECT_EQ(unbudgeted->results[i].score, reference[i].score);
  }

  // A candidate budget below the candidate count sheds work gracefully.
  const auto tight =
      rec.TryRecommend(profile, candidates, 10, 4, QueryBudget::Candidates(30));
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_TRUE(tight->truncated);
  EXPECT_FALSE(tight->reranked);
  EXPECT_LE(tight->scored_candidates, 30u);

  // Zero budget: error, not a hang or abort.
  const auto zero =
      rec.TryRecommend(profile, candidates, 10, 4, QueryBudget::Candidates(0));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace figdb::index
