#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "corpus/generator.hpp"
#include "fuzz_util.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "index/wal.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

/// \file robustness_test.cpp
/// The hardened-query-path suite: fault injection via fail-points alone (no
/// mocks), corruption fuzzing of the snapshot format, and degraded-mode
/// correctness of the budget-aware TrySearch/TryRank/TryRecommend entry
/// points. The invariant under test throughout: malformed input and injected
/// faults produce precise util::Status errors or `truncated` best-effort
/// results — never an abort, crash or silent wrong answer.

namespace figdb::index {
namespace {

using corpus::FeatureType;
using corpus::MakeFeatureKey;
using util::FailPoints;
using util::QueryBudget;
using util::ScopedFailPoint;
using util::StatusCode;

class RobustnessTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 220;
    config.num_topics = 6;
    config.num_users = 70;
    config.visual_words = 32;
    config.seed = 4242;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
    EngineOptions two_stage;
    two_stage.rerank_candidates = 48;
    engine_ = new FigRetrievalEngine(*corpus_, two_stage);
    EngineOptions stage1_only;
    stage1_only.rerank_candidates = 0;
    stage1_engine_ = new FigRetrievalEngine(*corpus_, stage1_only);
    snapshot_ = new std::string(SerializeCorpus(*corpus_));
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete stage1_engine_;
    delete snapshot_;
    delete corpus_;
    engine_ = nullptr;
    stage1_engine_ = nullptr;
    snapshot_ = nullptr;
    corpus_ = nullptr;
  }
  void TearDown() override { FailPoints::DeactivateAll(); }

  /// A query object that produces a healthy number of cliques.
  const corpus::MediaObject& Query() const { return corpus_->Object(17); }

  static corpus::Corpus* corpus_;
  static FigRetrievalEngine* engine_;
  static FigRetrievalEngine* stage1_engine_;
  static std::string* snapshot_;
};

corpus::Corpus* RobustnessTest::corpus_ = nullptr;
FigRetrievalEngine* RobustnessTest::engine_ = nullptr;
FigRetrievalEngine* RobustnessTest::stage1_engine_ = nullptr;
std::string* RobustnessTest::snapshot_ = nullptr;

// ------------------------------------------- fault injection: storage IO

TEST_F(RobustnessTest, SaveCorpusIoFailureIsUnavailable) {
  ScopedFailPoint fp("storage/save_io");
  const util::Status s = SaveCorpus(*corpus_, "/tmp/figdb_robust_save.bin");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_NE(s.message().find("short write"), std::string::npos);
  std::remove("/tmp/figdb_robust_save.bin");
}

TEST_F(RobustnessTest, LoadCorpusIoFailureIsUnavailable) {
  const std::string path = "/tmp/figdb_robust_load.bin";
  ASSERT_TRUE(SaveCorpus(*corpus_, path).ok());
  {
    ScopedFailPoint fp("storage/load_io");
    const auto loaded = LoadCorpus(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  }
  // The fail-point is scoped: the same file loads fine afterwards.
  EXPECT_TRUE(LoadCorpus(path).ok());
  std::remove(path.c_str());
}

TEST_F(RobustnessTest, MissingSnapshotFileIsNotFound) {
  const auto loaded = LoadCorpus("/nonexistent/figdb.bin");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --------------------------------------- fault injection: snapshot parse

TEST_F(RobustnessTest, InjectedTruncationMidSectionIsDataLoss) {
  // skip_hits = 2: the meta and vocabulary sections open cleanly, the
  // taxonomy section reports truncation.
  ScopedFailPoint fp("storage/section_truncated",
                     {.skip_hits = 2});
  const auto loaded = DeserializeCorpus(*snapshot_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("taxonomy"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("truncated"), std::string::npos);
}

TEST_F(RobustnessTest, InjectedCrcMismatchIsDataLoss) {
  ScopedFailPoint fp("storage/section_crc", {.skip_hits = 1});
  const auto loaded = DeserializeCorpus(*snapshot_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  EXPECT_NE(loaded.status().message().find("vocabulary"), std::string::npos);
  EXPECT_NE(loaded.status().message().find("CRC mismatch"),
            std::string::npos);
}

TEST_F(RobustnessTest, RealBitFlipIsCaughtBySectionCrc) {
  std::string bytes = *snapshot_;
  bytes[bytes.size() / 2] ^= 0x10;  // deep inside some section's payload
  const auto loaded = DeserializeCorpus(bytes);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(RobustnessTest, ForeignAndOldSnapshotsAreInvalidArgument) {
  const auto foreign = DeserializeCorpus("definitely not a snapshot");
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
}

// ----------------------------------------------------- corruption fuzzing

TEST_F(RobustnessTest, CorruptionFuzz500Seeds) {
  // Smaller corpus: the fuzz loop deserializes 500 mutants. The mutation
  // model and the decode contract both live in the shared fuzz harness
  // (fuzz/fuzz_util.hpp) — the same code the fuzz_snapshot libFuzzer
  // target runs, so this loop and the fuzzer can never drift apart. The
  // harness FIGDB_CHECKs the error taxonomy and non-empty messages; this
  // test adds the corruption-specific assertion that no mutant is
  // ACCEPTED (the harness allows acceptance — a fuzzer input may be valid).
  const std::string bytes = fuzz::BuildSnapshotSeed(99, 60);
  ASSERT_TRUE(DeserializeCorpus(bytes).ok());

  util::Rng rng(20260807);
  for (int seed = 0; seed < 500; ++seed) {
    const std::string mutant =
        fuzz::MutateBytes(&rng, bytes, /*truncate=*/seed % 3 == 0);
    const auto outcome = fuzz::CheckSnapshotOneInput(
        reinterpret_cast<const std::uint8_t*>(mutant.data()), mutant.size());
    ASSERT_FALSE(outcome.accepted)
        << "seed " << seed << ": corrupt snapshot was accepted";
    EXPECT_TRUE(outcome.code == StatusCode::kDataLoss ||
                outcome.code == StatusCode::kInvalidArgument)
        << "seed " << seed << ": unexpected status code";
  }
}

TEST_F(RobustnessTest, CrcFixedCorruptionFuzzReachesSectionParsers) {
  // Structure-aware variant: re-stamp section CRCs after each mutation
  // (exactly what fuzz_snapshot's custom mutator does), so the mutants
  // probe the section PARSERS rather than dying at the checksum gate.
  // Acceptance is possible here — a payload flip can be semantically
  // harmless — so the assertion is only the harness contract itself:
  // accepted mutants must re-serialize idempotently, rejected ones must
  // carry the documented taxonomy (FIGDB_CHECKed inside the harness).
  const std::string bytes = fuzz::BuildSnapshotSeed(99, 60);
  util::Rng rng(20260808);
  int accepted = 0;
  for (int seed = 0; seed < 200; ++seed) {
    std::string mutant =
        fuzz::MutateBytes(&rng, bytes, /*truncate=*/seed % 5 == 0);
    fuzz::FixupSnapshotCrcs(&mutant);
    const auto outcome = fuzz::CheckSnapshotOneInput(
        reinterpret_cast<const std::uint8_t*>(mutant.data()), mutant.size());
    accepted += outcome.accepted ? 1 : 0;
  }
  // Not a tautology: if CRC fixup were broken, every mutant would be
  // rejected at the checksum gate and this count would be zero.
  EXPECT_GT(accepted, 0) << "CRC fixup never produced a parseable mutant";
}

// ------------------------------------------------- TrySearch validation

TEST_F(RobustnessTest, TrySearchRejectsMalformedRequests) {
  const auto empty = engine_->TrySearch(corpus::MediaObject{}, 5);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  const auto zero_k = engine_->TrySearch(Query(), 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  corpus::MediaObject oov;
  oov.features = {{MakeFeatureKey(FeatureType::kText,
                                  std::uint32_t(corpus_->GetContext()
                                                    .vocabulary.Size()) +
                                      7),
                   1}};
  const auto bad = engine_->TrySearch(oov, 5);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("out-of-vocabulary"),
            std::string::npos);
}

TEST_F(RobustnessTest, TryRankRejectsDanglingCandidates) {
  const auto r = engine_->TryRank(
      Query(), {0, 1, corpus::ObjectId(corpus_->Size() + 3)}, 3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(RobustnessTest, TrySearchWithoutIndexIsUnavailable) {
  EngineOptions opts;
  opts.build_index = false;
  const FigRetrievalEngine no_index(*corpus_, opts);
  const auto r = no_index.TrySearch(Query(), 5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

// ------------------------------------------- budgets & graceful shedding

TEST_F(RobustnessTest, GenerousBudgetIsBitIdenticalToSearch) {
  for (corpus::ObjectId q : {3u, 17u, 101u, 219u}) {
    const auto reference = engine_->Search(corpus_->Object(q), 10);
    QueryBudget generous;
    generous.wall_limit_seconds = 3600.0;
    generous.max_scored_candidates = 1u << 20;
    const auto response =
        engine_->TrySearch(corpus_->Object(q), 10, generous);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_FALSE(response->truncated);
    EXPECT_TRUE(response->reranked);
    ASSERT_EQ(response->results.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(response->results[i].object, reference[i].object);
      EXPECT_EQ(response->results[i].score, reference[i].score);  // bitwise
    }
  }
}

TEST_F(RobustnessTest, ZeroCandidateBudgetIsDeadlineExceededNotAbort) {
  const auto r =
      engine_->TrySearch(Query(), 10, QueryBudget::Candidates(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(RobustnessTest, TightBudgetShedsRerankBeforeCandidates) {
  // Enough allowance for the TA to admit candidates but not to re-score
  // them: the rerank stage must be shed, giving stage-1 scores.
  const auto full = engine_->TrySearch(Query(), 10);
  ASSERT_TRUE(full.ok());
  const std::size_t stage1_spent = full->scored_candidates;  // 0 (unbudgeted)
  (void)stage1_spent;

  const auto r = engine_->TrySearch(Query(), 10, QueryBudget::Candidates(20));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
  EXPECT_FALSE(r->reranked);
  EXPECT_LE(r->scored_candidates, 20u);
  ASSERT_FALSE(r->results.empty());
}

TEST_F(RobustnessTest, DegradedResultsKeepExactStage1Scores) {
  // Reference: the same engine geometry without a rerank stage, unbudgeted.
  // Budget-truncated results must be score-consistent with it: truncation
  // sheds candidates, never corrupts the scores of what is returned.
  const auto reference = stage1_engine_->Search(Query(), 200);
  std::unordered_map<corpus::ObjectId, double> truth;
  for (const auto& e : reference) truth[e.object] = e.score;

  for (std::size_t cap : {5u, 12u, 25u, 60u}) {
    const auto r =
        stage1_engine_->TrySearch(Query(), 10, QueryBudget::Candidates(cap));
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
      continue;
    }
    // Order must be descending and every returned id must carry its exact
    // unbudgeted score.
    for (std::size_t i = 0; i + 1 < r->results.size(); ++i)
      EXPECT_GE(r->results[i].score, r->results[i + 1].score);
    for (const auto& e : r->results) {
      auto it = truth.find(e.object);
      ASSERT_NE(it, truth.end()) << "budgeted run invented candidate "
                                 << e.object;
      EXPECT_DOUBLE_EQ(e.score, it->second);
    }
  }
}

TEST_F(RobustnessTest, MergeModesAgreeUnbudgetedAndStayConsistentBudgeted) {
  EngineOptions exhaustive_opts;
  exhaustive_opts.rerank_candidates = 0;
  exhaustive_opts.merge = EngineOptions::MergeMode::kExhaustive;
  const FigRetrievalEngine exhaustive(*corpus_, exhaustive_opts);

  for (corpus::ObjectId q : {5u, 42u, 150u}) {
    // No budget: TA and exhaustive merges must agree exactly.
    const auto ta = stage1_engine_->Search(corpus_->Object(q), 10);
    const auto ex = exhaustive.Search(corpus_->Object(q), 10);
    ASSERT_EQ(ta.size(), ex.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_EQ(ta[i].object, ex[i].object);
      EXPECT_NEAR(ta[i].score, ex[i].score, 1e-12);
    }
    // Budgeted exhaustive merge: still exact scores for returned ids.
    std::unordered_map<corpus::ObjectId, double> truth;
    for (const auto& e : exhaustive.Search(corpus_->Object(q), 500))
      truth[e.object] = e.score;
    const auto budgeted = exhaustive.TrySearch(corpus_->Object(q), 10,
                                               QueryBudget::Candidates(15));
    if (budgeted.ok()) {
      for (const auto& e : budgeted->results) {
        auto it = truth.find(e.object);
        ASSERT_NE(it, truth.end());
        EXPECT_DOUBLE_EQ(e.score, it->second);
      }
    }
  }
}

// --------------------------------------- fault injection: TA & index build

TEST_F(RobustnessTest, InjectedDeadlineInTaLoopTruncatesGracefully) {
  // Let the TA run a few sorted-access depths, then expire the deadline
  // from inside the loop. Best-so-far results must come back `truncated`
  // with exact stage-1 scores; no abort, no hang.
  const auto reference = stage1_engine_->Search(Query(), 200);
  std::unordered_map<corpus::ObjectId, double> truth;
  for (const auto& e : reference) truth[e.object] = e.score;

  constexpr std::uint64_t kSkip = 1;  // fire on the second TA depth
  ScopedFailPoint fp("ta/deadline", {.skip_hits = kSkip});
  const auto r = stage1_engine_->TrySearch(Query(), 10,
                                           QueryBudget::Deadline(3600.0));
  ASSERT_GT(fp.HitCount(), kSkip)
      << "the TA terminated before the injection depth; lower skip_hits";
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    return;
  }
  EXPECT_TRUE(r->truncated);
  for (const auto& e : r->results) {
    auto it = truth.find(e.object);
    ASSERT_NE(it, truth.end());
    EXPECT_DOUBLE_EQ(e.score, it->second);
  }
}

TEST_F(RobustnessTest, InjectedDeadlineShedsRerankOnTwoStageEngine) {
  // On the two-stage engine an expiry injected after some TA progress must
  // fall back to stage-1 scores (rerank shed) rather than mixing stages.
  ScopedFailPoint fp("ta/deadline", {.skip_hits = 1});
  const auto r =
      engine_->TrySearch(Query(), 10, QueryBudget::Deadline(3600.0));
  ASSERT_GT(fp.HitCount(), 1u);
  if (!r.ok()) {
    EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
    return;
  }
  EXPECT_TRUE(r->truncated);
  EXPECT_FALSE(r->reranked);
}

TEST_F(RobustnessTest, TruncatedIndexBuildYieldsDegradedEngine) {
  ScopedFailPoint fp("index/build_truncated", {.skip_hits = 100});
  EngineOptions opts;
  opts.rerank_candidates = 0;
  const FigRetrievalEngine degraded(*corpus_, opts);
  EXPECT_TRUE(degraded.Index().Degraded());
  // The engine still serves; answers are flagged as best-effort.
  const auto r = degraded.TrySearch(Query(), 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->truncated);
}

// ------------------------------------------------- recommender statuses

TEST_F(RobustnessTest, TryRecommendValidatesAndDegrades) {
  // Build a profile from a couple of corpus objects, recommend over a
  // candidate window.
  recsys::ProfileBuilder builder(engine_->Correlations());
  const recsys::UserProfile profile =
      builder.Build(*corpus_, {Query().id, corpus::ObjectId(18)});
  std::vector<corpus::ObjectId> candidates;
  for (corpus::ObjectId id = 100; id < 180; ++id) candidates.push_back(id);
  recsys::FigRecommender rec(*corpus_, engine_->ExactPotential(),
                             engine_->Potential(), {});

  // Dangling candidate id.
  const auto dangling = rec.TryRecommend(
      profile, {corpus::ObjectId(corpus_->Size() + 1)}, 5, 4);
  ASSERT_FALSE(dangling.ok());
  EXPECT_EQ(dangling.status().code(), StatusCode::kNotFound);

  // k = 0.
  const auto zero_k = rec.TryRecommend(profile, candidates, 0, 4);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  // Unbudgeted TryRecommend matches Recommend exactly.
  const auto reference = rec.Recommend(profile, candidates, 10, 4);
  const auto unbudgeted = rec.TryRecommend(profile, candidates, 10, 4);
  ASSERT_TRUE(unbudgeted.ok());
  EXPECT_FALSE(unbudgeted->truncated);
  ASSERT_EQ(unbudgeted->results.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(unbudgeted->results[i].object, reference[i].object);
    EXPECT_EQ(unbudgeted->results[i].score, reference[i].score);
  }

  // A candidate budget below the candidate count sheds work gracefully.
  const auto tight =
      rec.TryRecommend(profile, candidates, 10, 4, QueryBudget::Candidates(30));
  ASSERT_TRUE(tight.ok()) << tight.status().ToString();
  EXPECT_TRUE(tight->truncated);
  EXPECT_FALSE(tight->reranked);
  EXPECT_LE(tight->scored_candidates, 30u);

  // Zero budget: error, not a hang or abort.
  const auto zero =
      rec.TryRecommend(profile, candidates, 10, 4, QueryBudget::Candidates(0));
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kDeadlineExceeded);
}

// ======================================================================
// Durability: FigDbStore, the WAL, and the crash matrix.
// ======================================================================

class FigDbStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 36;
    config.num_topics = 4;
    config.num_users = 20;
    config.visual_words = 16;
    config.seed = 777;
    base_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
  }
  static void TearDownTestSuite() {
    delete base_;
    base_ = nullptr;
  }
  void TearDown() override { FailPoints::DeactivateAll(); }

  /// A fresh, empty directory under the system temp dir.
  static std::string StoreDir(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("figdb_store_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
  }

  /// An ingest candidate: a copy of a base object's content (its features
  /// are guaranteed in-vocabulary for the store's context).
  static corpus::MediaObject Donor(corpus::ObjectId source) {
    corpus::MediaObject obj = base_->Object(source);
    obj.id = corpus::kInvalidObject;  // the store assigns the real id
    return obj;
  }

  /// Applies "remove" the way the store does: tombstone the slot in place.
  static void ShadowRemove(corpus::Corpus* shadow, corpus::ObjectId id) {
    corpus::MediaObject& slot = shadow->MutableObject(id);
    slot.features.clear();
    slot.topic = corpus::MediaObject::kInvalidTopic;
    slot.month = 0;
  }

  enum class StepKind { kIngest, kRemove, kCheckpoint };
  struct Step {
    StepKind kind;
    /// Donor object for kIngest, victim id for kRemove, unused otherwise.
    corpus::ObjectId target = 0;
  };

  /// The scripted workload behind the crash matrix: 13 mutations (8 ingests,
  /// 5 removes — one of them of an object ingested earlier this run) with 4
  /// interleaved checkpoints. Every WAL fail-point sees >= 13 hits per run
  /// and every checkpoint fail-point sees 4, which the matrix skips against.
  static std::vector<Step> Script() {
    const auto first_new = corpus::ObjectId(base_->Size());
    return {{StepKind::kIngest, 0},      {StepKind::kIngest, 7},
            {StepKind::kRemove, 2},      {StepKind::kIngest, 12},
            {StepKind::kCheckpoint},     {StepKind::kRemove, first_new},
            {StepKind::kIngest, 3},      {StepKind::kRemove, 5},
            {StepKind::kIngest, 19},     {StepKind::kCheckpoint},
            {StepKind::kIngest, 9},      {StepKind::kRemove, 9},
            {StepKind::kIngest, 23},     {StepKind::kCheckpoint},
            {StepKind::kRemove, 11},     {StepKind::kIngest, 15},
            {StepKind::kCheckpoint}};
  }

  /// Serialized logical state after each mutation prefix of Script():
  /// states[k] = the corpus once k mutations have been applied.
  static std::vector<std::string> ShadowStates() {
    std::vector<std::string> states;
    corpus::Corpus shadow = *base_;
    states.push_back(SerializeCorpus(shadow));
    for (const Step& step : Script()) {
      if (step.kind == StepKind::kCheckpoint) continue;
      if (step.kind == StepKind::kIngest)
        shadow.Add(Donor(step.target));
      else
        ShadowRemove(&shadow, step.target);
      states.push_back(SerializeCorpus(shadow));
    }
    return states;
  }

  struct ScriptOutcome {
    std::size_t acked = 0;  ///< mutations acknowledged before the failure
    bool failed = false;
    bool failed_on_mutation = false;  ///< vs. on a checkpoint
    util::Status status = util::Status::Ok();
  };

  /// Drives Script() against a live store, stopping at the first failure —
  /// the simulated crash instant.
  static ScriptOutcome RunScript(FigDbStore* store) {
    ScriptOutcome out;
    for (const Step& step : Script()) {
      util::Status s = util::Status::Ok();
      bool mutation = true;
      switch (step.kind) {
        case StepKind::kIngest: {
          const auto id = store->Ingest(Donor(step.target));
          if (!id.ok()) s = id.status();
          break;
        }
        case StepKind::kRemove:
          s = store->Remove(step.target);
          break;
        case StepKind::kCheckpoint:
          mutation = false;
          s = store->Checkpoint();
          break;
      }
      if (!s.ok()) {
        out.failed = true;
        out.failed_on_mutation = mutation;
        out.status = s;
        return out;
      }
      if (mutation) ++out.acked;
    }
    return out;
  }

  /// Search results over \p corpus from a freshly built engine, for the
  /// bit-identity half of the crash-matrix assertion.
  static std::vector<core::SearchResult> FreshSearch(
      const corpus::Corpus& corpus, const corpus::MediaObject& query) {
    EngineOptions opts;
    opts.rerank_candidates = 0;
    return FigRetrievalEngine(corpus, opts).Search(query, 8);
  }

  static corpus::Corpus* base_;
};

corpus::Corpus* FigDbStoreTest::base_ = nullptr;

// ------------------------------------------------ store happy-path basics

TEST_F(FigDbStoreTest, IngestRemoveCheckpointRecoverRoundTrip) {
  const std::string dir = StoreDir("roundtrip");
  auto store = FigDbStore::Create(dir, *base_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  const ScriptOutcome outcome = RunScript(&*store);
  ASSERT_FALSE(outcome.failed) << outcome.status.ToString();
  EXPECT_EQ(outcome.acked, 13u);
  EXPECT_EQ(store->LiveObjects(), base_->Size() + 8 - 5);
  EXPECT_EQ(store->RemovedObjects(), 5u);
  EXPECT_TRUE(store->IsRemoved(2));
  EXPECT_FALSE(store->IsRemoved(0));
  // The script ends on a checkpoint: the WAL is empty again.
  EXPECT_EQ(store->WalRecords(), 0u);
  EXPECT_EQ(store->CheckpointLsn(), 13u);

  auto recovered = FigDbStore::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->Info().replayed_records, 0u);
  EXPECT_FALSE(recovered->Info().torn_tail);
  EXPECT_EQ(SerializeCorpus(recovered->GetCorpus()),
            SerializeCorpus(store->GetCorpus()));
  // LSNs survive the checkpoint: the next mutation continues the sequence
  // instead of reusing logged numbers.
  ASSERT_TRUE(recovered->Ingest(Donor(6)).ok());
  EXPECT_EQ(recovered->LastLsn(), 14u);
  std::filesystem::remove_all(dir);
}

TEST_F(FigDbStoreTest, LiveIndexEqualsBatchBuildThroughoutTheScript) {
  // The headline index invariant: a mutation-maintained CliqueIndex is equal,
  // posting for posting, to CliqueIndex::Build over the same corpus and the
  // store's own (pinned) correlation model — including while tombstones are
  // still pending compaction.
  const std::string dir = StoreDir("live_vs_batch");
  auto store = FigDbStore::Create(dir, *base_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::size_t step_no = 0;
  bool saw_pending_tombstones = false;
  for (const Step& step : Script()) {
    switch (step.kind) {
      case StepKind::kIngest:
        ASSERT_TRUE(store->Ingest(Donor(step.target)).ok());
        break;
      case StepKind::kRemove:
        ASSERT_TRUE(store->Remove(step.target).ok());
        break;
      case StepKind::kCheckpoint:
        ASSERT_TRUE(store->Checkpoint().ok());
        // CompactAll ran: the tombstone set must be empty again.
        EXPECT_EQ(store->Index().TombstoneCount(), 0u);
        break;
    }
    saw_pending_tombstones |= store->Index().TombstoneCount() > 0;
    const CliqueIndex batch =
        CliqueIndex::Build(store->GetCorpus(), *store->Correlations(),
                           store->GetOptions().index);
    ASSERT_EQ(store->Index().DumpPostings(), batch.DumpPostings())
        << "incremental index diverged from batch build after step "
        << step_no;
    ++step_no;
  }
  EXPECT_TRUE(saw_pending_tombstones)
      << "the script never exercised lazy tombstones";
  std::filesystem::remove_all(dir);
}

TEST_F(FigDbStoreTest, IngestValidatesAgainstStoreContext) {
  const std::string dir = StoreDir("validate");
  auto store = FigDbStore::Create(dir, *base_);
  ASSERT_TRUE(store.ok());

  // Empty object.
  auto empty = store->Ingest(corpus::MediaObject{});
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  // Out-of-vocabulary feature.
  corpus::MediaObject oov;
  oov.features = {{MakeFeatureKey(FeatureType::kText,
                                  std::uint32_t(base_->GetContext()
                                                    .vocabulary.Size()) +
                                      1),
                   1}};
  auto bad = store->Ingest(oov);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("out-of-vocabulary"),
            std::string::npos);

  // Unnormalized (duplicate feature keys).
  corpus::MediaObject dup = Donor(0);
  dup.features.push_back(dup.features.front());
  auto unnorm = store->Ingest(dup);
  ASSERT_FALSE(unnorm.ok());
  EXPECT_EQ(unnorm.status().code(), StatusCode::kInvalidArgument);

  // Rejections never consume an LSN or touch the WAL.
  EXPECT_EQ(store->WalRecords(), 0u);
  EXPECT_EQ(store->LastLsn(), 0u);

  // Remove of a bogus / double-removed id.
  EXPECT_EQ(store->Remove(corpus::ObjectId(base_->Size() + 5)).code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(store->Remove(1).ok());
  EXPECT_EQ(store->Remove(1).code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST_F(FigDbStoreTest, CreateRefusesAnExistingStoreAndRecoverNeedsOne) {
  const std::string dir = StoreDir("create_twice");
  ASSERT_TRUE(FigDbStore::Create(dir, *base_).ok());
  const auto second = FigDbStore::Create(dir, *base_);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);

  const auto nowhere = FigDbStore::Recover(StoreDir("never_created"));
  ASSERT_FALSE(nowhere.ok());
  EXPECT_EQ(nowhere.status().code(), StatusCode::kNotFound);
  std::filesystem::remove_all(dir);
}

TEST_F(FigDbStoreTest, CheckpointBitRotAndMissingWalAreDataLoss) {
  const std::string dir = StoreDir("bitrot");
  {
    auto store = FigDbStore::Create(dir, *base_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE(store->Ingest(Donor(4)).ok());
  }
  // Flip one byte deep inside the checkpoint payload.
  {
    const std::string path = FigDbStore::CheckpointPath(dir);
    std::string bytes;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      ASSERT_NE(f, nullptr);
      char buf[1 << 16];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
      std::fclose(f);
    }
    std::string rotted = bytes;
    rotted[rotted.size() / 2] ^= 0x40;
    {
      std::FILE* f = std::fopen(path.c_str(), "wb");
      ASSERT_NE(f, nullptr);
      std::fwrite(rotted.data(), 1, rotted.size(), f);
      std::fclose(f);
    }
    const auto recovered = FigDbStore::Recover(dir);
    ASSERT_FALSE(recovered.ok());
    EXPECT_EQ(recovered.status().code(), StatusCode::kDataLoss);
    // Restore the good bytes: recovery must succeed again.
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    ASSERT_TRUE(FigDbStore::Recover(dir).ok());
  }
  // A checkpoint without any WAL is a structurally broken store.
  std::filesystem::remove(FigDbStore::WalPath(dir));
  const auto no_wal = FigDbStore::Recover(dir);
  ASSERT_FALSE(no_wal.ok());
  EXPECT_EQ(no_wal.status().code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

TEST_F(FigDbStoreTest, WoundedStoreRefusesMutationsUntilHealed) {
  const std::string dir = StoreDir("wounded");
  auto store = FigDbStore::Create(dir, *base_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Ingest(Donor(0)).ok());

  {
    ScopedFailPoint fp("wal/append_io", {.max_fires = 1});
    const auto failed = store->Ingest(Donor(1));
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  }
  EXPECT_TRUE(store->Wounded());
  // Reads still serve the last consistent state; writes are refused.
  EXPECT_EQ(store->LiveObjects(), base_->Size() + 1);
  const auto refused = store->Ingest(Donor(1));
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store->Remove(0).code(), StatusCode::kFailedPrecondition);

  // A successful checkpoint re-anchors durability (fresh snapshot + fresh
  // WAL) and heals the store.
  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_FALSE(store->Wounded());
  EXPECT_TRUE(store->Ingest(Donor(1)).ok());

  // And the healed store's disk state is coherent.
  const auto recovered = FigDbStore::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(SerializeCorpus(recovered->GetCorpus()),
            SerializeCorpus(store->GetCorpus()));
  std::filesystem::remove_all(dir);
}

TEST_F(FigDbStoreTest, StaleWalAfterTruncationFailureIsSkippedByLsn) {
  // The crash window between the checkpoint rename and the WAL truncation:
  // the stale WAL records are already folded into the checkpoint, and
  // recovery must skip them by LSN rather than double-apply.
  const std::string dir = StoreDir("stale_wal");
  auto store = FigDbStore::Create(dir, *base_);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Ingest(Donor(0)).ok());
  ASSERT_TRUE(store->Remove(3).ok());
  {
    ScopedFailPoint fp("wal/truncate");
    const util::Status s = store->Checkpoint();
    ASSERT_FALSE(s.ok());  // rename landed, truncation "crashed"
  }
  const auto recovered = FigDbStore::Recover(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->Info().skipped_records, 2u);
  EXPECT_EQ(recovered->Info().replayed_records, 0u);
  EXPECT_EQ(recovered->Info().checkpoint_lsn, 2u);
  EXPECT_EQ(SerializeCorpus(recovered->GetCorpus()),
            SerializeCorpus(store->GetCorpus()));
  std::filesystem::remove_all(dir);
}

// ----------------------------------------------------- the crash matrix

TEST_F(FigDbStoreTest, CrashMatrixRecoveryIsAtomicAndBitIdentical) {
  // Kills the scripted write path at 52 distinct (site, occurrence) crash
  // points. For every point: Recover() must succeed, the recovered corpus
  // must byte-equal the state after some acknowledged mutation prefix (the
  // in-flight mutation wholly present or wholly absent, never a hybrid),
  // and search over the recovered store must be bit-identical to a freshly
  // built engine over that same logical corpus.
  struct Site {
    const char* name;
    std::uint64_t occurrences;  ///< how many distinct skip_hits to test
    bool in_flight_may_survive;  ///< fsync-uncertainty: record may be durable
  };
  // 3 WAL sites x 12 + 4 checkpoint-path sites x 4 = 52 crash points.
  const Site sites[] = {
      {"wal/append_io", 12, false},
      {"wal/torn_tail", 12, false},
      {"wal/fsync", 12, true},
      {"checkpoint/write_io", 4, false},
      {"checkpoint/fsync", 4, false},
      {"checkpoint/rename", 4, false},
      {"wal/truncate", 4, false},
  };

  const std::vector<std::string> states = ShadowStates();
  std::size_t points = 0;
  for (const Site& site : sites) {
    for (std::uint64_t skip = 0; skip < site.occurrences; ++skip) {
      SCOPED_TRACE(std::string(site.name) + " skip=" +
                   std::to_string(skip));
      ++points;
      const std::string dir =
          StoreDir(std::string("matrix_") + std::to_string(points));

      ScriptOutcome outcome;
      {
        auto store = FigDbStore::Create(dir, *base_);
        ASSERT_TRUE(store.ok()) << store.status().ToString();
        ScopedFailPoint fp(site.name, {.skip_hits = skip});
        outcome = RunScript(&*store);
        ASSERT_TRUE(outcome.failed)
            << "the script survived — the crash point never fired";
        ASSERT_GT(fp.HitCount(), skip);
        // The store object goes out of scope here: the "crash".
      }

      auto recovered = FigDbStore::Recover(dir);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      const std::string got = SerializeCorpus(recovered->GetCorpus());

      // Atomicity: the recovered corpus is EXACTLY a legal prefix state.
      std::size_t matched = states.size();
      if (got == states[outcome.acked]) {
        matched = outcome.acked;
      } else if (site.in_flight_may_survive && outcome.failed_on_mutation &&
                 got == states[outcome.acked + 1]) {
        // The fsync "failed" after the frame reached the file: the
        // unacknowledged mutation was durable after all. Allowed — the
        // contract is pre- OR post-mutation state.
        matched = outcome.acked + 1;
      }
      ASSERT_NE(matched, states.size())
          << "recovered state is a hybrid: neither pre- nor post-mutation "
          << "(acked=" << outcome.acked << ")";
      if (!outcome.failed_on_mutation) {
        // Checkpoint-path crashes change no logical state at all.
        EXPECT_EQ(matched, outcome.acked);
      }
      if (std::string(site.name) == "wal/torn_tail") {
        EXPECT_TRUE(recovered->Info().torn_tail)
            << "the half-written frame was not reported as a torn tail";
      }

      // Bit-identity: a fresh engine over the recovered corpus vs. one over
      // the independently computed logical state.
      auto expected = DeserializeCorpus(states[matched]);
      ASSERT_TRUE(expected.ok());
      const corpus::MediaObject& probe = base_->Object(17);
      const auto got_results = FreshSearch(recovered->GetCorpus(), probe);
      const auto want_results = FreshSearch(*expected, probe);
      ASSERT_EQ(got_results.size(), want_results.size());
      for (std::size_t i = 0; i < want_results.size(); ++i) {
        EXPECT_EQ(got_results[i].object, want_results[i].object);
        EXPECT_EQ(got_results[i].score, want_results[i].score);  // bitwise
      }

      // Liveness: the recovered store accepts new writes (in particular
      // after a torn tail was truncated away).
      auto post = recovered->Ingest(Donor(1));
      ASSERT_TRUE(post.ok()) << post.status().ToString();
      EXPECT_FALSE(recovered->Wounded());

      std::filesystem::remove_all(dir);
    }
  }
  EXPECT_GE(points, 50u);
}

// -------------------------------------------------------- WAL internals

TEST_F(FigDbStoreTest, WalTornTailVariantsEndTheLogCleanly) {
  const std::string path = StoreDir("wal_torn") + ".wal";
  std::filesystem::remove(path);
  // Three records; then damage the tail in every possible shape.
  {
    auto wal = WriteAheadLog::Open(path);
    ASSERT_TRUE(wal.ok());
    for (std::uint64_t lsn = 1; lsn <= 3; ++lsn) {
      WalRecord r;
      r.lsn = lsn;
      r.type = WalRecord::Type::kAddObject;
      r.object_id = corpus::ObjectId(base_->Size() + lsn - 1);
      r.object = Donor(corpus::ObjectId(lsn));
      ASSERT_TRUE(wal->Append(r).ok());
    }
  }
  std::string bytes;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
    std::fclose(f);
  }
  const auto full = WriteAheadLog::Replay(path);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->records.size(), 3u);
  EXPECT_FALSE(full->torn_tail);
  EXPECT_EQ(full->valid_bytes, bytes.size());
  // Where does record 3 start? After replaying 2 records.
  std::uint64_t two_records = 0;
  {
    // Truncate to drop record 3 entirely, replay, and read valid_bytes.
    const std::string tmp = path + ".probe";
    std::filesystem::copy_file(path, tmp);
    // Chop one byte off the end: a torn tail within record 3.
    ASSERT_TRUE(
        WriteAheadLog::TruncateTail(tmp, bytes.size() - 1).ok());
    const auto torn = WriteAheadLog::Replay(tmp);
    ASSERT_TRUE(torn.ok()) << torn.status().ToString();
    EXPECT_TRUE(torn->torn_tail);
    ASSERT_EQ(torn->records.size(), 2u);
    two_records = torn->valid_bytes;
    std::filesystem::remove(tmp);
  }
  // Every cut inside record 3 — frame header, payload, a single byte in —
  // must yield the same clean two-record log.
  for (const std::uint64_t cut :
       {two_records + 1, two_records + 4, two_records + 8,
        two_records + 11, std::uint64_t(bytes.size() - 3)}) {
    const std::string tmp = path + ".cut";
    std::filesystem::remove(tmp);
    std::filesystem::copy_file(path, tmp);
    ASSERT_TRUE(WriteAheadLog::TruncateTail(tmp, cut).ok());
    const auto torn = WriteAheadLog::Replay(tmp);
    ASSERT_TRUE(torn.ok()) << "cut at " << cut << ": "
                           << torn.status().ToString();
    EXPECT_TRUE(torn->torn_tail) << "cut at " << cut;
    EXPECT_EQ(torn->records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(torn->valid_bytes, two_records) << "cut at " << cut;
    std::filesystem::remove(tmp);
  }
  // A garbage FINAL record of full length (pre-allocated-then-torn) is a
  // torn tail; the same damage mid-log is hard corruption.
  {
    std::string garbled = bytes;
    garbled[garbled.size() - 2] ^= 0x21;  // inside record 3's payload
    const std::string tmp = path + ".garble";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(garbled.data(), 1, garbled.size(), f);
    std::fclose(f);
    const auto torn = WriteAheadLog::Replay(tmp);
    ASSERT_TRUE(torn.ok());
    EXPECT_TRUE(torn->torn_tail);
    EXPECT_EQ(torn->records.size(), 2u);
    std::filesystem::remove(tmp);
  }
  {
    std::string garbled = bytes;
    garbled[two_records / 2] ^= 0x21;  // inside an EARLIER record
    const std::string tmp = path + ".midlog";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(garbled.data(), 1, garbled.size(), f);
    std::fclose(f);
    const auto damaged = WriteAheadLog::Replay(tmp);
    ASSERT_FALSE(damaged.ok());
    EXPECT_EQ(damaged.status().code(), StatusCode::kDataLoss);
    EXPECT_NE(damaged.status().message().find("mid-log"),
              std::string::npos);
    std::filesystem::remove(tmp);
  }
  // A foreign file is neither.
  {
    const std::string tmp = path + ".foreign";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a wal, not even close", f);
    std::fclose(f);
    const auto foreign = WriteAheadLog::Replay(tmp);
    ASSERT_FALSE(foreign.ok());
    EXPECT_EQ(foreign.status().code(), StatusCode::kInvalidArgument);
    std::filesystem::remove(tmp);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace figdb::index
