#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "corpus/corpus.hpp"
#include "corpus/generator.hpp"
#include "stats/correlation.hpp"
#include "stats/cors.hpp"
#include "stats/feature_matrix.hpp"
#include "util/rng.hpp"

namespace figdb::stats {
namespace {

using corpus::FeatureKey;
using corpus::FeatureType;
using corpus::MakeFeatureKey;
using corpus::MediaObject;

const FeatureKey kTagA = MakeFeatureKey(FeatureType::kText, 0);
const FeatureKey kTagB = MakeFeatureKey(FeatureType::kText, 1);
const FeatureKey kVw0 = MakeFeatureKey(FeatureType::kVisual, 0);
const FeatureKey kUser0 = MakeFeatureKey(FeatureType::kUser, 0);
const FeatureKey kMissing = MakeFeatureKey(FeatureType::kText, 999);

/// objects: o0={A:2, V0:1}, o1={A:1, B:1, U0:1}, o2={B:3}.
corpus::Corpus MakeTinyCorpus() {
  corpus::Corpus c;
  MediaObject o0;
  o0.features = {{kTagA, 2}, {kVw0, 1}};
  o0.Normalize();
  c.Add(std::move(o0));
  MediaObject o1;
  o1.features = {{kTagA, 1}, {kTagB, 1}, {kUser0, 1}};
  o1.Normalize();
  c.Add(std::move(o1));
  MediaObject o2;
  o2.features = {{kTagB, 3}};
  o2.Normalize();
  c.Add(std::move(o2));
  return c;
}

// --------------------------------------------------------- FeatureMatrix

TEST(FeatureMatrixTest, PostingsAreSortedAndComplete) {
  const corpus::Corpus c = MakeTinyCorpus();
  const FeatureMatrix m = FeatureMatrix::Build(c);
  EXPECT_EQ(m.NumObjects(), 3u);
  const auto& pa = m.Postings(kTagA);
  ASSERT_EQ(pa.size(), 2u);
  EXPECT_EQ(pa[0].object, 0u);
  EXPECT_EQ(pa[0].frequency, 2u);
  EXPECT_EQ(pa[1].object, 1u);
  EXPECT_TRUE(m.Postings(kMissing).empty());
  EXPECT_EQ(m.DocumentFrequency(kTagB), 2u);
}

TEST(FeatureMatrixTest, MeanOverAllObjects) {
  const FeatureMatrix m = FeatureMatrix::Build(MakeTinyCorpus());
  // kTagA frequencies over D: {2, 1, 0} -> mean 1.
  EXPECT_DOUBLE_EQ(m.Mean(kTagA), 1.0);
  EXPECT_DOUBLE_EQ(m.Mean(kMissing), 0.0);
}

TEST(FeatureMatrixTest, VarianceMatchesDefinition) {
  const FeatureMatrix m = FeatureMatrix::Build(MakeTinyCorpus());
  // kTagA: E[x^2] = (4+1)/3, mean 1 -> var = 5/3 - 1 = 2/3.
  EXPECT_NEAR(m.Variance(kTagA), 2.0 / 3.0, 1e-12);
  // kTagB: {0,1,3}: mean 4/3, E[x^2] = 10/3, var = 10/3 - 16/9 = 14/9.
  EXPECT_NEAR(m.Variance(kTagB), 14.0 / 9.0, 1e-12);
}

TEST(FeatureMatrixTest, CosineEquationOne) {
  const FeatureMatrix m = FeatureMatrix::Build(MakeTinyCorpus());
  // A = (2,1,0), B = (0,1,3): dot = 1, |A| = sqrt5, |B| = sqrt10.
  EXPECT_NEAR(m.Cosine(kTagA, kTagB), 1.0 / std::sqrt(50.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.Cosine(kTagA, kMissing), 0.0);
  EXPECT_NEAR(m.Cosine(kTagA, kTagA), 1.0, 1e-12);
  EXPECT_NEAR(m.Cosine(kTagA, kTagB), m.Cosine(kTagB, kTagA), 1e-15);
}

// ------------------------------------------------------ CorrelationModel

class CorrelationModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<corpus::Corpus>(MakeTinyCorpus());
    corpus::Context& ctx = corpus_->MutableContext();
    // Taxonomy: root -> animal -> {a, b}; terms 0 and 1 are siblings.
    const auto root = ctx.taxonomy.AddRoot();
    const auto animal = ctx.taxonomy.AddChild(root, "animal");
    ctx.taxonomy.AttachTerm(0, ctx.taxonomy.AddChild(animal, "a"));
    ctx.taxonomy.AttachTerm(1, ctx.taxonomy.AddChild(animal, "b"));
    // Two visual words: identical centroid 0/1 except one coordinate.
    vision::Descriptor d0{}, d1{};
    d1[0] = 0.1f;
    ctx.visual_vocabulary =
        vision::VisualVocabulary::FromCentroids({d0, d1});
    // Users 0 and 1 share a group; user 2 is isolated.
    for (int i = 0; i < 3; ++i) ctx.user_graph.AddUser();
    const auto g = ctx.user_graph.AddGroup();
    ctx.user_graph.AddMembership(0, g);
    ctx.user_graph.AddMembership(1, g);

    matrix_ = std::make_shared<FeatureMatrix>(FeatureMatrix::Build(*corpus_));
    model_ = std::make_unique<CorrelationModel>(corpus_->SharedContext(),
                                                matrix_);
  }
  std::unique_ptr<corpus::Corpus> corpus_;
  std::shared_ptr<FeatureMatrix> matrix_;
  std::unique_ptr<CorrelationModel> model_;
};

TEST_F(CorrelationModelTest, SelfCorrelationIsOne) {
  EXPECT_DOUBLE_EQ(model_->Cor(kTagA, kTagA), 1.0);
}

TEST_F(CorrelationModelTest, IntraTextUsesWup) {
  // siblings at depth 3: 2*2/(3+3) = 2/3.
  EXPECT_NEAR(model_->Cor(kTagA, kTagB), 2.0 / 3.0, 1e-12);
  EXPECT_TRUE(model_->Correlated(kTagA, kTagB));  // above 0.55 default
}

TEST_F(CorrelationModelTest, IntraVisualUsesCentroidSimilarity) {
  const FeatureKey v1 = MakeFeatureKey(FeatureType::kVisual, 1);
  EXPECT_NEAR(model_->Cor(kVw0, v1), 1.0 / 1.1, 1e-7);
  EXPECT_TRUE(model_->Correlated(kVw0, v1));
}

TEST_F(CorrelationModelTest, IntraUserSharedGroupRule) {
  const FeatureKey u1 = MakeFeatureKey(FeatureType::kUser, 1);
  const FeatureKey u2 = MakeFeatureKey(FeatureType::kUser, 2);
  EXPECT_GT(model_->Cor(kUser0, u1), 0.0);
  EXPECT_TRUE(model_->Correlated(kUser0, u1));
  EXPECT_DOUBLE_EQ(model_->Cor(kUser0, u2), 0.0);
  EXPECT_FALSE(model_->Correlated(kUser0, u2));
}

TEST_F(CorrelationModelTest, InterTypeUsesCosine) {
  // kTagA = (2,1,0), kVw0 = (1,0,0): cos = 2/sqrt(5).
  EXPECT_NEAR(model_->Cor(kTagA, kVw0), 2.0 / std::sqrt(5.0), 1e-12);
  // Symmetry through the cache.
  EXPECT_DOUBLE_EQ(model_->Cor(kTagA, kVw0), model_->Cor(kVw0, kTagA));
}

TEST_F(CorrelationModelTest, InterTypeNoCooccurrence) {
  // kVw0 only in o0, kUser0 only in o1: disjoint supports.
  EXPECT_DOUBLE_EQ(model_->Cor(kVw0, kUser0), 0.0);
  EXPECT_FALSE(model_->Correlated(kVw0, kUser0));
}

TEST_F(CorrelationModelTest, ThresholdsPerKind) {
  const CorrelationOptions& o = model_->Options();
  EXPECT_DOUBLE_EQ(model_->ThresholdFor(kTagA, kTagB),
                   o.text_text_threshold);
  EXPECT_DOUBLE_EQ(model_->ThresholdFor(kTagA, kVw0),
                   o.inter_type_threshold);
  EXPECT_DOUBLE_EQ(model_->ThresholdFor(kUser0, kUser0),
                   o.user_user_threshold);
}

// ------------------------------------------------------------------ CorS

class CorSTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A random corpus with heavy feature reuse so intersections are
    // non-trivial.
    util::Rng rng(99);
    for (int i = 0; i < 40; ++i) {
      MediaObject obj;
      const int n = 1 + int(rng.UniformInt(6));
      for (int f = 0; f < n; ++f) {
        obj.features.push_back(
            {MakeFeatureKey(FeatureType::kText,
                            std::uint32_t(rng.UniformInt(10))),
             std::uint32_t(1 + rng.UniformInt(3))});
      }
      obj.Normalize();
      corpus_.Add(std::move(obj));
    }
    matrix_ = std::make_shared<FeatureMatrix>(FeatureMatrix::Build(corpus_));
    calc_ = std::make_unique<CorSCalculator>(matrix_);
  }
  corpus::Corpus corpus_;
  std::shared_ptr<FeatureMatrix> matrix_;
  std::unique_ptr<CorSCalculator> calc_;
};

TEST_F(CorSTest, SingleFeatureIsOne) {
  EXPECT_DOUBLE_EQ(calc_->Compute({kTagA}), 1.0);
  EXPECT_DOUBLE_EQ(calc_->ComputeBrute({kTagA}), 1.0);
}

TEST_F(CorSTest, FastMatchesBruteForPairs) {
  for (std::uint32_t a = 0; a < 10; ++a) {
    for (std::uint32_t b = a + 1; b < 10; ++b) {
      const std::vector<FeatureKey> f = {
          MakeFeatureKey(FeatureType::kText, a),
          MakeFeatureKey(FeatureType::kText, b)};
      EXPECT_NEAR(calc_->Compute(f), calc_->ComputeBrute(f), 1e-9)
          << "pair " << a << "," << b;
    }
  }
}

TEST_F(CorSTest, FastMatchesBruteForTriples) {
  util::Rng rng(123);
  for (int round = 0; round < 30; ++round) {
    std::vector<FeatureKey> f;
    while (f.size() < 3) {
      const FeatureKey k =
          MakeFeatureKey(FeatureType::kText, std::uint32_t(rng.UniformInt(10)));
      if (std::find(f.begin(), f.end(), k) == f.end()) f.push_back(k);
    }
    EXPECT_NEAR(calc_->Compute(f), calc_->ComputeBrute(f), 1e-9);
  }
}

TEST_F(CorSTest, PairEqualsPearsonCorrelation) {
  // For m=2 the normalised Eq. 8 is the Pearson correlation of the two
  // occurrence vectors (clamped at 0); verify against a direct computation.
  const std::vector<FeatureKey> f = {kTagA, kTagB};
  std::vector<double> xa(corpus_.Size(), 0.0), xb(corpus_.Size(), 0.0);
  for (const Posting& p : matrix_->Postings(kTagA))
    xa[p.object] = p.frequency;
  for (const Posting& p : matrix_->Postings(kTagB))
    xb[p.object] = p.frequency;
  const double n = double(corpus_.Size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < corpus_.Size(); ++i) {
    ma += xa[i];
    mb += xb[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < corpus_.Size(); ++i) {
    cov += (xa[i] - ma) * (xb[i] - mb);
    va += (xa[i] - ma) * (xa[i] - ma);
    vb += (xb[i] - mb) * (xb[i] - mb);
  }
  const double pearson = cov / std::sqrt(va * vb);
  EXPECT_NEAR(calc_->Compute(f), std::max(0.0, pearson), 1e-9);
}

TEST_F(CorSTest, NonNegativeAndOrderInsensitive) {
  const std::vector<FeatureKey> f1 = {kTagA, kTagB};
  const std::vector<FeatureKey> f2 = {kTagB, kTagA};
  EXPECT_GE(calc_->Compute(f1), 0.0);
  EXPECT_DOUBLE_EQ(calc_->Compute(f1), calc_->Compute(f2));
}

TEST_F(CorSTest, ConstantFeatureGivesZero) {
  // A feature present in EVERY object with the same frequency has zero
  // variance -> weight 0.
  corpus::Corpus c;
  for (int i = 0; i < 5; ++i) {
    MediaObject obj;
    obj.features = {{kTagA, 1}, {kTagB, std::uint32_t(1 + i % 2)}};
    obj.Normalize();
    c.Add(std::move(obj));
  }
  auto m = std::make_shared<FeatureMatrix>(FeatureMatrix::Build(c));
  CorSCalculator calc(m);
  EXPECT_DOUBLE_EQ(calc.Compute({kTagA, kTagB}), 0.0);
}

TEST_F(CorSTest, PerfectlyCorrelatedPairIsOne) {
  corpus::Corpus c;
  for (int i = 0; i < 6; ++i) {
    MediaObject obj;
    if (i % 2 == 0) obj.features = {{kTagA, 1}, {kTagB, 1}};
    obj.Normalize();
    c.Add(std::move(obj));
  }
  auto m = std::make_shared<FeatureMatrix>(FeatureMatrix::Build(c));
  CorSCalculator calc(m);
  EXPECT_NEAR(calc.Compute({kTagA, kTagB}), 1.0, 1e-9);
}

TEST_F(CorSTest, AntiCorrelatedPairClampsToZero) {
  corpus::Corpus c;
  for (int i = 0; i < 6; ++i) {
    MediaObject obj;
    if (i % 2 == 0) {
      obj.features = {{kTagA, 1}};
    } else {
      obj.features = {{kTagB, 1}};
    }
    obj.Normalize();
    c.Add(std::move(obj));
  }
  auto m = std::make_shared<FeatureMatrix>(FeatureMatrix::Build(c));
  CorSCalculator calc(m);
  EXPECT_DOUBLE_EQ(calc.Compute({kTagA, kTagB}), 0.0);
}

TEST_F(CorSTest, CacheGrowsOncePerCliqueSet) {
  calc_->Compute({kTagA, kTagB});
  const std::size_t size = calc_->CacheSize();
  calc_->Compute({kTagB, kTagA});
  EXPECT_EQ(calc_->CacheSize(), size);
}

}  // namespace
}  // namespace figdb::stats
