#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "vision/block_features.hpp"
#include "vision/image.hpp"
#include "vision/image_synth.hpp"
#include "vision/kmeans.hpp"
#include "vision/visual_vocabulary.hpp"

namespace figdb::vision {
namespace {

Image MakeConstantImage(std::size_t w, std::size_t h, float value) {
  Image img(w, h);
  for (std::size_t y = 0; y < h; ++y)
    for (std::size_t x = 0; x < w; ++x) img.At(x, y) = value;
  return img;
}

// ----------------------------------------------------------------- Image

TEST(ImageTest, ClampBoundsPixels) {
  Image img(4, 4);
  img.At(0, 0) = -2.0f;
  img.At(1, 1) = 3.0f;
  img.Clamp();
  EXPECT_FLOAT_EQ(img.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img.At(1, 1), 1.0f);
}

// -------------------------------------------------------- BlockFeatures

TEST(BlockFeaturesTest, ConstantBlockHasNoTexture) {
  const Image img = MakeConstantImage(16, 16, 0.5f);
  BlockFeatureExtractor ex;
  const Descriptor d = ex.ExtractBlock(img, 0, 0);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(d[i], 0.0f);  // no gradients
  EXPECT_NEAR(d[12], 0.5, 1e-6);                            // mean
  EXPECT_NEAR(d[13], 0.0, 1e-6);                            // stddev
  EXPECT_NEAR(d[14], 0.0, 1e-6);
  EXPECT_NEAR(d[15], 0.0, 1e-6);
}

TEST(BlockFeaturesTest, HorizontalGradientShowsInDx) {
  Image img(16, 16);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      img.At(x, y) = float(x) / 15.0f;
  BlockFeatureExtractor ex;
  const Descriptor d = ex.ExtractBlock(img, 0, 0);
  EXPECT_GT(d[14], 5.0 * std::max(1e-9f, d[15]));  // |dx| dominates |dy|
}

TEST(BlockFeaturesTest, VerticalGradientShowsInDy) {
  Image img(16, 16);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      img.At(x, y) = float(y) / 15.0f;
  BlockFeatureExtractor ex;
  const Descriptor d = ex.ExtractBlock(img, 0, 0);
  EXPECT_GT(d[15], 5.0 * std::max(1e-9f, d[14]));
}

TEST(BlockFeaturesTest, GradientHistogramIsNormalized) {
  util::Rng rng(5);
  Image img(16, 16);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      img.At(x, y) = float(rng.UniformReal());
  BlockFeatureExtractor ex;
  const Descriptor d = ex.ExtractBlock(img, 0, 0);
  double mass = 0.0;
  for (int i = 0; i < 8; ++i) {
    EXPECT_GE(d[i], 0.0f);
    mass += d[i];
  }
  EXPECT_NEAR(mass, 1.0, 1e-5);
}

TEST(BlockFeaturesTest, QuadrantMeansSeparate) {
  Image img(16, 16);
  for (std::size_t y = 0; y < 16; ++y)
    for (std::size_t x = 0; x < 16; ++x)
      img.At(x, y) = (x < 8 && y < 8) ? 1.0f : 0.0f;
  BlockFeatureExtractor ex;
  const Descriptor d = ex.ExtractBlock(img, 0, 0);
  EXPECT_NEAR(d[8], 1.0, 1e-6);   // top-left quadrant
  EXPECT_NEAR(d[9], 0.0, 1e-6);
  EXPECT_NEAR(d[10], 0.0, 1e-6);
  EXPECT_NEAR(d[11], 0.0, 1e-6);
}

TEST(BlockFeaturesTest, GridCountAndEdgeDrop) {
  BlockFeatureExtractor ex;
  EXPECT_EQ(ex.Extract(MakeConstantImage(64, 48, 0.1f)).size(), 4u * 3u);
  EXPECT_EQ(ex.Extract(MakeConstantImage(70, 70, 0.1f)).size(), 4u * 4u);
  EXPECT_TRUE(ex.Extract(MakeConstantImage(8, 8, 0.1f)).empty());
}

TEST(BlockFeaturesTest, Deterministic) {
  const Image img = MakeConstantImage(32, 32, 0.3f);
  BlockFeatureExtractor ex;
  const auto a = ex.Extract(img);
  const auto b = ex.Extract(img);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(0.0, DescriptorDistanceSquared(a[i], b[i]));
}

// ---------------------------------------------------------------- KMeans

std::vector<float> MakeThreeClusters(std::size_t per_cluster,
                                     std::size_t dim, util::Rng* rng) {
  std::vector<float> data;
  const double centers[3] = {0.0, 10.0, 20.0};
  for (int c = 0; c < 3; ++c)
    for (std::size_t i = 0; i < per_cluster; ++i)
      for (std::size_t d = 0; d < dim; ++d)
        data.push_back(float(centers[c] + rng->Gaussian(0.0, 0.3)));
  return data;
}

TEST(KMeansTest, RecoversSeparatedClusters) {
  util::Rng rng(3);
  const auto data = MakeThreeClusters(50, 4, &rng);
  const KMeansResult r = KMeans(data, 4, {.k = 3, .max_iterations = 30});
  ASSERT_EQ(r.assignments.size(), 150u);
  // All points of one true cluster share an assignment.
  for (int c = 0; c < 3; ++c) {
    const std::uint32_t label = r.assignments[c * 50];
    for (int i = 0; i < 50; ++i)
      EXPECT_EQ(r.assignments[c * 50 + i], label);
  }
  // The three labels are distinct.
  EXPECT_NE(r.assignments[0], r.assignments[50]);
  EXPECT_NE(r.assignments[50], r.assignments[100]);
  EXPECT_NE(r.assignments[0], r.assignments[100]);
}

TEST(KMeansTest, AssignmentsPointToNearestCentroid) {
  util::Rng rng(5);
  std::vector<float> data;
  for (int i = 0; i < 200; ++i)
    data.push_back(float(rng.UniformReal(0.0, 1.0)));
  const KMeansResult r = KMeans(data, 2, {.k = 5, .max_iterations = 20});
  const std::size_t k = r.centroids.size() / 2;
  for (std::size_t i = 0; i < 100; ++i) {
    double best = 1e300;
    std::uint32_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      double s = 0.0;
      for (int d = 0; d < 2; ++d) {
        const double diff = data[i * 2 + d] - r.centroids[c * 2 + d];
        s += diff * diff;
      }
      if (s < best) {
        best = s;
        best_c = std::uint32_t(c);
      }
    }
    EXPECT_EQ(r.assignments[i], best_c);
  }
}

TEST(KMeansTest, FewerPointsThanK) {
  std::vector<float> data = {0.0f, 1.0f, 2.0f};  // 3 points, dim 1
  const KMeansResult r = KMeans(data, 1, {.k = 10, .max_iterations = 5});
  EXPECT_EQ(r.centroids.size(), 3u);
  EXPECT_NEAR(r.inertia, 0.0, 1e-12);
}

TEST(KMeansTest, EmptyInput) {
  const KMeansResult r = KMeans({}, 4, {.k = 3});
  EXPECT_TRUE(r.centroids.empty());
  EXPECT_TRUE(r.assignments.empty());
}

TEST(KMeansTest, DeterministicForSeed) {
  util::Rng rng(7);
  const auto data = MakeThreeClusters(30, 3, &rng);
  const KMeansResult a = KMeans(data, 3, {.k = 4, .seed = 11});
  const KMeansResult b = KMeans(data, 3, {.k = 4, .seed = 11});
  EXPECT_EQ(a.assignments, b.assignments);
  EXPECT_EQ(a.centroids, b.centroids);
}

TEST(KMeansTest, MoreIterationsNeverWorsenInertia) {
  util::Rng rng(9);
  std::vector<float> data;
  for (int i = 0; i < 600; ++i) data.push_back(float(rng.Gaussian()));
  const KMeansResult one = KMeans(data, 3, {.k = 8, .max_iterations = 1,
                                            .seed = 2});
  const KMeansResult many = KMeans(data, 3, {.k = 8, .max_iterations = 20,
                                             .seed = 2});
  EXPECT_LE(many.inertia, one.inertia + 1e-9);
}

// ----------------------------------------------------- VisualVocabulary

TEST(VisualVocabularyTest, QuantizeReturnsNearest) {
  Descriptor a{}, b{};
  a.fill(0.0f);
  b.fill(1.0f);
  const VisualVocabulary vocab = VisualVocabulary::FromCentroids({a, b});
  Descriptor probe{};
  probe.fill(0.2f);
  EXPECT_EQ(vocab.Quantize(probe), 0u);
  probe.fill(0.8f);
  EXPECT_EQ(vocab.Quantize(probe), 1u);
}

TEST(VisualVocabularyTest, SimilarityProperties) {
  Descriptor a{}, b{};
  a.fill(0.0f);
  b.fill(1.0f);
  const VisualVocabulary vocab = VisualVocabulary::FromCentroids({a, b});
  EXPECT_DOUBLE_EQ(vocab.Similarity(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(vocab.Similarity(0, 1), vocab.Similarity(1, 0));
  EXPECT_LT(vocab.Similarity(0, 1), 1.0);
  EXPECT_GT(vocab.Similarity(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(vocab.Distance(0, 1), 4.0);  // sqrt(16 * 1)
}

TEST(VisualVocabularyTest, BuildFromDescriptors) {
  util::Rng rng(13);
  std::vector<Descriptor> descriptors;
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 40; ++i) {
      Descriptor d{};
      for (auto& x : d)
        x = float(c * 2.0 + rng.Gaussian(0.0, 0.05));
      descriptors.push_back(d);
    }
  }
  const VisualVocabulary vocab = VisualVocabulary::Build(
      descriptors, {.k = 3, .max_iterations = 20});
  EXPECT_EQ(vocab.WordCount(), 3u);
  // Same-cluster descriptors quantise to the same word.
  EXPECT_EQ(vocab.Quantize(descriptors[0]), vocab.Quantize(descriptors[10]));
  EXPECT_NE(vocab.Quantize(descriptors[0]), vocab.Quantize(descriptors[50]));
}

// ------------------------------------------------------------ Synthesizer

TEST(SynthesizerTest, RendersRequestedSize) {
  Synthesizer synth(4, {.image_width = 64, .image_height = 48});
  util::Rng rng(1);
  const Image img = synth.Render({1.0, 0.0, 0.0, 0.0}, &rng);
  EXPECT_EQ(img.Width(), 64u);
  EXPECT_EQ(img.Height(), 48u);
}

TEST(SynthesizerTest, PixelsWithinRange) {
  Synthesizer synth(2, {});
  util::Rng rng(2);
  const Image img = synth.Render({0.5, 0.5}, &rng);
  for (float p : img.Pixels()) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(SynthesizerTest, SameTopicImagesCloserThanCrossTopic) {
  // The whole point of the substrate: descriptors of same-topic images are
  // nearer (on average) than descriptors of different-topic images.
  Synthesizer synth(2, {.pixel_noise = 0.02, .seed = 3});
  BlockFeatureExtractor ex;
  util::Rng rng(4);
  auto mean_descriptor = [&](const std::vector<double>& weights) {
    Descriptor acc{};
    const Image img = synth.Render(weights, &rng);
    const auto ds = ex.Extract(img);
    for (const Descriptor& d : ds)
      for (std::size_t i = 0; i < kDescriptorDim; ++i) acc[i] += d[i];
    for (auto& x : acc) x /= float(ds.size());
    return acc;
  };
  const Descriptor t0a = mean_descriptor({1.0, 0.0});
  const Descriptor t0b = mean_descriptor({1.0, 0.0});
  const Descriptor t1 = mean_descriptor({0.0, 1.0});
  EXPECT_LT(DescriptorDistanceSquared(t0a, t0b),
            DescriptorDistanceSquared(t0a, t1));
}

}  // namespace
}  // namespace figdb::vision
