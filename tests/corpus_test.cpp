#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "corpus/corpus.hpp"
#include "corpus/generator.hpp"
#include "corpus/media_object.hpp"

namespace figdb::corpus {
namespace {

// ----------------------------------------------------------- FeatureKey

TEST(FeatureKeyTest, RoundTrip) {
  for (auto type : {FeatureType::kText, FeatureType::kVisual,
                    FeatureType::kUser}) {
    for (std::uint32_t id : {0u, 1u, 999u, 0x3fffffffu}) {
      const FeatureKey key = MakeFeatureKey(type, id);
      EXPECT_EQ(TypeOf(key), type);
      EXPECT_EQ(IdOf(key), id);
    }
  }
}

TEST(FeatureKeyTest, TypesAreDisjoint) {
  EXPECT_NE(MakeFeatureKey(FeatureType::kText, 7),
            MakeFeatureKey(FeatureType::kVisual, 7));
  EXPECT_NE(MakeFeatureKey(FeatureType::kVisual, 7),
            MakeFeatureKey(FeatureType::kUser, 7));
}

TEST(FeatureKeyTest, KeysSortByTypeFirst) {
  EXPECT_LT(MakeFeatureKey(FeatureType::kText, 0x3fffffffu),
            MakeFeatureKey(FeatureType::kVisual, 0u));
  EXPECT_LT(MakeFeatureKey(FeatureType::kVisual, 0x3fffffffu),
            MakeFeatureKey(FeatureType::kUser, 0u));
}

// ---------------------------------------------------------- MediaObject

TEST(MediaObjectTest, NormalizeSortsAndMerges) {
  MediaObject obj;
  const FeatureKey a = MakeFeatureKey(FeatureType::kText, 5);
  const FeatureKey b = MakeFeatureKey(FeatureType::kText, 2);
  obj.features = {{a, 1}, {b, 2}, {a, 3}};
  obj.Normalize();
  ASSERT_EQ(obj.features.size(), 2u);
  EXPECT_EQ(obj.features[0].feature, b);
  EXPECT_EQ(obj.features[1].feature, a);
  EXPECT_EQ(obj.FrequencyOf(a), 4u);
  EXPECT_EQ(obj.FrequencyOf(b), 2u);
  EXPECT_EQ(obj.TotalFrequency(), 6u);
}

TEST(MediaObjectTest, ContainsAndMissing) {
  MediaObject obj;
  const FeatureKey a = MakeFeatureKey(FeatureType::kUser, 1);
  obj.features = {{a, 1}};
  obj.Normalize();
  EXPECT_TRUE(obj.Contains(a));
  EXPECT_FALSE(obj.Contains(MakeFeatureKey(FeatureType::kUser, 2)));
  EXPECT_EQ(obj.FrequencyOf(MakeFeatureKey(FeatureType::kText, 1)), 0u);
}

TEST(MediaObjectTest, FeaturesOfType) {
  MediaObject obj;
  obj.features = {{MakeFeatureKey(FeatureType::kText, 1), 1},
                  {MakeFeatureKey(FeatureType::kVisual, 2), 3},
                  {MakeFeatureKey(FeatureType::kText, 9), 1}};
  obj.Normalize();
  EXPECT_EQ(obj.FeaturesOfType(FeatureType::kText).size(), 2u);
  EXPECT_EQ(obj.FeaturesOfType(FeatureType::kVisual).size(), 1u);
  EXPECT_TRUE(obj.FeaturesOfType(FeatureType::kUser).empty());
}

// --------------------------------------------------------------- Corpus

TEST(CorpusTest, AddAssignsSequentialIds) {
  Corpus corpus;
  EXPECT_EQ(corpus.Add(MediaObject{}), 0u);
  EXPECT_EQ(corpus.Add(MediaObject{}), 1u);
  EXPECT_EQ(corpus.Size(), 2u);
  EXPECT_EQ(corpus.Object(1).id, 1u);
}

TEST(CorpusTest, PrefixSharesContext) {
  Corpus corpus;
  corpus.MutableContext().num_topics = 17;
  for (int i = 0; i < 10; ++i) corpus.Add(MediaObject{});
  const Corpus prefix = corpus.Prefix(4);
  EXPECT_EQ(prefix.Size(), 4u);
  EXPECT_EQ(prefix.GetContext().num_topics, 17u);
  EXPECT_EQ(prefix.SharedContext().get(), corpus.SharedContext().get());
  EXPECT_EQ(corpus.Prefix(100).Size(), 10u);
}

// ------------------------------------------------------------ Generator

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.num_objects = 400;
  config.num_topics = 8;
  config.num_users = 150;
  config.visual_words = 64;
  config.seed = 77;
  return config;
}

class GeneratorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus(Generator(SmallConfig()).MakeRetrievalCorpus());
  }
  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }
  static Corpus* corpus_;
};

Corpus* GeneratorTest::corpus_ = nullptr;

TEST_F(GeneratorTest, ProducesRequestedObjectCount) {
  EXPECT_EQ(corpus_->Size(), 400u);
}

TEST_F(GeneratorTest, EveryObjectHasAllThreeModalitiesUsually) {
  std::size_t with_text = 0, with_visual = 0, with_user = 0;
  for (const MediaObject& obj : corpus_->Objects()) {
    if (!obj.FeaturesOfType(FeatureType::kText).empty()) ++with_text;
    if (!obj.FeaturesOfType(FeatureType::kVisual).empty()) ++with_visual;
    if (!obj.FeaturesOfType(FeatureType::kUser).empty()) ++with_user;
  }
  EXPECT_GT(with_text, corpus_->Size() * 95 / 100);
  EXPECT_EQ(with_visual, corpus_->Size());
  EXPECT_EQ(with_user, corpus_->Size());
}

TEST_F(GeneratorTest, TopicsWithinRange) {
  for (const MediaObject& obj : corpus_->Objects()) {
    ASSERT_NE(obj.topic, MediaObject::kInvalidTopic);
    EXPECT_LT(obj.topic, 8u);
  }
}

TEST_F(GeneratorTest, MonthsWithinRange) {
  for (const MediaObject& obj : corpus_->Objects())
    EXPECT_LT(obj.month, SmallConfig().num_months);
}

TEST_F(GeneratorTest, FeatureIdsResolveInContext) {
  const Context& ctx = corpus_->GetContext();
  for (const MediaObject& obj : corpus_->Objects()) {
    for (const FeatureOccurrence& f : obj.features) {
      switch (TypeOf(f.feature)) {
        case FeatureType::kText:
          EXPECT_LT(IdOf(f.feature), ctx.vocabulary.Size());
          break;
        case FeatureType::kVisual:
          EXPECT_LT(IdOf(f.feature), ctx.visual_vocabulary.WordCount());
          break;
        case FeatureType::kUser:
          EXPECT_LT(IdOf(f.feature), ctx.user_graph.UserCount());
          break;
      }
    }
  }
}

TEST_F(GeneratorTest, VocabularyRespectsMinFrequency) {
  const Context& ctx = corpus_->GetContext();
  for (std::size_t id = 0; id < ctx.vocabulary.Size(); ++id) {
    EXPECT_GE(ctx.vocabulary.Frequency(text::TermId(id)),
              SmallConfig().min_tag_frequency);
  }
}

TEST_F(GeneratorTest, EveryTermAttachedToTaxonomy) {
  const Context& ctx = corpus_->GetContext();
  for (std::size_t id = 0; id < ctx.vocabulary.Size(); ++id) {
    EXPECT_NE(ctx.taxonomy.NodeOfTerm(std::uint32_t(id)),
              text::kInvalidNode);
  }
}

TEST_F(GeneratorTest, ObjectFeaturesAreNormalized) {
  for (const MediaObject& obj : corpus_->Objects()) {
    for (std::size_t i = 1; i < obj.features.size(); ++i)
      EXPECT_LT(obj.features[i - 1].feature, obj.features[i].feature);
  }
}

TEST_F(GeneratorTest, SameTopicObjectsShareMoreTags) {
  // The central statistical property the FIG exploits.
  double same = 0.0, cross = 0.0;
  std::size_t same_n = 0, cross_n = 0;
  const auto& objs = corpus_->Objects();
  for (std::size_t i = 0; i < 60; ++i) {
    for (std::size_t j = i + 1; j < 60; ++j) {
      std::size_t shared = 0;
      for (const FeatureOccurrence& f : objs[i].features)
        if (TypeOf(f.feature) == FeatureType::kText &&
            objs[j].Contains(f.feature)) {
          ++shared;
        }
      if (objs[i].topic == objs[j].topic) {
        same += double(shared);
        ++same_n;
      } else {
        cross += double(shared);
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_GT(same / double(same_n), 2.0 * cross / double(cross_n));
}

TEST(GeneratorDeterminismTest, SameSeedSameCorpus) {
  const Corpus a = Generator(SmallConfig()).MakeRetrievalCorpus();
  const Corpus b = Generator(SmallConfig()).MakeRetrievalCorpus();
  ASSERT_EQ(a.Size(), b.Size());
  for (std::size_t i = 0; i < a.Size(); ++i) {
    const MediaObject& oa = a.Object(ObjectId(i));
    const MediaObject& ob = b.Object(ObjectId(i));
    EXPECT_EQ(oa.topic, ob.topic);
    EXPECT_EQ(oa.month, ob.month);
    ASSERT_EQ(oa.features.size(), ob.features.size());
    for (std::size_t f = 0; f < oa.features.size(); ++f) {
      EXPECT_EQ(oa.features[f].feature, ob.features[f].feature);
      EXPECT_EQ(oa.features[f].frequency, ob.features[f].frequency);
    }
  }
}

TEST(GeneratorDeterminismTest, DifferentSeedsDiffer) {
  GeneratorConfig config = SmallConfig();
  const Corpus a = Generator(config).MakeRetrievalCorpus();
  config.seed = 78;
  const Corpus b = Generator(config).MakeRetrievalCorpus();
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.Size(); ++i) {
    if (a.Object(ObjectId(i)).topic != b.Object(ObjectId(i)).topic)
      ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(GeneratorImagePipelineTest, FullPipelineProducesVisualWords) {
  GeneratorConfig config = SmallConfig();
  config.num_objects = 60;
  config.use_image_pipeline = true;
  config.visual_words = 32;
  config.kmeans_training_images = 30;
  const Corpus corpus = Generator(config).MakeRetrievalCorpus();
  EXPECT_LE(corpus.GetContext().visual_vocabulary.WordCount(), 32u);
  EXPECT_GT(corpus.GetContext().visual_vocabulary.WordCount(), 0u);
  for (const MediaObject& obj : corpus.Objects()) {
    const auto vis = obj.FeaturesOfType(FeatureType::kVisual);
    EXPECT_FALSE(vis.empty());
    std::uint32_t blocks = 0;
    for (const auto& f : vis) blocks += f.frequency;
    EXPECT_EQ(blocks, config.blocks_per_object);
  }
}

// ------------------------------------------------- RecommendationDataset

class RecDatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    GeneratorConfig config = SmallConfig();
    config.num_objects = 600;
    RecommendationConfig rec;
    rec.num_profile_users = 12;
    rec.mean_favorites_per_month = 10.0;
    dataset_ = new RecommendationDataset(
        Generator(config).MakeRecommendationDataset(rec));
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }
  static RecommendationDataset* dataset_;
};

RecommendationDataset* RecDatasetTest::dataset_ = nullptr;

TEST_F(RecDatasetTest, UsersHaveProfilesAndHeldOut) {
  ASSERT_EQ(dataset_->users.size(), 12u);
  for (const RecommendationUser& u : dataset_->users) {
    EXPECT_FALSE(u.profile.empty());
    EXPECT_FALSE(u.held_out.empty());
  }
}

TEST_F(RecDatasetTest, ProfileObjectsAreInProfileWindow) {
  for (const RecommendationUser& u : dataset_->users) {
    for (ObjectId id : u.profile)
      EXPECT_LT(dataset_->corpus.Object(id).month, dataset_->profile_months);
    for (ObjectId id : u.held_out)
      EXPECT_GE(dataset_->corpus.Object(id).month, dataset_->profile_months);
  }
}

TEST_F(RecDatasetTest, HeldOutIsSubsetOfCandidates) {
  const std::unordered_set<ObjectId> candidates(dataset_->candidates.begin(),
                                                dataset_->candidates.end());
  for (const RecommendationUser& u : dataset_->users)
    for (ObjectId id : u.held_out) EXPECT_TRUE(candidates.count(id));
}

TEST_F(RecDatasetTest, FavoritesAreDistinctPerUser) {
  for (const RecommendationUser& u : dataset_->users) {
    std::set<ObjectId> all(u.profile.begin(), u.profile.end());
    all.insert(u.held_out.begin(), u.held_out.end());
    EXPECT_EQ(all.size(), u.profile.size() + u.held_out.size());
  }
}

TEST_F(RecDatasetTest, CandidatesCoverEvaluationWindow) {
  std::size_t eval_objects = 0;
  for (const MediaObject& obj : dataset_->corpus.Objects())
    if (obj.month >= dataset_->profile_months) ++eval_objects;
  EXPECT_EQ(dataset_->candidates.size(), eval_objects);
}

}  // namespace
}  // namespace figdb::corpus
