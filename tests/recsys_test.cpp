#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "corpus/generator.hpp"
#include "index/retrieval_engine.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"

namespace figdb::recsys {
namespace {

using corpus::FeatureKey;
using corpus::FeatureType;
using corpus::MakeFeatureKey;
using corpus::MediaObject;
using corpus::ObjectId;

FeatureKey Tag(std::uint32_t id) {
  return MakeFeatureKey(FeatureType::kText, id);
}

/// Hand-built corpus: tags 0-1 correlated (sibling taxonomy leaves), tag 2
/// unrelated; objects with controlled months.
class RecsysFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    corpus_ = std::make_unique<corpus::Corpus>();
    corpus::Context& ctx = corpus_->MutableContext();
    const auto root = ctx.taxonomy.AddRoot();
    const auto a = ctx.taxonomy.AddChild(root, "a");
    ctx.taxonomy.AttachTerm(0, ctx.taxonomy.AddChild(a, "t0"));
    ctx.taxonomy.AttachTerm(1, ctx.taxonomy.AddChild(a, "t1"));
    const auto b = ctx.taxonomy.AddChild(root, "b");
    ctx.taxonomy.AttachTerm(2, ctx.taxonomy.AddChild(
                                   ctx.taxonomy.AddChild(b, "sub"), "t2"));
    ctx.visual_vocabulary = vision::VisualVocabulary::FromCentroids(
        {vision::Descriptor{}});
    ctx.user_graph.AddUser();

    // Profile history: month 0 favours {t0,t1}; month 2 favours {t2}.
    AddObject({{Tag(0), 1}, {Tag(1), 1}}, 0);  // id 0
    AddObject({{Tag(2), 1}}, 2);               // id 1
    // Candidates (month 4): one matching the OLD interest, one the NEW.
    AddObject({{Tag(0), 1}, {Tag(1), 1}}, 4);  // id 2
    AddObject({{Tag(2), 1}}, 4);               // id 3
    // Padding objects so feature statistics are non-degenerate.
    AddObject({{Tag(0), 1}}, 1);               // id 4
    AddObject({{Tag(1), 1}}, 3);               // id 5
    AddObject({{Tag(2), 2}}, 1);               // id 6

    matrix_ = std::make_shared<stats::FeatureMatrix>(
        stats::FeatureMatrix::Build(*corpus_));
    correlations_ = std::make_shared<stats::CorrelationModel>(
        corpus_->SharedContext(), matrix_);
    cors_ = std::make_shared<stats::CorSCalculator>(matrix_);
    potential_ = std::make_shared<core::PotentialEvaluator>(
        correlations_, cors_, core::MrfOptions{});
    builder_ = std::make_unique<ProfileBuilder>(correlations_);
  }

  void AddObject(std::vector<corpus::FeatureOccurrence> features,
                 std::uint16_t month) {
    MediaObject obj;
    obj.features = std::move(features);
    obj.month = month;
    obj.Normalize();
    corpus_->Add(std::move(obj));
  }

  std::unique_ptr<corpus::Corpus> corpus_;
  std::shared_ptr<stats::FeatureMatrix> matrix_;
  std::shared_ptr<stats::CorrelationModel> correlations_;
  std::shared_ptr<stats::CorSCalculator> cors_;
  std::shared_ptr<core::PotentialEvaluator> potential_;
  std::unique_ptr<ProfileBuilder> builder_;
};

// -------------------------------------------------------------- Profiles

TEST_F(RecsysFixture, MergedBigObjectUnionsFeatures) {
  const UserProfile p = builder_->Build(*corpus_, {0, 1});
  EXPECT_EQ(p.merged.features.size(), 3u);  // t0, t1, t2
  EXPECT_TRUE(p.merged.Contains(Tag(0)));
  EXPECT_TRUE(p.merged.Contains(Tag(2)));
}

TEST_F(RecsysFixture, MergedFrequenciesSum) {
  const UserProfile p = builder_->Build(*corpus_, {0, 4});
  EXPECT_EQ(p.merged.FrequencyOf(Tag(0)), 2u);  // once in each object
}

TEST_F(RecsysFixture, NoCrossObjectCliques) {
  // §4: t0 (object 0) and t2 (object 1) must never form a clique even
  // though both are in Hu.
  const UserProfile p = builder_->Build(*corpus_, {0, 1});
  for (const ProfileClique& c : p.cliques) {
    const bool has_t0 = std::find(c.features.begin(), c.features.end(),
                                  Tag(0)) != c.features.end();
    const bool has_t2 = std::find(c.features.begin(), c.features.end(),
                                  Tag(2)) != c.features.end();
    EXPECT_FALSE(has_t0 && has_t2);
  }
  // But the intra-object pair {t0, t1} IS a clique (correlated siblings).
  bool found_pair = false;
  for (const ProfileClique& c : p.cliques)
    if (c.features.size() == 2 && c.features[0] == Tag(0) &&
        c.features[1] == Tag(1)) {
      found_pair = true;
    }
  EXPECT_TRUE(found_pair);
}

TEST_F(RecsysFixture, CliqueMonthsTrackSourceObjects) {
  const UserProfile p = builder_->Build(*corpus_, {0, 1, 4});
  for (const ProfileClique& c : p.cliques) {
    if (c.features == std::vector<FeatureKey>{Tag(0)}) {
      // t0 appears in object 0 (month 0) and object 4 (month 1).
      std::multiset<std::uint16_t> months(c.months.begin(), c.months.end());
      EXPECT_EQ(months, (std::multiset<std::uint16_t>{0, 1}));
    }
    if (c.features == std::vector<FeatureKey>{Tag(2)}) {
      ASSERT_EQ(c.months.size(), 1u);
      EXPECT_EQ(c.months[0], 2u);
    }
  }
}

TEST_F(RecsysFixture, TypeMaskFiltersProfile) {
  ProfileBuilderOptions options;
  options.type_mask = core::kUserMask;
  ProfileBuilder user_only(correlations_, options);
  const UserProfile p = user_only.Build(*corpus_, {0, 1});
  EXPECT_TRUE(p.cliques.empty());  // no user features in these objects
  EXPECT_TRUE(p.merged.features.empty());
}

// ------------------------------------------------------------ Recommender

TEST_F(RecsysFixture, DecayOneCountsOccurrences) {
  const UserProfile p = builder_->Build(*corpus_, {0, 4});
  FigRecommender rec(*corpus_, potential_, potential_, {.decay = 1.0});
  // Object 2 contains t0 and t1; t0 has two profile occurrences. The score
  // with delta=1 equals sum over cliques of count * phi, so it must exceed
  // the single-occurrence score of the same evaluation on history {0}.
  const UserProfile p_single = builder_->Build(*corpus_, {0});
  const double two = rec.Score(p, corpus_->Object(2), 4);
  const double one = rec.Score(p_single, corpus_->Object(2), 4);
  EXPECT_GT(two, one);
}

TEST_F(RecsysFixture, DecayDemotesOldInterests) {
  const UserProfile p = builder_->Build(*corpus_, {0, 1});
  FigRecommender no_decay(*corpus_, potential_, potential_, {.decay = 1.0});
  FigRecommender heavy_decay(*corpus_, potential_, potential_,
                             {.decay = 0.2});
  const std::uint16_t now = 4;
  // Old-interest candidate (id 2, matches month-0 history) loses score
  // under decay much faster than the recent-interest candidate (id 3,
  // matches month-2 history).
  const double old_nd = no_decay.Score(p, corpus_->Object(2), now);
  const double old_d = heavy_decay.Score(p, corpus_->Object(2), now);
  const double new_nd = no_decay.Score(p, corpus_->Object(3), now);
  const double new_d = heavy_decay.Score(p, corpus_->Object(3), now);
  ASSERT_GT(old_nd, 0.0);
  ASSERT_GT(new_nd, 0.0);
  EXPECT_NEAR(old_d / old_nd, std::pow(0.2, 4), 1e-9);   // age 4
  EXPECT_NEAR(new_d / new_nd, std::pow(0.2, 2), 1e-9);   // age 2
  EXPECT_LT(old_d / old_nd, new_d / new_nd);
}

TEST_F(RecsysFixture, RecommendRanksCandidates) {
  const UserProfile p = builder_->Build(*corpus_, {0, 1});
  FigRecommender rec(*corpus_, potential_, potential_, {.decay = 0.5});
  const auto results = rec.Recommend(p, {2, 3, 6}, 3, 4);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i)
    EXPECT_GE(results[i - 1].score, results[i].score);
}

TEST_F(RecsysFixture, NameReflectsVariant) {
  FigRecommender fig(*corpus_, potential_, potential_, {.decay = 1.0});
  FigRecommender fig_t(*corpus_, potential_, potential_, {.decay = 0.6});
  EXPECT_EQ(fig.Name(), "FIG");
  EXPECT_EQ(fig_t.Name(), "FIG-T");
}

// --------------------------------------------- End-to-end drift behaviour

TEST(RecommenderDriftTest, DecayHelpsOnDriftingUsers) {
  // Generated recommendation dataset with interest drift: FIG-T (delta<1)
  // must beat plain FIG on mean Precision@10. This is the paper's Fig. 10
  // effect at test scale.
  corpus::GeneratorConfig config;
  config.num_objects = 1200;
  config.num_topics = 10;
  config.num_users = 200;
  config.visual_words = 64;
  config.seed = 606;
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 15;
  rc.mean_favorites_per_month = 12.0;
  corpus::Generator gen(config);
  const corpus::RecommendationDataset ds = gen.MakeRecommendationDataset(rc);

  index::EngineOptions eo;
  eo.build_index = false;
  index::FigRetrievalEngine engine(ds.corpus, eo);
  ProfileBuilder builder(engine.Correlations());

  auto precision_at_10 = [&](double decay) {
    FigRecommender rec(ds.corpus, engine.ExactPotential(), engine.Potential(),
                       {.decay = decay});
    double total = 0.0;
    std::size_t n = 0;
    const std::uint16_t now =
        std::uint16_t(config.num_months - 1);
    for (const corpus::RecommendationUser& u : ds.users) {
      if (u.profile.empty() || u.held_out.empty()) continue;
      const UserProfile p = builder.Build(ds.corpus, u.profile);
      const auto results = rec.Recommend(p, ds.candidates, 10, now);
      const std::set<ObjectId> truth(u.held_out.begin(), u.held_out.end());
      std::size_t hits = 0;
      for (const auto& r : results)
        if (truth.count(r.object)) ++hits;
      total += double(hits) / 10.0;
      ++n;
    }
    return n ? total / double(n) : 0.0;
  };

  const double fig = precision_at_10(1.0);
  const double fig_t = precision_at_10(0.5);
  EXPECT_GT(fig_t, 0.0);
  EXPECT_GE(fig_t, fig);
}

}  // namespace
}  // namespace figdb::recsys
