#include <gtest/gtest.h>

#include "social/user_graph.hpp"

namespace figdb::social {
namespace {

class UserGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 4; ++i) users_[i] = graph_.AddUser();
    for (int i = 0; i < 3; ++i) groups_[i] = graph_.AddGroup();
    graph_.AddMembership(users_[0], groups_[0]);
    graph_.AddMembership(users_[0], groups_[1]);
    graph_.AddMembership(users_[1], groups_[1]);
    graph_.AddMembership(users_[2], groups_[2]);
    // users_[3] joins nothing.
  }
  UserGraph graph_;
  UserId users_[4];
  GroupId groups_[3];
};

TEST_F(UserGraphTest, Counts) {
  EXPECT_EQ(graph_.UserCount(), 4u);
  EXPECT_EQ(graph_.GroupCount(), 3u);
}

TEST_F(UserGraphTest, MembershipIsRecordedBothWays) {
  ASSERT_EQ(graph_.GroupsOf(users_[0]).size(), 2u);
  EXPECT_EQ(graph_.GroupsOf(users_[0])[0], groups_[0]);
  ASSERT_EQ(graph_.MembersOf(groups_[1]).size(), 2u);
  EXPECT_EQ(graph_.MembersOf(groups_[1])[0], users_[0]);
  EXPECT_EQ(graph_.MembersOf(groups_[1])[1], users_[1]);
}

TEST_F(UserGraphTest, MembershipIsIdempotent) {
  graph_.AddMembership(users_[0], groups_[0]);
  EXPECT_EQ(graph_.GroupsOf(users_[0]).size(), 2u);
  EXPECT_EQ(graph_.MembersOf(groups_[0]).size(), 1u);
}

TEST_F(UserGraphTest, SharesGroupMatchesPaperRule) {
  EXPECT_TRUE(graph_.SharesGroup(users_[0], users_[1]));   // via group 1
  EXPECT_TRUE(graph_.SharesGroup(users_[1], users_[0]));   // symmetric
  EXPECT_FALSE(graph_.SharesGroup(users_[0], users_[2]));  // disjoint
  EXPECT_FALSE(graph_.SharesGroup(users_[0], users_[3]));  // empty side
  EXPECT_FALSE(graph_.SharesGroup(users_[3], users_[3]));  // both empty
}

TEST_F(UserGraphTest, GroupJaccard) {
  // users 0 {g0,g1}, user 1 {g1}: intersection 1, union 2.
  EXPECT_DOUBLE_EQ(graph_.GroupJaccard(users_[0], users_[1]), 0.5);
  EXPECT_DOUBLE_EQ(graph_.GroupJaccard(users_[0], users_[0]), 1.0);
  EXPECT_DOUBLE_EQ(graph_.GroupJaccard(users_[0], users_[2]), 0.0);
  EXPECT_DOUBLE_EQ(graph_.GroupJaccard(users_[3], users_[3]), 0.0);
}

TEST_F(UserGraphTest, GroupsAreSorted) {
  UserId u = graph_.AddUser();
  GroupId extra = graph_.AddGroup();
  graph_.AddMembership(u, extra);
  graph_.AddMembership(u, groups_[0]);
  const auto& g = graph_.GroupsOf(u);
  ASSERT_EQ(g.size(), 2u);
  EXPECT_LT(g[0], g[1]);
}

}  // namespace
}  // namespace figdb::social
