#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "corpus/generator.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "serve/query_executor.hpp"
#include "serve/serving_store.hpp"
#include "serve/snapshot.hpp"
#include "util/epoch.hpp"
#include "util/failpoint.hpp"
#include "util/memo_cache.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"
#include "util/thread_pool.hpp"

/// \file serve_test.cpp
/// The concurrent-serving suite: the util substrate (thread pool, epoch
/// reclamation, sharded memo cache), the parallel query executor's
/// bit-identity with the sequential engine, admission control and its
/// fail-points, and the ServingStore's snapshot-isolation contract under a
/// real multi-threaded reader/writer workload. Run under
/// ci/check.sh tsan (ThreadSanitizer) these tests double as the data-race
/// proof for the whole serving path.

namespace figdb::serve {
namespace {

using core::SearchResponse;
using util::FailPoints;
using util::QueryBudget;
using util::ScopedFailPoint;
using util::StatusCode;

// ======================================================================
// util substrate
// ======================================================================

TEST(ThreadPoolTest, ParallelForCoversEveryShardExactlyOnce) {
  util::ThreadPool pool(3);
  constexpr std::size_t kShards = 997;
  std::vector<std::atomic<int>> hits(kShards);
  pool.ParallelFor(kShards, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kShards; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "shard " << i;
}

TEST(ThreadPoolTest, ZeroWorkersRunsInlineOnTheCaller) {
  util::ThreadPool pool(0);
  EXPECT_EQ(pool.Workers(), 0u);
  const auto caller = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.ParallelFor(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;  // no atomics needed: everything is on one thread
  });
  EXPECT_EQ(ran, 16u);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallersAreIndependent) {
  util::ThreadPool pool(2);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kShards = 64;
  std::vector<std::atomic<std::size_t>> done(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 8; ++round) {
        std::vector<std::atomic<int>> hits(kShards);
        pool.ParallelFor(kShards, [&](std::size_t i) {
          hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < kShards; ++i)
          if (hits[i].load() != 1) return;  // leaves done short => failure
        done[c].fetch_add(1);
      }
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) EXPECT_EQ(done[c].load(), 8u);
}

TEST(EpochReclaimerTest, RetireWithoutReadersFreesImmediately) {
  util::EpochReclaimer ebr;
  bool freed = false;
  ebr.Retire([&] { freed = true; });
  EXPECT_TRUE(freed);
  EXPECT_EQ(ebr.PendingRetired(), 0u);
  EXPECT_EQ(ebr.TotalReclaimed(), 1u);
}

TEST(EpochReclaimerTest, PinnedReaderBlocksReclamationUntilDrained) {
  util::EpochReclaimer ebr;
  bool freed = false;
  {
    util::EpochReclaimer::ReadGuard pin(ebr);
    EXPECT_EQ(ebr.ActiveReaders(), 1u);
    ebr.Retire([&] { freed = true; });
    EXPECT_FALSE(freed) << "freed under an active reader";
    EXPECT_EQ(ebr.PendingRetired(), 1u);
    EXPECT_EQ(ebr.TryReclaim(), 0u);
  }
  EXPECT_EQ(ebr.ActiveReaders(), 0u);
  EXPECT_EQ(ebr.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(EpochReclaimerTest, ConcurrentPinRetireSmoke) {
  util::EpochReclaimer ebr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> freed{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        util::EpochReclaimer::ReadGuard pin(ebr);
        std::this_thread::yield();
      }
    });
  }
  constexpr std::uint64_t kRetired = 300;
  for (std::uint64_t i = 0; i < kRetired; ++i)
    ebr.Retire([&] { freed.fetch_add(1, std::memory_order_relaxed); });
  stop.store(true);
  for (auto& t : readers) t.join();
  ebr.TryReclaim();
  EXPECT_EQ(freed.load(), kRetired);
  EXPECT_EQ(ebr.PendingRetired(), 0u);
}

TEST(EpochReclaimerTest, ReaderSlotExhaustionBlocksThenRecovers) {
  // kMaxReaders is the hard slot budget: pin every slot from one thread
  // (slots are claimed per guard, not per thread), prove the 65th reader
  // spins in the slot-claim loop instead of corrupting a slot, then free
  // one pin and prove the spinner gets in and drains cleanly.
  util::EpochReclaimer ebr;
  std::vector<std::unique_ptr<util::EpochReclaimer::ReadGuard>> pins;
  for (std::size_t i = 0; i < util::EpochReclaimer::kMaxReaders; ++i)
    pins.push_back(std::make_unique<util::EpochReclaimer::ReadGuard>(ebr));
  ASSERT_EQ(ebr.ActiveReaders(), util::EpochReclaimer::kMaxReaders);

  std::atomic<bool> entered{false};
  std::thread overflow([&] {
    util::EpochReclaimer::ReadGuard pin(ebr);  // spins: no free slot
    entered.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(entered.load(std::memory_order_acquire))
      << "65th reader entered with every slot claimed";

  // A full slot table still blocks reclamation correctly.
  bool freed = false;
  ebr.Retire([&] { freed = true; });
  EXPECT_FALSE(freed);

  pins.pop_back();  // one slot frees: the spinner must claim it
  overflow.join();
  EXPECT_TRUE(entered.load());

  pins.clear();
  EXPECT_EQ(ebr.ActiveReaders(), 0u);
  EXPECT_EQ(ebr.TryReclaim(), 1u);
  EXPECT_TRUE(freed);
}

TEST(MemoCacheTest, InsertThenLookup) {
  util::ShardedMemoCache cache(0);
  double v = 0.0;
  EXPECT_FALSE(cache.Lookup(42, &v));
  cache.Insert(42, 6.5);
  ASSERT_TRUE(cache.Lookup(42, &v));
  EXPECT_EQ(v, 6.5);
  EXPECT_EQ(cache.Size(), 1u);
}

TEST(MemoCacheTest, CapacityBoundsEveryShard) {
  constexpr std::size_t kCapacity = 64;
  util::ShardedMemoCache cache(kCapacity);
  for (std::uint64_t k = 0; k < 10000; ++k)
    cache.Insert(k, static_cast<double>(k));
  // Per-shard caps make the bound approximate but hard: at most one extra
  // entry per shard.
  EXPECT_LE(cache.Size(), kCapacity + 16);
}

TEST(MemoCacheTest, ConcurrentInsertLookupIsCoherent) {
  util::ShardedMemoCache cache(0);
  auto value_of = [](std::uint64_t k) { return static_cast<double>(k) * 1.5; };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (std::uint64_t k = 0; k < 2000; ++k) {
        double v = 0.0;
        if (cache.Lookup(k, &v)) {
          // A hit must be the value some thread inserted for k — the cache
          // may drop entries, never corrupt them.
          if (v != value_of(k)) {
            ADD_FAILURE() << "corrupt cache value for key " << k;
            return;
          }
        } else {
          cache.Insert(k, value_of(k));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  double v = 0.0;
  ASSERT_TRUE(cache.Lookup(1234, &v));
  EXPECT_EQ(v, value_of(1234));
}

TEST(MemoCacheTest, ContendedEvictionKeepsValuesCoherentAndBounded) {
  // Heavier contention than the smoke above: 8 threads, a key range far
  // past the capacity so the per-shard eviction path runs constantly, and
  // concurrent Size() walkers so the sequential all-shard read path races
  // the writers. The invariants that must hold under any interleaving:
  // a Lookup hit is never a torn/corrupt value, and the capacity bound
  // stays hard (at most one overshoot entry per shard).
  constexpr std::size_t kCapacity = 32;
  util::ShardedMemoCache cache(kCapacity);
  auto value_of = [](std::uint64_t k) {
    return static_cast<double>(k) * 2.25 + 1.0;
  };
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 4000; ++i) {
        // Overlapping strided key streams: every key is written by
        // several threads, always with the same value.
        const std::uint64_t k = (i * 7 + std::uint64_t(t)) % 1024;
        double v = 0.0;
        if (cache.Lookup(k, &v)) {
          if (v != value_of(k)) {
            ADD_FAILURE() << "corrupt value under contention for key " << k;
            return;
          }
        }
        cache.Insert(k, value_of(k));
      }
    });
  }
  std::vector<std::thread> walkers;
  for (int w = 0; w < 2; ++w) {
    walkers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        // Size() takes every shard lock in sequence; racing it against
        // the writers exercises reader/writer shard-lock contention.
        (void)cache.Size();
        std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  stop.store(true);
  for (auto& w : walkers) w.join();
  EXPECT_LE(cache.Size(), kCapacity + 16);
  EXPECT_GT(cache.Size(), 0u);
}

// ======================================================================
// CliqueIndex serving contract: eager compaction makes Lookup a pure read
// ======================================================================

TEST(CompactionContractTest, FullyCompactedLifecycleAndConcurrentLookups) {
  corpus::GeneratorConfig config;
  config.num_objects = 50;
  config.num_topics = 4;
  config.num_users = 20;
  config.visual_words = 16;
  config.seed = 808;
  const corpus::Corpus corpus =
      corpus::Generator(config).MakeRetrievalCorpus();
  const index::FigRetrievalEngine engine(corpus, index::EngineOptions{});
  index::CliqueIndex idx = index::CliqueIndex::Build(
      corpus, *engine.Correlations(), index::CliqueIndexOptions{});

  EXPECT_TRUE(idx.FullyCompacted());
  {
    // This thread is the index's single writer for the mutation phase.
    util::ScopedRole writer(idx.WriterCap());
    idx.RemoveObject(7);
    EXPECT_FALSE(idx.FullyCompacted()) << "removal must leave tombstones";
    idx.CompactAll();
  }
  EXPECT_TRUE(idx.FullyCompacted());

  // With the index fully compacted, Lookup is a pure read: hammer it from
  // four threads (TSan proves the absence of the old lazy-compaction race).
  const auto qm = engine.Scorer().Compile(corpus.Object(3));
  ASSERT_FALSE(qm.cliques.empty());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 200; ++round) {
        for (const auto& clique : qm.cliques) {
          for (corpus::ObjectId id : idx.Lookup(clique.features))
            ASSERT_NE(id, corpus::ObjectId(7)) << "tombstone resurfaced";
        }
      }
    });
  }
  for (auto& t : threads) t.join();
}

// ======================================================================
// Parallel executor: bit-identity with the sequential engine
// ======================================================================

class QueryExecutorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 160;
    config.num_topics = 5;
    config.num_users = 50;
    config.visual_words = 24;
    config.seed = 9291;
    corpus_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
    index::EngineOptions two_stage;
    two_stage.rerank_candidates = 48;
    engine_ = new index::FigRetrievalEngine(*corpus_, two_stage);
    index::EngineOptions stage1_only;
    stage1_only.rerank_candidates = 0;
    stage1_engine_ = new index::FigRetrievalEngine(*corpus_, stage1_only);
  }
  static void TearDownTestSuite() {
    delete engine_;
    delete stage1_engine_;
    delete corpus_;
    engine_ = nullptr;
    stage1_engine_ = nullptr;
    corpus_ = nullptr;
  }
  void TearDown() override { FailPoints::DeactivateAll(); }

  static void ExpectBitIdentical(const SearchResponse& parallel,
                                 const SearchResponse& sequential) {
    ASSERT_EQ(parallel.results.size(), sequential.results.size());
    for (std::size_t i = 0; i < parallel.results.size(); ++i) {
      EXPECT_EQ(parallel.results[i].object, sequential.results[i].object)
          << "rank " << i;
      // Exact equality on purpose: the parallel plan must reproduce the
      // sequential arithmetic bit for bit, not approximately.
      EXPECT_EQ(parallel.results[i].score, sequential.results[i].score)
          << "rank " << i;
    }
    EXPECT_EQ(parallel.truncated, sequential.truncated);
    EXPECT_EQ(parallel.reranked, sequential.reranked);
  }

  static corpus::Corpus* corpus_;
  static index::FigRetrievalEngine* engine_;
  static index::FigRetrievalEngine* stage1_engine_;
};

corpus::Corpus* QueryExecutorTest::corpus_ = nullptr;
index::FigRetrievalEngine* QueryExecutorTest::engine_ = nullptr;
index::FigRetrievalEngine* QueryExecutorTest::stage1_engine_ = nullptr;

TEST_F(QueryExecutorTest, BitIdenticalToSequentialAcrossWorkerCounts) {
  for (std::size_t workers : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    QueryExecutor executor({.workers = workers});
    for (corpus::ObjectId q : {3u, 17u, 42u, 77u, 101u, 133u}) {
      const auto seq = engine_->TrySearch(corpus_->Object(q), 10);
      ASSERT_TRUE(seq.ok());
      const auto par = executor.Search(*engine_, corpus_->Object(q), 10);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      ExpectBitIdentical(*par, *seq);
    }
  }
}

TEST_F(QueryExecutorTest, BitIdenticalAcrossSeeds) {
  for (std::uint64_t seed : {11u, 29u, 43u}) {
    corpus::GeneratorConfig config;
    config.num_objects = 90;
    config.num_topics = 4;
    config.num_users = 30;
    config.visual_words = 16;
    config.seed = seed;
    const corpus::Corpus corpus =
        corpus::Generator(config).MakeRetrievalCorpus();
    index::EngineOptions options;
    options.rerank_candidates = 32;
    const index::FigRetrievalEngine engine(corpus, options);
    QueryExecutor executor({.workers = 4});
    for (corpus::ObjectId q = 0; q < 90; q += 19) {
      const auto seq = engine.TrySearch(corpus.Object(q), 7);
      ASSERT_TRUE(seq.ok());
      const auto par = executor.Search(engine, corpus.Object(q), 7);
      ASSERT_TRUE(par.ok()) << par.status().ToString();
      ExpectBitIdentical(*par, *seq);
    }
  }
}

TEST_F(QueryExecutorTest, StageOneOnlyEngineMatchesSequential) {
  QueryExecutor executor({.workers = 2});
  const auto seq = stage1_engine_->TrySearch(corpus_->Object(17), 10);
  ASSERT_TRUE(seq.ok());
  const auto par = executor.Search(*stage1_engine_, corpus_->Object(17), 10);
  ASSERT_TRUE(par.ok());
  ExpectBitIdentical(*par, *seq);
  EXPECT_FALSE(par->reranked);
}

TEST_F(QueryExecutorTest, ValidationMatchesSequentialTaxonomy) {
  QueryExecutor executor({.workers = 2});
  const auto before = executor.Stats();

  const auto empty = executor.Search(*engine_, corpus::MediaObject{}, 10);
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalidArgument);

  const auto zero_k = executor.Search(*engine_, corpus_->Object(3), 0);
  ASSERT_FALSE(zero_k.ok());
  EXPECT_EQ(zero_k.status().code(), StatusCode::kInvalidArgument);

  // Malformed requests are rejected BEFORE admission: no capacity charged.
  const auto after = executor.Stats();
  EXPECT_EQ(after.admitted, before.admitted);
  EXPECT_EQ(after.rejected, before.rejected);
}

TEST_F(QueryExecutorTest, OverloadFailPointRejectsWithResourceExhausted) {
  QueryExecutor executor({.workers = 2});
  {
    ScopedFailPoint fp("serve/overload");
    const auto rejected = executor.Search(*engine_, corpus_->Object(17), 10);
    ASSERT_FALSE(rejected.ok());
    EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_EQ(executor.Stats().rejected, 1u);
  // Scoped: the very next query is served normally.
  EXPECT_TRUE(executor.Search(*engine_, corpus_->Object(17), 10).ok());
  EXPECT_EQ(executor.InFlight(), 0u);
}

TEST_F(QueryExecutorTest, SlowWorkerDuringRerankShedsToStageOneScores) {
  QueryExecutor executor({.workers = 2});
  const corpus::MediaObject& query = corpus_->Object(17);
  const core::QueryModel qm =
      engine_->Scorer().Compile(query, engine_->Options().type_mask);
  ASSERT_GT(qm.cliques.size(), 0u);

  // Skip one deadline poll per stage-1 shard so the fail-point fires on the
  // first rerank shard: stage 1 completes exactly, the rerank is shed.
  ScopedFailPoint fp("serve/slow_worker", {.skip_hits = qm.cliques.size()});
  const auto shed = executor.Search(*engine_, query, 10,
                                    QueryBudget::Deadline(3600.0));
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_TRUE(shed->truncated);
  EXPECT_FALSE(shed->reranked);
  ASSERT_FALSE(shed->results.empty());

  // The degraded answer is the exact stage-1 ranking (what a rerank-free
  // engine would have returned).
  const auto stage1 = stage1_engine_->TrySearch(query, 10);
  ASSERT_TRUE(stage1.ok());
  ASSERT_EQ(shed->results.size(), stage1->results.size());
  for (std::size_t i = 0; i < shed->results.size(); ++i) {
    EXPECT_EQ(shed->results[i].object, stage1->results[i].object);
    EXPECT_EQ(shed->results[i].score, stage1->results[i].score);
  }
}

TEST_F(QueryExecutorTest, SlowWorkerAtStageOneIsDeadlineExceeded) {
  QueryExecutor executor({.workers = 2});
  // Fires on the first stage-1 poll: every clique list is shed, nothing is
  // produced, and an empty truncated answer must surface as an error.
  ScopedFailPoint fp("serve/slow_worker");
  const auto starved = executor.Search(*engine_, corpus_->Object(17), 10,
                                       QueryBudget::Deadline(3600.0));
  ASSERT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(QueryExecutorTest, ConcurrencyAboveSoftCapDegradesGracefully) {
  // degrade_concurrent = 1: whenever two queries overlap, the later one
  // sheds its rerank. Overlap is scheduler-dependent, so drive rounds of
  // synchronized reader threads until it happens (every round that does NOT
  // overlap still asserts the accounting invariants).
  QueryExecutor executor(
      {.workers = 2, .max_concurrent = 64, .degrade_concurrent = 1});
  std::atomic<std::uint64_t> not_reranked{0};
  std::atomic<std::uint64_t> ok_count{0};
  for (int round = 0; round < 50 && executor.Stats().degraded == 0; ++round) {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (corpus::ObjectId q : {17u, 42u, 77u}) {
          const auto resp = executor.Search(*engine_, corpus_->Object(q), 10);
          if (!resp.ok()) return;
          ok_count.fetch_add(1);
          if (!resp->reranked) not_reranked.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
  }
  const auto stats = executor.Stats();
  EXPECT_GT(stats.degraded, 0u) << "no overlap in 50 synchronized rounds";
  EXPECT_EQ(stats.rejected, 0u) << "soft cap must degrade, not reject";
  EXPECT_EQ(stats.completed, ok_count.load());
  // Every degraded admission is visible to its caller as a non-reranked,
  // truncated answer.
  EXPECT_EQ(stats.degraded, not_reranked.load());
  EXPECT_EQ(executor.InFlight(), 0u);
}

// ======================================================================
// ServingStore: snapshot isolation under concurrent readers + writer
// ======================================================================

class ServingStoreTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 60;
    config.num_topics = 4;
    config.num_users = 24;
    config.visual_words = 16;
    config.seed = 515;
    base_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
  }
  static void TearDownTestSuite() {
    delete base_;
    base_ = nullptr;
  }
  void TearDown() override { FailPoints::DeactivateAll(); }

  static std::string StoreDir(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("figdb_serve_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
  }

  static corpus::MediaObject Donor(corpus::ObjectId source) {
    corpus::MediaObject obj = base_->Object(source);
    obj.id = corpus::kInvalidObject;
    return obj;
  }

  static ServingStore MakeServing(const std::string& dir,
                                  ServeOptions options) {
    auto store = index::FigDbStore::Create(dir, *base_);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return ServingStore(std::move(*store), options);
  }

  static corpus::Corpus* base_;
};

corpus::Corpus* ServingStoreTest::base_ = nullptr;

TEST_F(ServingStoreTest, PublishMakesMutationsVisibleAtomically) {
  const std::string dir = StoreDir("visibility");
  ServeOptions options;
  options.executor.workers = 2;
  ServingStore serving = MakeServing(dir, options);

  EXPECT_EQ(serving.CurrentEpoch(), 1u);
  EXPECT_EQ(serving.Acquire()->LiveObjects(), base_->Size());

  // Mutations land in the live store but stay invisible to readers...
  ASSERT_TRUE(serving.Ingest(Donor(7)).ok());
  ASSERT_TRUE(serving.Ingest(Donor(12)).ok());
  ASSERT_TRUE(serving.Remove(3).ok());
  EXPECT_EQ(serving.CurrentEpoch(), 1u);
  EXPECT_EQ(serving.Acquire()->LiveObjects(), base_->Size());

  // ...until the writer publishes, which flips them all at once.
  ASSERT_TRUE(serving.Publish().ok());
  EXPECT_EQ(serving.CurrentEpoch(), 2u);
  EXPECT_EQ(serving.Acquire()->LiveObjects(), base_->Size() + 1);

  const auto result = serving.Search(base_->Object(7), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->epoch, 2u);
  EXPECT_EQ(result->lsn, serving.Store().LastLsn());
  EXPECT_FALSE(result->response.results.empty());

  std::filesystem::remove_all(dir);
}

TEST_F(ServingStoreTest, AutoPublishEveryNMutations) {
  const std::string dir = StoreDir("autopublish");
  ServeOptions options;
  options.executor.workers = 0;
  options.publish_every = 2;
  ServingStore serving = MakeServing(dir, options);

  ASSERT_TRUE(serving.Ingest(Donor(1)).ok());
  EXPECT_EQ(serving.CurrentEpoch(), 1u);
  ASSERT_TRUE(serving.Ingest(Donor(2)).ok());
  EXPECT_EQ(serving.CurrentEpoch(), 2u);
  ASSERT_TRUE(serving.Remove(5).ok());
  ASSERT_TRUE(serving.Ingest(Donor(3)).ok());
  EXPECT_EQ(serving.CurrentEpoch(), 3u);
  EXPECT_EQ(serving.Stats().epochs_published, 3u);

  std::filesystem::remove_all(dir);
}

TEST_F(ServingStoreTest, SearchAgainstSnapshotMatchesSequentialEngine) {
  const std::string dir = StoreDir("parity");
  ServeOptions options;
  options.executor.workers = 4;
  ServingStore serving = MakeServing(dir, options);
  ASSERT_TRUE(serving.Ingest(Donor(9)).ok());
  ASSERT_TRUE(serving.Publish().ok());

  const auto pinned = serving.Acquire();
  for (corpus::ObjectId q : {2u, 17u, 33u}) {
    const auto seq = pinned->Engine().TrySearch(base_->Object(q), 8);
    ASSERT_TRUE(seq.ok());
    const auto par = serving.Search(base_->Object(q), 8);
    ASSERT_TRUE(par.ok()) << par.status().ToString();
    ASSERT_EQ(par->response.results.size(), seq->results.size());
    for (std::size_t i = 0; i < seq->results.size(); ++i) {
      EXPECT_EQ(par->response.results[i].object, seq->results[i].object);
      EXPECT_EQ(par->response.results[i].score, seq->results[i].score);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST_F(ServingStoreTest, WoundedStoreRefusesPublishButKeepsServing) {
  const std::string dir = StoreDir("wounded");
  ServeOptions options;
  options.executor.workers = 0;
  ServingStore serving = MakeServing(dir, options);

  {
    ScopedFailPoint fp("wal/append_io", {.max_fires = 1});
    const auto failed = serving.Ingest(Donor(1));
    ASSERT_FALSE(failed.ok());
  }
  ASSERT_TRUE(serving.Store().Wounded());

  const auto refused = serving.Publish();
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);

  // The last published epoch keeps serving reads.
  EXPECT_EQ(serving.CurrentEpoch(), 1u);
  EXPECT_TRUE(serving.Search(base_->Object(4), 5).ok());

  std::filesystem::remove_all(dir);
}

/// THE snapshot-isolation stress test: readers search concurrently with a
/// writer that ingests, removes, checkpoints and publishes in a loop. Every
/// recorded answer must be bit-identical to a sequential TrySearch against
/// the SNAPSHOT OF THE EPOCH IT REPORTS — i.e. every result set matches some
/// published store state in its entirety and is never a hybrid of two.
TEST_F(ServingStoreTest, ConcurrentResultsMatchSomePublishedEpochNeverAHybrid) {
  const std::string dir = StoreDir("stress");
  ServeOptions options;
  options.executor.workers = 4;
  options.publish_every = 3;
  options.retain_retired = true;  // keep every epoch for the audit below
  ServingStore serving = MakeServing(dir, options);

  const std::vector<corpus::ObjectId> query_ids = {2, 9, 17, 25, 33, 41};
  struct Recorded {
    std::uint64_t epoch;
    corpus::ObjectId query;
    SearchResponse response;
  };

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::vector<Recorded>> recorded(kReaders);
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t turn = static_cast<std::size_t>(r);
      while (!stop.load(std::memory_order_relaxed)) {
        const corpus::ObjectId q = query_ids[turn++ % query_ids.size()];
        const auto result = serving.Search(base_->Object(q), 8);
        if (!result.ok()) {
          // RESOURCE_EXHAUSTED under momentary overload is legal; anything
          // else is not.
          EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
              << result.status().ToString();
          continue;
        }
        recorded[r].push_back({result->epoch, q, result->response});
      }
    });
  }

  // The writer: ingest / remove / checkpoint, auto-publishing every 3
  // mutations. Removes target objects ingested this run, so the base query
  // objects stay live throughout.
  std::vector<corpus::ObjectId> ingested;
  for (int round = 0; round < 12; ++round) {
    const auto id = serving.Ingest(Donor((round * 7) % base_->Size()));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ingested.push_back(*id);
    ASSERT_TRUE(serving.Ingest(Donor((round * 11 + 3) % base_->Size())).ok());
    if (round % 3 == 2) {
      ASSERT_TRUE(serving.Remove(ingested[ingested.size() / 2]).ok());
      ingested.erase(ingested.begin() + ingested.size() / 2);
    }
    if (round % 4 == 3) {
      ASSERT_TRUE(serving.Checkpoint().ok());
    }
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  // Audit: map every published epoch to its (retained) snapshot.
  std::unordered_map<std::uint64_t, const StoreSnapshot*> epochs;
  for (const auto& snap : serving.RetainedEpochs())
    epochs[snap->Epoch()] = snap.get();
  const auto current = serving.Acquire();
  epochs[current->Epoch()] = current.get();

  std::size_t audited = 0;
  for (const auto& per_reader : recorded) {
    for (const Recorded& rec : per_reader) {
      const auto it = epochs.find(rec.epoch);
      ASSERT_NE(it, epochs.end())
          << "result reports epoch " << rec.epoch << " which was never "
          << "published";
      const auto seq =
          it->second->Engine().TrySearch(base_->Object(rec.query), 8);
      ASSERT_TRUE(seq.ok());
      ASSERT_EQ(rec.response.results.size(), seq->results.size())
          << "epoch " << rec.epoch << " query " << rec.query;
      for (std::size_t i = 0; i < seq->results.size(); ++i) {
        ASSERT_EQ(rec.response.results[i].object, seq->results[i].object)
            << "epoch " << rec.epoch << " query " << rec.query << " rank "
            << i << ": result is a hybrid of store states";
        ASSERT_EQ(rec.response.results[i].score, seq->results[i].score)
            << "epoch " << rec.epoch << " query " << rec.query << " rank "
            << i;
      }
      ++audited;
    }
  }
  EXPECT_GT(audited, 0u) << "readers never completed a search";
  EXPECT_GT(serving.Stats().epochs_published, 4u);

  std::filesystem::remove_all(dir);
}

/// Epoch-reclamation stress: same reader/writer shape but with snapshots
/// actually freed behind the drained readers. ASan/TSan turn any
/// use-after-free or data race on this path into a hard failure; the stats
/// assertions pin the accounting.
TEST_F(ServingStoreTest, RetiredEpochsAreReclaimedBehindReaders) {
  const std::string dir = StoreDir("reclaim");
  ServeOptions options;
  options.executor.workers = 2;
  options.publish_every = 2;
  ServingStore serving = MakeServing(dir, options);

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> served{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto result = serving.Search(base_->Object(17), 6);
        if (result.ok()) served.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int round = 0; round < 20; ++round) {
    ASSERT_TRUE(serving.Ingest(Donor(round % base_->Size())).ok());
    ASSERT_TRUE(serving.Ingest(Donor((round + 13) % base_->Size())).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  const ServeStats stats = serving.Stats();
  EXPECT_EQ(stats.epochs_published, 21u);  // birth + 20 auto-publishes
  EXPECT_EQ(stats.epochs_retired, stats.epochs_published - 1);
  EXPECT_EQ(stats.epochs_reclaimed + stats.pending_retired,
            stats.epochs_retired);
  EXPECT_EQ(stats.active_readers, 0u);
  EXPECT_GT(served.load(), 0u);

  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace figdb::serve
