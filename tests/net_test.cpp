#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/query_builder.hpp"
#include "index/figdb_store.hpp"
#include "net/fig_client.hpp"
#include "net/fig_server.hpp"
#include "net/socket.hpp"
#include "net/tenant_quota.hpp"
#include "net/wire.hpp"
#include "serve/serving_store.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"

/// \file net_test.cpp
/// The network serving front-end suite: wire-format framing (round trips,
/// torn-vs-corrupt discrimination, hostile length claims), per-tenant
/// quota admission, and the FigServer/FigClient loop over real loopback
/// sockets — deadline propagation, drain/publish RETRY_LATER behavior,
/// and the net/* fail-point fault matrix. The matrix's acceptance bar:
/// under every injected fault the client observes a TYPED Status — never
/// a hang past its deadline, never a crash. Run under ci/check.sh tsan
/// these tests double as the race proof for the server's accept/handler/
/// drain machinery.

namespace figdb::net {
namespace {

using util::FailPointSpec;
using util::QueryBudget;
using util::ScopedFailPoint;
using util::StatusCode;

// ======================================================================
// Wire format
// ======================================================================

RequestFrame SampleRequest() {
  RequestFrame r;
  r.request_id = 42;
  r.tenant = "acme";
  r.deadline_budget_us = 250000;
  r.query_text = "sunset beach";
  r.k = 7;
  r.max_candidates = 64;
  return r;
}

ResponseFrame SampleResponse() {
  ResponseFrame r;
  r.request_id = 42;
  r.code = std::uint8_t(int(StatusCode::kOk));
  r.message = "";
  r.truncated = true;
  r.reranked = true;
  r.epoch = 9;
  r.results = {{11, 0.875}, {3, 0.5}, {29, 0.0625}};
  return r;
}

TEST(WireFrameTest, RequestRoundTripPreservesEveryField) {
  const std::string bytes = EncodeRequestFrame(SampleRequest());
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes, &frame, &consumed), DecodeResult::kOk);
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(frame.kind, FrameKind::kRequest);
  EXPECT_EQ(frame.request.request_id, 42u);
  EXPECT_EQ(frame.request.tenant, "acme");
  EXPECT_EQ(frame.request.deadline_budget_us, 250000u);
  EXPECT_EQ(frame.request.query_text, "sunset beach");
  EXPECT_EQ(frame.request.k, 7u);
  EXPECT_EQ(frame.request.max_candidates, 64u);
}

TEST(WireFrameTest, ResponseRoundTripPreservesEveryField) {
  const std::string bytes = EncodeResponseFrame(SampleResponse());
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(bytes, &frame, &consumed), DecodeResult::kOk);
  ASSERT_EQ(frame.kind, FrameKind::kResponse);
  const ResponseFrame& r = frame.response;
  EXPECT_EQ(r.request_id, 42u);
  EXPECT_TRUE(StatusFromResponse(r).ok());
  EXPECT_TRUE(r.truncated);
  EXPECT_TRUE(r.reranked);
  EXPECT_EQ(r.epoch, 9u);
  ASSERT_EQ(r.results.size(), 3u);
  EXPECT_EQ(r.results[0].object, 11u);
  EXPECT_DOUBLE_EQ(r.results[0].score, 0.875);
  EXPECT_EQ(r.results[2].object, 29u);
}

TEST(WireFrameTest, EveryTornPrefixAsksForMoreBytesNeverCrashes) {
  const std::string bytes = EncodeRequestFrame(SampleRequest());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    Frame frame;
    std::size_t consumed = 0;
    EXPECT_EQ(DecodeFrame(bytes.substr(0, n), &frame, &consumed),
              DecodeResult::kNeedMoreBytes)
        << "prefix length " << n;
  }
}

TEST(WireFrameTest, BadMagicIsCorruptFromTheFirstByte) {
  std::string bytes = EncodeRequestFrame(SampleRequest());
  bytes[0] = char(bytes[0] ^ 0x01);
  Frame frame;
  std::size_t consumed = 0;
  // Even a single wrong byte is enough: no amount of further input makes
  // this buffer a frame.
  EXPECT_EQ(DecodeFrame(bytes.substr(0, 1), &frame, &consumed),
            DecodeResult::kCorrupt);
  EXPECT_EQ(DecodeFrame(bytes, &frame, &consumed), DecodeResult::kCorrupt);
}

TEST(WireFrameTest, FlippedPayloadByteFailsTheCrc) {
  std::string bytes = EncodeResponseFrame(SampleResponse());
  bytes[kFrameHeaderBytes] = char(bytes[kFrameHeaderBytes] ^ 0xFF);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(bytes, &frame, &consumed), DecodeResult::kCorrupt);
}

TEST(WireFrameTest, OversizedLengthClaimIsCorruptNotAnAllocation) {
  util::BinaryWriter w;
  w.PutFixed32(kFrameMagic);
  w.PutFixed32(kMaxFramePayload + 1);
  w.PutFixed32(0xdeadbeef);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(w.Buffer(), &frame, &consumed),
            DecodeResult::kCorrupt);
}

TEST(WireFrameTest, TrailingPayloadBytesAreCorruptEvenWithValidCrc) {
  // Re-frame a valid payload with one extra byte and a REFRESHED CRC: the
  // checksum passes, the message decodes, the length claim disagrees.
  const std::string valid = EncodeRequestFrame(SampleRequest());
  const std::string payload =
      valid.substr(kFrameHeaderBytes) + std::string(1, '\0');
  util::BinaryWriter w;
  w.PutFixed32(kFrameMagic);
  w.PutFixed32(std::uint32_t(payload.size()));
  w.PutFixed32(util::Crc32(payload));
  w.PutRaw(payload);
  Frame frame;
  std::size_t consumed = 0;
  EXPECT_EQ(DecodeFrame(w.Buffer(), &frame, &consumed),
            DecodeResult::kCorrupt);
}

TEST(WireFrameTest, BackToBackFramesDecodeSequentially) {
  RequestFrame second = SampleRequest();
  second.request_id = 43;
  std::string stream =
      EncodeRequestFrame(SampleRequest()) + EncodeRequestFrame(second);
  Frame frame;
  std::size_t consumed = 0;
  ASSERT_EQ(DecodeFrame(stream, &frame, &consumed), DecodeResult::kOk);
  EXPECT_EQ(frame.request.request_id, 42u);
  stream.erase(0, consumed);
  ASSERT_EQ(DecodeFrame(stream, &frame, &consumed), DecodeResult::kOk);
  EXPECT_EQ(frame.request.request_id, 43u);
  EXPECT_EQ(consumed, stream.size());
}

TEST(WireFrameTest, UnknownStatusCodeMapsToUnavailableNeverOk) {
  ResponseFrame r;
  r.code = 250;
  const util::Status status = StatusFromResponse(r);
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

// ======================================================================
// Per-tenant quotas
// ======================================================================

QuotaOptions TwoByOneQuotas() {
  QuotaOptions q;
  q.default_quota = {/*hard_cap=*/2, /*soft_cap=*/1};
  return q;
}

TEST(TenantQuotaTest, HardCapRejectsNamingTenantLoadAndBothCaps) {
  TenantQuotas quotas(TwoByOneQuotas());
  auto first = quotas.Admit("acme");
  auto second = quotas.Admit("acme");
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  auto third = quotas.Admit("acme");
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  const std::string& msg = third.status().message();
  EXPECT_NE(msg.find("tenant \"acme\" hard cap"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 queries already in flight"), std::string::npos) << msg;
  EXPECT_NE(msg.find("hard cap 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("soft cap 1"), std::string::npos) << msg;
}

TEST(TenantQuotaTest, SoftCapDegradesInsteadOfRejecting) {
  TenantQuotas quotas(TwoByOneQuotas());
  auto first = quotas.Admit("acme");
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->Degrade());
  auto second = quotas.Admit("acme");
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->Degrade()) << "above soft cap must shed the rerank";
}

TEST(TenantQuotaTest, TicketReleaseRestoresCapacityByRaii) {
  TenantQuotas quotas(TwoByOneQuotas());
  {
    auto a = quotas.Admit("acme");
    auto b = quotas.Admit("acme");
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(quotas.InFlight("acme"), 2u);
    EXPECT_FALSE(quotas.Admit("acme").ok());
  }
  EXPECT_EQ(quotas.InFlight("acme"), 0u);
  auto again = quotas.Admit("acme");
  EXPECT_TRUE(again.ok());
}

TEST(TenantQuotaTest, TenantsAreIsolatedAndOverridesApply) {
  QuotaOptions options = TwoByOneQuotas();
  options.per_tenant["vip"] = {/*hard_cap=*/8, /*soft_cap=*/8};
  TenantQuotas quotas(options);
  auto a1 = quotas.Admit("acme");
  auto a2 = quotas.Admit("acme");
  ASSERT_FALSE(quotas.Admit("acme").ok()) << "acme is at its hard cap";
  // A full acme changes nothing for vip, whose override is roomier.
  std::vector<TenantTicket> vips;
  for (int i = 0; i < 8; ++i) {
    auto t = quotas.Admit("vip");
    ASSERT_TRUE(t.ok()) << "vip admission " << i;
    EXPECT_FALSE(t->Degrade());
    vips.push_back(std::move(*t));
  }
  EXPECT_FALSE(quotas.Admit("vip").ok());
}

// ======================================================================
// Server + client over real loopback sockets
// ======================================================================

class NetServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus::GeneratorConfig config;
    config.num_objects = 80;
    config.num_topics = 4;
    config.num_users = 30;
    config.visual_words = 16;
    config.seed = 7171;
    base_ = new corpus::Corpus(
        corpus::Generator(config).MakeRetrievalCorpus());
  }
  static void TearDownTestSuite() {
    delete base_;
    base_ = nullptr;
  }
  void TearDown() override { util::FailPoints::DeactivateAll(); }

  static std::string StoreDir(const std::string& name) {
    const auto dir =
        std::filesystem::temp_directory_path() / ("figdb_net_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
  }

  /// A query string every epoch resolves: the two most frequent tags.
  static std::string KnownQuery() {
    const corpus::Context& ctx = base_->GetContext();
    return ctx.vocabulary.TermOf(0) + " " + ctx.vocabulary.TermOf(1);
  }

  static serve::ServingStore MakeServing(const std::string& dir) {
    serve::ServeOptions options;
    options.executor.workers = 2;
    auto store = index::FigDbStore::Create(dir, *base_);
    EXPECT_TRUE(store.ok()) << store.status().ToString();
    return serve::ServingStore(std::move(*store), options);
  }

  static corpus::MediaObject Donor(corpus::ObjectId source) {
    corpus::MediaObject obj = base_->Object(source);
    obj.id = corpus::kInvalidObject;
    return obj;
  }

  static corpus::Corpus* base_;
};

corpus::Corpus* NetServerTest::base_ = nullptr;

TEST_F(NetServerTest, QueryOverTheWireMatchesDirectServing) {
  serve::ServingStore serving = MakeServing(StoreDir("basic"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FigClient client("127.0.0.1", server.Port());
  auto result = client.Query("acme", KnownQuery(), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->attempts, 1u);
  EXPECT_EQ(result->response.epoch, 1u);
  ASSERT_FALSE(result->response.results.empty());

  // The wire answer IS the serving answer: same ids, same scores.
  corpus::QueryBuilder builder(base_->SharedContext());
  QueryBudget budget;
  budget.wall_limit_seconds = 5.0;
  auto direct =
      serving.Search(builder.AddText(KnownQuery()).Build(), 5, budget);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(result->response.results.size(), direct->response.results.size());
  for (std::size_t i = 0; i < direct->response.results.size(); ++i) {
    EXPECT_EQ(result->response.results[i].object,
              std::uint64_t(direct->response.results[i].object));
    EXPECT_DOUBLE_EQ(result->response.results[i].score,
                     direct->response.results[i].score);
  }

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  server.Stop();
}

TEST_F(NetServerTest, PersistentConnectionServesSequentialRequests) {
  serve::ServingStore serving = MakeServing(StoreDir("persistent"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FigClient client("127.0.0.1", server.Port());
  for (int i = 0; i < 3; ++i) {
    auto result = client.Query("acme", KnownQuery(), 3);
    ASSERT_TRUE(result.ok()) << "request " << i << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->attempts, 1u);
  }
  EXPECT_EQ(server.Stats().connections_accepted, 1u)
      << "three requests should share one connection";
  server.Stop();
}

TEST_F(NetServerTest, MalformedQueryGetsTypedInvalidArgumentNoRetry) {
  serve::ServingStore serving = MakeServing(StoreDir("badquery"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  FigClient client("127.0.0.1", server.Port());
  // No vocabulary term survives: the executor's validation rejects, the
  // rejection crosses the wire typed, and the client must NOT retry it.
  auto result = client.Query("acme", "zzzzunknownzzzz", 5);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(server.Stats().requests, 1u);
  server.Stop();
}

TEST_F(NetServerTest, GarbageBytesDropTheConnectionNotTheServer) {
  serve::ServingStore serving = MakeServing(StoreDir("garbage"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  const auto deadline =
      Socket::Clock::now() + std::chrono::seconds(5);
  auto raw = Socket::Connect("127.0.0.1", server.Port(), deadline);
  ASSERT_TRUE(raw.ok());
  ASSERT_TRUE(raw->SendAll("this is not a frame at all", deadline).ok());
  std::string buffer;
  auto got = raw->RecvSome(&buffer, deadline);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, 0u) << "server must close on an unframeable stream";

  // The server is still alive and serving others.
  FigClient client("127.0.0.1", server.Port());
  EXPECT_TRUE(client.Query("acme", KnownQuery(), 3).ok());
  EXPECT_GE(server.Stats().decode_corrupt, 1u);
  server.Stop();
}

TEST_F(NetServerTest, DeadlinePropagatesIntoTheExecutorBudget) {
  serve::ServingStore serving = MakeServing(StoreDir("deadline"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // serve/slow_worker forces every executor shard to observe expiry — but
  // ONLY if the dispatched query carries an armed deadline. A typed
  // DEADLINE_EXCEEDED on the client therefore proves the wire budget
  // reached the executor as a live QueryBudget.
  ScopedFailPoint slow("serve/slow_worker");
  FigClient client("127.0.0.1", server.Port());
  QueryBudget budget;
  budget.wall_limit_seconds = 2.0;
  auto result = client.Query("acme", KnownQuery(), 5, budget);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  server.Stop();
}

TEST_F(NetServerTest, TenantHardCapRejectionCrossesTheWireTyped) {
  serve::ServingStore serving = MakeServing(StoreDir("tenantcap"));
  ServerOptions options;
  options.quotas.per_tenant["blocked"] = {/*hard_cap=*/0, /*soft_cap=*/0};
  FigServer server(&serving, options);
  ASSERT_TRUE(server.Start().ok());

  FigClient client("127.0.0.1", server.Port());
  auto rejected = client.Query("blocked", KnownQuery(), 3);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(rejected.status().message().find("tenant \"blocked\" hard cap"),
            std::string::npos)
      << rejected.status().message();

  // Another tenant is untouched by blocked's cap.
  auto fine = client.Query("acme", KnownQuery(), 3);
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
  EXPECT_EQ(server.Stats().tenant_rejected, 1u);
  server.Stop();
}

TEST_F(NetServerTest, TenantSoftCapDegradesBySheddingTheRerank) {
  serve::ServingStore serving = MakeServing(StoreDir("tenantsoft"));
  ServerOptions options;
  // soft cap 0: EVERY request from this tenant is admitted degraded.
  options.quotas.per_tenant["besteffort"] = {/*hard_cap=*/8, /*soft_cap=*/0};
  FigServer server(&serving, options);
  ASSERT_TRUE(server.Start().ok());

  FigClient client("127.0.0.1", server.Port());
  auto degraded = client.Query("besteffort", KnownQuery(), 5);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_FALSE(degraded->response.reranked)
      << "soft-capped tenant must run with the rerank stage shed";
  EXPECT_TRUE(degraded->response.truncated);

  auto normal = client.Query("acme", KnownQuery(), 5);
  ASSERT_TRUE(normal.ok());
  EXPECT_TRUE(normal->response.reranked);
  EXPECT_EQ(server.Stats().tenant_degraded, 1u);
  server.Stop();
}

TEST_F(NetServerTest, DrainAnswersRetryLaterInsteadOfDropping) {
  serve::ServingStore serving = MakeServing(StoreDir("drain"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  server.BeginDrain();
  ClientOptions copts;
  copts.max_retries = 1;
  copts.backoff_initial_seconds = 0.005;
  FigClient client("127.0.0.1", server.Port(), copts);
  auto result = client.Query("acme", KnownQuery(), 3);
  ASSERT_FALSE(result.ok());
  // The drain answer is TYPED and RETRIABLE: the client exhausted its
  // retries against RETRY_LATER responses, it was never hung up on.
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("retries exhausted"),
            std::string::npos)
      << result.status().message();
  EXPECT_GE(server.Stats().retry_later, 2u);
  server.Stop();
}

TEST_F(NetServerTest, DrainDuringPublishLosesNoAcceptedRequest) {
  serve::ServingStore serving = MakeServing(StoreDir("drainpub"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // Clients hammer while the writer publishes repeatedly behind the gate.
  // Zero loss means: every request gets a TYPED outcome, and with retries
  // enabled every query eventually completes — nothing vanishes into a
  // closed socket or a swallowed frame.
  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 6;
  std::atomic<int> ok_count{0};
  std::atomic<int> typed_failures{0};
  std::atomic<int> untyped{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      ClientOptions copts;
      copts.max_retries = 5;
      copts.backoff_initial_seconds = 0.005;
      copts.backoff_max_seconds = 0.05;
      copts.jitter_seed = std::uint64_t(t + 1);
      FigClient client("127.0.0.1", server.Port(), copts);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        auto result = client.Query("acme", KnownQuery(), 3);
        if (result.ok())
          ok_count.fetch_add(1);
        else if (result.status().code() != StatusCode::kOk)
          typed_failures.fetch_add(1);
        else
          untyped.fetch_add(1);
      }
    });
  }

  for (int round = 0; round < 5; ++round) {
    ASSERT_TRUE(serving.Ingest(Donor(corpus::ObjectId(round))).ok());
    {
      FigServer::ScopedPublishPause pause(&server);
      ASSERT_TRUE(serving.Publish().ok());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(untyped.load(), 0);
  EXPECT_EQ(ok_count.load(), kThreads * kQueriesPerThread)
      << "retries must ride through publish windows ("
      << typed_failures.load() << " typed failures)";

  // Now drain: in-flight answers complete (verified by the joins above);
  // post-drain requests are typed RETRY_LATER, not dropped.
  server.BeginDrain();
  ClientOptions copts;
  copts.max_retries = 0;
  FigClient late("127.0.0.1", server.Port(), copts);
  auto after = late.Query("acme", KnownQuery(), 3);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  server.Stop();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, std::uint64_t(ok_count.load()));
  EXPECT_EQ(stats.requests,
            stats.completed + stats.retry_later + stats.tenant_rejected);
}

// ======================================================================
// Fault matrix: every net/* fail-point yields a typed Status, never a
// hang past the deadline, never a crash.
// ======================================================================

class NetFaultMatrixTest : public NetServerTest {};

TEST_F(NetFaultMatrixTest, AcceptDropOnceIsAbsorbedByOneRetry) {
  serve::ServingStore serving = MakeServing(StoreDir("acceptdrop1"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ScopedFailPoint drop("net/accept_drop",
                       FailPointSpec{/*skip_hits=*/0, /*max_fires=*/1});
  ClientOptions copts;
  copts.backoff_initial_seconds = 0.005;
  FigClient client("127.0.0.1", server.Port(), copts);
  auto result = client.Query("acme", KnownQuery(), 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->attempts, 2u);
  EXPECT_EQ(server.Stats().connections_dropped, 1u);
  server.Stop();
}

TEST_F(NetFaultMatrixTest, PersistentAcceptDropExhaustsTypedNotHung) {
  serve::ServingStore serving = MakeServing(StoreDir("acceptdropN"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ScopedFailPoint drop("net/accept_drop");
  ClientOptions copts;
  copts.max_retries = 2;
  copts.backoff_initial_seconds = 0.005;
  FigClient client("127.0.0.1", server.Port(), copts);
  QueryBudget budget;
  budget.wall_limit_seconds = 3.0;
  const auto start = std::chrono::steady_clock::now();
  auto result = client.Query("acme", KnownQuery(), 3, budget);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_LT(elapsed, std::chrono::seconds(3) + std::chrono::seconds(1))
      << "client must not outwait its own deadline";
  server.Stop();
}

TEST_F(NetFaultMatrixTest, ConnResetMidExchangeIsTornThereforeRetriable) {
  serve::ServingStore serving = MakeServing(StoreDir("connreset"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ScopedFailPoint reset("net/conn_reset",
                        FailPointSpec{/*skip_hits=*/0, /*max_fires=*/1});
  ClientOptions copts;
  copts.backoff_initial_seconds = 0.005;
  FigClient client("127.0.0.1", server.Port(), copts);
  auto result = client.Query("acme", KnownQuery(), 3);
  ASSERT_TRUE(result.ok())
      << "one reset, then success on a fresh connection: "
      << result.status().ToString();
  EXPECT_GE(result->attempts, 2u);
  server.Stop();
}

TEST_F(NetFaultMatrixTest, CorruptFrameIsTypedDataLossAndNeverRetried) {
  serve::ServingStore serving = MakeServing(StoreDir("framecorrupt"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  ScopedFailPoint corrupt("net/frame_corrupt");
  FigClient client("127.0.0.1", server.Port());
  auto result = client.Query("acme", KnownQuery(), 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDataLoss)
      << result.status().ToString();
  // Torn != corrupt: a present-but-wrong frame is terminal. Exactly one
  // request must have reached the server (no retry into corruption).
  EXPECT_EQ(server.Stats().requests, 1u);
  server.Stop();
}

TEST_F(NetFaultMatrixTest, SlowPeerTripsTheClientDeadlineNotAHang) {
  serve::ServingStore serving = MakeServing(StoreDir("slowpeer"));
  FigServer server(&serving, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  // The server stalls 150 ms before writing; the client will only wait
  // 80 ms. It must come back with DEADLINE_EXCEEDED on time — not block
  // on the eventual response.
  ScopedFailPoint slow("net/slow_peer");
  ClientOptions copts;
  copts.max_retries = 0;
  FigClient client("127.0.0.1", server.Port(), copts);
  QueryBudget budget;
  budget.wall_limit_seconds = 0.08;
  const auto start = std::chrono::steady_clock::now();
  auto result = client.Query("acme", KnownQuery(), 3, budget);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status().ToString();
  EXPECT_LT(elapsed, std::chrono::milliseconds(1000))
      << "typed expiry must arrive near the deadline, not after the stall";
  server.Stop();
}

}  // namespace
}  // namespace figdb::net
