#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <numeric>
#include <set>

#include "corpus/media_object.hpp"
#include "fuzz_util.hpp"
#include "index/wal.hpp"
#include "util/backoff.hpp"
#include "util/crc32.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"
#include "util/status.hpp"
#include "util/sparse_vector.hpp"
#include "util/string_util.hpp"
#include "util/top_k.hpp"

namespace figdb::util {
namespace {

// ---------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == b.Next()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformInt(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformReal();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsSane) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, PoissonMeanMatches) {
  Rng rng(17);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += rng.Poisson(6.5);
  EXPECT_NEAR(total / n, 6.5, 0.15);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(17);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(19);
  double total = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) total += rng.Poisson(200.0);
  EXPECT_NEAR(total / n, 200.0, 2.0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(double(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, ZipfSkewsTowardsLowRanks) {
  Rng rng(29);
  int low = 0, high = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::size_t r = rng.Zipf(100, 1.0);
    EXPECT_LT(r, 100u);
    if (r < 10) ++low;
    if (r >= 90) ++high;
  }
  EXPECT_GT(low, 5 * high);
}

TEST(RngTest, DirichletSumsToOne) {
  Rng rng(31);
  for (double alpha : {0.1, 1.0, 10.0}) {
    const auto v = rng.Dirichlet(6, alpha);
    ASSERT_EQ(v.size(), 6u);
    double total = 0.0;
    for (double x : v) {
      EXPECT_GE(x, 0.0);
      total += x;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(37);
  for (double shape : {0.5, 2.0, 9.0}) {
    double total = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) total += rng.Gamma(shape);
    EXPECT_NEAR(total / n, shape, 0.1 * shape + 0.05);
  }
}

// ---------------------------------------------------------------- Backoff

TEST(BackoffTest, DeterministicSequenceDoublesThenCaps) {
  Backoff backoff(0.01, 0.05);
  EXPECT_DOUBLE_EQ(backoff.Next().count(), 0.01);
  EXPECT_DOUBLE_EQ(backoff.Next().count(), 0.02);
  EXPECT_DOUBLE_EQ(backoff.Next().count(), 0.04);
  EXPECT_DOUBLE_EQ(backoff.Next().count(), 0.05);  // capped, not 0.08
  EXPECT_DOUBLE_EQ(backoff.Next().count(), 0.05);  // and stays capped
  EXPECT_EQ(backoff.Attempts(), 5u);
}

TEST(BackoffTest, FreeFunctionMatchesStatefulForm) {
  Backoff backoff(0.003, 1.0);
  for (std::size_t attempt = 0; attempt < 12; ++attempt)
    EXPECT_DOUBLE_EQ(backoff.Next().count(),
                     BackoffDelay(0.003, attempt, 1.0).count())
        << "attempt " << attempt;
}

TEST(BackoffTest, NegativeInitialClampsToZero) {
  EXPECT_DOUBLE_EQ(BackoffDelay(-1.0, 0, 0.5).count(), 0.0);
  EXPECT_DOUBLE_EQ(BackoffDelay(-1.0, 7, 0.5).count(), 0.0);
}

TEST(BackoffTest, JitterStaysWithinEqualJitterBounds) {
  // Equal jitter: every delay lands in [d/2, d] for the deterministic d —
  // the floor stops instant retries, the ceiling preserves the cap.
  Rng rng(41);
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    const double d = BackoffDelay(0.01, attempt, 0.2).count();
    for (int trial = 0; trial < 200; ++trial) {
      const double j = JitteredBackoffDelay(0.01, attempt, 0.2, &rng).count();
      EXPECT_GE(j, d / 2.0) << "attempt " << attempt;
      EXPECT_LE(j, d) << "attempt " << attempt;
    }
  }
}

TEST(BackoffTest, JitterActuallyVariesAndNeverExceedsTheCap) {
  Rng rng(43);
  Backoff backoff(0.01, 0.05, &rng);
  std::set<double> seen;
  for (int i = 0; i < 50; ++i) {
    const double j = backoff.Next().count();
    EXPECT_LE(j, 0.05);
    EXPECT_GE(j, 0.0);
    seen.insert(j);
  }
  // 50 jittered draws collapsing to a handful of values would mean the
  // jitter is not actually decorrelating the herd.
  EXPECT_GT(seen.size(), 40u);
}

TEST(BackoffTest, JitteredScheduleIsReproducibleFromItsSeed) {
  Rng a(47), b(47);
  Backoff first(0.01, 0.2, &a), second(0.01, 0.2, &b);
  for (int i = 0; i < 12; ++i)
    EXPECT_DOUBLE_EQ(first.Next().count(), second.Next().count());
}

TEST(BackoffTest, RetriableClassificationIsUnavailableOnly) {
  // Transient = the identical retry can succeed. Exactly one code
  // qualifies; every other Status is the attempt's final answer.
  EXPECT_TRUE(IsRetriableStatus(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetriableStatus(Status::Unavailable("draining")));

  EXPECT_FALSE(IsRetriableStatus(StatusCode::kOk));
  EXPECT_FALSE(IsRetriableStatus(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetriableStatus(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetriableStatus(StatusCode::kDataLoss));
  EXPECT_FALSE(IsRetriableStatus(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(IsRetriableStatus(StatusCode::kResourceExhausted));
  EXPECT_FALSE(IsRetriableStatus(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetriableStatus(Status::DataLoss("corrupt frame")));
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(41);
  const auto s = rng.SampleWithoutReplacement(100, 30);
  ASSERT_EQ(s.size(), 30u);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 30u);
  for (std::size_t v : s) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleWithoutReplacementFullRange) {
  Rng rng(43);
  const auto s = rng.SampleWithoutReplacement(10, 25);
  ASSERT_EQ(s.size(), 10u);
  std::set<std::size_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 10u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng child = a.Fork();
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.Next() == child.Next()) ++equal;
  EXPECT_LT(equal, 4);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(59);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

// ---------------------------------------------------------------- TopK

TEST(TopKTest, KeepsLargest) {
  TopK<std::uint32_t> topk(3);
  for (std::uint32_t i = 0; i < 10; ++i) topk.Offer(double(i), i);
  const auto r = topk.Take();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 9u);
  EXPECT_EQ(r[1].id, 8u);
  EXPECT_EQ(r[2].id, 7u);
}

TEST(TopKTest, TieBreaksTowardsSmallerId) {
  TopK<std::uint32_t> topk(2);
  topk.Offer(1.0, 5);
  topk.Offer(1.0, 3);
  topk.Offer(1.0, 9);
  const auto r = topk.Take();
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].id, 3u);
  EXPECT_EQ(r[1].id, 5u);
}

TEST(TopKTest, KthScoreIsThreshold) {
  TopK<std::uint32_t> topk(2);
  EXPECT_EQ(topk.KthScore(), -std::numeric_limits<double>::infinity());
  topk.Offer(5.0, 1);
  EXPECT_EQ(topk.KthScore(), -std::numeric_limits<double>::infinity());
  topk.Offer(3.0, 2);
  EXPECT_DOUBLE_EQ(topk.KthScore(), 3.0);
  topk.Offer(4.0, 3);
  EXPECT_DOUBLE_EQ(topk.KthScore(), 4.0);
}

TEST(TopKTest, ZeroCapacity) {
  TopK<std::uint32_t> topk(0);
  topk.Offer(1.0, 1);
  EXPECT_TRUE(topk.Take().empty());
}

TEST(TopKTest, MatchesFullSortOnRandomInput) {
  Rng rng(61);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 1 + rng.UniformInt(200);
    const std::size_t k = 1 + rng.UniformInt(20);
    std::vector<std::pair<double, std::uint32_t>> items;
    TopK<std::uint32_t> topk(k);
    for (std::size_t i = 0; i < n; ++i) {
      // Coarse scores force ties to exercise the tie-break rule.
      const double s = double(rng.UniformInt(10));
      items.push_back({s, std::uint32_t(i)});
      topk.Offer(s, std::uint32_t(i));
    }
    std::sort(items.begin(), items.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    const auto r = topk.Take();
    ASSERT_EQ(r.size(), std::min(k, n));
    for (std::size_t i = 0; i < r.size(); ++i) {
      EXPECT_DOUBLE_EQ(r[i].score, items[i].first);
      EXPECT_EQ(r[i].id, items[i].second);
    }
  }
}

// -------------------------------------------------------- SparseVector

TEST(SparseVectorTest, FinalizeMergesDuplicates) {
  SparseVector v;
  v.Add(3, 1.0f);
  v.Add(1, 2.0f);
  v.Add(3, 4.0f);
  v.Finalize();
  EXPECT_EQ(v.NonZeros(), 2u);
  EXPECT_FLOAT_EQ(v.Get(3), 5.0f);
  EXPECT_FLOAT_EQ(v.Get(1), 2.0f);
  EXPECT_FLOAT_EQ(v.Get(2), 0.0f);
}

TEST(SparseVectorTest, FinalizeDropsZeroSums) {
  SparseVector v;
  v.Add(2, 1.0f);
  v.Add(2, -1.0f);
  v.Finalize();
  EXPECT_TRUE(v.Empty());
}

TEST(SparseVectorTest, DotDisjointIsZero) {
  SparseVector a, b;
  a.Add(1, 1.0f);
  b.Add(2, 1.0f);
  a.Finalize();
  b.Finalize();
  EXPECT_DOUBLE_EQ(SparseVector::Dot(a, b), 0.0);
}

TEST(SparseVectorTest, CosineSelfIsOne) {
  SparseVector a;
  a.Add(1, 3.0f);
  a.Add(7, 4.0f);
  a.Finalize();
  EXPECT_NEAR(SparseVector::Cosine(a, a), 1.0, 1e-12);
}

TEST(SparseVectorTest, CosineBounds) {
  Rng rng(67);
  for (int round = 0; round < 50; ++round) {
    SparseVector a, b;
    for (int i = 0; i < 20; ++i) {
      a.Add(std::uint32_t(rng.UniformInt(30)),
            float(rng.UniformReal(0.0, 5.0)));
      b.Add(std::uint32_t(rng.UniformInt(30)),
            float(rng.UniformReal(0.0, 5.0)));
    }
    a.Finalize();
    b.Finalize();
    const double c = SparseVector::Cosine(a, b);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0 + 1e-12);
    EXPECT_NEAR(c, SparseVector::Cosine(b, a), 1e-12);
  }
}

TEST(SparseVectorTest, EmptyCosineIsZero) {
  SparseVector a, b;
  a.Add(1, 1.0f);
  a.Finalize();
  EXPECT_DOUBLE_EQ(SparseVector::Cosine(a, b), 0.0);
}

TEST(SparseVectorTest, AddScaledMatchesDense) {
  Rng rng(71);
  SparseVector a, b;
  double dense_a[40] = {0}, dense_b[40] = {0};
  for (int i = 0; i < 15; ++i) {
    const std::uint32_t da = std::uint32_t(rng.UniformInt(40));
    const std::uint32_t db = std::uint32_t(rng.UniformInt(40));
    const float va = float(rng.UniformReal(-2.0, 2.0));
    const float vb = float(rng.UniformReal(-2.0, 2.0));
    a.Add(da, va);
    dense_a[da] += va;
    b.Add(db, vb);
    dense_b[db] += vb;
  }
  a.Finalize();
  b.Finalize();
  a.AddScaled(b, 2.5f);
  for (std::uint32_t d = 0; d < 40; ++d)
    EXPECT_NEAR(a.Get(d), dense_a[d] + 2.5 * dense_b[d], 1e-5);
}

TEST(SparseVectorTest, NormAndSum) {
  SparseVector v;
  v.Add(0, 3.0f);
  v.Add(9, 4.0f);
  v.Finalize();
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.Sum(), 7.0);
}

// --------------------------------------------------------- StringUtil

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("HaMsTeR 42!"), "hamster 42!");
}

TEST(StringUtilTest, SplitDropsEmptyPieces) {
  const auto parts = Split("a,,b, c", ", ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, JoinRoundTrip) {
  EXPECT_EQ(Join({"x", "y", "z"}, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringUtilTest, Format) {
  EXPECT_EQ(Format("%d-%s", 7, "ok"), "7-ok");
}


// ---------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  const Status s = Status::DataLoss("vocabulary section CRC mismatch");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDataLoss);
  EXPECT_EQ(s.ToString(), "DATA_LOSS: vocabulary section CRC mismatch");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (StatusCode c :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kDataLoss, StatusCode::kDeadlineExceeded,
        StatusCode::kResourceExhausted, StatusCode::kUnavailable})
    EXPECT_NE(StatusCodeName(c), "UNKNOWN");
}

TEST(StatusOrTest, HoldsValueOrStatus) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());

  StatusOr<int> e(Status::NotFound("nope"));
  EXPECT_FALSE(e.ok());
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MovesValueOut) {
  StatusOr<std::string> s(std::string(100, 'x'));
  const std::string moved = *std::move(s);
  EXPECT_EQ(moved.size(), 100u);
}

// ------------------------------------------------------------ FailPoints

TEST(FailPointTest, InactiveByDefault) {
  EXPECT_FALSE(FailPoints::AnyActive());
  EXPECT_FALSE(FailPoints::Fire("test/never_activated"));
}

TEST(FailPointTest, FiresWhileActive) {
  {
    ScopedFailPoint fp("test/basic");
    EXPECT_TRUE(FailPoints::AnyActive());
    EXPECT_TRUE(FailPoints::Fire("test/basic"));
    EXPECT_TRUE(FailPoints::Fire("test/basic"));
    EXPECT_EQ(fp.HitCount(), 2u);
  }
  EXPECT_FALSE(FailPoints::AnyActive());
  EXPECT_FALSE(FailPoints::Fire("test/basic"));
}

TEST(FailPointTest, FireAfterNHits) {
  ScopedFailPoint fp("test/after_n", {.skip_hits = 3});
  EXPECT_FALSE(FailPoints::Fire("test/after_n"));  // hit 1
  EXPECT_FALSE(FailPoints::Fire("test/after_n"));  // hit 2
  EXPECT_FALSE(FailPoints::Fire("test/after_n"));  // hit 3
  EXPECT_TRUE(FailPoints::Fire("test/after_n"));   // hit 4 fires
  EXPECT_TRUE(FailPoints::Fire("test/after_n"));
}

TEST(FailPointTest, BoundedFireCountAutoDeactivates) {
  ScopedFailPoint fp("test/once", {.skip_hits = 0, .max_fires = 1});
  EXPECT_TRUE(FailPoints::Fire("test/once"));
  EXPECT_FALSE(FailPoints::Fire("test/once"));  // spent
  EXPECT_FALSE(FailPoints::AnyActive());        // auto-deactivated
}

TEST(FailPointTest, ReactivationResetsCounters) {
  ScopedFailPoint fp("test/reset", {.skip_hits = 1});
  EXPECT_FALSE(FailPoints::Fire("test/reset"));
  EXPECT_TRUE(FailPoints::Fire("test/reset"));
  FailPoints::Activate("test/reset", {.skip_hits = 1});
  EXPECT_FALSE(FailPoints::Fire("test/reset"));  // counter restarted
  EXPECT_TRUE(FailPoints::Fire("test/reset"));
}

TEST(FailPointTest, MacroIsInertWhenNothingActive) {
  // The macro must not even do a registry lookup (zero-cost guarantee is
  // behavioural here: it evaluates to false with no point active).
  EXPECT_FALSE(FIGDB_FAILPOINT("test/macro_inert"));
  ScopedFailPoint fp("test/macro_inert");
  EXPECT_TRUE(FIGDB_FAILPOINT("test/macro_inert"));
}

// ActivateFromEnv parses operator-supplied text, so its edge cases are
// the interesting ones. The specs below use real site names from
// util/failpoint_sites.hpp: env activation rejects anything else.

class ActivateFromEnvTest : public ::testing::Test {
 protected:
  ~ActivateFromEnvTest() override { FailPoints::DeactivateAll(); }
};

TEST_F(ActivateFromEnvTest, EmptyAndSeparatorOnlySpecsActivateNothing) {
  EXPECT_EQ(FailPoints::ActivateFromEnv(""), 0u);
  EXPECT_EQ(FailPoints::ActivateFromEnv(","), 0u);
  EXPECT_EQ(FailPoints::ActivateFromEnv(",,,"), 0u);
  EXPECT_FALSE(FailPoints::AnyActive());
}

TEST_F(ActivateFromEnvTest, TrailingSeparatorIsNotAMalformedEntry) {
  EXPECT_EQ(FailPoints::ActivateFromEnv("wal/fsync,"), 1u);
  EXPECT_TRUE(FailPoints::Fire("wal/fsync"));
}

TEST_F(ActivateFromEnvTest, UnknownSiteNamesAreSkipped) {
  // A typo'd name must not create a point nothing ever fires — the whole
  // drill would silently inject no faults (see failpoint_sites.hpp).
  EXPECT_EQ(FailPoints::ActivateFromEnv("wal/fzync"), 0u);
  EXPECT_FALSE(FailPoints::AnyActive());
  // ...and a typo must not poison the valid entries next to it.
  EXPECT_EQ(FailPoints::ActivateFromEnv("bogus/site,wal/truncate"), 1u);
  EXPECT_TRUE(FailPoints::Fire("wal/truncate"));
  EXPECT_FALSE(FailPoints::Fire("bogus/site"));
}

TEST_F(ActivateFromEnvTest, DuplicateSitesLastSpecWins) {
  // Both entries parse (activated counts entries, not distinct sites);
  // the second Activate replaces the first spec wholesale, so the
  // skip_hits=2 of the first entry must NOT survive.
  EXPECT_EQ(FailPoints::ActivateFromEnv("wal/fsync:2,wal/fsync"), 2u);
  EXPECT_TRUE(FailPoints::Fire("wal/fsync"));  // no skips left over
}

TEST_F(ActivateFromEnvTest, MalformedEntriesAreSkippedOthersActivate) {
  // Non-numeric skip count.
  EXPECT_EQ(FailPoints::ActivateFromEnv("wal/fsync:x,checkpoint/rename"),
            1u);
  EXPECT_FALSE(FailPoints::Fire("wal/fsync"));
  EXPECT_TRUE(FailPoints::Fire("checkpoint/rename"));
  // Trailing colons make empty numeric fields: malformed, not zeros.
  EXPECT_EQ(FailPoints::ActivateFromEnv("wal/fsync::"), 0u);
  // Too many fields.
  EXPECT_EQ(FailPoints::ActivateFromEnv("wal/fsync:1:2:3"), 0u);
  // A lone separator with no name.
  EXPECT_EQ(FailPoints::ActivateFromEnv(":3"), 0u);
}

TEST_F(ActivateFromEnvTest, SkipAndFireBudgetsParse) {
  EXPECT_EQ(FailPoints::ActivateFromEnv("storage/load_io:1:1"), 1u);
  EXPECT_FALSE(FailPoints::Fire("storage/load_io"));  // skipped hit
  EXPECT_TRUE(FailPoints::Fire("storage/load_io"));   // the one fire
  EXPECT_FALSE(FailPoints::Fire("storage/load_io"));  // budget spent
  EXPECT_FALSE(FailPoints::AnyActive());              // auto-deactivated
}

// ------------------------------------------------------------------ Crc32

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32 ("check" value of the IEEE polynomial).
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
}

TEST(Crc32Test, ChunkedMatchesWhole) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = Crc32(data);
  const std::uint32_t chunked =
      Crc32(data.substr(20), Crc32(data.substr(0, 20)));
  EXPECT_EQ(chunked, whole);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string data = "payload payload payload";
  const std::uint32_t before = Crc32(data);
  data[7] ^= 0x20;
  EXPECT_NE(Crc32(data), before);
}

// ----------------------------------------------------- serde hardening

TEST(SerdeHardeningTest, StringLengthBeyondInputFailsCleanly) {
  BinaryWriter w;
  w.PutVarint(1ULL << 40);  // claims a 1 TiB string
  w.PutString("tiny");
  BinaryReader r(w.Buffer());
  EXPECT_TRUE(r.GetString().empty());
  EXPECT_FALSE(r.Ok());
}

TEST(SerdeHardeningTest, StringLengthNearUint64MaxDoesNotWrap) {
  BinaryWriter w;
  w.PutVarint(~std::uint64_t{0} - 2);  // pos + n would wrap
  BinaryReader r(w.Buffer());
  EXPECT_TRUE(r.GetString().empty());
  EXPECT_FALSE(r.Ok());
}

TEST(SerdeHardeningTest, SortedIdCountBeyondInputFailsBeforeAllocating) {
  BinaryWriter w;
  w.PutVarint(1ULL << 50);  // would reserve petabytes
  BinaryReader r(w.Buffer());
  EXPECT_TRUE(r.GetSortedIds().empty());
  EXPECT_FALSE(r.Ok());
}

TEST(SerdeHardeningTest, OverlongVarintRejected) {
  // 11 continuation bytes: no terminator within the 64-bit range.
  const std::string overlong(11, char(0x80));
  BinaryReader r(overlong);
  r.GetVarint();
  EXPECT_FALSE(r.Ok());
}

TEST(SerdeHardeningTest, VarintHighBitOverflowRejected)
{
  // 10-byte varint whose final byte sets bits above bit 63.
  std::string bytes(9, char(0xff));
  bytes.push_back(char(0x7e));
  BinaryReader r(bytes);
  r.GetVarint();
  EXPECT_FALSE(r.Ok());
}

TEST(SerdeHardeningTest, MaxUint64RoundTrips) {
  BinaryWriter w;
  w.PutVarint(~std::uint64_t{0});
  BinaryReader r(w.Buffer());
  EXPECT_EQ(r.GetVarint(), ~std::uint64_t{0});
  EXPECT_TRUE(r.Ok());
}

TEST(SerdeHardeningTest, Fixed32RoundTrips) {
  BinaryWriter w;
  w.PutFixed32(0xDEADBEEFu);
  BinaryReader r(w.Buffer());
  EXPECT_EQ(r.GetFixed32(), 0xDEADBEEFu);
  EXPECT_TRUE(r.AtEnd());
}

// ----------------------------------------------------------- QueryBudget

TEST(QueryBudgetTest, DefaultIsUnlimited) {
  QueryBudget b;
  EXPECT_TRUE(b.Unlimited());
  BudgetTracker t(b);
  for (int i = 0; i < 100000; ++i) EXPECT_TRUE(t.ChargeScored());
  EXPECT_FALSE(t.Exhausted());
}

TEST(QueryBudgetTest, CandidateCapLatches) {
  BudgetTracker t(QueryBudget::Candidates(3));
  EXPECT_TRUE(t.ChargeScored());
  EXPECT_TRUE(t.ChargeScored());
  EXPECT_TRUE(t.ChargeScored());
  EXPECT_FALSE(t.ChargeScored());
  EXPECT_TRUE(t.Exhausted());
  EXPECT_EQ(t.ExhaustionCause(), BudgetTracker::Cause::kCandidates);
  EXPECT_EQ(t.ScoredCandidates(), 3u);
  EXPECT_FALSE(t.ChargeScored());  // stays exhausted
}

TEST(QueryBudgetTest, ZeroCandidateBudgetRejectsFirstCharge) {
  BudgetTracker t(QueryBudget::Candidates(0));
  EXPECT_FALSE(t.ChargeScored());
  EXPECT_TRUE(t.Exhausted());
}

TEST(QueryBudgetTest, AllowanceQueryHasNoSideEffects) {
  BudgetTracker t(QueryBudget::Candidates(5));
  EXPECT_TRUE(t.HasCandidateAllowance(5));
  EXPECT_FALSE(t.HasCandidateAllowance(6));
  EXPECT_EQ(t.ScoredCandidates(), 0u);
}

TEST(QueryBudgetTest, ForcedDeadlineLatches) {
  BudgetTracker t(QueryBudget::Deadline(3600.0));
  EXPECT_FALSE(t.CheckDeadline());
  t.ForceDeadline();
  EXPECT_TRUE(t.CheckDeadline());
  EXPECT_EQ(t.ExhaustionCause(), BudgetTracker::Cause::kDeadline);
}

TEST(QueryBudgetTest, ExpiredDeadlineDetected) {
  BudgetTracker t(QueryBudget::Deadline(1e-9));
  // Burn enough wall clock that even a coarse timer has advanced.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_TRUE(t.CheckDeadline());
}

TEST(QueryBudgetTest, ZeroDeadlineMeansNoDeadlineNotInstantExpiry) {
  const QueryBudget zero = QueryBudget::Deadline(0.0);
  EXPECT_TRUE(zero.Unlimited());
  BudgetTracker t(zero);
  EXPECT_FALSE(t.CheckDeadline());
  for (int i = 0; i < 10000; ++i) EXPECT_TRUE(t.ChargeScored());
  EXPECT_FALSE(t.Exhausted());
  // Negative limits are "no deadline" too, not "expired before it began".
  BudgetTracker negative(QueryBudget::Deadline(-3.0));
  EXPECT_FALSE(negative.CheckDeadline());
  EXPECT_TRUE(negative.ChargeScored());
}

TEST(QueryBudgetTest, ZeroCandidateCapComposesWithZeroDeadline) {
  // Both edges at once: no deadline but zero scoring allowance. This is a
  // bounded budget (not unlimited) that rejects the very first charge with
  // the candidate cause — the deadline never enters the picture.
  QueryBudget b;
  b.wall_limit_seconds = 0.0;
  b.max_scored_candidates = 0;
  EXPECT_FALSE(b.Unlimited());
  BudgetTracker t(b);
  EXPECT_FALSE(t.ChargeScored());
  EXPECT_TRUE(t.Exhausted());
  EXPECT_EQ(t.ExhaustionCause(), BudgetTracker::Cause::kCandidates);
  EXPECT_EQ(t.ScoredCandidates(), 0u);
}

TEST(TopKTest, KLargerThanNReturnsEverythingSorted) {
  TopK<std::uint32_t> topk(10);
  topk.Offer(2.0, 4);
  topk.Offer(5.0, 1);
  topk.Offer(3.0, 2);
  EXPECT_FALSE(topk.Full());
  // Underfull: the threshold must stay -infinity, never a real score.
  EXPECT_EQ(topk.KthScore(), -std::numeric_limits<double>::infinity());
  const auto r = topk.Take();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 1u);
  EXPECT_EQ(r[1].id, 2u);
  EXPECT_EQ(r[2].id, 4u);
}

TEST(TopKTest, AllTiedKeepsSmallestIdsInIdOrder) {
  TopK<std::uint32_t> topk(3);
  for (const std::uint32_t id : {9u, 2u, 7u, 5u, 1u}) topk.Offer(1.0, id);
  const auto r = topk.Take();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 1u);
  EXPECT_EQ(r[1].id, 2u);
  EXPECT_EQ(r[2].id, 5u);
}

// ------------------------------------------------------------ WAL fuzz

TEST(WalFuzzTest, RoundTrips200RandomMutationSequences) {
  // The whole write->replay->chop->truncate->replay differential lives in
  // the shared fuzz harness (fuzz/fuzz_util.hpp): the same
  // CheckWalRoundTripOneInput the fuzz_wal regression corpus replays and a
  // coverage-guided fuzzer explores. This loop drives it with 200
  // deterministic pseudo-random action scripts; any contract violation
  // (lost record, wrong torn-tail verdict, unstable prefix) aborts inside
  // the harness via FIGDB_CHECK.
  Rng rng(20260807);
  for (int seq = 0; seq < 200; ++seq) {
    std::vector<std::uint8_t> script(64);
    for (auto& b : script) b = std::uint8_t(rng.UniformInt(256));
    fuzz::CheckWalRoundTripOneInput(script.data(), script.size());
  }
}

}  // namespace
}  // namespace figdb::util
