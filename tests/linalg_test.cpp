#include <gtest/gtest.h>

#include <cmath>

#include "util/dense_matrix.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace figdb::util {
namespace {

// ------------------------------------------------------------ DenseMatrix

TEST(DenseMatrixTest, MultiplyKnownValues) {
  DenseMatrix a(2, 3), b(3, 2);
  // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12].
  double av[] = {1, 2, 3, 4, 5, 6}, bv[] = {7, 8, 9, 10, 11, 12};
  for (int i = 0; i < 6; ++i) {
    a.At(std::size_t(i) / 3, std::size_t(i) % 3) = av[i];
    b.At(std::size_t(i) / 2, std::size_t(i) % 2) = bv[i];
  }
  const DenseMatrix c = a.Multiply(b);
  ASSERT_EQ(c.Rows(), 2u);
  ASSERT_EQ(c.Cols(), 2u);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 154.0);
}

TEST(DenseMatrixTest, TransposeMultiplyMatchesExplicitTranspose) {
  Rng rng(3);
  DenseMatrix a(5, 4), b(5, 3);
  a.FillGaussian(&rng);
  b.FillGaussian(&rng);
  const DenseMatrix direct = a.TransposeMultiply(b);
  const DenseMatrix via_transpose = a.Transposed().Multiply(b);
  ASSERT_EQ(direct.Rows(), 4u);
  ASSERT_EQ(direct.Cols(), 3u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_NEAR(direct.At(i, j), via_transpose.At(i, j), 1e-12);
}

TEST(DenseMatrixTest, TransposedInvolution) {
  Rng rng(5);
  DenseMatrix a(3, 7);
  a.FillGaussian(&rng);
  const DenseMatrix att = a.Transposed().Transposed();
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 7; ++j)
      EXPECT_DOUBLE_EQ(att.At(i, j), a.At(i, j));
}

TEST(DenseMatrixTest, OrthonormalizeProducesOrthonormalColumns) {
  Rng rng(7);
  DenseMatrix m(20, 6);
  m.FillGaussian(&rng);
  m.OrthonormalizeColumns();
  for (std::size_t a = 0; a < 6; ++a) {
    for (std::size_t b = 0; b < 6; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < 20; ++i) dot += m.At(i, a) * m.At(i, b);
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-10) << a << "," << b;
    }
  }
}

TEST(DenseMatrixTest, OrthonormalizeZeroesDependentColumns) {
  DenseMatrix m(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    m.At(i, 0) = double(i + 1);
    m.At(i, 1) = 2.0 * double(i + 1);  // linearly dependent
  }
  m.OrthonormalizeColumns();
  double norm1 = 0.0;
  for (std::size_t i = 0; i < 4; ++i) norm1 += m.At(i, 1) * m.At(i, 1);
  EXPECT_NEAR(norm1, 0.0, 1e-12);
}

TEST(DenseMatrixTest, FrobeniusNorm) {
  DenseMatrix m(2, 2);
  m.At(0, 0) = 3.0;
  m.At(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

// --------------------------------------------------------- SymmetricEigen

TEST(SymmetricEigenTest, DiagonalMatrix) {
  DenseMatrix m(3, 3);
  m.At(0, 0) = 1.0;
  m.At(1, 1) = 5.0;
  m.At(2, 2) = 3.0;
  std::vector<double> values;
  DenseMatrix vectors;
  SymmetricEigen(m, &values, &vectors);
  ASSERT_EQ(values.size(), 3u);
  EXPECT_NEAR(values[0], 5.0, 1e-10);  // descending order
  EXPECT_NEAR(values[1], 3.0, 1e-10);
  EXPECT_NEAR(values[2], 1.0, 1e-10);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
  DenseMatrix m(2, 2);
  m.At(0, 0) = 2.0;
  m.At(0, 1) = 1.0;
  m.At(1, 0) = 1.0;
  m.At(1, 1) = 2.0;
  std::vector<double> values;
  DenseMatrix vectors;
  SymmetricEigen(m, &values, &vectors);
  EXPECT_NEAR(values[0], 3.0, 1e-10);
  EXPECT_NEAR(values[1], 1.0, 1e-10);
  // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(vectors.At(0, 0)), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(std::fabs(vectors.At(1, 0)), 1.0 / std::sqrt(2.0), 1e-8);
}

TEST(SymmetricEigenTest, ReconstructsRandomSymmetricMatrix) {
  Rng rng(11);
  const std::size_t n = 8;
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i; j < n; ++j)
      m.At(i, j) = m.At(j, i) = rng.Gaussian();
  std::vector<double> values;
  DenseMatrix v;
  SymmetricEigen(m, &values, &v);
  // Check M v_j = lambda_j v_j for every eigenpair.
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      double mv = 0.0;
      for (std::size_t l = 0; l < n; ++l) mv += m.At(i, l) * v.At(l, j);
      EXPECT_NEAR(mv, values[j] * v.At(i, j), 1e-8)
          << "pair " << j << " row " << i;
    }
  }
  // Eigenvalues descending.
  for (std::size_t j = 1; j < n; ++j)
    EXPECT_GE(values[j - 1], values[j] - 1e-12);
}

TEST(SymmetricEigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(13);
  const std::size_t n = 6;
  DenseMatrix m(n, n);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j)
      m.At(i, j) = m.At(j, i) = rng.UniformReal(-1.0, 1.0);
    trace += m.At(i, i);
  }
  std::vector<double> values;
  DenseMatrix v;
  SymmetricEigen(m, &values, &v);
  double sum = 0.0;
  for (double x : values) sum += x;
  EXPECT_NEAR(sum, trace, 1e-9);
}

// --------------------------------------------------------------- Stopwatch

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch watch;
  // Burn a little CPU deterministically.
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x += std::sqrt(double(i));
  const double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(watch.ElapsedSeconds(), t1);  // monotone
  EXPECT_NEAR(watch.ElapsedMillis(), watch.ElapsedSeconds() * 1e3,
              watch.ElapsedSeconds() * 1e3);  // consistent units
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), t1 + 1.0);
}

}  // namespace
}  // namespace figdb::util
