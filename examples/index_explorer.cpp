// Inspect the training/preprocessing stage of paper Fig. 3: feature
// statistics, correlation-edge counts per relation kind, the FIG of one
// object, and the inverted clique index.
//
//   ./build/examples/index_explorer [num_objects]

#include <cstdio>
#include <cstdlib>

#include "core/clique.hpp"
#include "core/fig.hpp"
#include "corpus/generator.hpp"
#include "index/retrieval_engine.hpp"

int main(int argc, char** argv) {
  using namespace figdb;

  corpus::GeneratorConfig config;
  config.num_objects = argc > 1 ? std::size_t(std::atol(argv[1])) : 4000;
  config.num_topics = 25;
  config.num_users = 1200;

  std::printf("Preprocessing a %zu-object database...\n", config.num_objects);
  corpus::Generator generator(config);
  const corpus::Corpus db = generator.MakeRetrievalCorpus();
  const corpus::Context& ctx = db.GetContext();
  index::FigRetrievalEngine engine(db, index::EngineOptions{});

  std::printf("\n=== Feature space ===\n");
  std::printf("  tag vocabulary     : %zu (after min-frequency pruning)\n",
              ctx.vocabulary.Size());
  std::printf("  visual vocabulary  : %zu words\n",
              ctx.visual_vocabulary.WordCount());
  std::printf("  users / groups     : %zu / %zu\n",
              ctx.user_graph.UserCount(), ctx.user_graph.GroupCount());
  std::printf("  taxonomy nodes     : %zu\n", ctx.taxonomy.NodeCount());
  std::printf("  distinct features  : %zu\n",
              engine.Matrix()->NumFeatures());

  std::printf("\n=== One object's Feature Interaction Graph ===\n");
  const corpus::MediaObject& obj = db.Object(17);
  const auto fig = core::FeatureInteractionGraph::Build(
      obj, *engine.Correlations());
  std::printf("  object #%u: %zu feature nodes, %zu correlation edges\n",
              obj.id, fig.NodeCount(), fig.EdgeCount());
  std::size_t intra = 0, inter = 0;
  for (std::size_t i = 0; i < fig.NodeCount(); ++i) {
    for (std::size_t j = i + 1; j < fig.NodeCount(); ++j) {
      if (!fig.HasEdge(i, j)) continue;
      if (corpus::TypeOf(fig.Node(i).feature) ==
          corpus::TypeOf(fig.Node(j).feature)) {
        ++intra;
      } else {
        ++inter;
      }
    }
  }
  std::printf("  intra-type edges: %zu, inter-type edges: %zu\n", intra,
              inter);
  const auto cliques =
      core::EnumerateCliques(fig, {.max_features = 3, .max_cliques = 4096});
  std::size_t by_size[4] = {0, 0, 0, 0};
  for (const auto& c : cliques)
    ++by_size[std::min<std::size_t>(c.features.size(), 3)];
  std::printf("  cliques: %zu singleton, %zu pairs, %zu triangles\n",
              by_size[1], by_size[2], by_size[3]);
  std::printf("  sample edges:\n");
  int shown = 0;
  for (std::size_t i = 0; i < fig.NodeCount() && shown < 5; ++i) {
    for (std::size_t j = i + 1; j < fig.NodeCount() && shown < 5; ++j) {
      if (!fig.HasEdge(i, j)) continue;
      const auto a = fig.Node(i).feature;
      const auto b = fig.Node(j).feature;
      std::printf("    %-22s -- %-22s Cor=%.3f\n",
                  ctx.DescribeFeature(a).c_str(),
                  ctx.DescribeFeature(b).c_str(),
                  engine.Correlations()->Cor(a, b));
      ++shown;
    }
  }

  std::printf("\n=== Inverted clique index ===\n");
  std::printf("  distinct cliques : %zu\n",
              engine.Index().DistinctCliques());
  std::printf("  total postings   : %zu\n", engine.Index().TotalPostings());
  std::printf("  postings/object  : %.1f\n",
              double(engine.Index().TotalPostings()) / double(db.Size()));
  return 0;
}
