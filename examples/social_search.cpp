// Social media retrieval demo in the spirit of the paper's Figure 6: run a
// query image against the database and print "result cards" showing why
// each hit matched — the shared tags, shared users and visual-word overlap.
//
//   ./build/examples/social_search [num_objects] [query_id]

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "index/retrieval_engine.hpp"

namespace {

using namespace figdb;

std::vector<std::string> SharedFeatures(const corpus::Context& ctx,
                                        const corpus::MediaObject& a,
                                        const corpus::MediaObject& b,
                                        corpus::FeatureType type,
                                        std::size_t limit) {
  std::vector<std::string> out;
  for (const corpus::FeatureOccurrence& f : a.features) {
    if (corpus::TypeOf(f.feature) != type) continue;
    if (!b.Contains(f.feature)) continue;
    out.push_back(ctx.DescribeFeature(f.feature));
    if (out.size() >= limit) break;
  }
  return out;
}

void PrintList(const char* label, const std::vector<std::string>& items) {
  if (items.empty()) return;
  std::printf("      %s:", label);
  for (const std::string& s : items) std::printf(" %s", s.c_str());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  corpus::GeneratorConfig config;
  config.num_objects = argc > 1 ? std::size_t(std::atol(argv[1])) : 5000;
  config.num_topics = 25;
  config.num_users = 1500;

  std::printf("Building a %zu-object social media database...\n",
              config.num_objects);
  corpus::Generator generator(config);
  const corpus::Corpus db = generator.MakeRetrievalCorpus();
  const corpus::Context& ctx = db.GetContext();

  index::FigRetrievalEngine engine(db, index::EngineOptions{});

  const corpus::ObjectId query_id =
      argc > 2 ? corpus::ObjectId(std::atol(argv[2])) : 42;
  const corpus::MediaObject& query = db.Object(query_id);

  std::printf("\n=== Query object #%u (latent topic %u) ===\n", query.id,
              query.topic);
  std::printf("  tags:");
  for (const auto& f : query.features)
    if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText)
      std::printf(" %s", ctx.DescribeFeature(f.feature).c_str());
  std::printf("\n  users:");
  int shown = 0;
  for (const auto& f : query.features)
    if (corpus::TypeOf(f.feature) == corpus::FeatureType::kUser &&
        shown++ < 6)
      std::printf(" %s", ctx.DescribeFeature(f.feature).c_str());
  std::printf("\n\n=== Top matches (FIG similarity, Algorithm 1) ===\n");

  const auto results = engine.Search(query, 6);
  int rank = 0;
  for (const auto& r : results) {
    if (r.object == query.id) continue;
    const corpus::MediaObject& obj = db.Object(r.object);
    std::printf("  %d. object #%u  score=%.5f  topic=%u%s\n", ++rank,
                r.object, r.score, obj.topic,
                obj.topic == query.topic ? "  [same topic]" : "");
    PrintList("shared tags",
              SharedFeatures(ctx, query, obj, corpus::FeatureType::kText, 6));
    PrintList("shared users",
              SharedFeatures(ctx, query, obj, corpus::FeatureType::kUser, 6));
    const auto vis =
        SharedFeatures(ctx, query, obj, corpus::FeatureType::kVisual, 99);
    if (!vis.empty())
      std::printf("      shared visual words: %zu\n", vis.size());
  }
  return 0;
}
