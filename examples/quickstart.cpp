// Quickstart: generate a small synthetic social-media corpus, build the FIG
// retrieval engine, and run one similarity query end-to-end.
//
//   ./build/examples/quickstart [num_objects]

#include <cstdio>
#include <cstdlib>

#include "corpus/generator.hpp"
#include "eval/oracle.hpp"
#include "index/retrieval_engine.hpp"

int main(int argc, char** argv) {
  using namespace figdb;

  corpus::GeneratorConfig config;
  config.num_objects = argc > 1 ? std::atoi(argv[1]) : 2000;
  config.num_topics = 20;
  config.num_users = 800;

  std::printf("Generating %zu synthetic social-media objects...\n",
              config.num_objects);
  corpus::Generator generator(config);
  const corpus::Corpus db = generator.MakeRetrievalCorpus();
  std::printf("  vocabulary: %zu tags, %zu visual words, %zu users\n",
              db.GetContext().vocabulary.Size(),
              db.GetContext().visual_vocabulary.WordCount(),
              db.GetContext().user_graph.UserCount());

  std::printf("Building the FIG retrieval engine (correlation tables + "
              "inverted clique index)...\n");
  index::FigRetrievalEngine engine(db, index::EngineOptions{});
  std::printf("  index: %zu distinct cliques, %zu postings\n",
              engine.Index().DistinctCliques(),
              engine.Index().TotalPostings());

  const corpus::MediaObject& query = db.Object(7);
  std::printf("\nQuery object #%u (topic %u):\n", query.id, query.topic);
  for (const auto& f : query.features) {
    if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText)
      std::printf("  %s\n", db.GetContext().DescribeFeature(f.feature).c_str());
  }

  const auto results = engine.Search(query, 6);
  std::printf("\nTop results:\n");
  for (const auto& r : results) {
    if (r.object == query.id) continue;  // the query itself
    const auto& obj = db.Object(r.object);
    std::printf("  #%-6u score=%.5f topic=%-3u tags:", r.object, r.score,
                obj.topic);
    int shown = 0;
    for (const auto& f : obj.features) {
      if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText &&
          shown++ < 4) {
        std::printf(" %s",
                    db.GetContext().DescribeFeature(f.feature).c_str());
      }
    }
    std::printf("%s\n", obj.topic == query.topic ? "   [relevant]" : "");
  }
  return 0;
}
