// Recommendation demo (paper §4): build a user's profile FIG from their
// favourite history, then rank this month's new uploads with and without
// temporal decay (FIG vs FIG-T) and show how the feeds differ.
//
//   ./build/examples/recommendation_feed [num_objects]

#include <cstdio>
#include <cstdlib>

#include "corpus/generator.hpp"
#include "index/retrieval_engine.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"

int main(int argc, char** argv) {
  using namespace figdb;

  corpus::GeneratorConfig config;
  config.num_objects = argc > 1 ? std::size_t(std::atol(argv[1])) : 6000;
  config.num_topics = 25;
  config.num_users = 1500;
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 8;
  rc.mean_favorites_per_month = 60.0;  // a heavy favouriter, so the demo
                                       // feed visibly intersects the truth

  std::printf("Generating a recommendation dataset (%zu objects)...\n",
              config.num_objects);
  corpus::Generator generator(config);
  const corpus::RecommendationDataset ds =
      generator.MakeRecommendationDataset(rc);
  std::printf("  %zu users with favourite histories, %zu candidate "
              "objects in the evaluation window\n",
              ds.users.size(), ds.candidates.size());

  index::EngineOptions eo;
  eo.build_index = false;  // recommendation ranks a candidate list directly
  const index::FigRetrievalEngine engine(ds.corpus, eo);
  const recsys::ProfileBuilder builder(engine.Correlations());
  const std::uint16_t now = std::uint16_t(config.num_months - 1);

  // Demo with the user who has the densest held-out truth.
  const corpus::RecommendationUser* best = &ds.users.front();
  for (const corpus::RecommendationUser& u : ds.users)
    if (u.held_out.size() > best->held_out.size()) best = &u;
  const corpus::RecommendationUser& user = *best;
  std::printf("\nDemo user: %zu profile favourites, %zu held-out favourites\n",
              user.profile.size(), user.held_out.size());
  const recsys::UserProfile profile = builder.Build(ds.corpus, user.profile);
  std::printf("  profile FIG: %zu time-stamped cliques over %zu features\n",
              profile.cliques.size(), profile.merged.features.size());

  auto show_feed = [&](const char* title, double decay) {
    const recsys::FigRecommender rec(ds.corpus, engine.ExactPotential(),
                                     engine.ExactPotential(),
                                     {.decay = decay});
    const auto feed = rec.Recommend(profile, ds.candidates, 8, now);
    std::printf("\n%s\n", title);
    std::size_t hits = 0;
    for (const auto& r : feed) {
      const bool favourite =
          std::find(user.held_out.begin(), user.held_out.end(), r.object) !=
          user.held_out.end();
      if (favourite) ++hits;
      std::printf("  object #%-6u score=%.5f topic=%-3u %s\n", r.object,
                  r.score, ds.corpus.Object(r.object).topic,
                  favourite ? "[actually favourited!]" : "");
    }
    std::printf("  -> %zu of 8 recommendations were real favourites\n",
                hits);
  };
  show_feed("=== FIG feed (no temporal decay) ===", 1.0);
  show_feed("=== FIG-T feed (decay 0.4: recent interests weigh more) ===",
            0.4);
  return 0;
}
