// Interactive shell over a figdb database: generate or load a corpus, save
// snapshots, run tag/user queries through QueryBuilder, find neighbours of
// database objects and inspect them — plus a crash-safe live store (attach,
// ingest, remove, checkpoint, recover). Exercises the full public API the
// way a downstream integrator would.
//
//   ./build/examples/figdb_shell
//   figdb> gen 3000
//   figdb> query sunset beach
//   figdb> similar 42
//   figdb> attach /tmp/figdb_store
//   figdb> ingest sunset beach holiday
//   figdb> checkpoint
//
// Also usable non-interactively:  echo "gen 500\nstats" | figdb_shell
//
// Fault drills without recompiling: FIGDB_FAILPOINTS=name[:skip[:fires]],…
// activates fail-points at startup, e.g.
//   FIGDB_FAILPOINTS=wal/torn_tail:2 figdb_shell

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/shell_command.hpp"
#include "corpus/generator.hpp"
#include "corpus/query_builder.hpp"
#include "index/figdb_store.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "net/fig_client.hpp"
#include "net/fig_server.hpp"
#include "serve/serving_store.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_store.hpp"
#include "temporal/segmented_store.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace figdb;

/// Set by SIGTERM/SIGINT while `listen` is serving: the loop drains and
/// hands the store back instead of dying mid-request.
volatile std::sig_atomic_t g_drain_requested = 0;

extern "C" void OnDrainSignal(int) { g_drain_requested = 1; }

struct Shell {
  std::optional<corpus::Corpus> db;
  std::unique_ptr<index::FigRetrievalEngine> engine;
  /// Attached crash-safe store (see `attach`); mutations go through its WAL.
  std::optional<index::FigDbStore> store;
  std::string store_dir;
  /// Attached sharded store + its router (see `shard attach`). Declaration
  /// order matters: the router must be destroyed BEFORE the store it
  /// queries (its pool joins any straggler legs), so `sharded` comes first.
  std::unique_ptr<shard::ShardedStore> sharded;
  std::unique_ptr<shard::ShardRouter> router;
  std::string sharded_dir;
  /// Attached time-partitioned store (see `segments attach`): ingest is
  /// epoch-bucketed, δ-decay folds in at merge time, retention slides.
  std::optional<temporal::SegmentedStore> segments;
  std::string segments_dir;
  /// Set when the store's corpus has drifted from the query engine; the
  /// engine is rebuilt lazily before the next query instead of per-ingest.
  bool engine_stale = false;
  /// Per-query budget, settable via the `budget` command. Unlimited by
  /// default so the shell behaves exactly like the raw engine.
  util::QueryBudget budget;

  bool Ready() const { return db.has_value(); }

  void RebuildEngine() {
    util::Stopwatch watch;
    engine = std::make_unique<index::FigRetrievalEngine>(
        *db, index::EngineOptions{});
    engine_stale = false;
    std::printf("engine ready in %.2fs (%zu cliques indexed)\n",
                watch.ElapsedSeconds(), engine->Index().DistinctCliques());
  }

  /// Rebuilds the engine if the database changed since the last build.
  void EnsureEngine() {
    if (engine == nullptr || engine_stale) RebuildEngine();
  }

  /// Refreshes the query-side database from the store after a mutation or
  /// recovery. The engine keeps a pointer into `db`, so it must not be used
  /// again until rebuilt.
  void SyncFromStore() {
    engine.reset();
    db = store->GetCorpus();
    engine_stale = true;
  }

  void PrintStoreStats(const char* verb) const {
    std::printf(
        "%s: %zu live objects (%zu removed slots) | wal: %llu records, "
        "%llu bytes | lsn %llu (checkpoint at %llu)%s\n",
        verb, store->LiveObjects(), store->RemovedObjects(),
        (unsigned long long)store->WalRecords(),
        (unsigned long long)store->WalBytes(),
        (unsigned long long)store->LastLsn(),
        (unsigned long long)store->CheckpointLsn(),
        store->Wounded() ? " [WOUNDED: mutations refused until recover]"
                         : "");
  }

  void PrintRecovery() const {
    const index::FigDbStore::RecoveryInfo& info = store->Info();
    std::printf(
        "recovered: checkpoint lsn %llu, %llu wal record(s) replayed, "
        "%llu already in checkpoint (skipped)\n",
        (unsigned long long)info.checkpoint_lsn,
        (unsigned long long)info.replayed_records,
        (unsigned long long)info.skipped_records);
    // Both damage classes, with their counts, every time: a recovery that
    // SUCCEEDED can only have seen a torn tail (mid-log corruption fails
    // replay, see PrintRecoveryFailure), so the corrupt-record count here
    // is definitionally zero — printing it makes the distinction visible.
    std::printf(
        "wal damage: %llu torn-tail byte(s) truncated, 0 mid-log corrupt "
        "record(s)\n",
        (unsigned long long)info.torn_bytes);
    if (info.torn_tail)
      std::printf(
          "WARNING: torn final WAL record (crash mid-append) — dropped as a "
          "clean end-of-log; every record before it was replayed\n");
  }

  /// A failed recovery must tell the operator WHICH damage class it hit:
  /// a torn tail is routine (the in-flight append) and recovers on its
  /// own, so a recovery that still failed with kDataLoss is the other
  /// class — damage with intact records after it — and needs a backup.
  static void PrintRecoveryFailure(const util::Status& st) {
    if (st.code() == util::StatusCode::kDataLoss)
      std::printf(
          "recover failed: MID-LOG CORRUPTION (not a torn tail — records "
          "follow the damage, so truncation would lose acknowledged "
          "mutations; restore from checkpoint/backup): %s\n",
          st.ToString().c_str());
    else
      std::printf("recover failed: %s\n", st.ToString().c_str());
  }

  void Attach(const std::string& dir) {
    auto recovered = index::FigDbStore::Recover(dir);
    if (recovered.ok()) {
      store = std::move(*recovered);
      store_dir = dir;
      PrintRecovery();
      SyncFromStore();
      PrintStoreStats("attached");
      return;
    }
    if (recovered.status().code() != util::StatusCode::kNotFound) {
      PrintRecoveryFailure(recovered.status());
      return;
    }
    // No store there yet: create one from the current database.
    if (!Ready()) {
      std::printf(
          "'%s' holds no store and there is no database to seed one — "
          "use 'gen <n>' or 'load <path>' first\n",
          dir.c_str());
      return;
    }
    auto created = index::FigDbStore::Create(dir, *db);
    if (!created.ok()) {
      std::printf("create failed: %s\n", created.status().ToString().c_str());
      return;
    }
    store = std::move(*created);
    store_dir = dir;
    std::printf("created store in %s from the current database\n",
                dir.c_str());
    PrintStoreStats("attached");
  }

  void Ingest(const std::string& text) {
    corpus::QueryBuilder builder(store->GetCorpus().SharedContext());
    corpus::MediaObject obj = builder.AddText(text).Build();
    if (builder.DroppedCount() > 0)
      std::printf("note: %zu unknown tag(s) dropped\n",
                  builder.DroppedCount());
    const auto id = store->Ingest(std::move(obj));
    if (!id.ok()) {
      std::printf("ingest failed: %s\n", id.status().ToString().c_str());
      return;
    }
    std::printf("ingested object #%u (wal-logged before apply)\n", *id);
    SyncFromStore();
    PrintStoreStats("store");
  }

  void Remove(corpus::ObjectId id) {
    const util::Status removed = store->Remove(id);
    if (!removed.ok()) {
      std::printf("remove failed: %s\n", removed.ToString().c_str());
      return;
    }
    std::printf("removed object #%u (id stays reserved; %zu index "
                "tombstone(s) pending)\n",
                id, store->Index().TombstoneCount());
    SyncFromStore();
    PrintStoreStats("store");
  }

  void Checkpoint() {
    util::Stopwatch watch;
    const util::Status ok = store->Checkpoint();
    if (!ok.ok()) {
      std::printf("checkpoint failed: %s\n", ok.ToString().c_str());
      PrintStoreStats("store");
      return;
    }
    std::printf("checkpoint written atomically in %.2fs, wal truncated\n",
                watch.ElapsedSeconds());
    PrintStoreStats("store");
  }

  void Recover() {
    auto recovered = index::FigDbStore::Recover(store_dir);
    if (!recovered.ok()) {
      PrintRecoveryFailure(recovered.status());
      return;
    }
    store = std::move(*recovered);
    PrintRecovery();
    SyncFromStore();
    PrintStoreStats("recovered");
  }

  // ------------------------------------------------------------- sharded
  void PrintShardStatus() const {
    const shard::ShardManifest& m = sharded->Manifest();
    std::printf(
        "sharded store: generation %llu, %u shard(s), %zu objects "
        "(%zu live)%s\n",
        (unsigned long long)m.generation, m.num_shards,
        sharded->TotalObjects(), sharded->LiveObjects(),
        sharded->AnyWounded() ? " [WOUNDED shard(s): recover before "
                                "mutating or rebalancing]"
                              : "");
    for (std::uint32_t s = 0; s < sharded->NumShards(); ++s) {
      const index::FigDbStore& ss = sharded->ShardStore(s);
      std::printf("  shard %-3u %zu object(s), %zu live, lsn %llu%s\n", s,
                  ss.GetCorpus().Size(), ss.LiveObjects(),
                  (unsigned long long)ss.LastLsn(),
                  ss.Wounded() ? " [WOUNDED]" : "");
    }
    const shard::RouterStats rs = router->Stats();
    std::printf(
        "  router: %llu admitted, %llu completed (%llu PARTIAL — some "
        "shards unanswered), %llu rejected, %llu retries, %llu "
        "stragglers abandoned\n",
        (unsigned long long)rs.admitted, (unsigned long long)rs.completed,
        (unsigned long long)rs.partial, (unsigned long long)rs.rejected,
        (unsigned long long)rs.retries, (unsigned long long)rs.stragglers);
  }

  void ShardAttach(const std::string& dir, std::size_t num_shards) {
    router.reset();  // before the store it queries
    sharded.reset();
    auto recovered = shard::ShardedStore::Recover(dir);
    if (recovered.ok()) {
      sharded = std::make_unique<shard::ShardedStore>(std::move(*recovered));
      sharded_dir = dir;
      router = std::make_unique<shard::ShardRouter>();
      std::printf("recovered sharded store from %s\n", dir.c_str());
      PrintShardStatus();
      return;
    }
    if (recovered.status().code() != util::StatusCode::kNotFound) {
      std::printf("shard recover failed: %s\n",
                  recovered.status().ToString().c_str());
      return;
    }
    if (!Ready()) {
      std::printf(
          "'%s' holds no sharded store and there is no database to seed "
          "one — use 'gen <n>' or 'load <path>' first\n",
          dir.c_str());
      return;
    }
    shard::ShardedStore::Options options;
    options.num_shards = std::uint32_t(num_shards);
    auto created = shard::ShardedStore::Create(dir, *db, options);
    if (!created.ok()) {
      std::printf("shard create failed: %s\n",
                  created.status().ToString().c_str());
      return;
    }
    sharded = std::make_unique<shard::ShardedStore>(std::move(*created));
    sharded_dir = dir;
    router = std::make_unique<shard::ShardRouter>();
    std::printf("created %zu-shard store in %s from the current database\n",
                num_shards, dir.c_str());
    PrintShardStatus();
  }

  void ShardRebalance(std::size_t num_shards) {
    const util::Status st =
        sharded->Rebalance(std::uint32_t(num_shards));
    if (!st.ok()) {
      std::printf(
          "rebalance failed: %s\n(the directory stays consistent — 'shard "
          "attach %s' re-runs recovery and lands on the old or the new "
          "placement, never a mix)\n",
          st.ToString().c_str(), sharded_dir.c_str());
      return;
    }
    std::printf("rebalanced onto %zu shard(s)\n", num_shards);
    PrintShardStatus();
  }

  /// Scatter-gather query across the shards. The completeness annotation
  /// is part of the answer contract (shard::ShardedSearchResult): a
  /// degraded result is labelled PARTIAL with shards_answered/shards_total
  /// — never passed off as complete.
  void ShardQuery(const std::string& text) {
    corpus::QueryBuilder builder(
        sharded->ShardStore(0).GetCorpus().SharedContext());
    const corpus::MediaObject q = builder.AddText(text).Build();
    if (q.features.empty()) {
      std::printf("no query tags matched the vocabulary\n");
      return;
    }
    util::Stopwatch watch;
    const auto result = router->Search(*sharded, q, 8, budget);
    if (!result.ok()) {
      std::printf("shard query failed: %s\n",
                  result.status().ToString().c_str());
      return;
    }
    std::printf(
        "%zu results in %.1f ms — %s (%zu/%zu shards answered, %llu "
        "retries, TA bound %.5f)\n",
        result->response.results.size(), watch.ElapsedMillis(),
        result->Complete() ? "complete" : "PARTIAL: unanswered shards' "
                                          "objects are missing",
        result->shards_answered, result->shards_total,
        (unsigned long long)result->retries, result->ta_bound);
    for (const auto& r : result->response.results)
      std::printf("  #%-6u score=%.5f\n", r.object, r.score);
  }

  // ------------------------------------------------------------ temporal
  void PrintSegmentsStatus() const {
    const temporal::SegmentManifest& m = segments->Manifest();
    const std::uint32_t retention =
        segments->GetOptions().retention_epochs;
    std::printf(
        "segmented store: generation %llu, %zu segment(s), %zu objects "
        "(%zu live) | clock epoch %u | retention %u epoch(s)%s | %llu "
        "skew-clamped ingest(s)\n",
        (unsigned long long)m.generation, segments->NumSegments(),
        segments->TotalObjects(), segments->LiveObjects(),
        segments->ClockEpoch(), retention,
        retention == 0 ? " (keep forever)" : "",
        (unsigned long long)segments->SkewClamped());
    for (std::size_t s = 0; s < segments->NumSegments(); ++s) {
      const temporal::SegmentEntry& e = segments->EntryOf(s);
      const index::FigDbStore& ss = segments->StoreOf(s);
      std::printf(
          "  seg %-3u epochs [%u, %u]  ids [%llu, %llu)  %zu live  %s%s\n",
          e.id, e.min_epoch, e.max_epoch, (unsigned long long)e.base,
          (unsigned long long)(e.base + e.count), ss.LiveObjects(),
          e.state == temporal::SegmentState::kActive ? "ACTIVE" : "sealed",
          ss.Wounded() ? " [WOUNDED]" : "");
    }
  }

  void SegmentsAttach(const std::string& dir, std::size_t epochs_per_segment,
                      std::size_t retention_epochs) {
    temporal::SegmentedStore::Options options;
    options.epochs_per_segment = std::uint32_t(epochs_per_segment);
    options.retention_epochs = std::uint32_t(retention_epochs);
    segments.reset();
    auto recovered = temporal::SegmentedStore::Recover(dir, options);
    if (recovered.ok()) {
      segments = std::move(*recovered);
      segments_dir = dir;
      std::printf("recovered segmented store from %s\n", dir.c_str());
      PrintSegmentsStatus();
      return;
    }
    if (recovered.status().code() != util::StatusCode::kNotFound) {
      std::printf("segments recover failed: %s\n",
                  recovered.status().ToString().c_str());
      return;
    }
    if (!Ready()) {
      std::printf(
          "'%s' holds no segmented store and there is no database to seed "
          "one — use 'gen <n>' or 'load <path>' first\n",
          dir.c_str());
      return;
    }
    auto created = temporal::SegmentedStore::Create(dir, *db, options);
    if (!created.ok()) {
      std::printf("segments create failed: %s\n",
                  created.status().ToString().c_str());
      return;
    }
    segments = std::move(*created);
    segments_dir = dir;
    std::printf(
        "created segmented store in %s from the current database "
        "(%zu epoch(s) per segment)\n",
        dir.c_str(), epochs_per_segment);
    PrintSegmentsStatus();
  }

  void SegmentsMerge() {
    const std::size_t before = segments->NumSegments();
    const util::Status st = segments->MergeSealed();
    if (!st.ok()) {
      std::printf(
          "merge failed: %s\n(the directory stays consistent — 'segments "
          "attach %s' re-runs recovery and lands on the old or the new "
          "layout, never a mix)\n",
          st.ToString().c_str(), segments_dir.c_str());
      return;
    }
    std::printf("merged sealed segments: %zu -> %zu segment(s)\n", before,
                segments->NumSegments());
    PrintSegmentsStatus();
  }

  void SegmentsExpire(std::uint64_t epoch) {
    const std::uint32_t now = epoch == cli::kEpochFromClock
                                  ? segments->ClockEpoch()
                                  : std::uint32_t(epoch);
    const std::size_t before = segments->NumSegments();
    const util::Status st = segments->RunRetention(now);
    if (!st.ok()) {
      std::printf(
          "expire failed: %s\n(the directory stays consistent — 'segments "
          "attach %s' re-runs recovery and lands on the old or the new "
          "window, never a mix)\n",
          st.ToString().c_str(), segments_dir.c_str());
      return;
    }
    std::printf("retention at epoch %u: %zu -> %zu segment(s)%s\n", now,
                before, segments->NumSegments(),
                segments->GetOptions().retention_epochs == 0
                    ? " (retention window disabled — attach with a nonzero "
                      "retention to expire)"
                    : "");
    PrintSegmentsStatus();
  }

  void SegmentsBursts(std::size_t k) {
    const temporal::BurstDetector& detector = segments->Bursts();
    const std::vector<temporal::BurstEvent> events = detector.Detect();
    if (events.empty()) {
      std::printf(
          "no bursts over %llu observed object(s) (threshold z >= %.1f, "
          "support >= %u)\n",
          (unsigned long long)detector.ObservedObjects(),
          detector.Options().threshold, detector.Options().min_support);
      return;
    }
    // Feature names come from the shared context every segment store
    // inherits from the seeding corpus.
    const corpus::Context& ctx =
        segments->StoreOf(0).GetCorpus().GetContext();
    std::printf("%zu burst event(s) over %llu observed object(s); top %zu:\n",
                events.size(),
                (unsigned long long)detector.ObservedObjects(),
                std::min(k, events.size()));
    for (std::size_t i = 0; i < events.size() && i < k; ++i) {
      const temporal::BurstEvent& e = events[i];
      std::printf(
          "  z=%-7.2f epoch %-4u %-24s x%llu (baseline %.1f±%.1f/epoch)\n",
          e.score, e.epoch, ctx.DescribeFeature(e.feature).c_str(),
          (unsigned long long)e.count, e.baseline_mean, e.baseline_stddev);
    }
  }

  void Generate(std::size_t n) {
    corpus::GeneratorConfig config;
    config.num_objects = n;
    config.num_topics = std::max<std::size_t>(10, n / 150);
    config.num_users = std::max<std::size_t>(100, n * 5 / 12);
    std::printf("generating %zu objects (%zu topics, %zu users)...\n",
                config.num_objects, config.num_topics, config.num_users);
    db = corpus::Generator(config).MakeRetrievalCorpus();
    RebuildEngine();
  }

  void Stats() const {
    const corpus::Context& ctx = db->GetContext();
    std::printf("objects: %zu | tags: %zu | visual words: %zu | users: %zu "
                "| index cliques: %zu (%zu postings)\n",
                db->Size(), ctx.vocabulary.Size(),
                ctx.visual_vocabulary.WordCount(),
                ctx.user_graph.UserCount(),
                engine->Index().DistinctCliques(),
                engine->Index().TotalPostings());
  }

  void PrintResults(const std::vector<core::SearchResult>& results,
                    corpus::ObjectId skip) const {
    for (const auto& r : results) {
      if (r.object == skip) continue;
      const auto& obj = db->Object(r.object);
      std::printf("  #%-6u score=%.5f topic=%-3u tags:", r.object, r.score,
                  obj.topic);
      int shown = 0;
      for (const auto& f : obj.features) {
        if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText &&
            shown++ < 5) {
          std::printf(
              " %s",
              db->GetContext().DescribeFeature(f.feature).c_str() + 4);
        }
      }
      std::printf("\n");
    }
  }

  /// Runs a budget-aware search, surfacing the Status and truncation
  /// state to the user instead of silently dropping them.
  void RunSearch(const corpus::MediaObject& q, std::size_t k,
                 corpus::ObjectId skip, const char* what) {
    util::Stopwatch watch;
    const auto response = engine->TrySearch(q, k, budget);
    if (!response.ok()) {
      std::printf("%s failed: %s\n", what,
                  response.status().ToString().c_str());
      return;
    }
    std::printf("%zu %s in %.1f ms%s%s\n", response->results.size(), what,
                watch.ElapsedMillis(),
                response->truncated
                    ? " [TRUNCATED: budget exhausted, best-effort results]"
                    : "",
                !response->reranked && response->truncated
                    ? " [rerank shed: exact stage-1 scores]"
                    : "");
    PrintResults(response->results, skip);
  }

  void Query(const std::string& text) {
    corpus::QueryBuilder builder(db->SharedContext());
    const corpus::MediaObject q = builder.AddText(text).Build();
    if (q.features.empty()) {
      std::printf("no query tags matched the vocabulary\n");
      return;
    }
    RunSearch(q, 8, corpus::kInvalidObject, "results");
  }

  void Similar(corpus::ObjectId id) {
    if (id >= db->Size()) {
      std::printf("no object #%u (database has %zu)\n", id, db->Size());
      return;
    }
    RunSearch(db->Object(id), 9, id, "neighbours");
  }

  void SetBudget(double ms, std::size_t max_candidates) {
    budget = util::QueryBudget{};
    if (ms > 0) budget.wall_limit_seconds = ms / 1e3;
    if (max_candidates > 0) budget.max_scored_candidates = max_candidates;
    // Report the budget actually in force, not the raw arguments (negative
    // or unparseable input falls back to "unlimited" per component).
    if (budget.Unlimited()) {
      std::printf("query budget: unlimited\n");
      return;
    }
    std::printf("query budget:");
    if (budget.wall_limit_seconds > 0)
      std::printf(" %.3f ms deadline", budget.wall_limit_seconds * 1e3);
    else
      std::printf(" no deadline");
    if (budget.max_scored_candidates != util::QueryBudget::kUnlimitedCandidates)
      std::printf(", %zu max scored candidates\n",
                  budget.max_scored_candidates);
    else
      std::printf(", unlimited candidates\n");
  }

  /// Concurrent serving drill: wraps the attached store in a ServingStore,
  /// hammers it with reader threads while the shell's own thread keeps
  /// ingesting and publishing epochs, then hands the store back and prints
  /// the serving-layer statistics. This is the shell-level proof of the
  /// snapshot-isolation contract: readers never block on the writer and
  /// every answer is computed against one published epoch.
  void Serve(double seconds, std::size_t readers, std::size_t workers) {
    serve::ServeOptions options;
    options.executor.workers = workers;
    options.publish_every = 4;
    serve::ServingStore serving(std::move(*store), options);
    store.reset();
    std::printf(
        "serving for %.1fs: %zu reader thread(s), %zu pool worker(s), "
        "publish every %zu mutation(s)...\n",
        seconds, readers, workers, options.publish_every);

    std::atomic<bool> stop{false};
    std::vector<std::uint64_t> served(readers, 0);
    std::vector<std::uint64_t> failed(readers, 0);
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < readers; ++r) {
      threads.emplace_back([&, r] {
        std::size_t turn = r * 977;
        while (!stop.load(std::memory_order_relaxed)) {
          const auto& q = db->Object(
              corpus::ObjectId((turn++ * 31 + 7) % db->Size()));
          if (q.features.empty()) continue;  // removed slot
          if (serving.Search(q, 8, budget).ok())
            ++served[r];
          else
            ++failed[r];
        }
      });
    }

    // The shell's thread IS the single writer: durable ingests of clones of
    // existing objects, auto-published every few mutations.
    util::Stopwatch watch;
    std::uint64_t ingested = 0;
    std::size_t donor = 0;
    while (watch.ElapsedSeconds() < seconds) {
      corpus::MediaObject obj =
          db->Object(corpus::ObjectId(donor++ % db->Size()));
      if (obj.features.empty()) continue;
      obj.id = corpus::kInvalidObject;
      if (serving.Ingest(std::move(obj)).ok()) ++ingested;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true);
    for (auto& t : threads) t.join();

    const serve::ServeStats stats = serving.Stats();
    std::uint64_t total_served = 0, total_failed = 0;
    for (std::size_t r = 0; r < readers; ++r) {
      total_served += served[r];
      total_failed += failed[r];
    }
    std::printf(
        "served %llu queries (%.0f qps), %llu rejected/expired | "
        "%llu ingested | epochs: %llu published, %llu retired, "
        "%llu reclaimed, %zu pending | executor: %llu admitted, "
        "%llu degraded, %llu rejected\n",
        (unsigned long long)total_served,
        total_served / watch.ElapsedSeconds(),
        (unsigned long long)total_failed, (unsigned long long)ingested,
        (unsigned long long)stats.epochs_published,
        (unsigned long long)stats.epochs_retired,
        (unsigned long long)stats.epochs_reclaimed, stats.pending_retired,
        (unsigned long long)stats.executor.admitted,
        (unsigned long long)stats.executor.degraded,
        (unsigned long long)stats.executor.rejected);

    store = std::move(serving).Release();
    SyncFromStore();
    PrintStoreStats("store");
  }

  /// Serves the attached store over the wire protocol until SIGTERM or
  /// SIGINT, then drains gracefully: in-flight requests finish against
  /// their pinned snapshots, late arrivals get typed RETRY_LATER, and the
  /// store is handed back to the shell intact.
  void Listen(std::uint16_t port) {
    serve::ServeOptions soptions;
    soptions.executor.workers = 2;
    serve::ServingStore serving(std::move(*store), soptions);
    store.reset();

    net::ServerOptions options;
    options.port = port;
    net::FigServer server(&serving, options);
    const util::Status started = server.Start();
    if (!started.ok()) {
      std::printf("listen failed: %s\n", started.ToString().c_str());
      store = std::move(serving).Release();
      SyncFromStore();
      return;
    }
    std::printf("listening on 127.0.0.1:%u — SIGTERM/SIGINT drains and "
                "returns to the shell\n",
                server.Port());
    std::fflush(stdout);

    g_drain_requested = 0;
    auto prev_term = std::signal(SIGTERM, OnDrainSignal);
    auto prev_int = std::signal(SIGINT, OnDrainSignal);
    while (g_drain_requested == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::signal(SIGTERM, prev_term);
    std::signal(SIGINT, prev_int);

    server.BeginDrain();
    server.Stop();
    const net::ServerStats stats = server.Stats();
    std::printf(
        "drained cleanly: %llu request(s) served, %llu retry-later, "
        "%llu tenant-rejected, %llu degraded over %llu connection(s) "
        "(%llu dropped, %llu corrupt streams)\n",
        (unsigned long long)stats.completed,
        (unsigned long long)stats.retry_later,
        (unsigned long long)stats.tenant_rejected,
        (unsigned long long)stats.tenant_degraded,
        (unsigned long long)stats.connections_accepted,
        (unsigned long long)stats.connections_dropped,
        (unsigned long long)stats.decode_corrupt);
    std::fflush(stdout);

    store = std::move(serving).Release();
    SyncFromStore();
    PrintStoreStats("store");
  }

  /// One query against a remote `listen` server, with the shell's budget
  /// propagated over the wire as the request's deadline.
  void Connect(const std::string& host, std::uint16_t port,
               const std::string& text) {
    net::FigClient client(host, port);
    util::Stopwatch watch;
    const auto result = client.Query("shell", text, 8, budget);
    if (!result.ok()) {
      std::printf("connect query failed: %s\n",
                  result.status().ToString().c_str());
      return;
    }
    std::printf(
        "%zu result(s) in %.1f ms from %s:%u (epoch %llu, %zu attempt(s))"
        "%s%s\n",
        result->response.results.size(), watch.ElapsedMillis(), host.c_str(),
        port, (unsigned long long)result->response.epoch, result->attempts,
        result->response.truncated ? " [TRUNCATED]" : "",
        !result->response.reranked ? " [rerank shed]" : "");
    for (const auto& r : result->response.results)
      std::printf("  #%-6llu score=%.5f\n", (unsigned long long)r.object,
                  r.score);
  }

  void Show(corpus::ObjectId id) const {
    if (id >= db->Size()) {
      std::printf("no object #%u\n", id);
      return;
    }
    const auto& obj = db->Object(id);
    std::printf("object #%u  topic=%u  month=%u  |O|=%u\n", obj.id,
                obj.topic, obj.month, obj.TotalFrequency());
    for (const auto& f : obj.features)
      std::printf("  %-24s x%u\n",
                  db->GetContext().DescribeFeature(f.feature).c_str(),
                  f.frequency);
  }
};

void Help() {
  std::printf(
      "commands:\n"
      "  gen <n>           generate a synthetic database of n objects\n"
      "  load <path>       load a snapshot (see 'save')\n"
      "  save <path>       save the database to a binary snapshot\n"
      "  stats             database and index statistics\n"
      "  query <tags...>   free-text tag search (QueryBuilder pipeline)\n"
      "  similar <id>      FIG neighbours of a database object\n"
      "  show <id>         dump one object's features\n"
      "  budget <ms> <max_candidates>   per-query budget (0 0 = unlimited);\n"
      "                    over-budget queries return best-effort results\n"
      "                    tagged TRUNCATED\n"
      "crash-safe store (WAL + atomic checkpoints):\n"
      "  attach <dir>      recover the store in <dir>, or create one there\n"
      "                    from the current database\n"
      "  ingest <tags...>  add an object durably (WAL-logged before apply)\n"
      "  remove <id>       tombstone an object durably\n"
      "  checkpoint        fold the WAL into an atomically-replaced snapshot\n"
      "  recover           re-run crash recovery on the attached directory\n"
      "  serve [secs] [readers] [workers]\n"
      "                    concurrent serving drill: reader threads search\n"
      "                    snapshot-isolated epochs while the shell ingests\n"
      "                    and publishes; prints epoch + admission stats\n"
      "sharded store (scatter-gather across N shard stores):\n"
      "  shard attach <dir> [n]  recover the sharded store in <dir>, or\n"
      "                    create one there (n shards, default 4) from the\n"
      "                    current database\n"
      "  shard status      placement generation, per-shard health, router\n"
      "                    admission / PARTIAL / straggler counters\n"
      "  shard rebalance <n>  crash-recoverable two-phase re-partition\n"
      "  shard query <tags...>  fan the query out; results are labelled\n"
      "                    complete or PARTIAL (a/N shards answered)\n"
      "temporal segmented store (time-partitioned, merge-time δ-decay):\n"
      "  segments attach <dir> [epochs] [retention]\n"
      "                    recover the segmented store in <dir>, or create\n"
      "                    one there from the current database (bucket width\n"
      "                    in epochs, default 1; sliding retention window in\n"
      "                    epochs, 0/default = keep forever)\n"
      "  segments status   manifest generation, per-segment epoch ranges and\n"
      "                    id spans, clock epoch, skew-clamp counter\n"
      "  segments merge    compact all sealed segments into one (crash-\n"
      "                    recoverable single-manifest swap)\n"
      "  segments expire [now]  run sliding-window retention at epoch <now>\n"
      "                    (absent = the store's clock epoch)\n"
      "  segments bursts [k]  top-k detected burst events (z-score against\n"
      "                    each feature's trailing baseline)\n"
      "network serving (framed wire protocol, 127.0.0.1):\n"
      "  listen [port]     serve the attached store over TCP (0/absent =\n"
      "                    ephemeral, port is printed); SIGTERM or SIGINT\n"
      "                    drains gracefully — in-flight requests finish,\n"
      "                    late ones get RETRY_LATER — then returns\n"
      "  connect <host> <port> <tags...>  run one query against a listen\n"
      "                    server; the shell budget rides the wire as the\n"
      "                    request deadline, retries are bounded+backoff\n"
      "  quit\n"
      "env: FIGDB_FAILPOINTS=name[:skip[:fires]],…  activates fault drills\n"
      "     (e.g. wal/fsync, shard/wounded) at startup\n");
}

}  // namespace

int main() {
  const std::size_t drills = util::FailPoints::ActivateFromEnv();
  if (drills > 0)
    std::printf("fault drill: %zu fail-point(s) active from "
                "FIGDB_FAILPOINTS\n",
                drills);
  Shell shell;
  std::printf("figdb shell — 'help' for commands, 'gen 2000' to start\n");
  std::string line;
  while (std::printf("figdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    // All line → command translation lives in cli::ParseShellCommand (the
    // same entry point fuzz_shell_command hammers); the REPL only dispatches
    // on the validated, pre-clamped result.
    const auto parsed = cli::ParseShellCommand(line);
    if (!parsed.ok()) {
      std::printf("%s\n", parsed.status().message().c_str());
      continue;
    }
    const cli::ShellCommand& cmd = *parsed;
    if (cmd.verb == cli::ShellVerb::kNone) continue;
    if (cmd.verb == cli::ShellVerb::kQuit) break;
    if (cmd.verb == cli::ShellVerb::kHelp) {
      Help();
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kGen) {
      shell.Generate(cmd.count);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kLoad) {
      auto loaded = index::LoadCorpus(cmd.text);
      if (!loaded.ok()) {
        // Surface the precise reason (corrupt section, CRC mismatch,
        // version skew, missing file) — a bare "could not load" hides
        // exactly the information an operator needs.
        std::printf("load failed: %s\n", loaded.status().ToString().c_str());
        continue;
      }
      shell.db = std::move(*loaded);
      shell.RebuildEngine();
      std::printf("loaded %zu objects\n", shell.db->Size());
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kAttach) {
      shell.Attach(cmd.text);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kShardAttach) {
      shell.ShardAttach(cmd.text, cmd.count);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kShardStatus ||
        cmd.verb == cli::ShellVerb::kShardRebalance ||
        cmd.verb == cli::ShellVerb::kShardQuery) {
      if (shell.sharded == nullptr) {
        std::printf(
            "no sharded store attached — use 'shard attach <dir> [n]' "
            "first\n");
        continue;
      }
      if (cmd.verb == cli::ShellVerb::kShardStatus)
        shell.PrintShardStatus();
      else if (cmd.verb == cli::ShellVerb::kShardRebalance)
        shell.ShardRebalance(cmd.count);
      else
        shell.ShardQuery(cmd.text);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kSegmentsAttach) {
      shell.SegmentsAttach(cmd.text, cmd.count, cmd.retention);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kSegmentsStatus ||
        cmd.verb == cli::ShellVerb::kSegmentsMerge ||
        cmd.verb == cli::ShellVerb::kSegmentsExpire ||
        cmd.verb == cli::ShellVerb::kSegmentsBursts) {
      if (!shell.segments.has_value()) {
        std::printf(
            "no segmented store attached — use 'segments attach <dir> "
            "[epochs] [retention]' first\n");
        continue;
      }
      if (cmd.verb == cli::ShellVerb::kSegmentsStatus)
        shell.PrintSegmentsStatus();
      else if (cmd.verb == cli::ShellVerb::kSegmentsMerge)
        shell.SegmentsMerge();
      else if (cmd.verb == cli::ShellVerb::kSegmentsExpire)
        shell.SegmentsExpire(cmd.epoch);
      else
        shell.SegmentsBursts(cmd.count);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kConnect) {
      shell.Connect(cmd.host, cmd.port, cmd.text);
      continue;
    }
    if (cmd.verb == cli::ShellVerb::kServe ||
        cmd.verb == cli::ShellVerb::kListen ||
        cmd.verb == cli::ShellVerb::kIngest ||
        cmd.verb == cli::ShellVerb::kRemove ||
        cmd.verb == cli::ShellVerb::kCheckpoint ||
        cmd.verb == cli::ShellVerb::kRecover) {
      if (!shell.store.has_value()) {
        std::printf("no store attached — use 'attach <dir>' first\n");
        continue;
      }
      switch (cmd.verb) {
        case cli::ShellVerb::kServe:
          shell.Serve(cmd.serve_seconds, cmd.serve_readers,
                      cmd.serve_workers);
          break;
        case cli::ShellVerb::kListen:
          shell.Listen(cmd.port);
          break;
        case cli::ShellVerb::kIngest:
          shell.Ingest(cmd.text);
          break;
        case cli::ShellVerb::kRemove:
          shell.Remove(cmd.id);
          break;
        case cli::ShellVerb::kCheckpoint:
          shell.Checkpoint();
          break;
        default:
          shell.Recover();
          break;
      }
      continue;
    }
    if (!shell.Ready()) {
      std::printf("no database yet — use 'gen <n>' or 'load <path>'\n");
      continue;
    }
    switch (cmd.verb) {
      case cli::ShellVerb::kSave: {
        const util::Status saved = index::SaveCorpus(*shell.db, cmd.text);
        if (saved.ok())
          std::printf("saved to %s\n", cmd.text.c_str());
        else
          std::printf("save FAILED: %s\n", saved.ToString().c_str());
        break;
      }
      case cli::ShellVerb::kBudget:
        shell.SetBudget(cmd.budget_ms, cmd.budget_candidates);
        break;
      case cli::ShellVerb::kStats:
        shell.EnsureEngine();
        shell.Stats();
        break;
      case cli::ShellVerb::kQuery:
        shell.EnsureEngine();
        shell.Query(cmd.text);
        break;
      case cli::ShellVerb::kSimilar:
        shell.EnsureEngine();
        shell.Similar(cmd.id);
        break;
      case cli::ShellVerb::kShow:
        shell.Show(cmd.id);
        break;
      default:
        break;  // unreachable: every other verb was dispatched above
    }
  }
  return 0;
}
