// Interactive shell over a figdb database: generate or load a corpus, save
// snapshots, run tag/user queries through QueryBuilder, find neighbours of
// database objects and inspect them. Exercises the full public API the way
// a downstream integrator would.
//
//   ./build/examples/figdb_shell
//   figdb> gen 3000
//   figdb> query sunset beach
//   figdb> similar 42
//   figdb> save /tmp/db.figdb
//
// Also usable non-interactively:  echo "gen 500\nstats" | figdb_shell

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/query_builder.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace figdb;

struct Shell {
  std::optional<corpus::Corpus> db;
  std::unique_ptr<index::FigRetrievalEngine> engine;

  bool Ready() const { return db.has_value() && engine != nullptr; }

  void RebuildEngine() {
    util::Stopwatch watch;
    engine = std::make_unique<index::FigRetrievalEngine>(
        *db, index::EngineOptions{});
    std::printf("engine ready in %.2fs (%zu cliques indexed)\n",
                watch.ElapsedSeconds(), engine->Index().DistinctCliques());
  }

  void Generate(std::size_t n) {
    corpus::GeneratorConfig config;
    config.num_objects = n;
    config.num_topics = std::max<std::size_t>(10, n / 150);
    config.num_users = std::max<std::size_t>(100, n * 5 / 12);
    std::printf("generating %zu objects (%zu topics, %zu users)...\n",
                config.num_objects, config.num_topics, config.num_users);
    db = corpus::Generator(config).MakeRetrievalCorpus();
    RebuildEngine();
  }

  void Stats() const {
    const corpus::Context& ctx = db->GetContext();
    std::printf("objects: %zu | tags: %zu | visual words: %zu | users: %zu "
                "| index cliques: %zu (%zu postings)\n",
                db->Size(), ctx.vocabulary.Size(),
                ctx.visual_vocabulary.WordCount(),
                ctx.user_graph.UserCount(),
                engine->Index().DistinctCliques(),
                engine->Index().TotalPostings());
  }

  void PrintResults(const std::vector<core::SearchResult>& results,
                    corpus::ObjectId skip) const {
    for (const auto& r : results) {
      if (r.object == skip) continue;
      const auto& obj = db->Object(r.object);
      std::printf("  #%-6u score=%.5f topic=%-3u tags:", r.object, r.score,
                  obj.topic);
      int shown = 0;
      for (const auto& f : obj.features) {
        if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText &&
            shown++ < 5) {
          std::printf(
              " %s",
              db->GetContext().DescribeFeature(f.feature).c_str() + 4);
        }
      }
      std::printf("\n");
    }
  }

  void Query(const std::string& text) {
    corpus::QueryBuilder builder(db->SharedContext());
    const corpus::MediaObject q = builder.AddText(text).Build();
    if (q.features.empty()) {
      std::printf("no query tags matched the vocabulary\n");
      return;
    }
    util::Stopwatch watch;
    const auto results = engine->Search(q, 8);
    std::printf("%zu results in %.1f ms\n", results.size(),
                watch.ElapsedMillis());
    PrintResults(results, corpus::kInvalidObject);
  }

  void Similar(corpus::ObjectId id) {
    if (id >= db->Size()) {
      std::printf("no object #%u (database has %zu)\n", id, db->Size());
      return;
    }
    util::Stopwatch watch;
    const auto results = engine->Search(db->Object(id), 9);
    std::printf("neighbours of #%u in %.1f ms\n", id, watch.ElapsedMillis());
    PrintResults(results, id);
  }

  void Show(corpus::ObjectId id) const {
    if (id >= db->Size()) {
      std::printf("no object #%u\n", id);
      return;
    }
    const auto& obj = db->Object(id);
    std::printf("object #%u  topic=%u  month=%u  |O|=%u\n", obj.id,
                obj.topic, obj.month, obj.TotalFrequency());
    for (const auto& f : obj.features)
      std::printf("  %-24s x%u\n",
                  db->GetContext().DescribeFeature(f.feature).c_str(),
                  f.frequency);
  }
};

void Help() {
  std::printf(
      "commands:\n"
      "  gen <n>           generate a synthetic database of n objects\n"
      "  load <path>       load a snapshot (see 'save')\n"
      "  save <path>       save the database to a binary snapshot\n"
      "  stats             database and index statistics\n"
      "  query <tags...>   free-text tag search (QueryBuilder pipeline)\n"
      "  similar <id>      FIG neighbours of a database object\n"
      "  show <id>         dump one object's features\n"
      "  quit\n");
}

}  // namespace

int main() {
  Shell shell;
  std::printf("figdb shell — 'help' for commands, 'gen 2000' to start\n");
  std::string line;
  while (std::printf("figdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
      continue;
    }
    if (cmd == "gen") {
      std::size_t n = 2000;
      in >> n;
      shell.Generate(std::max<std::size_t>(50, n));
      continue;
    }
    if (cmd == "load") {
      std::string path;
      in >> path;
      auto loaded = index::LoadCorpus(path);
      if (!loaded) {
        std::printf("could not load '%s'\n", path.c_str());
        continue;
      }
      shell.db = std::move(*loaded);
      shell.RebuildEngine();
      std::printf("loaded %zu objects\n", shell.db->Size());
      continue;
    }
    if (!shell.Ready()) {
      std::printf("no database yet — use 'gen <n>' or 'load <path>'\n");
      continue;
    }
    if (cmd == "save") {
      std::string path;
      in >> path;
      std::printf(index::SaveCorpus(*shell.db, path) ? "saved to %s\n"
                                                     : "save FAILED: %s\n",
                  path.c_str());
    } else if (cmd == "stats") {
      shell.Stats();
    } else if (cmd == "query") {
      std::string rest;
      std::getline(in, rest);
      shell.Query(rest);
    } else if (cmd == "similar") {
      corpus::ObjectId id = 0;
      in >> id;
      shell.Similar(id);
    } else if (cmd == "show") {
      corpus::ObjectId id = 0;
      in >> id;
      shell.Show(id);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
