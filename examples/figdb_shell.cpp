// Interactive shell over a figdb database: generate or load a corpus, save
// snapshots, run tag/user queries through QueryBuilder, find neighbours of
// database objects and inspect them. Exercises the full public API the way
// a downstream integrator would.
//
//   ./build/examples/figdb_shell
//   figdb> gen 3000
//   figdb> query sunset beach
//   figdb> similar 42
//   figdb> save /tmp/db.figdb
//
// Also usable non-interactively:  echo "gen 500\nstats" | figdb_shell

#include <cstdio>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "corpus/generator.hpp"
#include "corpus/query_builder.hpp"
#include "index/retrieval_engine.hpp"
#include "index/storage.hpp"
#include "util/query_budget.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace figdb;

struct Shell {
  std::optional<corpus::Corpus> db;
  std::unique_ptr<index::FigRetrievalEngine> engine;
  /// Per-query budget, settable via the `budget` command. Unlimited by
  /// default so the shell behaves exactly like the raw engine.
  util::QueryBudget budget;

  bool Ready() const { return db.has_value() && engine != nullptr; }

  void RebuildEngine() {
    util::Stopwatch watch;
    engine = std::make_unique<index::FigRetrievalEngine>(
        *db, index::EngineOptions{});
    std::printf("engine ready in %.2fs (%zu cliques indexed)\n",
                watch.ElapsedSeconds(), engine->Index().DistinctCliques());
  }

  void Generate(std::size_t n) {
    corpus::GeneratorConfig config;
    config.num_objects = n;
    config.num_topics = std::max<std::size_t>(10, n / 150);
    config.num_users = std::max<std::size_t>(100, n * 5 / 12);
    std::printf("generating %zu objects (%zu topics, %zu users)...\n",
                config.num_objects, config.num_topics, config.num_users);
    db = corpus::Generator(config).MakeRetrievalCorpus();
    RebuildEngine();
  }

  void Stats() const {
    const corpus::Context& ctx = db->GetContext();
    std::printf("objects: %zu | tags: %zu | visual words: %zu | users: %zu "
                "| index cliques: %zu (%zu postings)\n",
                db->Size(), ctx.vocabulary.Size(),
                ctx.visual_vocabulary.WordCount(),
                ctx.user_graph.UserCount(),
                engine->Index().DistinctCliques(),
                engine->Index().TotalPostings());
  }

  void PrintResults(const std::vector<core::SearchResult>& results,
                    corpus::ObjectId skip) const {
    for (const auto& r : results) {
      if (r.object == skip) continue;
      const auto& obj = db->Object(r.object);
      std::printf("  #%-6u score=%.5f topic=%-3u tags:", r.object, r.score,
                  obj.topic);
      int shown = 0;
      for (const auto& f : obj.features) {
        if (corpus::TypeOf(f.feature) == corpus::FeatureType::kText &&
            shown++ < 5) {
          std::printf(
              " %s",
              db->GetContext().DescribeFeature(f.feature).c_str() + 4);
        }
      }
      std::printf("\n");
    }
  }

  /// Runs a budget-aware search, surfacing the Status and truncation
  /// state to the user instead of silently dropping them.
  void RunSearch(const corpus::MediaObject& q, std::size_t k,
                 corpus::ObjectId skip, const char* what) {
    util::Stopwatch watch;
    const auto response = engine->TrySearch(q, k, budget);
    if (!response.ok()) {
      std::printf("%s failed: %s\n", what,
                  response.status().ToString().c_str());
      return;
    }
    std::printf("%zu %s in %.1f ms%s%s\n", response->results.size(), what,
                watch.ElapsedMillis(),
                response->truncated
                    ? " [TRUNCATED: budget exhausted, best-effort results]"
                    : "",
                !response->reranked && response->truncated
                    ? " [rerank shed: exact stage-1 scores]"
                    : "");
    PrintResults(response->results, skip);
  }

  void Query(const std::string& text) {
    corpus::QueryBuilder builder(db->SharedContext());
    const corpus::MediaObject q = builder.AddText(text).Build();
    if (q.features.empty()) {
      std::printf("no query tags matched the vocabulary\n");
      return;
    }
    RunSearch(q, 8, corpus::kInvalidObject, "results");
  }

  void Similar(corpus::ObjectId id) {
    if (id >= db->Size()) {
      std::printf("no object #%u (database has %zu)\n", id, db->Size());
      return;
    }
    RunSearch(db->Object(id), 9, id, "neighbours");
  }

  void SetBudget(double ms, std::size_t max_candidates) {
    budget = util::QueryBudget{};
    if (ms > 0) budget.wall_limit_seconds = ms / 1e3;
    if (max_candidates > 0) budget.max_scored_candidates = max_candidates;
    // Report the budget actually in force, not the raw arguments (negative
    // or unparseable input falls back to "unlimited" per component).
    if (budget.Unlimited()) {
      std::printf("query budget: unlimited\n");
      return;
    }
    std::printf("query budget:");
    if (budget.wall_limit_seconds > 0)
      std::printf(" %.3f ms deadline", budget.wall_limit_seconds * 1e3);
    else
      std::printf(" no deadline");
    if (budget.max_scored_candidates != util::QueryBudget::kUnlimitedCandidates)
      std::printf(", %zu max scored candidates\n",
                  budget.max_scored_candidates);
    else
      std::printf(", unlimited candidates\n");
  }

  void Show(corpus::ObjectId id) const {
    if (id >= db->Size()) {
      std::printf("no object #%u\n", id);
      return;
    }
    const auto& obj = db->Object(id);
    std::printf("object #%u  topic=%u  month=%u  |O|=%u\n", obj.id,
                obj.topic, obj.month, obj.TotalFrequency());
    for (const auto& f : obj.features)
      std::printf("  %-24s x%u\n",
                  db->GetContext().DescribeFeature(f.feature).c_str(),
                  f.frequency);
  }
};

void Help() {
  std::printf(
      "commands:\n"
      "  gen <n>           generate a synthetic database of n objects\n"
      "  load <path>       load a snapshot (see 'save')\n"
      "  save <path>       save the database to a binary snapshot\n"
      "  stats             database and index statistics\n"
      "  query <tags...>   free-text tag search (QueryBuilder pipeline)\n"
      "  similar <id>      FIG neighbours of a database object\n"
      "  show <id>         dump one object's features\n"
      "  budget <ms> <max_candidates>   per-query budget (0 0 = unlimited);\n"
      "                    over-budget queries return best-effort results\n"
      "                    tagged TRUNCATED\n"
      "  quit\n");
}

}  // namespace

int main() {
  Shell shell;
  std::printf("figdb shell — 'help' for commands, 'gen 2000' to start\n");
  std::string line;
  while (std::printf("figdb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      Help();
      continue;
    }
    if (cmd == "gen") {
      std::size_t n = 2000;
      in >> n;
      shell.Generate(std::max<std::size_t>(50, n));
      continue;
    }
    if (cmd == "load") {
      std::string path;
      in >> path;
      auto loaded = index::LoadCorpus(path);
      if (!loaded.ok()) {
        // Surface the precise reason (corrupt section, CRC mismatch,
        // version skew, missing file) — a bare "could not load" hides
        // exactly the information an operator needs.
        std::printf("load failed: %s\n", loaded.status().ToString().c_str());
        continue;
      }
      shell.db = std::move(*loaded);
      shell.RebuildEngine();
      std::printf("loaded %zu objects\n", shell.db->Size());
      continue;
    }
    if (!shell.Ready()) {
      std::printf("no database yet — use 'gen <n>' or 'load <path>'\n");
      continue;
    }
    if (cmd == "save") {
      std::string path;
      in >> path;
      const util::Status saved = index::SaveCorpus(*shell.db, path);
      if (saved.ok())
        std::printf("saved to %s\n", path.c_str());
      else
        std::printf("save FAILED: %s\n", saved.ToString().c_str());
    } else if (cmd == "budget") {
      double ms = 0;
      std::size_t cand = 0;
      in >> ms >> cand;
      shell.SetBudget(ms, cand);
    } else if (cmd == "stats") {
      shell.Stats();
    } else if (cmd == "query") {
      std::string rest;
      std::getline(in, rest);
      shell.Query(rest);
    } else if (cmd == "similar") {
      corpus::ObjectId id = 0;
      in >> id;
      shell.Similar(id);
    } else if (cmd == "show") {
      corpus::ObjectId id = 0;
      in >> id;
      shell.Show(id);
    } else {
      std::printf("unknown command '%s' — try 'help'\n", cmd.c_str());
    }
  }
  return 0;
}
