// Reproduces paper Figure 10: recommendation Precision@10 of the FIG model
// as the temporal decay parameter delta varies, alongside the Text-only and
// User-only restricted models.
//
// Expected shape (paper §5.3.1): FIG rises as delta drops from 1, peaks
// around delta ~ 0.4 (recent favourites matter more), and dips slightly for
// very small delta (early evidence still helps); User is above Text — the
// REVERSE of retrieval, because recommendation is user-oriented.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig10] generating recommendation dataset (%zu objects)...\n",
              args.objects);
  corpus::Generator generator(bench::MakeRecommendationConfig(args));
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 40;
  const corpus::RecommendationDataset ds =
      generator.MakeRecommendationDataset(rc);
  std::printf("[fig10] %zu users, %zu candidates\n", ds.users.size(),
              ds.candidates.size());

  index::EngineOptions eo;
  eo.build_index = false;
  const index::FigRetrievalEngine engine(ds.corpus, eo);
  const std::uint16_t now =
      std::uint16_t(generator.Config().num_months - 1);

  const double deltas[] = {1.0, 0.8, 0.6, 0.4, 0.2, 0.1};
  if (args.segmented) {
    // Guard the figure's decay numbers: the segmented serving path must
    // reproduce exhaustive δ-decay before we trust either.
    bench::RunSegmentedCrossCheck(
        ds.corpus, "fig10",
        std::vector<double>(std::begin(deltas), std::end(deltas)), now,
        /*k=*/50, /*num_queries=*/10, args.seed);
  }
  std::vector<std::string> columns;
  for (double d : deltas) columns.push_back("d=" + std::to_string(d).substr(0, 3));

  struct Variant {
    const char* label;
    std::uint32_t mask;
  };
  const Variant variants[] = {{"Text", core::kTextMask},
                              {"User", core::kUserMask},
                              {"FIG", core::kAllFeatures}};

  eval::Table table(
      "Figure 10: Recommendation Precision@10 vs decay parameter", columns);
  eval::RecommendationEvalOptions options;
  options.cutoffs = {10};

  for (const Variant& variant : variants) {
    recsys::ProfileBuilderOptions po;
    po.type_mask = variant.mask;
    const recsys::ProfileBuilder builder(engine.Correlations(), po);
    // Profiles are delta-independent; build them once per variant.
    std::vector<recsys::UserProfile> profiles;
    for (const corpus::RecommendationUser& u : ds.users)
      profiles.push_back(builder.Build(ds.corpus, u.profile));

    std::vector<double> row;
    for (double delta : deltas) {
      const // Recommendation uses the containment-gated model for both stages: a
      // several-hundred-object profile already covers its topics' features,
      // so the partial-clique smoothing bridge (vital for single-object
      // retrieval queries) only adds noise and cost here.
      recsys::FigRecommender rec(ds.corpus, engine.ExactPotential(),
                                       engine.ExactPotential(),
                                       {.decay = delta});
      const auto r = eval::EvaluateRecommendation(
          ds,
          [&](const corpus::RecommendationUser& user, std::size_t k) {
            // Recover the user's index to reuse its prebuilt profile.
            const std::size_t idx = std::size_t(&user - ds.users.data());
            return rec.Recommend(profiles[idx], ds.candidates, k, now);
          },
          options);
      row.push_back(r.precision[0]);
    }
    table.AddRow(variant.label, row);
    std::printf("[fig10] %-5s done\n", variant.label);
  }
  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
