// Ablation of the retrieval architecture (paper §3.5): the inverted clique
// index with Threshold Algorithm merging vs exhaustive merging vs the
// sequential pre-index scan. Verifies that all three return the same top-k
// and reports their speeds plus index statistics.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "util/stopwatch.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  bench::Args args = bench::Args::Parse(argc, argv);
  if (args.objects == 12000) args.objects = 8000;

  std::printf("[ablation_index] generating corpus (%zu objects)...\n",
              args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus corpus = generator.MakeRetrievalCorpus();
  const eval::TopicOracle oracle(&corpus);
  const auto queries = bench::EvalQueries(corpus, args);

  index::EngineOptions ta_options;
  const index::FigRetrievalEngine ta(corpus, ta_options);
  index::EngineOptions ex_options;
  ex_options.merge = index::EngineOptions::MergeMode::kExhaustive;
  const index::FigRetrievalEngine exhaustive(corpus, ex_options);

  std::printf("[ablation_index] index: %zu distinct cliques, %zu postings\n",
              ta.Index().DistinctCliques(), ta.Index().TotalPostings());

  // ---- Result agreement (top-10 object sets).
  std::size_t ta_vs_ex = 0, ta_vs_seq = 0, checked = 0;
  for (corpus::ObjectId q : queries) {
    const auto a = ta.Search(corpus.Object(q), 10);
    const auto b = exhaustive.Search(corpus.Object(q), 10);
    const auto c = ta.SearchSequential(corpus.Object(q), 10);
    auto ids = [](const std::vector<core::SearchResult>& r) {
      std::vector<corpus::ObjectId> v;
      for (const auto& e : r) v.push_back(e.object);
      std::sort(v.begin(), v.end());
      return v;
    };
    if (ids(a) == ids(b)) ++ta_vs_ex;
    const auto ia = ids(a), ic = ids(c);
    std::size_t overlap = 0;
    for (corpus::ObjectId id : ia)
      if (std::binary_search(ic.begin(), ic.end(), id)) ++overlap;
    ta_vs_seq += overlap;
    ++checked;
  }
  std::printf(
      "[ablation_index] TA == exhaustive on %zu/%zu queries; "
      "TA vs sequential top-10 overlap %.1f%%\n",
      ta_vs_ex, checked,
      100.0 * double(ta_vs_seq) / double(checked * 10));

  // ---- Timing.
  eval::RetrievalEvalOptions eo;
  eo.cutoffs = {10};
  eval::Table table("Index ablation: seconds per query",
                    {"s/query", "P@10"});
  auto time_method = [&](const std::string& label, auto&& search) {
    util::Stopwatch watch;
    double p10 = 0.0;
    for (corpus::ObjectId q : queries) {
      const auto results = search(corpus.Object(q));
      std::size_t hits = 0;
      std::size_t seen = 0;
      for (const auto& r : results) {
        if (r.object == q) continue;
        if (seen++ >= 10) break;
        if (oracle.Relevant(corpus.Object(q), r.object)) ++hits;
      }
      p10 += double(hits) / 10.0;
    }
    const double secs = watch.ElapsedSeconds() / double(queries.size());
    table.AddRow(label, {secs, p10 / double(queries.size())});
    std::printf("[ablation_index] %-28s done\n", label.c_str());
  };
  time_method("inverted index + TA", [&](const corpus::MediaObject& q) {
    return ta.Search(q, 11);
  });
  time_method("inverted index + exhaustive",
              [&](const corpus::MediaObject& q) {
                return exhaustive.Search(q, 11);
              });
  time_method("sequential scan", [&](const corpus::MediaObject& q) {
    return ta.SearchSequential(q, 11);
  });

  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
