// Concurrent serving throughput: QPS and latency percentiles of the
// snapshot-isolated serving layer vs. executor worker count, with and
// without a concurrent ingesting writer.
//
//   ./build/bench/serve_throughput [--objects=N] [--seed=N]
//
// For each worker count in {1, 2, 4, 8} a fresh ServingStore is built over
// the standard generated corpus and hammered by 4 reader threads for a
// fixed wall interval; the with-ingest pass adds a writer thread ingesting
// durable mutations and publishing a new epoch every 8 of them, so readers
// continuously cross epoch boundaries while measuring. Each configuration
// emits one machine-readable line:
//
//   BENCH {"bench":"serve_throughput","workers":W,"ingest":B,...}
//
// including the host's core count — on a single-core host the worker
// sweep measures overhead, not speedup, and downstream tooling must read
// "cores" before comparing QPS across workers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "index/figdb_store.hpp"
#include "serve/serving_store.hpp"
#include "util/stopwatch.hpp"

namespace figdb::bench {
namespace {

constexpr int kReaders = 4;
constexpr double kMeasureSeconds = 1.5;
constexpr std::size_t kTopK = 10;

struct RunResult {
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t ingested = 0;
  double seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double p) {
  if (sorted_ms->empty()) return 0.0;
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms->size() - 1));
  return (*sorted_ms)[idx];
}

RunResult Measure(serve::ServingStore* serving, const corpus::Corpus& base,
                  bool with_ingest) {
  using Clock = std::chrono::steady_clock;
  std::atomic<bool> stop{false};
  std::vector<std::vector<double>> latencies_ms(kReaders);
  std::vector<std::uint64_t> completed(kReaders, 0);
  std::vector<std::uint64_t> rejected(kReaders, 0);

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::size_t turn = static_cast<std::size_t>(r) * 131;
      while (!stop.load(std::memory_order_relaxed)) {
        const corpus::ObjectId q =
            corpus::ObjectId((turn * 37 + 11) % base.Size());
        ++turn;
        const auto t0 = Clock::now();
        const auto result = serving->Search(base.Object(q), kTopK);
        const auto t1 = Clock::now();
        if (result.ok()) {
          latencies_ms[r].push_back(
              std::chrono::duration<double, std::milli>(t1 - t0).count());
          ++completed[r];
        } else {
          ++rejected[r];
        }
      }
    });
  }

  std::atomic<std::uint64_t> ingested{0};
  std::thread writer;
  if (with_ingest) {
    writer = std::thread([&] {
      std::size_t donor = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        corpus::MediaObject obj = base.Object(
            corpus::ObjectId(donor++ % base.Size()));
        obj.id = corpus::kInvalidObject;
        if (serving->Ingest(std::move(obj)).ok())
          ingested.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  util::Stopwatch watch;
  while (watch.ElapsedSeconds() < kMeasureSeconds)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& t : readers) t.join();
  if (writer.joinable()) writer.join();

  RunResult out;
  out.seconds = watch.ElapsedSeconds();
  out.ingested = ingested.load();
  std::vector<double> all_ms;
  for (int r = 0; r < kReaders; ++r) {
    out.completed += completed[r];
    out.rejected += rejected[r];
    all_ms.insert(all_ms.end(), latencies_ms[r].begin(),
                  latencies_ms[r].end());
  }
  std::sort(all_ms.begin(), all_ms.end());
  out.p50_ms = Percentile(&all_ms, 0.50);
  out.p99_ms = Percentile(&all_ms, 0.99);
  return out;
}

int Run(const Args& args) {
  corpus::GeneratorConfig config = MakeRetrievalConfig(args);
  std::printf("# generating %zu objects (seed %llu)\n", config.num_objects,
              (unsigned long long)args.seed);
  const corpus::Corpus base =
      corpus::Generator(config).MakeRetrievalCorpus();
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("# %u hardware threads, %d reader threads, %.1fs per config\n",
              cores, kReaders, kMeasureSeconds);

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    for (const bool with_ingest : {false, true}) {
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           ("figdb_serve_bench_w" + std::to_string(workers) +
            (with_ingest ? "_ingest" : "_ro")))
              .string();
      std::filesystem::remove_all(dir);
      auto store = index::FigDbStore::Create(dir, base);
      if (!store.ok()) {
        std::fprintf(stderr, "store create failed: %s\n",
                     store.status().ToString().c_str());
        return 1;
      }
      serve::ServeOptions options;
      options.executor.workers = workers;
      // Pin admission thresholds so every config runs the SAME work per
      // query. The defaults scale with the worker count (2x / 4x workers),
      // which would let the workers=1 config silently degrade most queries
      // (rerank shed) under 4 readers and report inflated QPS.
      options.executor.degrade_concurrent = kReaders * 4;
      options.executor.max_concurrent = kReaders * 8;
      options.publish_every = 8;
      {
        serve::ServingStore serving(std::move(*store), options);
        const RunResult r = Measure(&serving, base, with_ingest);
        const auto stats = serving.Stats();
        std::printf(
            "workers=%zu ingest=%d  %7.0f qps  p50 %7.3f ms  p99 %7.3f ms  "
            "(%llu queries, %llu rejected, %llu degraded, %llu ingested, "
            "%llu epochs)\n",
            workers, with_ingest ? 1 : 0, r.completed / r.seconds, r.p50_ms,
            r.p99_ms, (unsigned long long)r.completed,
            (unsigned long long)r.rejected,
            (unsigned long long)stats.executor.degraded,
            (unsigned long long)r.ingested,
            (unsigned long long)stats.epochs_published);
        std::printf(
            "BENCH {\"bench\":\"serve_throughput\",\"workers\":%zu,"
            "\"ingest\":%s,\"readers\":%d,\"cores\":%u,\"objects\":%zu,"
            "\"seconds\":%.3f,\"queries\":%llu,\"rejected\":%llu,"
            "\"degraded\":%llu,\"ingested\":%llu,\"epochs\":%llu,"
            "\"qps\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f}\n",
            workers, with_ingest ? "true" : "false", kReaders, cores,
            base.Size(), r.seconds, (unsigned long long)r.completed,
            (unsigned long long)r.rejected,
            (unsigned long long)stats.executor.degraded,
            (unsigned long long)r.ingested,
            (unsigned long long)stats.epochs_published,
            r.completed / r.seconds, r.p50_ms, r.p99_ms);
      }
      std::filesystem::remove_all(dir);
    }
  }
  return 0;
}

}  // namespace
}  // namespace figdb::bench

int main(int argc, char** argv) {
  return figdb::bench::Run(figdb::bench::Args::Parse(argc, argv));
}
