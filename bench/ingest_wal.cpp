// Live-ingestion throughput: WAL-logged incremental writes vs. the
// rebuild-the-world alternative the repo had before FigDbStore.
//
//   ./build/bench/ingest_wal [--objects=N] [--seed=N] [--csv]
//
// The last 20% of the generated corpus is ingested object-by-object into a
// FigDbStore created from the first 80%. Reported:
//   - durable ingest rate (WAL append + fsync + incremental index update)
//   - checkpoint latency (atomic snapshot replace + WAL truncation)
//   - recovery latency with the full ingest tail in the WAL
//   - the full-rebuild time an engine pays per batch refresh, for contrast
// The run ends by asserting the incremental index equals a batch
// CliqueIndex::Build over the final corpus — a benchmark that drifted from
// correctness would be measuring the wrong thing.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "index/figdb_store.hpp"
#include "util/stopwatch.hpp"

namespace figdb::bench {
namespace {

int Run(const Args& args) {
  corpus::GeneratorConfig config = MakeRetrievalConfig(args);
  std::printf("# generating %zu objects (seed %llu)\n", config.num_objects,
              (unsigned long long)args.seed);
  const corpus::Corpus full =
      corpus::Generator(config).MakeRetrievalCorpus();
  const std::size_t base_size = full.Size() * 4 / 5;
  const corpus::Corpus base = full.Prefix(base_size);
  const std::size_t tail = full.Size() - base_size;

  const std::string dir =
      (std::filesystem::temp_directory_path() / "figdb_ingest_bench")
          .string();
  std::filesystem::remove_all(dir);

  util::Stopwatch create_watch;
  auto store = index::FigDbStore::Create(dir, base);
  if (!store.ok()) {
    std::fprintf(stderr, "store create failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  const double create_s = create_watch.ElapsedSeconds();

  util::Stopwatch ingest_watch;
  for (std::size_t i = base_size; i < full.Size(); ++i) {
    corpus::MediaObject obj = full.Object(corpus::ObjectId(i));
    obj.id = corpus::kInvalidObject;  // the store assigns ids
    const auto id = store->Ingest(std::move(obj));
    if (!id.ok()) {
      std::fprintf(stderr, "ingest %zu failed: %s\n", i,
                   id.status().ToString().c_str());
      return 1;
    }
  }
  const double ingest_s = ingest_watch.ElapsedSeconds();
  const double wal_bytes = double(store->WalBytes());

  util::Stopwatch checkpoint_watch;
  if (const auto s = store->Checkpoint(); !s.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", s.ToString().c_str());
    return 1;
  }
  const double checkpoint_s = checkpoint_watch.ElapsedSeconds();

  // Recovery with a full WAL tail: re-ingest the tail into a fresh store
  // WITHOUT checkpointing, then time Recover over checkpoint + tail.
  std::filesystem::remove_all(dir);
  {
    auto warm = index::FigDbStore::Create(dir, base);
    for (std::size_t i = base_size; i < full.Size(); ++i) {
      corpus::MediaObject obj = full.Object(corpus::ObjectId(i));
      obj.id = corpus::kInvalidObject;
      // figdb-lint: allow(discarded-status): warm-up fill for the recovery
      // timing; a failed ingest surfaces in the Recover check just below.
      (void)warm->Ingest(std::move(obj));
    }
  }
  util::Stopwatch recover_watch;
  auto recovered = index::FigDbStore::Recover(dir);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  const double recover_s = recover_watch.ElapsedSeconds();

  // The contrast case: what one refresh costs when "ingest" means
  // rebuilding statistics + index over the grown corpus.
  util::Stopwatch rebuild_watch;
  const index::FigRetrievalEngine rebuilt(full, index::EngineOptions{});
  const double rebuild_s = rebuild_watch.ElapsedSeconds();

  // Guard: the benchmark only counts if incremental == batch.
  const index::CliqueIndex batch = index::CliqueIndex::Build(
      recovered->GetCorpus(), *recovered->Correlations(),
      recovered->GetOptions().index);
  if (recovered->Index().DumpPostings() != batch.DumpPostings()) {
    std::fprintf(stderr,
                 "FATAL: incremental index diverged from batch build\n");
    return 1;
  }

  if (args.csv) {
    std::printf(
        "objects,tail,create_s,ingest_s,ingest_per_s,wal_bytes_per_obj,"
        "checkpoint_s,recover_s,rebuild_s\n");
    std::printf("%zu,%zu,%.4f,%.4f,%.1f,%.1f,%.4f,%.4f,%.4f\n", full.Size(),
                tail, create_s, ingest_s, tail / ingest_s, wal_bytes / tail,
                checkpoint_s, recover_s, rebuild_s);
  } else {
    std::printf("store create (%zu objects)   %8.3f s\n", base_size,
                create_s);
    std::printf("durable ingest (%zu objects) %8.3f s  (%.0f obj/s, "
                "%.0f WAL bytes/obj)\n",
                tail, ingest_s, tail / ingest_s, wal_bytes / tail);
    std::printf("checkpoint                   %8.3f s\n", checkpoint_s);
    std::printf("recover (tail in WAL)        %8.3f s  (%llu replayed)\n",
                recover_s,
                (unsigned long long)recovered->Info().replayed_records);
    std::printf("full engine rebuild          %8.3f s  (per-refresh cost "
                "without the store)\n",
                rebuild_s);
  }
  std::filesystem::remove_all(dir);
  return 0;
}

}  // namespace
}  // namespace figdb::bench

int main(int argc, char** argv) {
  return figdb::bench::Run(figdb::bench::Args::Parse(argc, argv));
}
