#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>

#include "eval/training.hpp"
#include "temporal/segmented_store.hpp"
#include "util/failpoint.hpp"

namespace figdb::bench {

Args Args::Parse(int argc, char** argv) {
  // Fault drills without recompiling: FIGDB_FAILPOINTS=name[:skip[:fires]],…
  // (see DESIGN.md §7) — lets any bench measure degraded-mode throughput.
  const std::size_t drills = util::FailPoints::ActivateFromEnv();
  if (drills > 0)
    std::fprintf(stderr, "bench: %zu fail-point(s) active from FIGDB_FAILPOINTS\n",
                 drills);
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto value = [&](std::string_view prefix) -> long {
      return std::atol(std::string(a.substr(prefix.size())).c_str());
    };
    if (a.rfind("--objects=", 0) == 0) {
      args.objects = std::size_t(value("--objects="));
    } else if (a.rfind("--topics=", 0) == 0) {
      args.topics = std::size_t(value("--topics="));
    } else if (a.rfind("--users=", 0) == 0) {
      args.users = std::size_t(value("--users="));
    } else if (a.rfind("--queries=", 0) == 0) {
      args.queries = std::size_t(value("--queries="));
    } else if (a.rfind("--seed=", 0) == 0) {
      args.seed = std::uint64_t(value("--seed="));
    } else if (a.rfind("--shards=", 0) == 0) {
      args.shards = std::size_t(value("--shards="));
    } else if (a == "--train-lambda") {
      args.train_lambda = true;
    } else if (a == "--paper-scale") {
      args.paper_scale = true;
      args.objects = 236600;  // Dret size
    } else if (a == "--csv") {
      args.csv = true;
    } else if (a == "--segmented") {
      args.segmented = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--objects=N] [--topics=N] [--users=N] "
                   "[--queries=N] [--seed=N] [--shards=N] [--train-lambda] "
                   "[--paper-scale] [--csv] [--segmented]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  return args;
}

corpus::GeneratorConfig MakeRetrievalConfig(const Args& args) {
  corpus::GeneratorConfig config;
  config.num_objects = args.objects;
  // Auto-scaling keeps corpus *density* constant: a larger crawl covers
  // more of the site's topical diversity (objects/topic ~ 150) and more of
  // its user base (objects/user ~ 2.4), instead of packing more near-
  // duplicates into a fixed concept space.
  config.num_topics = args.topics != 0
                          ? args.topics
                          : std::max<std::size_t>(20, args.objects / 150);
  config.num_users = args.users != 0
                         ? args.users
                         : std::max<std::size_t>(500, args.objects * 5 / 12);
  config.seed = args.seed;
  // Noise levels tuned so no method saturates: heavy generic-tag noise,
  // moderate user affinity, wide visual semantic gap.
  config.mean_tags_per_object = 5.0;
  config.tags_per_topic = 45;
  config.generic_tag_probability = 0.4;
  config.cluster_focus = 0.7;
  config.user_topic_affinity = 0.55;
  config.mean_interests_per_user = 4.0;
  config.visual_topic_purity = 0.24;
  config.visual_words = 1022;  // paper's visual vocabulary size
  return config;
}

corpus::GeneratorConfig MakeRecommendationConfig(const Args& args) {
  corpus::GeneratorConfig config = MakeRetrievalConfig(args);
  config.seed = args.seed ^ 0xd6ecULL;
  // Recommendation is user-oriented (paper §5.3.1): favouriter communities
  // are the strongest signal for what a user will favourite next, so the
  // Drec analogue has tighter user-topic affinity than Dret.
  config.user_topic_affinity = 0.68;
  config.mean_interests_per_user = 3.0;
  config.mean_favoriters_per_object = 8.0;
  // Tags on favourited content are less noisy than on the open crawl, but
  // the user signal stays the strongest (the paper's §5.3.1 observation).
  config.generic_tag_probability = 0.33;
  config.mean_tags_per_object = 5.0;
  // No intra-topic facet structure: a favourites profile spans the user's
  // whole interest, so facet-level tag sparsity would only blur the
  // temporal signal Fig. 10/11 measure.
  config.active_clusters_per_object = 0;
  // Favourited content is visually more coherent than the open crawl.
  config.visual_topic_purity = 0.35;
  config.visual_window_overlap = 1.5;
  return config;
}

std::vector<const core::Retriever*> MethodSuite::InFigureOrder() const {
  return {fig.get(), rb.get(), tp.get(), lsa.get()};
}

MethodSuite BuildMethods(const corpus::Corpus& corpus, const Args& args,
                         const eval::TopicOracle& oracle,
                         const std::vector<corpus::ObjectId>& train_queries) {
  MethodSuite suite;
  suite.fig = std::make_unique<index::FigRetrievalEngine>(
      corpus, index::EngineOptions{});
  if (args.train_lambda) {
    eval::LambdaTrainingOptions options;
    options.sweeps = 1;
    const auto lambda =
        eval::TrainEngineLambda(suite.fig.get(), train_queries, oracle,
                                options);
    std::printf("[bench] trained lambda = {%.2f, %.2f, %.2f}\n", lambda[0],
                lambda[1], lambda[2]);
  }
  suite.vectors = std::make_shared<baselines::TypedVectors>(
      baselines::TypedVectors::Build(corpus));
  suite.lsa = std::make_unique<baselines::LsaRetriever>(
      corpus, baselines::LsaOptions{.rank = 16});
  suite.tp = std::make_unique<baselines::TensorProductRetriever>(
      corpus, suite.vectors, suite.fig->Matrix());
  // RankBoost's per-modality rankers are IDF-weighted cosines; the TP
  // kernel deliberately keeps raw frequencies (see TypedVectorsOptions).
  auto weighted = std::make_shared<baselines::TypedVectors>(
      baselines::TypedVectors::Build(corpus, {.use_idf = true},
                                     suite.fig->Matrix().get()));
  suite.rb = std::make_unique<baselines::RankBoostRetriever>(
      corpus, weighted, suite.fig->Matrix());
  suite.rb->Train(
      eval::MakeRankBoostQueries(corpus, train_queries, oracle));
  std::printf("[bench] rankboost weights = {%.2f, %.2f, %.2f}\n",
              suite.rb->Weights()[0], suite.rb->Weights()[1],
              suite.rb->Weights()[2]);
  return suite;
}

std::vector<corpus::ObjectId> EvalQueries(const corpus::Corpus& corpus,
                                          const Args& args) {
  // Draw train first with the shifted seed, then evaluation queries from
  // the remaining objects so the two sets never overlap.
  const auto train = TrainQueries(corpus, args);
  auto pool = eval::SampleQueries(corpus, args.queries + train.size(),
                                  args.seed + 1);
  std::vector<corpus::ObjectId> out;
  for (corpus::ObjectId id : pool) {
    if (std::find(train.begin(), train.end(), id) == train.end())
      out.push_back(id);
    if (out.size() == args.queries) break;
  }
  return out;
}

std::vector<corpus::ObjectId> TrainQueries(const corpus::Corpus& corpus,
                                           const Args& args) {
  return eval::SampleQueries(corpus, args.train_queries, args.seed + 7);
}

void RunSegmentedCrossCheck(const corpus::Corpus& corpus, const char* tag,
                            const std::vector<double>& deltas,
                            std::uint32_t now_epoch, std::size_t k,
                            std::size_t num_queries, std::uint64_t seed) {
  constexpr double kTolerance = 1e-9;  // segmented_store.hpp's fp bound
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       (std::string("figdb_bench_segmented_") + tag))
          .string();
  std::filesystem::remove_all(dir);

  temporal::SegmentedStore::Options options;
  options.epochs_per_segment = 1;  // a segment per month: the worst case
  auto store = temporal::SegmentedStore::Create(dir, corpus, options);
  if (!store.ok()) {
    std::fprintf(stderr, "[%s] segmented cross-check: create failed: %s\n",
                 tag, store.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("[%s] segmented cross-check: %zu segments over %zu objects\n",
              tag, store->NumSegments(), store->TotalObjects());

  const auto queries = eval::SampleQueries(corpus, num_queries, seed + 13);
  bool failed = false;
  for (double delta : deltas) {
    double max_drift = 0.0;
    std::size_t mismatches = 0;
    for (corpus::ObjectId q : queries) {
      const corpus::MediaObject& query = corpus.Object(q);
      auto got = store->Search(query, k, delta, now_epoch);
      auto want = store->SearchExhaustiveDecayed(query, k, delta, now_epoch);
      if (!got.ok() || !want.ok()) {
        std::fprintf(stderr, "[%s] segmented cross-check: query %u: %s\n",
                     tag, q,
                     (got.ok() ? want.status() : got.status())
                         .ToString()
                         .c_str());
        std::exit(1);
      }
      if (got->results.size() != want->size()) {
        ++mismatches;
        continue;
      }
      for (std::size_t i = 0; i < want->size(); ++i) {
        const double a = got->results[i].score;
        const double b = (*want)[i].score;
        const double drift =
            std::fabs(a - b) / std::max(std::fabs(b), 1e-12);
        max_drift = std::max(max_drift, drift);
        // An id mismatch is only real when the scores differ too:
        // near-ties within the fp tolerance may legally swap order
        // between the two paths.
        if (got->results[i].object != (*want)[i].object && drift > kTolerance)
          ++mismatches;
      }
    }
    std::printf(
        "[%s] segmented cross-check: delta=%.2f max_drift=%.3g "
        "mismatches=%zu\n",
        tag, delta, max_drift, mismatches);
    if (max_drift > kTolerance || mismatches > 0) failed = true;
  }
  std::filesystem::remove_all(dir);
  if (failed) {
    std::fprintf(stderr,
                 "[%s] segmented cross-check FAILED: merge-time decay "
                 "diverged from exhaustive rescoring\n",
                 tag);
    std::exit(1);
  }
  std::printf("[%s] segmented cross-check OK (tolerance %.0e)\n", tag,
              kTolerance);
}

}  // namespace figdb::bench
