// Merge-time δ-decay vs exhaustive rescoring: decayed top-k latency of the
// temporal SegmentedStore as the segment count grows, against exhaustive
// δ^(now−month) rescoring over the union engine as the reference.
//
// Expected shape: the merge-time path pays one TA leg per segment, each
// over a corpus slice, so its per-query cost stays near the unsegmented
// engine's while exhaustive rescoring pays a full posting re-weight and
// re-sort every query; the gap widens with database size, not segment
// count. Retention and merge are the window-maintenance costs a serving
// deployment pays off the query path — they are timed per sweep point so
// the JSON captures the full lifecycle, and the emitted rows record the
// CORE COUNT (ROADMAP's single-core caveat) like the other scale benches.
//
// Every sweep point re-checks the equivalence contract first (≤1e-9
// relative drift, id swaps only inside fp near-ties) — a speedup over
// wrong answers measures nothing.
//
// Output: a human table on stdout plus machine-readable
// BENCH_temporal_decay.json in the working directory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eval/harness.hpp"
#include "eval/report.hpp"
#include "temporal/segmented_store.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace figdb;

struct LatencyStats {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
};

struct SweepRow {
  std::size_t segments = 1;
  std::uint32_t epochs_per_segment = 1;
  LatencyStats merge_time;   // per-segment TA legs + TemporalMerger fold
  LatencyStats exhaustive;   // full δ^(now−month) rescoring reference
  double max_drift = 0.0;
  std::size_t mismatches = 0;
  double merge_ms = 0.0;      // MergeSealed (compact all sealed segments)
  double retention_ms = 0.0;  // RunRetention (expire the oldest bucket)
  std::size_t retained_segments = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, std::size_t(p * double(sorted.size() - 1) + 0.5));
  return sorted[i];
}

LatencyStats Summarize(std::vector<double> latencies, double total_s) {
  LatencyStats stats;
  if (latencies.empty()) return stats;
  double sum = 0.0;
  for (double l : latencies) sum += l;
  std::sort(latencies.begin(), latencies.end());
  stats.mean_ms = sum / double(latencies.size());
  stats.p50_ms = Percentile(latencies, 0.50);
  stats.p99_ms = Percentile(latencies, 0.99);
  stats.qps = double(latencies.size()) / total_s;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::Parse(argc, argv);
  const std::size_t k = 10;
  const std::size_t passes = 5;
  const double delta = 0.6;
  constexpr double kTolerance = 1e-9;  // segmented_store.hpp's fp bound
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  // Eight epoch buckets so the sweep reaches eight single-month segments.
  corpus::GeneratorConfig config = bench::MakeRetrievalConfig(args);
  config.num_months = 8;
  std::printf("[temporal] generating corpus (%zu objects, %zu months)...\n",
              config.num_objects, config.num_months);
  const corpus::Corpus corpus =
      corpus::Generator(config).MakeRetrievalCorpus();
  const std::vector<corpus::ObjectId> queries =
      bench::EvalQueries(corpus, args);

  // epochs_per_segment 8→1 segment, 4→2, 2→4, 1→8.
  const std::vector<std::uint32_t> widths = {8, 4, 2, 1};
  std::vector<SweepRow> rows;
  for (std::uint32_t eps : widths) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("figdb_bench_temporal_" + std::to_string(eps)))
            .string();
    std::filesystem::remove_all(dir);
    temporal::SegmentedStore::Options options;
    options.epochs_per_segment = eps;
    // One-bucket window: RunRetention(now + eps) below expires everything
    // older than the newest bucket — the steady-state serving cadence.
    options.retention_epochs = eps;
    auto store = temporal::SegmentedStore::Create(dir, corpus, options);
    if (!store.ok()) {
      std::fprintf(stderr, "[temporal] create failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    const std::uint32_t now = store->ClockEpoch();

    SweepRow row;
    row.epochs_per_segment = eps;
    row.segments = store->NumSegments();

    // Warm-up pass doubles as the equivalence gate.
    for (corpus::ObjectId qid : queries) {
      auto got = store->Search(corpus.Object(qid), k, delta, now);
      auto want =
          store->SearchExhaustiveDecayed(corpus.Object(qid), k, delta, now);
      if (!got.ok() || !want.ok() ||
          got->results.size() != want->size()) {
        ++row.mismatches;
        continue;
      }
      for (std::size_t i = 0; i < want->size(); ++i) {
        const double a = got->results[i].score;
        const double b = (*want)[i].score;
        const double drift =
            std::fabs(a - b) / std::max(std::fabs(b), 1e-12);
        row.max_drift = std::max(row.max_drift, drift);
        // Id swaps are only real when the scores differ beyond fp
        // near-ties (the documented tolerance).
        if (got->results[i].object != (*want)[i].object &&
            drift > kTolerance)
          ++row.mismatches;
      }
    }

    std::vector<double> merge_lat, exhaustive_lat;
    merge_lat.reserve(passes * queries.size());
    exhaustive_lat.reserve(passes * queries.size());
    {
      util::Stopwatch wall;
      for (std::size_t pass = 0; pass < passes; ++pass) {
        for (corpus::ObjectId qid : queries) {
          util::Stopwatch watch;
          auto got = store->Search(corpus.Object(qid), k, delta, now);
          merge_lat.push_back(watch.ElapsedMillis());
          if (!got.ok()) ++row.mismatches;
        }
      }
      row.merge_time = Summarize(std::move(merge_lat),
                                 wall.ElapsedSeconds());
    }
    {
      util::Stopwatch wall;
      for (std::size_t pass = 0; pass < passes; ++pass) {
        for (corpus::ObjectId qid : queries) {
          util::Stopwatch watch;
          auto want =
              store->SearchExhaustiveDecayed(corpus.Object(qid), k, delta,
                                             now);
          exhaustive_lat.push_back(watch.ElapsedMillis());
          if (!want.ok()) ++row.mismatches;
        }
      }
      row.exhaustive = Summarize(std::move(exhaustive_lat),
                                 wall.ElapsedSeconds());
    }

    // Window maintenance: compact every sealed segment, then slide the
    // window one bucket past the clock so the oldest bucket expires.
    {
      util::Stopwatch watch;
      const util::Status merged = store->MergeSealed();
      row.merge_ms = watch.ElapsedMillis();
      if (!merged.ok()) {
        std::fprintf(stderr, "[temporal] merge failed: %s\n",
                     merged.ToString().c_str());
        return 1;
      }
    }
    {
      util::Stopwatch watch;
      const util::Status expired = store->RunRetention(now + eps);
      row.retention_ms = watch.ElapsedMillis();
      if (!expired.ok()) {
        std::fprintf(stderr, "[temporal] retention failed: %s\n",
                     expired.ToString().c_str());
        return 1;
      }
      row.retained_segments = store->NumSegments();
    }

    rows.push_back(row);
    std::printf(
        "[temporal] %zu segment(s) done (merge-time %.2f ms mean, "
        "exhaustive %.2f ms mean, drift %.3g)\n",
        row.segments, row.merge_time.mean_ms, row.exhaustive.mean_ms,
        row.max_drift);
    std::filesystem::remove_all(dir);
  }

  bool equivalent = true;
  for (const SweepRow& r : rows)
    if (r.max_drift > kTolerance || r.mismatches > 0) equivalent = false;

  eval::Table table("Temporal decay: merge-time vs exhaustive (" +
                        std::to_string(cores) + " cores, delta " +
                        std::to_string(delta) + ")",
                    {"merge ms", "merge p99", "merge qps", "exh ms",
                     "exh p99", "exh qps", "compact ms", "expire ms"});
  for (const SweepRow& r : rows)
    table.AddRow(std::to_string(r.segments) + " segment(s)",
                 {r.merge_time.mean_ms, r.merge_time.p99_ms,
                  r.merge_time.qps, r.exhaustive.mean_ms,
                  r.exhaustive.p99_ms, r.exhaustive.qps, r.merge_ms,
                  r.retention_ms});
  table.Print();
  if (!equivalent)
    std::fprintf(stderr,
                 "[temporal] EQUIVALENCE FAILED: drift above 1e-9 or id "
                 "mismatches — see rows above\n");

  const char* path = "BENCH_temporal_decay.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[temporal] cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"temporal_decay\",\n"
               "  \"objects\": %zu,\n"
               "  \"months\": %zu,\n"
               "  \"queries\": %zu,\n"
               "  \"passes\": %zu,\n"
               "  \"k\": %zu,\n"
               "  \"delta\": %.2f,\n"
               "  \"seed\": %llu,\n"
               "  \"cores\": %u,\n"
               "  \"equivalent\": %s,\n"
               "  \"sweep\": [\n",
               config.num_objects, config.num_months, queries.size(), passes,
               k, delta, (unsigned long long)args.seed, cores,
               equivalent ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(
        out,
        "    {\"segments\": %zu, \"epochs_per_segment\": %u,\n"
        "     \"merge_time\": {\"mean_ms\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"qps\": %.2f},\n"
        "     \"exhaustive\": {\"mean_ms\": %.4f, \"p50_ms\": %.4f, "
        "\"p99_ms\": %.4f, \"qps\": %.2f},\n"
        "     \"max_drift\": %.3g, \"mismatches\": %zu,\n"
        "     \"compact_sealed_ms\": %.4f, \"retention_ms\": %.4f, "
        "\"segments_after_retention\": %zu}%s\n",
        r.segments, r.epochs_per_segment, r.merge_time.mean_ms,
        r.merge_time.p50_ms, r.merge_time.p99_ms, r.merge_time.qps,
        r.exhaustive.mean_ms, r.exhaustive.p50_ms, r.exhaustive.p99_ms,
        r.exhaustive.qps, r.max_drift, r.mismatches, r.merge_ms,
        r.retention_ms, r.retained_segments,
        i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[temporal] wrote %s\n", path);
  return equivalent ? 0 : 1;
}
