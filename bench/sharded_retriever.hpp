#pragma once

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/retriever.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_store.hpp"

/// \file sharded_retriever.hpp
/// core::Retriever facade over ShardedStore + ShardRouter so the eval
/// harness and the figure benches can score scatter-gather retrieval
/// exactly like any other method. Bench-only: production callers use the
/// router's StatusOr API directly to see PARTIAL/error distinctions.

namespace figdb::bench {

class ShardedFigRetriever : public core::Retriever {
 public:
  /// \p store must outlive the retriever; the retriever owns its router
  /// (and therefore the scatter pool), so it must be destroyed first.
  ShardedFigRetriever(const shard::ShardedStore* store,
                      shard::RouterOptions options)
      : store_(store), router_(options) {}

  std::string Name() const override {
    return "FIG/" + std::to_string(store_->NumShards()) + "sh";
  }

  std::vector<core::SearchResult> Search(const corpus::MediaObject& query,
                                         std::size_t k) const override {
    auto result = router_.Search(*store_, query, k);
    if (!result.ok()) {
      std::fprintf(stderr, "sharded search failed: %s\n",
                   result.status().ToString().c_str());
      return {};
    }
    // Completeness is part of the answer: a PARTIAL result in a fault-free
    // bench means a shard silently dropped out — say so instead of letting
    // the precision column quietly absorb it.
    if (!result->Complete())
      std::fprintf(stderr, "sharded search PARTIAL: %zu/%zu shards\n",
                   result->shards_answered, result->shards_total);
    return std::move(result->response.results);
  }

  std::vector<core::SearchResult> Rank(
      const corpus::MediaObject&, const std::vector<corpus::ObjectId>&,
      std::size_t) const override {
    // The recommendation task is not routed through shards in this layer;
    // the retrieval harness never calls Rank.
    return {};
  }

  const shard::ShardRouter& Router() const { return router_; }

 private:
  const shard::ShardedStore* store_;
  shard::ShardRouter router_;
};

}  // namespace figdb::bench
