// Fault-injected network load harness: closed- and open-loop Zipf traffic
// from a synthetic tenant population against a live FigServer, end to end
// through the real wire protocol (connect, frame, CRC, decode) — the
// ROADMAP's "heavy traffic from millions of users" scenario as a measured
// number instead of a slogan.
//
// Three phases, same metrics each (QPS, p50/p99 latency, shed rate, retry
// rate):
//
//   closed-loop   N client threads, each firing its next query the moment
//                 the last one answers — measures saturated throughput;
//   open-loop     the same threads pace requests to a fixed target arrival
//                 rate regardless of completions (lateness is reported, not
//                 hidden) — measures latency at an offered load;
//   fault drill   closed-loop again with net/conn_reset and
//                 net/accept_drop firing under it — every request must
//                 still end in a typed outcome, retries absorb the faults.
//
// Query popularity and tenant activity are both Zipf-skewed (s ~ 1.05 /
// 1.1), mirroring the head-heavy social-media query logs the paper's
// workload comes from: a handful of hot tags dominate, one hot tenant
// brushes its soft cap and sheds rerank while the tail stays unshed.
//
// The emitted JSON records the CORE COUNT next to every number (ROADMAP's
// single-core caveat): a QPS figure without the core count is not
// comparable across runs.
//
// Output: a human table on stdout plus machine-readable
// BENCH_load_harness.json in the working directory.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "index/figdb_store.hpp"
#include "net/fig_client.hpp"
#include "net/fig_server.hpp"
#include "serve/serving_store.hpp"
#include "util/failpoint.hpp"
#include "util/query_budget.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace figdb;

struct Workload {
  std::vector<std::string> queries;  ///< Zipf rank 0 = hottest text
  std::vector<std::string> tenants;  ///< Zipf rank 0 = hottest tenant
};

/// Two-term query texts drawn from the corpus vocabulary, hottest first.
Workload BuildWorkload(const corpus::Corpus& corpus, std::uint64_t seed,
                       std::size_t pool, std::size_t tenants) {
  const corpus::Context& ctx = corpus.GetContext();
  const std::size_t terms = ctx.vocabulary.Size();
  util::Rng rng(seed);
  Workload w;
  w.queries.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i) {
    const auto a = text::TermId(rng.UniformInt(terms));
    const auto b = text::TermId(rng.UniformInt(terms));
    w.queries.push_back(ctx.vocabulary.TermOf(a) + " " +
                        ctx.vocabulary.TermOf(b));
  }
  for (std::size_t t = 0; t < tenants; ++t)
    w.tenants.push_back("tenant-" + std::to_string(t));
  return w;
}

struct PhaseMetrics {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t degraded = 0;  ///< ok but truncated (shed somewhere)
  std::uint64_t rejected = 0;  ///< RESOURCE_EXHAUSTED (tenant hard cap)
  std::uint64_t errors = 0;    ///< any other terminal status
  std::uint64_t retries = 0;   ///< attempts beyond the first, summed
  std::uint64_t late = 0;      ///< open-loop sends that missed their slot
  double duration_s = 0.0;
  double qps = 0.0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;

  double ShedRate() const {
    return ok == 0 ? 0.0 : double(degraded) / double(ok);
  }
  double RetryRate() const {
    return requests == 0 ? 0.0 : double(retries) / double(requests);
  }
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, std::size_t(p * double(sorted.size() - 1) + 0.5));
  return sorted[i];
}

/// One measurement phase. \p open_loop_qps == 0 means closed-loop.
PhaseMetrics RunPhase(const std::string& name, std::uint16_t port,
                      const Workload& workload, std::size_t threads,
                      double duration_s, double open_loop_qps,
                      std::uint64_t seed) {
  struct ThreadTally {
    PhaseMetrics m;
    std::vector<double> latencies;
  };
  std::vector<ThreadTally> tallies(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const auto start = std::chrono::steady_clock::now();
  const auto stop_at =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_s));

  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ThreadTally& tally = tallies[t];
      net::ClientOptions copts;
      copts.max_retries = 4;
      copts.jitter_seed = seed + t + 1;  // decorrelated, reproducible
      net::FigClient client("127.0.0.1", port, copts);
      util::Rng rng(seed * 7919 + t);
      // Open-loop: this thread owns every (i * threads + t)-th arrival.
      const double interval_s =
          open_loop_qps > 0.0 ? double(threads) / open_loop_qps : 0.0;
      auto next_send = std::chrono::steady_clock::now();
      while (std::chrono::steady_clock::now() < stop_at) {
        if (interval_s > 0.0) {
          std::this_thread::sleep_until(next_send);
          const auto now = std::chrono::steady_clock::now();
          if (now > next_send + std::chrono::duration_cast<
                                    std::chrono::steady_clock::duration>(
                                    std::chrono::duration<double>(interval_s)))
            ++tally.m.late;
          next_send += std::chrono::duration_cast<
              std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(interval_s));
        }
        const std::string& tenant =
            workload.tenants[rng.Zipf(workload.tenants.size(), 1.1)];
        const std::string& text =
            workload.queries[rng.Zipf(workload.queries.size(), 1.05)];
        util::Stopwatch watch;
        auto got =
            client.Query(tenant, text, 8, util::QueryBudget::Deadline(0.75));
        tally.latencies.push_back(watch.ElapsedMillis());
        ++tally.m.requests;
        if (got.ok()) {
          ++tally.m.ok;
          if (got->response.truncated) ++tally.m.degraded;
          tally.m.retries += got->attempts - 1;
        } else if (got.status().code() ==
                   util::StatusCode::kResourceExhausted) {
          ++tally.m.rejected;
        } else {
          ++tally.m.errors;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();

  PhaseMetrics m;
  m.name = name;
  m.duration_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  std::vector<double> latencies;
  for (ThreadTally& t : tallies) {
    m.requests += t.m.requests;
    m.ok += t.m.ok;
    m.degraded += t.m.degraded;
    m.rejected += t.m.rejected;
    m.errors += t.m.errors;
    m.retries += t.m.retries;
    m.late += t.m.late;
    latencies.insert(latencies.end(), t.latencies.begin(), t.latencies.end());
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0.0;
  for (double l : latencies) sum += l;
  m.mean_ms = latencies.empty() ? 0.0 : sum / double(latencies.size());
  m.p50_ms = Percentile(latencies, 0.50);
  m.p99_ms = Percentile(latencies, 0.99);
  m.qps = m.duration_s > 0.0 ? double(m.requests) / m.duration_s : 0.0;
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args = bench::Args::Parse(argc, argv);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t client_threads = std::max<std::size_t>(2, cores);
  const double phase_seconds = 2.0;
  const double open_loop_qps = 100.0;

  std::printf("[load] generating corpus (%zu objects)...\n", args.objects);
  const corpus::Corpus corpus =
      corpus::Generator(bench::MakeRetrievalConfig(args))
          .MakeRetrievalCorpus();
  const Workload workload =
      BuildWorkload(corpus, args.seed, /*pool=*/64, /*tenants=*/8);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "figdb_bench_load").string();
  std::filesystem::remove_all(dir);
  auto store = index::FigDbStore::Create(dir, corpus);
  if (!store.ok()) {
    std::fprintf(stderr, "[load] store create failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  serve::ServeOptions sopts;
  sopts.executor.workers = cores > 1 ? 2 : 0;
  serve::ServingStore serving(std::move(*store), sopts);

  net::ServerOptions options;
  options.handler_threads = client_threads;
  // The hottest tenant draws ~45% of Zipf(1.1) traffic: give it caps it
  // will actually brush so the shed ladder shows up in the numbers.
  options.quotas.default_quota = {/*hard_cap=*/8, /*soft_cap=*/4};
  options.quotas.per_tenant["tenant-0"] = {/*hard_cap=*/6, /*soft_cap=*/1};
  net::FigServer server(&serving, options);
  if (util::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "[load] server start failed: %s\n",
                 s.ToString().c_str());
    return 1;
  }
  std::printf("[load] serving on 127.0.0.1:%u (%u cores, %zu clients)\n",
              unsigned(server.Port()), cores, client_threads);

  std::vector<PhaseMetrics> phases;
  phases.push_back(RunPhase("closed_loop", server.Port(), workload,
                            client_threads, phase_seconds,
                            /*open_loop_qps=*/0.0, args.seed));
  std::printf("[load] closed-loop done (%.0f qps)\n", phases.back().qps);
  phases.push_back(RunPhase("open_loop", server.Port(), workload,
                            client_threads, phase_seconds, open_loop_qps,
                            args.seed + 1));
  std::printf("[load] open-loop done (%.0f qps offered %.0f)\n",
              phases.back().qps, open_loop_qps);

  // Fault drill: a chaos thread re-arms bounded fail-points every 50 ms —
  // two connections reset mid-response and one accept dropped per round
  // (~60 firings over the phase), never a permanent outage. Clients must
  // absorb every firing into a retry or a typed error; the assertion below
  // is the fault matrix's "never an untyped outcome" bar.
  std::atomic<bool> chaos_on{true};
  std::thread chaos([&chaos_on] {
    while (chaos_on.load(std::memory_order_relaxed)) {
      util::FailPoints::Activate("net/conn_reset",
                                 {/*skip_hits=*/0, /*max_fires=*/2});
      util::FailPoints::Activate("net/accept_drop",
                                 {/*skip_hits=*/0, /*max_fires=*/1});
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    util::FailPoints::DeactivateAll();
  });
  phases.push_back(RunPhase("fault_drill", server.Port(), workload,
                            client_threads, phase_seconds,
                            /*open_loop_qps=*/0.0, args.seed + 2));
  chaos_on.store(false, std::memory_order_relaxed);
  chaos.join();
  std::printf("[load] fault drill done (%.0f qps, %llu retries)\n",
              phases.back().qps,
              (unsigned long long)phases.back().retries);

  server.BeginDrain();
  server.Stop();
  const net::ServerStats stats = server.Stats();
  index::FigDbStore done = std::move(serving).Release();
  std::filesystem::remove_all(dir);

  bool accounted = true;
  for (const PhaseMetrics& m : phases)
    if (m.requests != m.ok + m.rejected + m.errors) accounted = false;
  if (!accounted) {
    std::fprintf(stderr, "[load] FAILED: some request had no typed outcome\n");
    return 1;
  }

  eval::Table table("Network load harness (" + std::to_string(cores) +
                        " cores, " + std::to_string(client_threads) +
                        " clients)",
                    {"qps", "mean ms", "p50 ms", "p99 ms", "shed", "retry",
                     "rejected", "errors"});
  for (const PhaseMetrics& m : phases)
    table.AddRow(m.name, {m.qps, m.mean_ms, m.p50_ms, m.p99_ms, m.ShedRate(),
                          m.RetryRate(), double(m.rejected),
                          double(m.errors)});
  table.Print();

  const char* path = "BENCH_load_harness.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[load] cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"load_harness\",\n"
               "  \"objects\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"cores\": %u,\n"
               "  \"client_threads\": %zu,\n"
               "  \"query_pool\": %zu,\n"
               "  \"tenants\": %zu,\n"
               "  \"open_loop_target_qps\": %.0f,\n"
               "  \"server\": {\"requests\": %llu, \"completed\": %llu, "
               "\"retry_later\": %llu, \"tenant_rejected\": %llu, "
               "\"tenant_degraded\": %llu, \"connections_accepted\": %llu, "
               "\"connections_dropped\": %llu},\n"
               "  \"phases\": [\n",
               args.objects, (unsigned long long)args.seed, cores,
               client_threads, workload.queries.size(),
               workload.tenants.size(), open_loop_qps,
               (unsigned long long)stats.requests,
               (unsigned long long)stats.completed,
               (unsigned long long)stats.retry_later,
               (unsigned long long)stats.tenant_rejected,
               (unsigned long long)stats.tenant_degraded,
               (unsigned long long)stats.connections_accepted,
               (unsigned long long)stats.connections_dropped);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const PhaseMetrics& m = phases[i];
    std::fprintf(
        out,
        "    {\"phase\": \"%s\", \"requests\": %llu, \"qps\": %.2f, "
        "\"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"shed_rate\": %.4f, \"retry_rate\": %.4f, \"ok\": %llu, "
        "\"degraded\": %llu, \"rejected\": %llu, \"errors\": %llu, "
        "\"late\": %llu}%s\n",
        m.name.c_str(), (unsigned long long)m.requests, m.qps, m.mean_ms,
        m.p50_ms, m.p99_ms, m.ShedRate(), m.RetryRate(),
        (unsigned long long)m.ok, (unsigned long long)m.degraded,
        (unsigned long long)m.rejected, (unsigned long long)m.errors,
        (unsigned long long)m.late, i + 1 == phases.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[load] wrote %s\n", path);
  return 0;
}
