// Reproduces paper Figure 11: recommendation Precision@{10..50} for FIG-T
// (temporal decay), plain FIG, and the RB / TP / LSA baselines, each
// ranking the evaluation window's candidates against the user profile.
//
// Expected shape (paper §5.3.2): FIG-T > FIG > RB/TP/LSA (FIG ~15% above
// the baselines, FIG-T ~5% above FIG), all declining with N.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "recsys/recommender.hpp"
#include "recsys/user_profile.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig11] generating recommendation dataset (%zu objects)...\n",
              args.objects);
  corpus::Generator generator(bench::MakeRecommendationConfig(args));
  corpus::RecommendationConfig rc;
  rc.num_profile_users = 40;
  const corpus::RecommendationDataset ds =
      generator.MakeRecommendationDataset(rc);

  index::EngineOptions eo;
  eo.build_index = false;
  const index::FigRetrievalEngine engine(ds.corpus, eo);
  const std::uint16_t now =
      std::uint16_t(generator.Config().num_months - 1);

  if (args.segmented) {
    // FIG-T's delta plus the undecayed control, same guard as fig10.
    bench::RunSegmentedCrossCheck(ds.corpus, "fig11", {0.25, 1.0}, now,
                                  /*k=*/50, /*num_queries=*/10, args.seed);
  }

  const recsys::ProfileBuilder builder(engine.Correlations());
  std::vector<recsys::UserProfile> profiles;
  for (const corpus::RecommendationUser& u : ds.users)
    profiles.push_back(builder.Build(ds.corpus, u.profile));

  eval::Table table("Figure 11: Recommendation Precision@N",
                    {"P@10", "P@20", "P@30", "P@40", "P@50"});
  eval::RecommendationEvalOptions options;  // cutoffs default 10..50

  auto eval_fig = [&](const char* label, double delta) {
    const // Recommendation uses the containment-gated model for both stages: a
      // several-hundred-object profile already covers its topics' features,
      // so the partial-clique smoothing bridge (vital for single-object
      // retrieval queries) only adds noise and cost here.
      recsys::FigRecommender rec(ds.corpus, engine.ExactPotential(),
                                       engine.ExactPotential(),
                                     {.decay = delta});
    const auto r = eval::EvaluateRecommendation(
        ds,
        [&](const corpus::RecommendationUser& user, std::size_t k) {
          const std::size_t idx = std::size_t(&user - ds.users.data());
          return rec.Recommend(profiles[idx], ds.candidates, k, now);
        },
        options);
    table.AddRow(label, r.precision);
    std::printf("[fig11] %-6s done\n", label);
  };
  eval_fig("FIG-T", 0.25);
  eval_fig("FIG", 1.0);

  // Baselines: the user profile is the flat "big object" union; each
  // baseline ranks the candidate pool with its own similarity (the paper
  // reuses the retrieval algorithms "with minor modification").
  auto vectors = std::make_shared<baselines::TypedVectors>(
      baselines::TypedVectors::Build(ds.corpus));
  const baselines::LsaRetriever lsa(ds.corpus, {.rank = 64});
  const baselines::TensorProductRetriever tp(ds.corpus, vectors,
                                             engine.Matrix());
  baselines::RankBoostRetriever rb(ds.corpus, vectors, engine.Matrix());
  {
    // Train RankBoost on a few profile users' held-IN data: the profile
    // acts as query, profile favourites as relevant set.
    std::vector<baselines::RankBoostTrainingQuery> train;
    for (std::size_t u = 0; u < std::min<std::size_t>(6, ds.users.size());
         ++u) {
      baselines::RankBoostTrainingQuery q;
      q.query = profiles[u].merged;
      q.relevant.insert(ds.users[u].profile.begin(),
                        ds.users[u].profile.end());
      train.push_back(std::move(q));
    }
    rb.Train(train);
  }

  auto eval_baseline = [&](const core::Retriever& method) {
    const auto r = eval::EvaluateRecommendation(
        ds,
        [&](const corpus::RecommendationUser& user, std::size_t k) {
          const std::size_t idx = std::size_t(&user - ds.users.data());
          return method.Rank(profiles[idx].merged, ds.candidates, k);
        },
        options);
    table.AddRow(method.Name(), r.precision);
    std::printf("[fig11] %-6s done\n", method.Name().c_str());
  };
  eval_baseline(rb);
  eval_baseline(tp);
  eval_baseline(lsa);

  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
