// Reproduces paper Figure 7: retrieval Precision@{3,5,10,20} for FIG
// against the RB (RankBoost late fusion), TP (tensor product) and LSA
// baselines on the synthetic Dret-analogue corpus.
//
// Expected shape: FIG best at every cutoff; RB comparable to LSA and above
// TP (paper §5.2.2).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig7] generating corpus (%zu objects)...\n", args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus corpus = generator.MakeRetrievalCorpus();
  const eval::TopicOracle oracle(&corpus);
  const auto train = bench::TrainQueries(corpus, args);
  const auto queries = bench::EvalQueries(corpus, args);

  std::printf("[fig7] building methods (FIG index + baselines)...\n");
  const bench::MethodSuite suite =
      bench::BuildMethods(corpus, args, oracle, train);

  eval::Table table("Figure 7: Retrieval Precision@N (FIG vs RB, TP, LSA)",
                    {"P@3", "P@5", "P@10", "P@20"});
  for (const core::Retriever* method : suite.InFigureOrder()) {
    const auto r = eval::EvaluateRetrieval(*method, corpus, queries, oracle);
    table.AddRow(method->Name(), r.precision);
    std::printf("[fig7] %-4s done (%.3fs/query)\n", method->Name().c_str(),
                r.seconds_per_query);
  }
  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
