// Reproduces paper Figure 9: wall-clock time per query of FIG, RB, TP and
// LSA as the database grows.
//
// Expected shape: per-query time grows with database size; the early-fusion
// baselines (TP, LSA) are fastest (LSA queries are one dense scan of the
// unified latent space), RB pays for per-modality rank merging, and FIG is
// the slowest — the paper's stated trade-off for its richer model — while
// staying within the same order of magnitude.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig9] generating corpus (%zu objects)...\n", args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus full = generator.MakeRetrievalCorpus();

  const double fractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<std::string> columns;
  for (double f : fractions) {
    columns.push_back(
        std::to_string(std::size_t(f * double(args.objects)) / 1000) + "K");
  }
  eval::Table table("Figure 9: seconds per query vs database size", columns);

  std::vector<std::vector<double>> rows(4);
  std::vector<std::string> names;
  for (double fraction : fractions) {
    const std::size_t n = std::size_t(fraction * double(args.objects));
    const corpus::Corpus prefix = full.Prefix(n);
    const eval::TopicOracle oracle(&prefix);
    bench::Args sized = args;
    const auto train = bench::TrainQueries(prefix, sized);
    const auto queries = bench::EvalQueries(prefix, sized);
    const bench::MethodSuite suite =
        bench::BuildMethods(prefix, sized, oracle, train);
    eval::RetrievalEvalOptions eo;
    eo.cutoffs = {10};
    names.clear();
    std::size_t m = 0;
    for (const core::Retriever* method : suite.InFigureOrder()) {
      // Warm-up pass (correlation caches), then the timed pass — the paper
      // measures steady-state query latency on a preprocessed database.
      eval::EvaluateRetrieval(*method, prefix, queries, oracle, eo);
      const auto r = eval::EvaluateRetrieval(*method, prefix, queries,
                                             oracle, eo);
      rows[m++].push_back(r.seconds_per_query);
      names.push_back(method->Name());
    }
    std::printf("[fig9] size %zu done\n", n);
  }
  for (std::size_t m = 0; m < rows.size(); ++m)
    table.AddRow(names[m], rows[m]);
  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
