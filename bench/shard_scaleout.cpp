// Scatter-gather scale-out: query latency of the sharded store as the
// shard count grows, against the unsharded engine as the 1x reference.
//
// Expected shape: per-shard stage-1 work shrinks with the shard count, so
// with enough cores the scatter-gather latency drops below the unsharded
// engine once per-query fan-out costs are amortised; on a starved box the
// router overhead dominates instead. That is why the emitted JSON records
// the CORE COUNT next to every row (ROADMAP's single-core caveat): a
// scale-out number without the core count is not comparable across runs.
//
// Every sweep point is also verified bit-identical to the unsharded
// TrySearch — a scale-out benchmark of wrong answers measures nothing.
//
// Output: a human table on stdout plus machine-readable
// BENCH_shard_scaleout.json in the working directory.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "shard/shard_router.hpp"
#include "shard/sharded_store.hpp"
#include "util/stopwatch.hpp"

namespace {

struct SweepRow {
  std::uint32_t shards = 1;
  std::size_t workers = 0;
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double qps = 0.0;
  bool identical = true;
};

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t i = std::min(
      sorted.size() - 1, std::size_t(p * double(sorted.size() - 1) + 0.5));
  return sorted[i];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);
  const std::size_t k = 10;
  const std::size_t passes = 3;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("[scaleout] generating corpus (%zu objects)...\n",
              args.objects);
  const corpus::Corpus corpus =
      corpus::Generator(bench::MakeRetrievalConfig(args))
          .MakeRetrievalCorpus();
  const index::EngineOptions eopts;
  const index::FigRetrievalEngine baseline(corpus, eopts);
  const std::vector<corpus::ObjectId> queries =
      bench::EvalQueries(corpus, args);

  std::vector<std::uint32_t> counts = {1, 2, 4, 8};
  if (args.shards != 0) {
    counts.clear();
    for (std::uint32_t n = 1; n <= args.shards; n *= 2) counts.push_back(n);
  }

  std::vector<SweepRow> rows;
  for (std::uint32_t n : counts) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("figdb_bench_scaleout_" + std::to_string(n)))
            .string();
    std::filesystem::remove_all(dir);
    shard::ShardedStore::Options sopts;
    sopts.num_shards = n;
    sopts.engine = eopts;
    auto store = shard::ShardedStore::Create(dir, corpus, sopts);
    if (!store.ok()) {
      std::fprintf(stderr, "[scaleout] create failed: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }

    SweepRow row;
    row.shards = n;
    row.workers = std::min<std::size_t>(n, cores);
    {
      shard::ShardRouter router(
          shard::RouterOptions{.workers = row.workers});

      // Warm-up pass doubles as the correctness gate.
      for (corpus::ObjectId qid : queries) {
        auto got = router.Search(*store, corpus.Object(qid), k);
        auto want = baseline.TrySearch(corpus.Object(qid), k);
        if (!got.ok() || !want.ok() || !got->Complete() ||
            got->response.results.size() != want->results.size()) {
          row.identical = false;
          continue;
        }
        for (std::size_t i = 0; i < want->results.size(); ++i)
          if (got->response.results[i].object != want->results[i].object ||
              got->response.results[i].score != want->results[i].score)
            row.identical = false;
      }

      std::vector<double> latencies;
      latencies.reserve(passes * queries.size());
      util::Stopwatch wall;
      for (std::size_t pass = 0; pass < passes; ++pass) {
        for (corpus::ObjectId qid : queries) {
          util::Stopwatch watch;
          auto got = router.Search(*store, corpus.Object(qid), k);
          latencies.push_back(watch.ElapsedMillis());
          if (!got.ok()) row.identical = false;
        }
      }
      const double total_s = wall.ElapsedSeconds();
      double sum = 0.0;
      for (double l : latencies) sum += l;
      std::sort(latencies.begin(), latencies.end());
      row.mean_ms = sum / double(latencies.size());
      row.p50_ms = Percentile(latencies, 0.50);
      row.p95_ms = Percentile(latencies, 0.95);
      row.qps = double(latencies.size()) / total_s;
      // Router (and its pool) dies here, before the store it queries.
    }
    rows.push_back(row);
    std::printf("[scaleout] %u shard(s) done (%.2f ms mean)\n", n,
                row.mean_ms);
    std::filesystem::remove_all(dir);
  }

  eval::Table table("Shard scale-out: scatter-gather latency (" +
                        std::to_string(cores) + " cores)",
                    {"workers", "mean ms", "p50 ms", "p95 ms", "qps",
                     "identical"});
  for (const SweepRow& r : rows)
    table.AddRow(std::to_string(r.shards) + " shard(s)",
                 {double(r.workers), r.mean_ms, r.p50_ms, r.p95_ms, r.qps,
                  r.identical ? 1.0 : 0.0});
  table.Print();

  const char* path = "BENCH_shard_scaleout.json";
  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "[scaleout] cannot write %s\n", path);
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"shard_scaleout\",\n"
               "  \"objects\": %zu,\n"
               "  \"queries\": %zu,\n"
               "  \"passes\": %zu,\n"
               "  \"k\": %zu,\n"
               "  \"seed\": %llu,\n"
               "  \"cores\": %u,\n"
               "  \"sweep\": [\n",
               args.objects, queries.size(), passes, k,
               (unsigned long long)args.seed, cores);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    std::fprintf(out,
                 "    {\"shards\": %u, \"workers\": %zu, "
                 "\"mean_ms\": %.4f, \"p50_ms\": %.4f, \"p95_ms\": %.4f, "
                 "\"qps\": %.2f, \"identical_to_unsharded\": %s}%s\n",
                 r.shards, r.workers, r.mean_ms, r.p50_ms, r.p95_ms, r.qps,
                 r.identical ? "true" : "false",
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("[scaleout] wrote %s\n", path);
  return 0;
}
