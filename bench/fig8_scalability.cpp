// Reproduces paper Figure 8: retrieval Precision@10 of FIG, RB, TP and LSA
// as the database grows (50K -> 236K in the paper; prefix fractions of the
// generated corpus here).
//
// Expected shape: precision grows with database size for every method (a
// larger corpus holds more well-matched objects), FIG on top throughout.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "eval/report.hpp"
#include "sharded_retriever.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig8] generating corpus (%zu objects)...\n", args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus full = generator.MakeRetrievalCorpus();

  const double fractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<std::string> columns;
  for (double f : fractions) {
    columns.push_back(
        std::to_string(std::size_t(f * double(args.objects)) / 1000) + "K");
  }
  eval::Table table("Figure 8: Precision@10 vs database size", columns);

  // One row per method; evaluated size by size so each prefix gets its own
  // engines and statistics (the paper rebuilds per size too).
  std::vector<std::vector<double>> rows(4);
  std::vector<std::string> names;
  for (double fraction : fractions) {
    const std::size_t n = std::size_t(fraction * double(args.objects));
    const corpus::Corpus prefix = full.Prefix(n);
    const eval::TopicOracle oracle(&prefix);
    // Queries must come from within the prefix so every size answers the
    // same kind of workload.
    bench::Args sized = args;
    const auto train = bench::TrainQueries(prefix, sized);
    const auto queries = bench::EvalQueries(prefix, sized);
    const bench::MethodSuite suite =
        bench::BuildMethods(prefix, sized, oracle, train);
    eval::RetrievalEvalOptions eo;
    eo.cutoffs = {10};
    names.clear();
    std::size_t m = 0;
    for (const core::Retriever* method : suite.InFigureOrder()) {
      const auto r = eval::EvaluateRetrieval(*method, prefix, queries,
                                             oracle, eo);
      rows[m++].push_back(r.precision[0]);
      names.push_back(method->Name());
    }
    std::printf("[fig8] size %zu done\n", n);
  }
  for (std::size_t m = 0; m < rows.size(); ++m)
    table.AddRow(names[m], rows[m]);
  table.Print();
  if (args.csv) table.PrintCsv(std::cout);

  if (args.shards != 0) {
    // Shard-count sweep over the FULL corpus: scatter-gather answers are
    // bit-identical to the unsharded engine (asserted by the shard test
    // suite), so the precision column must be flat — this sweep is the
    // latency trajectory as the same workload fans out. Untrained default
    // λ on purpose: SetLambda mutates a live engine, and the sharded
    // snapshots pin their own. Core count matters (ROADMAP's single-core
    // caveat), so it is printed with the table.
    const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
    eval::Table sharded_table(
        "Figure 8b: FIG Precision@10 / ms-per-query vs shard count (" +
            std::to_string(cores) + " cores)",
        {"P@10", "ms/query", "shards answered"});
    const auto queries = bench::EvalQueries(full, args);
    const eval::TopicOracle oracle(&full);
    eval::RetrievalEvalOptions eo;
    eo.cutoffs = {10};
    for (std::size_t n = 1; n <= args.shards; n *= 2) {
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           ("figdb_fig8_shards_" + std::to_string(n)))
              .string();
      std::filesystem::remove_all(dir);
      shard::ShardedStore::Options sopts;
      sopts.num_shards = std::uint32_t(n);
      auto store = shard::ShardedStore::Create(dir, full, sopts);
      if (!store.ok()) {
        std::fprintf(stderr, "[fig8] shard create failed: %s\n",
                     store.status().ToString().c_str());
        return 1;
      }
      {
        const bench::ShardedFigRetriever sharded(
            &*store,
            shard::RouterOptions{.workers = std::min<std::size_t>(n, cores)});
        const auto r =
            eval::EvaluateRetrieval(sharded, full, queries, oracle, eo);
        const auto stats = sharded.Router().Stats();
        sharded_table.AddRow(
            std::to_string(n) + " shard(s)",
            {r.precision[0], r.seconds_per_query * 1000.0,
             double(stats.completed - stats.partial) / double(stats.completed)});
      }
      std::filesystem::remove_all(dir);
      std::printf("[fig8] shard sweep %zu done\n", n);
    }
    sharded_table.Print();
    if (args.csv) sharded_table.PrintCsv(std::cout);
  }
  return 0;
}
