// Reproduces paper Figure 8: retrieval Precision@10 of FIG, RB, TP and LSA
// as the database grows (50K -> 236K in the paper; prefix fractions of the
// generated corpus here).
//
// Expected shape: precision grows with database size for every method (a
// larger corpus holds more well-matched objects), FIG on top throughout.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig8] generating corpus (%zu objects)...\n", args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus full = generator.MakeRetrievalCorpus();

  const double fractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};
  std::vector<std::string> columns;
  for (double f : fractions) {
    columns.push_back(
        std::to_string(std::size_t(f * double(args.objects)) / 1000) + "K");
  }
  eval::Table table("Figure 8: Precision@10 vs database size", columns);

  // One row per method; evaluated size by size so each prefix gets its own
  // engines and statistics (the paper rebuilds per size too).
  std::vector<std::vector<double>> rows(4);
  std::vector<std::string> names;
  for (double fraction : fractions) {
    const std::size_t n = std::size_t(fraction * double(args.objects));
    const corpus::Corpus prefix = full.Prefix(n);
    const eval::TopicOracle oracle(&prefix);
    // Queries must come from within the prefix so every size answers the
    // same kind of workload.
    bench::Args sized = args;
    const auto train = bench::TrainQueries(prefix, sized);
    const auto queries = bench::EvalQueries(prefix, sized);
    const bench::MethodSuite suite =
        bench::BuildMethods(prefix, sized, oracle, train);
    eval::RetrievalEvalOptions eo;
    eo.cutoffs = {10};
    names.clear();
    std::size_t m = 0;
    for (const core::Retriever* method : suite.InFigureOrder()) {
      const auto r = eval::EvaluateRetrieval(*method, prefix, queries,
                                             oracle, eo);
      rows[m++].push_back(r.precision[0]);
      names.push_back(method->Name());
    }
    std::printf("[fig8] size %zu done\n", n);
  }
  for (std::size_t m = 0; m < rows.size(); ++m)
    table.AddRow(names[m], rows[m]);
  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
