// google-benchmark microbenchmarks for the performance-critical components:
// k-means clustering, block feature extraction, clique enumeration, CorS
// computation, correlation lookups, Threshold-Algorithm merging, sparse
// vector algebra and the Porter stemmer.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/clique.hpp"
#include "core/fig.hpp"
#include "corpus/generator.hpp"
#include "index/threshold_algorithm.hpp"
#include "stats/cors.hpp"
#include "text/porter_stemmer.hpp"
#include "util/rng.hpp"
#include "util/sparse_vector.hpp"
#include "vision/block_features.hpp"
#include "vision/image_synth.hpp"
#include "vision/kmeans.hpp"

namespace figdb {
namespace {

// Shared small corpus + engine-side statistics, built once.
struct MicroFixture {
  corpus::Corpus corpus;
  std::shared_ptr<stats::FeatureMatrix> matrix;
  std::shared_ptr<stats::CorrelationModel> correlations;
  std::shared_ptr<stats::CorSCalculator> cors;

  MicroFixture() {
    corpus::GeneratorConfig config;
    config.num_objects = 3000;
    config.num_topics = 20;
    config.num_users = 1000;
    config.visual_words = 256;
    config.seed = 99;
    corpus = corpus::Generator(config).MakeRetrievalCorpus();
    matrix = std::make_shared<stats::FeatureMatrix>(
        stats::FeatureMatrix::Build(corpus));
    correlations = std::make_shared<stats::CorrelationModel>(
        corpus.SharedContext(), matrix);
    cors = std::make_shared<stats::CorSCalculator>(matrix);
  }
};

MicroFixture& Fixture() {
  static MicroFixture fixture;
  return fixture;
}

void BM_KMeans(benchmark::State& state) {
  util::Rng rng(1);
  const std::size_t n = std::size_t(state.range(0));
  std::vector<float> data(n * 16);
  for (auto& x : data) x = float(rng.Gaussian());
  for (auto _ : state) {
    auto result =
        vision::KMeans(data, 16, {.k = 64, .max_iterations = 5, .seed = 3});
    benchmark::DoNotOptimize(result.inertia);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_KMeans)->Arg(1000)->Arg(4000);

void BM_BlockFeatureExtraction(benchmark::State& state) {
  vision::Synthesizer synth(8, {});
  util::Rng rng(2);
  const vision::Image img = synth.Render(
      std::vector<double>(8, 0.125), &rng);
  vision::BlockFeatureExtractor extractor;
  for (auto _ : state) {
    auto descriptors = extractor.Extract(img);
    benchmark::DoNotOptimize(descriptors.data());
  }
}
BENCHMARK(BM_BlockFeatureExtraction);

void BM_FigBuild(benchmark::State& state) {
  MicroFixture& f = Fixture();
  for (auto _ : state) {
    const auto fig = core::FeatureInteractionGraph::Build(
        f.corpus.Object(7), *f.correlations);
    benchmark::DoNotOptimize(fig.NodeCount());
  }
}
BENCHMARK(BM_FigBuild);

void BM_CliqueEnumeration(benchmark::State& state) {
  MicroFixture& f = Fixture();
  const auto fig = core::FeatureInteractionGraph::Build(
      f.corpus.Object(7), *f.correlations);
  for (auto _ : state) {
    auto cliques = core::EnumerateCliques(
        fig, {.max_features = std::size_t(state.range(0))});
    benchmark::DoNotOptimize(cliques.size());
  }
}
BENCHMARK(BM_CliqueEnumeration)->Arg(2)->Arg(3)->Arg(4);

void BM_CorSPair(benchmark::State& state) {
  MicroFixture& f = Fixture();
  const auto& obj = f.corpus.Object(11);
  std::vector<corpus::FeatureKey> pair = {obj.features[0].feature,
                                          obj.features[1].feature};
  for (auto _ : state) {
    // Fresh calculator per iteration batch would defeat the memo; this
    // measures the memoised steady state, matching engine behaviour.
    benchmark::DoNotOptimize(f.cors->Compute(pair));
  }
}
BENCHMARK(BM_CorSPair);

void BM_CorSTripleUncached(benchmark::State& state) {
  MicroFixture& f = Fixture();
  const auto& obj = f.corpus.Object(11);
  for (auto _ : state) {
    stats::CorSCalculator fresh(f.matrix);
    benchmark::DoNotOptimize(
        fresh.Compute({obj.features[0].feature, obj.features[1].feature,
                       obj.features[2].feature}));
  }
}
BENCHMARK(BM_CorSTripleUncached);

void BM_ThresholdMerge(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<index::ScoredList> lists(std::size_t(state.range(0)));
  for (auto& list : lists) {
    for (int i = 0; i < 500; ++i) {
      list.entries.push_back({corpus::ObjectId(rng.UniformInt(2000)),
                              rng.UniformReal()});
    }
  }
  for (auto _ : state) {
    auto lists_copy = lists;
    auto result = index::ThresholdMerge(std::move(lists_copy), 10);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_ThresholdMerge)->Arg(8)->Arg(64);

void BM_ExhaustiveMerge(benchmark::State& state) {
  util::Rng rng(5);
  std::vector<index::ScoredList> lists(std::size_t(state.range(0)));
  for (auto& list : lists) {
    for (int i = 0; i < 500; ++i) {
      list.entries.push_back({corpus::ObjectId(rng.UniformInt(2000)),
                              rng.UniformReal()});
    }
  }
  for (auto _ : state) {
    auto result = index::ExhaustiveMerge(lists, 10);
    benchmark::DoNotOptimize(result.size());
  }
}
BENCHMARK(BM_ExhaustiveMerge)->Arg(8)->Arg(64);

void BM_SparseCosine(benchmark::State& state) {
  util::Rng rng(6);
  util::SparseVector a, b;
  for (int i = 0; i < 200; ++i) {
    a.Add(std::uint32_t(rng.UniformInt(5000)), float(rng.UniformReal()));
    b.Add(std::uint32_t(rng.UniformInt(5000)), float(rng.UniformReal()));
  }
  a.Finalize();
  b.Finalize();
  for (auto _ : state)
    benchmark::DoNotOptimize(util::SparseVector::Cosine(a, b));
}
BENCHMARK(BM_SparseCosine);

void BM_PorterStemmer(benchmark::State& state) {
  text::PorterStemmer stemmer;
  static const char* kWords[] = {"relational", "hopefulness", "motoring",
                                 "adjustable", "conflated", "caresses"};
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stemmer.Stem(kWords[i++ % 6]));
  }
}
BENCHMARK(BM_PorterStemmer);

}  // namespace
}  // namespace figdb

BENCHMARK_MAIN();
