// Ablations over the FIG model's design choices (DESIGN.md §4):
//   1. CorS clique weighting (Eq. 9) on/off
//   2. smoothing trade-off alpha (Eq. 7)
//   3. clique size cap (max feature nodes per clique)
//   4. full-model re-scoring stage on/off
//   5. text correlation-edge threshold
// Each row reports retrieval Precision@{3,5,10,20} plus seconds/query.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  bench::Args args = bench::Args::Parse(argc, argv);
  if (args.objects == 12000) args.objects = 8000;  // ablations run many engines

  std::printf("[ablation_model] generating corpus (%zu objects)...\n",
              args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus corpus = generator.MakeRetrievalCorpus();
  const eval::TopicOracle oracle(&corpus);
  const auto queries = bench::EvalQueries(corpus, args);

  eval::Table table("Model ablations (retrieval)",
                    {"P@3", "P@5", "P@10", "P@20", "s/query"});
  auto run = [&](const std::string& label, const index::EngineOptions& eo) {
    const index::FigRetrievalEngine engine(corpus, eo);
    const auto r = eval::EvaluateRetrieval(engine, corpus, queries, oracle);
    std::vector<double> row = r.precision;
    row.push_back(r.seconds_per_query);
    table.AddRow(label, row);
    std::printf("[ablation_model] %-24s done\n", label.c_str());
  };

  run("FIG (default)", index::EngineOptions{});

  {
    index::EngineOptions eo;
    eo.mrf.use_cors_weight = false;
    run("no CorS weight", eo);
  }
  for (double alpha : {1.0, 0.7, 0.5}) {
    index::EngineOptions eo;
    eo.mrf.alpha = alpha;
    run("alpha=" + std::to_string(alpha).substr(0, 4), eo);
  }
  for (std::size_t cap : {std::size_t(1), std::size_t(2)}) {
    index::EngineOptions eo;
    eo.mrf.cliques.max_features = cap;
    run("cliques<=" + std::to_string(cap) + " features", eo);
  }
  {
    index::EngineOptions eo;
    eo.rerank_candidates = 0;
    run("no full-model rerank", eo);
  }
  for (double threshold : {0.45, 0.7}) {
    index::EngineOptions eo;
    eo.correlations.text_text_threshold = threshold;
    run("text edge thr=" + std::to_string(threshold).substr(0, 4), eo);
  }

  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
