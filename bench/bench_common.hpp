#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "baselines/feature_vectors.hpp"
#include "baselines/lsa.hpp"
#include "baselines/rankboost.hpp"
#include "baselines/tensor_product.hpp"
#include "corpus/generator.hpp"
#include "eval/harness.hpp"
#include "eval/oracle.hpp"
#include "index/retrieval_engine.hpp"

/// \file bench_common.hpp
/// Shared scaffolding for the per-figure benchmark binaries: command-line
/// parsing, the standard evaluation corpus configuration, and a method
/// factory that assembles FIG + the three baselines over one corpus.

namespace figdb::bench {

struct Args {
  /// Database size. The paper's Dret has 236,600 objects; the default here
  /// is laptop-scale. Pass --objects=N (or --paper-scale) to grow it;
  /// topics and users auto-scale with it (constant corpus density) unless
  /// pinned explicitly.
  std::size_t objects = 6000;
  std::size_t topics = 0;  // 0 = objects / 150
  std::size_t users = 0;   // 0 = objects * 5 / 12
  std::size_t queries = 20;  // as in the paper (§5.1.4)
  std::size_t train_queries = 8;
  std::uint64_t seed = 20100611;
  /// Shard sweep ceiling for the scatter-gather benches: fig8 appends a
  /// shard-count sweep (powers of two up to this) when non-zero, and
  /// shard_scaleout replaces its default {1,2,4,8} sweep with it.
  std::size_t shards = 0;
  bool train_lambda = false;
  bool paper_scale = false;
  bool csv = false;
  /// fig10/fig11: cross-check merge-time δ-decay over a SegmentedStore
  /// against exhaustive decayed rescoring before running the figure.
  bool segmented = false;

  static Args Parse(int argc, char** argv);
};

/// The evaluation corpus configuration. Noise knobs are tuned so the
/// synthetic task is hard enough that the paper's method ordering can show
/// (nothing saturates at precision 1.0).
corpus::GeneratorConfig MakeRetrievalConfig(const Args& args);

/// Same corpus generator settings for the recommendation datasets.
corpus::GeneratorConfig MakeRecommendationConfig(const Args& args);

/// Everything the retrieval figures need, built once per corpus.
struct MethodSuite {
  std::unique_ptr<index::FigRetrievalEngine> fig;
  std::unique_ptr<baselines::LsaRetriever> lsa;
  std::unique_ptr<baselines::TensorProductRetriever> tp;
  std::unique_ptr<baselines::RankBoostRetriever> rb;
  std::shared_ptr<baselines::TypedVectors> vectors;

  /// In figure order: FIG, RB, TP, LSA.
  std::vector<const core::Retriever*> InFigureOrder() const;
};

/// Builds all four methods; trains RankBoost (and optionally λ) on
/// training queries disjoint from the evaluation queries.
MethodSuite BuildMethods(const corpus::Corpus& corpus, const Args& args,
                         const eval::TopicOracle& oracle,
                         const std::vector<corpus::ObjectId>& train_queries);

/// Evaluation queries (disjoint from training queries by seed offset).
std::vector<corpus::ObjectId> EvalQueries(const corpus::Corpus& corpus,
                                          const Args& args);
std::vector<corpus::ObjectId> TrainQueries(const corpus::Corpus& corpus,
                                           const Args& args);

/// The --segmented cross-check: partitions \p corpus into a
/// month-per-segment temporal::SegmentedStore under a scratch directory
/// and, for every delta and a query sample, compares the merge-time
/// decayed top-k against exhaustive decayed rescoring. Prints the
/// per-delta maximum relative score drift; exits non-zero if drift
/// exceeds the documented 1e-9 tolerance or ids diverge beyond fp
/// near-ties — the figure's δ-decay numbers are only trustworthy if the
/// segmented path reproduces them.
void RunSegmentedCrossCheck(const corpus::Corpus& corpus, const char* tag,
                            const std::vector<double>& deltas,
                            std::uint32_t now_epoch, std::size_t k,
                            std::size_t num_queries, std::uint64_t seed);

}  // namespace figdb::bench
