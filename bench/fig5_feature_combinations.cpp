// Reproduces paper Figure 5: retrieval Precision@{3,5,10,20} of the FIG
// model restricted to individual feature modalities and their pairwise
// combinations.
//
// Expected shape (paper §5.2.1): Visual worst (semantic gap); Text slightly
// above User; every pairwise combination above its singles; the full
// three-modality FIG best overall.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "eval/report.hpp"

int main(int argc, char** argv) {
  using namespace figdb;
  const bench::Args args = bench::Args::Parse(argc, argv);

  std::printf("[fig5] generating corpus (%zu objects)...\n", args.objects);
  corpus::Generator generator(bench::MakeRetrievalConfig(args));
  const corpus::Corpus corpus = generator.MakeRetrievalCorpus();
  const eval::TopicOracle oracle(&corpus);
  const auto queries = bench::EvalQueries(corpus, args);

  struct Combination {
    const char* label;
    std::uint32_t mask;
  };
  const Combination combos[] = {
      {"Visual", core::kVisualMask},
      {"Text", core::kTextMask},
      {"User", core::kUserMask},
      {"Visual+Text", core::kVisualMask | core::kTextMask},
      {"Visual+User", core::kVisualMask | core::kUserMask},
      {"Text+User", core::kTextMask | core::kUserMask},
      {"FIG", core::kAllFeatures},
  };

  eval::Table table("Figure 5: Retrieval Precision@N by feature combination",
                    {"P@3", "P@5", "P@10", "P@20"});
  for (const Combination& combo : combos) {
    index::EngineOptions options;
    options.type_mask = combo.mask;
    const index::FigRetrievalEngine engine(corpus, options);
    const auto r = eval::EvaluateRetrieval(engine, corpus, queries, oracle);
    table.AddRow(combo.label, r.precision);
    std::printf("[fig5] %-12s done\n", combo.label);
  }
  table.Print();
  if (args.csv) table.PrintCsv(std::cout);
  return 0;
}
