#!/usr/bin/env bash
# Full pre-merge check: build + test the plain tree, an ASan+UBSan tree
# (crash-recovery / fault-injection matrix under sanitizers), and a TSan
# tree that runs the concurrency suites (thread pool, epoch reclamation,
# the parallel query executor and the serving-store stress tests) — the
# data-race proof for the serving layer.
#
#   ci/check.sh            all three trees (the default)
#   ci/check.sh plain      plain tree only
#   ci/check.sh asan       ASan+UBSan tree only
#   ci/check.sh tsan       ThreadSanitizer tree only
#
# Environment:
#   JOBS=N         parallelism (default: nproc)
#   CTEST_ARGS=... extra ctest arguments (e.g. -R Robustness)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_tree() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "==== [$label] configure ($dir) ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== [$label] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$label] ctest ===="
  # ASAN_OPTIONS: the suites intentionally exercise OOM-adjacent and
  # IO-failure paths; keep odr/leak strictness so real bugs still fail.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
}

# TSan is mutually exclusive with ASan, so it gets its own tree. Only the
# concurrency suites run there: the sequential suites gain nothing from it
# and TSan's ~10x slowdown would dominate the check otherwise.
run_tsan_tree() {
  cmake -B build-tsan -S . -DFIGDB_SANITIZE="thread" >/dev/null
  echo "==== [ci-tsan] build ===="
  cmake --build build-tsan -j "$JOBS"
  echo "==== [ci-tsan] ctest (concurrency suites) ===="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -R 'ThreadPool|EpochReclaimer|MemoCache|CompactionContract|QueryExecutor|ServingStore' \
      ${CTEST_ARGS:-}
}

case "$MODE" in
  plain)
    run_tree build ci-plain
    ;;
  asan)
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    ;;
  tsan)
    run_tsan_tree
    ;;
  all)
    run_tree build ci-plain
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    run_tsan_tree
    ;;
  *)
    echo "usage: ci/check.sh [all|plain|asan|tsan]" >&2
    exit 2
    ;;
esac

echo "==== all checks passed ===="
