#!/usr/bin/env bash
# Full pre-merge check: build + test the plain tree, an ASan+UBSan tree
# (crash-recovery / fault-injection matrix under sanitizers), a TSan tree
# that runs the `concurrency`-labeled suites (thread pool, epoch
# reclamation, the parallel query executor and the serving-store stress
# tests), the figdb lint pass, and clang-tidy when available.
#
#   ci/check.sh            everything (the default)
#   ci/check.sh plain      plain tree only
#   ci/check.sh asan       ASan+UBSan tree only
#   ci/check.sh tsan       ThreadSanitizer tree only
#   ci/check.sh lint       figdb-lint self-test + repo invariants
#   ci/check.sh tidy       clang-tidy over the compilation database
#                          (skips with a notice if clang-tidy is absent)
#
# The Clang Thread Safety Analysis build is not a mode here because it
# needs clang++; see DESIGN.md §10 for the -DFIGDB_THREAD_SAFETY=ON
# recipe and its deliberate-violation canary.
#
# Environment:
#   JOBS=N         parallelism (default: nproc)
#   CTEST_ARGS=... extra ctest arguments (e.g. -R Robustness)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_tree() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "==== [$label] configure ($dir) ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== [$label] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$label] ctest ===="
  # ASAN_OPTIONS: the suites intentionally exercise OOM-adjacent and
  # IO-failure paths; keep odr/leak strictness so real bugs still fail.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
}

# TSan is mutually exclusive with ASan, so it gets its own tree. Only the
# `concurrency`-labeled suites run there (tests/CMakeLists.txt assigns the
# label at discovery time): the sequential suites gain nothing from it and
# TSan's ~10x slowdown would dominate the check otherwise.
run_tsan_tree() {
  cmake -B build-tsan -S . -DFIGDB_SANITIZE="thread" >/dev/null
  echo "==== [ci-tsan] build ===="
  cmake --build build-tsan -j "$JOBS"
  echo "==== [ci-tsan] ctest (-L concurrency) ===="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -L concurrency ${CTEST_ARGS:-}
}

# figdb-lint needs a compilation database for the TU universe; any
# configured tree provides one (CMAKE_EXPORT_COMPILE_COMMANDS is always
# on). The self-test seeds one violation per rule and fails unless each
# is detected, so a broken rule cannot pass vacuously.
run_lint() {
  if [ ! -f build/compile_commands.json ]; then
    echo "==== [ci-lint] configure (build) ===="
    cmake -B build -S . >/dev/null
  fi
  echo "==== [ci-lint] figdb-lint self-test ===="
  python3 tools/lint/figdb_lint.py --self-test
  echo "==== [ci-lint] figdb-lint ===="
  python3 tools/lint/figdb_lint.py -p build
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==== [ci-tidy] clang-tidy not installed; skipping ===="
    return 0
  fi
  if [ ! -f build/compile_commands.json ]; then
    echo "==== [ci-tidy] configure (build) ===="
    cmake -B build -S . >/dev/null
  fi
  echo "==== [ci-tidy] clang-tidy (.clang-tidy config) ===="
  # Project sources only: dependencies and generated code are not ours to
  # tidy. -quiet keeps the output to actual diagnostics.
  git ls-files 'src/**/*.cpp' 'tools/lint/*.cpp' \
    | xargs -r clang-tidy -p build -quiet
}

case "$MODE" in
  plain)
    run_tree build ci-plain
    ;;
  asan)
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    ;;
  tsan)
    run_tsan_tree
    ;;
  lint)
    run_lint
    ;;
  tidy)
    run_tidy
    ;;
  all)
    run_tree build ci-plain
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    run_tsan_tree
    run_lint
    run_tidy
    ;;
  *)
    echo "usage: ci/check.sh [all|plain|asan|tsan|lint|tidy]" >&2
    exit 2
    ;;
esac

echo "==== all checks passed ===="
