#!/usr/bin/env bash
# Full pre-merge check: build + test the plain tree AND an ASan+UBSan tree,
# so the crash-recovery / fault-injection matrix always runs under
# sanitizers instead of that being a manual step.
#
#   ci/check.sh            both trees (the default)
#   ci/check.sh plain      plain tree only
#   ci/check.sh asan       sanitizer tree only
#
# Environment:
#   JOBS=N         parallelism (default: nproc)
#   CTEST_ARGS=... extra ctest arguments (e.g. -R Robustness)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_tree() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "==== [$label] configure ($dir) ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== [$label] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$label] ctest ===="
  # ASAN_OPTIONS: the suites intentionally exercise OOM-adjacent and
  # IO-failure paths; keep odr/leak strictness so real bugs still fail.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
}

case "$MODE" in
  plain)
    run_tree build ci-plain
    ;;
  asan)
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    ;;
  all)
    run_tree build ci-plain
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    ;;
  *)
    echo "usage: ci/check.sh [all|plain|asan]" >&2
    exit 2
    ;;
esac

echo "==== all checks passed ===="
