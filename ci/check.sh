#!/usr/bin/env bash
# Full pre-merge check: build + test the plain tree, an ASan+UBSan tree
# (crash-recovery / fault-injection matrix under sanitizers), a TSan tree
# that runs the `concurrency`-labeled suites (thread pool, epoch
# reclamation, the parallel query executor and the serving-store stress
# tests), the figdb lint pass, and clang-tidy when available.
#
#   ci/check.sh            everything (the default; includes the
#                          fuzz_regression corpus-replay ctest cases)
#   ci/check.sh plain      plain tree only
#   ci/check.sh asan       ASan+UBSan tree only
#   ci/check.sh ubsan      UBSan-only tree (halt_on_error; catches UB that
#                          ASan interactions can mask)
#   ci/check.sh tsan       ThreadSanitizer tree only
#   ci/check.sh fuzz       coverage-guided libFuzzer run over every fuzz/
#                          target (needs clang++; otherwise falls back to
#                          corpus replay, `ctest -L fuzz_regression`)
#   ci/check.sh serve-smoke  end-to-end wire drill: figdb_shell `listen`
#                          in one process, `connect` queries from another
#                          under a FIGDB_FAILPOINTS net drill, then
#                          SIGTERM and assert a clean graceful drain
#   ci/check.sh temporal-smoke  end-to-end temporal drill: figdb_shell
#                          `segments` lifecycle (attach/merge/expire/
#                          bursts), then re-attach from a fresh process
#                          and assert the committed window recovered
#   ci/check.sh deadlock   runtime lock-order validator tree
#                          (-DFIGDB_DEADLOCK_DETECT=ON): the
#                          `concurrency`-labeled suites with every scoped
#                          acquisition checked against the global
#                          acquisition-order graph
#   ci/check.sh lifetime   reclaimed-memory poisoning tree
#                          (-DFIGDB_LIFETIME_POISON=ON): quarantined +
#                          pattern-filled retired snapshots, canary-checked
#                          reads; runs the `concurrency`-labeled suites
#                          including the seeded use-after-unpin death test
#   ci/check.sh lint       figdb-lint self-test + repo invariants
#                          (includes the cross-TU lock-order-cycle and
#                          snapshot-lifetime passes)
#   ci/check.sh tidy       clang-tidy over the compilation database
#                          (skips with a notice if clang-tidy is absent)
#   ci/check.sh help       modes, environment knobs, corpus maintenance
#
# The Clang Thread Safety Analysis build is not a mode here because it
# needs clang++; see DESIGN.md §10 for the -DFIGDB_THREAD_SAFETY=ON
# recipe and its deliberate-violation canary. DESIGN.md §11 covers the
# fuzzing layer.
#
# Environment:
#   JOBS=N          parallelism (default: nproc)
#   CTEST_ARGS=...  extra ctest arguments (e.g. -R Robustness)
#   FUZZ_SECONDS=N  per-target budget for the fuzz mode (default: 15)

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
MODE="${1:-all}"

run_tree() {
  local dir="$1"; shift
  local label="$1"; shift
  echo "==== [$label] configure ($dir) ===="
  cmake -B "$dir" -S . "$@" >/dev/null
  echo "==== [$label] build ===="
  cmake --build "$dir" -j "$JOBS"
  echo "==== [$label] ctest ===="
  # ASAN_OPTIONS: the suites intentionally exercise OOM-adjacent and
  # IO-failure paths; keep odr/leak strictness so real bugs still fail.
  # halt_on_error: without it UBSan prints and keeps going, and a ctest
  # run full of passed-but-poisoned tests reads as green.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" ${CTEST_ARGS:-}
}

# TSan is mutually exclusive with ASan, so it gets its own tree. Only the
# `concurrency`-labeled suites run there (tests/CMakeLists.txt assigns the
# label at discovery time): the sequential suites gain nothing from it and
# TSan's ~10x slowdown would dominate the check otherwise.
run_tsan_tree() {
  cmake -B build-tsan -S . -DFIGDB_SANITIZE="thread" >/dev/null
  echo "==== [ci-tsan] build ===="
  cmake --build build-tsan -j "$JOBS"
  echo "==== [ci-tsan] ctest (-L concurrency) ===="
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
      -L concurrency ${CTEST_ARGS:-}
}

# The runtime deadlock detector (util/deadlock.hpp) is compiler-agnostic
# and catches the ORDER VIOLATION itself — unlike TSan, which only reports
# an ABBA if the fatal interleaving happens to fire under the run. The
# tree runs the same `concurrency`-labeled suites as TSan; the two modes
# are complementary (TSan sees data races, this sees lock-order cycles).
# tests/deadlock_test.cpp's DeadlockDetectTest suite only compiles here,
# so the seeded-ABBA-aborts acceptance check runs exactly in this mode.
run_deadlock_tree() {
  cmake -B build-deadlock -S . -DFIGDB_DEADLOCK_DETECT=ON >/dev/null
  echo "==== [ci-deadlock] build ===="
  cmake --build build-deadlock -j "$JOBS"
  echo "==== [ci-deadlock] ctest (-L concurrency) ===="
  ctest --test-dir build-deadlock --output-on-failure -j "$JOBS" \
    -L concurrency ${CTEST_ARGS:-}
}

# The epoch-lifetime poisoning tree (util/lifetime.hpp) is the dynamic
# half of the snapshot-lifetime layer: retired snapshots are destroyed,
# pattern-filled, and quarantined instead of freed, and every snapshot
# accessor canary-checks its header — so a stale dereference aborts with
# the retiring epoch, the reader's pin epoch, and both source locations,
# instead of silently reading reclaimed memory. The static half
# (lifetime_graph.py) proves the pin discipline lexically; this tree
# catches what a lexical pass cannot see. tests/lifetime_test.cpp's
# LifetimePoisonTest death suite only compiles here, so the seeded
# use-after-unpin-aborts acceptance check runs exactly in this mode.
run_lifetime_tree() {
  cmake -B build-lifetime -S . -DFIGDB_LIFETIME_POISON=ON >/dev/null
  echo "==== [ci-lifetime] build ===="
  cmake --build build-lifetime -j "$JOBS"
  echo "==== [ci-lifetime] ctest (-L concurrency) ===="
  ctest --test-dir build-lifetime --output-on-failure -j "$JOBS" \
    -L concurrency ${CTEST_ARGS:-}
}

# figdb-lint needs a compilation database for the TU universe; any
# configured tree provides one (CMAKE_EXPORT_COMPILE_COMMANDS is always
# on). The self-test seeds one violation per rule and fails unless each
# is detected, so a broken rule cannot pass vacuously.
run_lint() {
  if [ ! -f build/compile_commands.json ]; then
    echo "==== [ci-lint] configure (build) ===="
    cmake -B build -S . >/dev/null
  fi
  echo "==== [ci-lint] figdb-lint self-test ===="
  python3 tools/lint/figdb_lint.py --self-test
  echo "==== [ci-lint] lock-graph self-test ===="
  python3 tools/lint/lock_graph.py --self-test
  echo "==== [ci-lint] lifetime-graph self-test ===="
  python3 tools/lint/lifetime_graph.py --self-test
  echo "==== [ci-lint] figdb-lint ===="
  # --sarif: the same findings in the exchange format review tooling
  # ingests, archived next to the build like the graph artifacts below.
  python3 tools/lint/figdb_lint.py -p build --sarif build/figdb_lint.sarif
  echo "==== [ci-lint] lock-order graph artifacts ===="
  # Archives the cross-TU acquisition-order graph next to the build
  # (lock_graph.json for tooling, .dot for humans: `dot -Tsvg`). The
  # cycle check itself already ran as figdb-lint rule lock-order-cycle;
  # this re-run is for the artifacts and the one-line summary.
  python3 tools/lint/lock_graph.py \
    --json-out build/lock_graph.json --dot-out build/lock_graph.dot
  echo "==== [ci-lint] snapshot-lifetime graph artifacts ===="
  # Same contract for the pin/snapshot lifetime graph: the escape check
  # already ran as rules snapshot-escape / pin-outlived; this re-run
  # archives the pins, bindings, and sanctioned hand-off points.
  python3 tools/lint/lifetime_graph.py \
    --json-out build/lifetime_graph.json --dot-out build/lifetime_graph.dot
}

# Coverage-guided fuzzing needs Clang (libFuzzer is a Clang runtime).
# Without it the exact same harness logic still runs: the plain tree
# builds every fuzz/ target as a corpus-replay binary registered under
# the ctest label `fuzz_regression`, so the committed corpus and any
# checked-in regression inputs are exercised on every compiler.
run_fuzz() {
  local secs="${FUZZ_SECONDS:-15}"
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "==== [ci-fuzz] clang++ not found: libFuzzer unavailable ===="
    echo "==== [ci-fuzz] falling back to corpus replay (ctest -L fuzz_regression) ===="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
      ctest --test-dir build --output-on-failure -j "$JOBS" \
        -L fuzz_regression ${CTEST_ARGS:-}
    return 0
  fi
  echo "==== [ci-fuzz] configure (build-fuzz: clang++, libFuzzer+ASan+UBSan) ===="
  cmake -B build-fuzz -S . \
    -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
    -DFIGDB_FUZZ=ON -DFIGDB_BUILD_TESTS=OFF >/dev/null
  echo "==== [ci-fuzz] build ===="
  cmake --build build-fuzz -j "$JOBS"
  local failed=""
  local bin name scratch
  for bin in build-fuzz/fuzz/fuzz_*; do
    [ -x "$bin" ] || continue
    name="$(basename "$bin")"
    # libFuzzer grows its first corpus dir in place; run on a scratch copy
    # so the committed seeds stay pristine. Promote inputs the run found
    # with -merge=1 by hand (see `ci/check.sh help`).
    scratch="build-fuzz/corpus/$name"
    rm -rf "$scratch"
    mkdir -p "$scratch" "build-fuzz/artifacts/$name"
    if [ -d "fuzz/corpus/$name" ]; then
      cp -r "fuzz/corpus/$name/." "$scratch/"
    fi
    echo "==== [ci-fuzz] $name (${secs}s budget) ===="
    if ! ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}" \
         UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}" \
         "$bin" -max_total_time="$secs" -max_len=4096 -timeout=30 \
           -print_final_stats=1 \
           -artifact_prefix="build-fuzz/artifacts/$name/" \
           "$scratch" "fuzz/regressions/$name" \
           2> "build-fuzz/$name.log"; then
      failed="$failed $name"
      tail -n 40 "build-fuzz/$name.log"
    fi
  done
  if [ -n "$failed" ]; then
    echo "==== [ci-fuzz] FAILED:$failed ===="
    echo "crashing inputs (reproduce with: <binary> <artifact>, then commit"
    echo "the input to fuzz/regressions/<target>/ so the replay tests pin it):"
    find build-fuzz/artifacts -type f | sed 's/^/  /'
    return 1
  fi
  echo "==== [ci-fuzz] all targets survived their budget ===="
}

# End-to-end smoke of the network serving front-end through the REAL user
# surface (the shell binary): a `listen` server in one process, `connect`
# queries over the wire from a second, a FIGDB_FAILPOINTS connection-reset
# drill injected under the run, then SIGTERM — the mode passes only if at
# least one query answered with results THROUGH the drill and the server
# reported a clean graceful drain. This is the one place the whole stack
# (shell grammar -> client retry -> framing -> quotas -> executor -> drain)
# is exercised process-to-process instead of in-process.
run_serve_smoke() {
  if [ ! -x build/examples/figdb_shell ]; then
    echo "==== [ci-serve] configure+build (build) ===="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
  fi
  local dir; dir="$(mktemp -d)"
  local slog="$dir/server.log" clog="$dir/client.log"

  # The generator is seed-deterministic, so a throwaway shell yields a tag
  # that is guaranteed to exist in the server's vocabulary too.
  local term
  term="$(printf 'gen 200\nshow 0\nquit\n' | build/examples/figdb_shell 2>/dev/null \
          | sed -n 's/^ *tag:\([a-z]*\).*/\1/p' | head -n1)"
  if [ -z "$term" ]; then
    echo "==== [ci-serve] could not extract a vocabulary term ===="
    return 1
  fi

  echo "==== [ci-serve] starting listen server (net/conn_reset drill) ===="
  # Resets the connection instead of writing the 4th and 5th responses: the
  # client must ride through both on its bounded retry (torn = retriable).
  FIGDB_FAILPOINTS="net/conn_reset:3:2" \
    build/examples/figdb_shell >"$slog" 2>&1 <<EOF &
gen 200
attach $dir/store
listen 0
EOF
  local server_pid=$!
  local port="" i
  for i in $(seq 1 100); do
    port="$(sed -n 's/.*listening on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$slog" | head -n1)"
    [ -n "$port" ] && break
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.2
  done
  if [ -z "$port" ]; then
    echo "==== [ci-serve] server never reached listening state ===="
    cat "$slog"
    kill -9 "$server_pid" 2>/dev/null || true
    return 1
  fi

  echo "==== [ci-serve] wire queries against 127.0.0.1:$port ===="
  {
    for i in $(seq 1 8); do echo "connect 127.0.0.1 $port $term"; done
    echo "quit"
  } | build/examples/figdb_shell >"$clog" 2>&1 || true
  local ok_count
  ok_count="$(grep -c 'result(s) in' "$clog" || true)"
  if [ "${ok_count:-0}" -lt 1 ]; then
    echo "==== [ci-serve] no wire query returned results ===="
    cat "$clog"
    kill -9 "$server_pid" 2>/dev/null || true
    return 1
  fi

  echo "==== [ci-serve] SIGTERM -> graceful drain ===="
  kill -TERM "$server_pid"
  for i in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.2
  done
  if kill -0 "$server_pid" 2>/dev/null; then
    echo "==== [ci-serve] server did not exit after SIGTERM ===="
    cat "$slog"
    kill -9 "$server_pid" 2>/dev/null || true
    return 1
  fi
  wait "$server_pid" 2>/dev/null || true
  if ! grep -q 'drained cleanly' "$slog"; then
    echo "==== [ci-serve] no clean-drain report in server output ===="
    cat "$slog"
    return 1
  fi
  echo "==== [ci-serve] $ok_count/8 queries answered through the drill; drain: ===="
  grep 'drained cleanly' "$slog"
  rm -rf "$dir"
}

# End-to-end smoke of the temporal serving layer through the REAL user
# surface (the shell binary): create a segmented store from a generated
# corpus, walk the whole window lifecycle — merge the sealed segments,
# expire the old window, list burst events — then re-attach from a second
# process and assert recovery landed on the committed window. This is the
# one place the temporal stack (shell grammar -> segment clock -> manifest
# protocols -> burst detector) is exercised through process restarts
# instead of in-process moves.
run_temporal_smoke() {
  if [ ! -x build/examples/figdb_shell ]; then
    echo "==== [ci-temporal] configure+build (build) ===="
    cmake -B build -S . >/dev/null
    cmake --build build -j "$JOBS"
  fi
  local dir; dir="$(mktemp -d)"
  local log1="$dir/lifecycle.log" log2="$dir/reattach.log"

  echo "==== [ci-temporal] segment lifecycle drill ===="
  printf 'gen 300\nsegments attach %s/segs 2 4\nsegments merge\nsegments expire 20\nsegments bursts 3\nquit\n' "$dir" \
    | build/examples/figdb_shell >"$log1" 2>&1 || true
  local want
  for want in 'created segmented store' 'merged sealed segments' \
              'retention at epoch 20'; do
    if ! grep -q "$want" "$log1"; then
      echo "==== [ci-temporal] lifecycle drill missing '$want' ===="
      cat "$log1"
      rm -rf "$dir"
      return 1
    fi
  done
  # Burst detection must answer either way (events or a typed "none").
  if ! grep -Eq 'burst event\(s\)|no bursts over' "$log1"; then
    echo "==== [ci-temporal] no burst-detection report ===="
    cat "$log1"
    rm -rf "$dir"
    return 1
  fi

  echo "==== [ci-temporal] re-attach from a fresh process ===="
  printf 'segments attach %s/segs\nquit\n' "$dir" \
    | build/examples/figdb_shell >"$log2" 2>&1 || true
  if ! grep -q 'recovered segmented store' "$log2"; then
    echo "==== [ci-temporal] recovery did not land on the committed window ===="
    cat "$log2"
    rm -rf "$dir"
    return 1
  fi
  # The expired window must stay expired across the restart: retention at
  # epoch 20 with a 4-epoch window leaves only the active bucket.
  if ! grep -q '1 segment(s)' "$log2"; then
    echo "==== [ci-temporal] re-attached window has the wrong segment count ===="
    cat "$log2"
    rm -rf "$dir"
    return 1
  fi
  echo "==== [ci-temporal] lifecycle + recovery assertions held ===="
  rm -rf "$dir"
}

run_tidy() {
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "==== [ci-tidy] clang-tidy not installed; skipping ===="
    return 0
  fi
  if [ ! -f build/compile_commands.json ]; then
    echo "==== [ci-tidy] configure (build) ===="
    cmake -B build -S . >/dev/null
  fi
  echo "==== [ci-tidy] clang-tidy (.clang-tidy config) ===="
  # Project sources only: dependencies and generated code are not ours to
  # tidy. -quiet keeps the output to actual diagnostics.
  git ls-files 'src/**/*.cpp' 'tools/lint/*.cpp' \
    | xargs -r clang-tidy -p build -quiet
}

case "$MODE" in
  plain)
    run_tree build ci-plain
    ;;
  asan)
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    ;;
  ubsan)
    run_tree build-ubsan ci-ubsan -DFIGDB_SANITIZE="undefined"
    ;;
  tsan)
    run_tsan_tree
    ;;
  deadlock)
    run_deadlock_tree
    ;;
  lifetime)
    run_lifetime_tree
    ;;
  fuzz)
    run_fuzz
    ;;
  serve-smoke)
    run_serve_smoke
    ;;
  temporal-smoke)
    run_temporal_smoke
    ;;
  lint)
    run_lint
    ;;
  tidy)
    run_tidy
    ;;
  all)
    run_tree build ci-plain
    run_tree build-asan ci-asan -DFIGDB_SANITIZE="address;undefined"
    run_tsan_tree
    run_deadlock_tree
    run_lifetime_tree
    run_serve_smoke
    run_temporal_smoke
    run_lint
    run_tidy
    ;;
  help)
    cat <<'EOF'
usage: ci/check.sh [all|plain|asan|ubsan|tsan|deadlock|lifetime|fuzz|serve-smoke|temporal-smoke|lint|tidy|help]

modes
  all    plain + asan + tsan + deadlock + lifetime + serve-smoke +
         temporal-smoke + lint + tidy (the default).
         The plain tree
         registers every fuzz/ target as a corpus-replay ctest case
         (label `fuzz_regression`), so the checked-in corpus is part of
         the default gate on any compiler.
  plain  build + full ctest, no sanitizers
  asan   AddressSanitizer + UndefinedBehaviorSanitizer tree
  ubsan  UBSan-only tree; halt_on_error=1 turns any UB report into a
         test failure instead of a log line
  tsan   ThreadSanitizer tree, `concurrency`-labeled suites only
  deadlock  runtime lock-order validator tree
         (-DFIGDB_DEADLOCK_DETECT=ON), `concurrency`-labeled suites
         only; the DeadlockDetectTest seeded-ABBA/abort suite compiles
         only in this tree
  lifetime  reclaimed-memory poisoning tree (-DFIGDB_LIFETIME_POISON=ON),
         `concurrency`-labeled suites only; retired snapshots are
         quarantined + pattern-filled and every accessor canary-checks,
         so a stale read aborts with retire + dereference provenance;
         the LifetimePoisonTest seeded use-after-unpin death suite
         compiles only in this tree
  fuzz   coverage-guided libFuzzer run of all fuzz/ targets under
         clang++ (FUZZ_SECONDS per target, default 15); without clang++
         it degrades to the corpus-replay ctest cases
  serve-smoke  process-to-process wire drill: figdb_shell `listen` server
         + `connect` client under a FIGDB_FAILPOINTS connection-reset
         drill, ending in a SIGTERM graceful-drain assertion
  temporal-smoke  process-restart temporal drill: figdb_shell `segments`
         lifecycle (attach, merge, expire, bursts) then a fresh-process
         re-attach asserting the committed window recovered
  lint   figdb-lint + lock-graph + lifetime-graph self-tests, then the
         repo invariants; also emits the cross-module lock-order and
         snapshot-lifetime graph artifacts (build/lock_graph.{json,dot},
         build/lifetime_graph.{json,dot}) and the findings as SARIF
         (build/figdb_lint.sarif)
  tidy   clang-tidy over the compilation database (skips if absent)

environment
  JOBS=N          build/test parallelism (default: nproc)
  CTEST_ARGS=...  extra ctest arguments (e.g. -R Robustness)
  FUZZ_SECONDS=N  fuzz-mode per-target time budget (default: 15)

corpus maintenance
  A fuzz run mutates a scratch copy under build-fuzz/corpus/<target>/;
  the committed seeds in fuzz/corpus/<target>/ never change by
  themselves. To promote coverage the run discovered, merge the scratch
  corpus back minimized:

    build-fuzz/fuzz/<target> -merge=1 fuzz/corpus/<target> \
        build-fuzz/corpus/<target>

  -merge=1 copies only inputs that add coverage, so the checked-in
  corpus stays small. Crashing inputs land in build-fuzz/artifacts/;
  after fixing the bug, commit the input to fuzz/regressions/<target>/
  so the plain-tree replay tests pin the fix forever.
EOF
    exit 0
    ;;
  *)
    echo "usage: ci/check.sh [all|plain|asan|ubsan|tsan|deadlock|lifetime|fuzz|serve-smoke|temporal-smoke|lint|tidy|help]" >&2
    exit 2
    ;;
esac

echo "==== all checks passed ===="
