// Deliberate Thread Safety Analysis violations — a canary, not shipped code.
//
// This translation unit is attached to the EXCLUDE_FROM_ALL target
// `figdb_tsa_violation`. It never builds as part of `all`; its one job is
// to prove that the analysis in a -DFIGDB_THREAD_SAFETY=ON tree has teeth:
//
//   cmake -B build-tsa -DCMAKE_CXX_COMPILER=clang++ -DFIGDB_THREAD_SAFETY=ON
//   cmake --build build-tsa --target figdb_tsa_violation   # MUST FAIL
//
// If that build ever succeeds, the annotation plumbing is broken (macros
// expanding to nothing under Clang, -Wthread-safety dropped from the
// flags, ...) and every annotation in the tree is verifying nothing.
// DESIGN.md §10 documents this repro as the acceptance check.
//
// Under GCC the attributes are no-ops, so this file also compiles quietly
// there — which is exactly why the target is excluded from `all`: it is
// meaningful only as a Clang analysis failure.

#include "util/thread_annotations.hpp"

namespace figdb::lint_canary {

class Violations {
 public:
  // Violation 1: reads a FIGDB_GUARDED_BY member with no lock held.
  // Clang: warning: reading variable 'counter_' requires holding mutex 'mu_'
  int ReadWithoutLock() const { return counter_; }

  // Violation 2: calls a FIGDB_REQUIRES function without the capability.
  // Clang: warning: calling function 'BumpLocked' requires holding mutex
  // 'mu_' exclusively
  void BumpWithoutLock() { BumpLocked(); }

  // Violation 3: acquires a mutex annotated FIGDB_EXCLUDES on entry.
  // Clang: warning: acquiring mutex 'mu_' requires negative capability
  void DoubleAcquire() FIGDB_EXCLUDES(mu_) {
    util::MutexLock outer(mu_);
    Reentrant();  // Reentrant() EXCLUDES(mu_), but mu_ is held here
  }

 private:
  void BumpLocked() FIGDB_REQUIRES(mu_) { ++counter_; }
  void Reentrant() FIGDB_EXCLUDES(mu_) { util::MutexLock lock(mu_); }

  mutable util::Mutex mu_;
  int counter_ FIGDB_GUARDED_BY(mu_) = 0;
};

int Run() {
  Violations v;
  v.BumpWithoutLock();
  v.DoubleAcquire();
  return v.ReadWithoutLock();
}

}  // namespace figdb::lint_canary

int main() { return figdb::lint_canary::Run(); }
