#!/usr/bin/env python3
"""lock_graph: cross-TU lock-acquisition-order analysis for figdb.

The static half of the deadlock-freedom layer (util/deadlock.hpp is the
runtime half). Reads every file under src/, reconstructs the global
lock-acquisition-order graph, and reports cycles:

  nodes  annotated Mutex/SharedMutex declarations. A declaration whose
         braced initializer is a string literal — `util::Mutex m_{"role"}`
         — names the lock's ROLE; same-named declarations share one node,
         so an order inversion between two subsystems is visible even
         though each TU only ever sees its own half. Unnamed locks get a
         per-file node ("src/x.cpp::mu_").
  edges  three sources, in the same direction "acquired first -> acquired
         next":
           nested    a MutexLock/SharedMutexLock/SharedLock constructed
                     while another guard is live in an enclosing scope of
                     the same function body (tracked by brace depth);
           requires  an acquisition inside a function annotated
                     FIGDB_REQUIRES(mu)/FIGDB_ACQUIRE(mu) — the caller
                     already holds mu, so mu orders before the new lock;
           declared  FIGDB_ACQUIRED_BEFORE("other") /
                     FIGDB_ACQUIRED_AFTER("other") on the declaration —
                     the documented order for nestings that cross function
                     boundaries, which textual scope tracking cannot see.
  cycles strongly connected components of that graph. Any SCC with more
         than one node — or a self-loop, which is two instances of one
         role held at once — is a potential ABBA deadlock and fails the
         `lock-order-cycle` rule in figdb_lint.py unless an edge on the
         cycle carries a reasoned waiver.

This is a lexical pass, deliberately: it runs without a compiler, on
every build, in milliseconds. The runtime registry (FIGDB_DEADLOCK_DETECT)
covers what lexical analysis cannot — orders established through calls,
function pointers, and data-dependent paths.

Standalone usage (figdb_lint.py also imports this module as a rule):
  tools/lint/lock_graph.py [--root DIR] [--json-out F] [--dot-out F]
                           [--self-test]
Exit codes: 0 acyclic (or self-test pass), 1 cycle found (or self-test
failure), 2 internal error — the same contract figdb_lint.py keeps.
--self-test seeds a deliberate ABBA inversion and an ordered pair into a
temp tree and requires exactly the cycle (and only the cycle) to be
found, so ci/check.sh proves the detector's teeth before trusting a
clean report.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

# The wrapper/detector implementation files define the vocabulary this
# pass greps for; scanning them would hallucinate nodes out of the class
# definitions themselves.
SKIP_FILES = {
    "src/util/thread_annotations.hpp",
    "src/util/deadlock.hpp",
    "src/util/deadlock.cpp",
}

DECL_RE = re.compile(
    r"\b(?:mutable\s+)?(?:util::)?(SharedMutex|Mutex)\s+(\w+)\s*"
    r"(?:\{\s*\"([^\"]+)\"\s*\})?\s*(?=[;=F{])"
)
# util::Mutex behind a unique_ptr (movable owners name the role in the
# make_unique argument instead of a member initializer).
UNIQUE_RE = re.compile(
    r"(\w+)\s*[={(]?\s*std::make_unique<\s*(?:util::)?(SharedMutex|Mutex)\s*>"
    r"\(\s*\"([^\"]+)\"\s*\)"
)
GUARD_RE = re.compile(
    r"\b(?:util::)?(SharedMutexLock|MutexLock|SharedLock)\s+\w+\s*"
    r"[({]([^;{}]+?)[)}]\s*;"
)
REQ_RE = re.compile(r"\bFIGDB_(?:REQUIRES|ACQUIRE)\s*\(([^()]+)\)")
ORDER_RE = re.compile(r"\bFIGDB_ACQUIRED_(BEFORE|AFTER)\s*\(([^)]*)\)")
STRING_RE = re.compile(r"\"([^\"]+)\"")


def trailing_ident(expr: str) -> str | None:
    """`*writer_mutex_` / `shard.mutex` / `st->mu` -> the member name."""
    m = re.search(r"([A-Za-z_]\w*)\s*$", expr.strip().rstrip("*&) \t"))
    return m.group(1) if m else None


def stem_of(rel: str) -> str:
    """serving_store.hpp and serving_store.cpp share a resolution scope."""
    return os.path.splitext(rel)[0]


class Graph:
    """The assembled lock-order graph plus everything a report needs."""

    def __init__(self):
        # node name -> list of {"file", "line"} declaration sites
        self.nodes: dict[str, list[dict]] = {}
        # (from, to) -> {"kind", "sites": [{"file", "line"}]}
        self.edges: dict[tuple[str, str], dict] = {}
        # var -> roles seen, for resolution diagnostics
        self.by_var: dict[str, set[str]] = {}
        self.by_file_var: dict[tuple[str, str], str] = {}
        self.by_stem_var: dict[tuple[str, str], set[str]] = {}
        # blocking calls made under a live guard (figdb_lint rule input):
        # {"file", "line", "lock", "what"}
        self.blocking: list[dict] = []

    def add_node(self, name: str, file: str, line: int) -> None:
        self.nodes.setdefault(name, []).append({"file": file, "line": line})

    def add_edge(self, frm: str, to: str, kind: str, file: str, line: int):
        self.nodes.setdefault(frm, [])
        self.nodes.setdefault(to, [])
        e = self.edges.setdefault((frm, to), {"kind": kind, "sites": []})
        e["sites"].append({"file": file, "line": line})

    def resolve(self, file_rel: str, var: str) -> str:
        """Variable name -> node name: same-file declaration first, then
        same-stem (hpp/cpp pair), then a globally unique name, else a
        per-file fallback node so the guard still participates."""
        role = self.by_file_var.get((file_rel, var))
        if role:
            return role
        stem_roles = self.by_stem_var.get((stem_of(file_rel), var), set())
        if len(stem_roles) == 1:
            return next(iter(stem_roles))
        roles = self.by_var.get(var, set())
        if len(roles) == 1:
            return next(iter(roles))
        return f"{file_rel}::{var}"

    def cycles(self) -> list[list[str]]:
        """SCCs with >1 node, plus self-loops, as sorted node lists."""
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]
        adj: dict[str, list[str]] = {}
        for (frm, to) in self.edges:
            adj.setdefault(frm, []).append(to)

        def strongconnect(root: str) -> None:
            # Iterative Tarjan: (node, iterator position) frames.
            work = [(root, 0)]
            while work:
                node, pos = work.pop()
                if pos == 0:
                    index[node] = low[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = adj.get(node, [])
                for i in range(pos, len(succs)):
                    nxt = succs[i]
                    if nxt not in index:
                        work.append((node, i + 1))
                        work.append((nxt, 0))
                        recurse = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if recurse:
                    continue
                if low[node] == index[node]:
                    comp = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        comp.append(w)
                        if w == node:
                            break
                    sccs.append(comp)
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        for node in sorted(self.nodes):
            if node not in index:
                strongconnect(node)
        out = []
        for comp in sccs:
            if len(comp) > 1 or (comp[0], comp[0]) in self.edges:
                out.append(sorted(comp))
        return sorted(out)

    def cycle_edges(self, cycle: list[str]) -> list[tuple[str, str, dict]]:
        members = set(cycle)
        return sorted(
            (frm, to, e)
            for (frm, to), e in self.edges.items()
            if frm in members and to in members
        )


BLOCKING_PATTERNS = (
    (re.compile(r"\bsleep_(?:for|until)\s*\("), "a thread sleep"),
    (re.compile(r"\bfopen\s*\("), "file I/O (fopen)"),
    (
        re.compile(r"\bstd::(?:i|o)?fstream\b"),
        "file I/O (fstream)",
    ),
    (re.compile(r"\bAtomicWriteFile\s*\("), "durable file I/O"),
    (re.compile(r"(?:\.|->)\s*Query\s*\("), "a FigClient network call"),
    (re.compile(r"\bSendAll\s*\("), "a socket send"),
    (re.compile(r"\bRecvSome\s*\("), "a socket receive"),
)


def scan_declarations(graph: Graph, rel: str, text: str) -> None:
    """First pass: lock member declarations, role names, declared order.
    Declarations are matched against the whole statement (physical lines
    joined up to the terminating ';') so a wrapped initializer or a
    trailing FIGDB_ACQUIRED_BEFORE does not hide the role name; a match
    only counts on the line where it starts, so the join cannot double-
    count a declaration that begins on a later line."""
    lines = text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        stmt = line
        for follow in lines[lineno : lineno + 4]:
            if ";" in stmt:
                break
            stmt += " " + follow
        for m in list(DECL_RE.finditer(stmt)) + list(UNIQUE_RE.finditer(stmt)):
            if m.start() >= len(line):
                continue  # starts on a continuation line: its own turn
            if m.re is DECL_RE:
                var, role = m.group(2), m.group(3)
            else:
                var, role = m.group(1), m.group(3)
            node = role if role else f"{rel}::{var}"
            graph.add_node(node, rel, lineno)
            graph.by_var.setdefault(var, set()).add(node)
            graph.by_file_var[(rel, var)] = node
            graph.by_stem_var.setdefault((stem_of(rel), var), set()).add(node)
            for om in ORDER_RE.finditer(stmt):
                for other in STRING_RE.findall(om.group(2)):
                    if om.group(1) == "BEFORE":
                        graph.add_edge(node, other, "declared", rel, lineno)
                    else:
                        graph.add_edge(other, node, "declared", rel, lineno)


def scan_scopes(graph: Graph, rel: str, text: str) -> None:
    """Second pass: brace-depth walk recording nested and REQUIRES-implied
    acquisition edges plus blocking calls made under a live guard."""
    events: list[tuple[int, int, str, object]] = []  # (offset, line, kind, m)
    line_at: list[int] = []
    line = 1
    for ch in text:
        line_at.append(line)
        if ch == "\n":
            line += 1
    for m in GUARD_RE.finditer(text):
        events.append((m.start(), line_at[m.start()], "guard", m))
    for m in REQ_RE.finditer(text):
        events.append((m.start(), line_at[m.start()], "requires", m))
    for pat, what in BLOCKING_PATTERNS:
        for m in pat.finditer(text):
            events.append((m.start(), line_at[m.start()], "blocking", what))
    events.sort(key=lambda e: e[0])

    depth = 0
    guards: list[dict] = []  # {"node", "depth", "line", "pseudo"}
    pending: list[str] = []  # REQUIRES nodes awaiting the body's '{'
    ei = 0
    for off, ch in enumerate(text):
        while ei < len(events) and events[ei][0] == off:
            _, lineno, kind, payload = events[ei]
            ei += 1
            if kind == "guard":
                var = trailing_ident(payload.group(2))
                if var is None:
                    continue
                node = graph.resolve(rel, var)
                for g in guards:
                    graph.add_edge(
                        g["node"],
                        node,
                        "requires" if g["pseudo"] else "nested",
                        rel,
                        lineno,
                    )
                guards.append(
                    {"node": node, "depth": depth, "line": lineno,
                     "pseudo": False}
                )
            elif kind == "requires":
                for arg in payload.group(1).split(","):
                    var = trailing_ident(arg)
                    if var:
                        pending.append(graph.resolve(rel, var))
            elif kind == "blocking" and guards:
                graph.blocking.append(
                    {
                        "file": rel,
                        "line": lineno,
                        "lock": guards[-1]["node"],
                        "what": payload,
                    }
                )
        if ch == "{":
            depth += 1
            for node in pending:
                guards.append(
                    {"node": node, "depth": depth, "line": line_at[off],
                     "pseudo": True}
                )
            pending = []
        elif ch == "}":
            depth -= 1
            guards = [g for g in guards if g["depth"] <= depth]
        elif ch == ";" and depth == 0:
            pending = []  # declaration without a body
        elif ch == ";" and pending:
            # A ';' before any '{' at this nesting means the annotated
            # function was a pure declaration; its REQUIRES binds nothing.
            pending = []
    # A file ending mid-scope is malformed C++; nothing to do.


def analyze(files, root: str) -> Graph:
    """Builds the graph from SourceFile-like objects (need .path and
    .code_with_strings). Only src/ participates: the production lock
    graph is the contract; tests seed deliberate violations."""
    graph = Graph()
    scannable = []
    for sf in files:
        rel = os.path.relpath(sf.path, root).replace(os.sep, "/")
        if not rel.startswith("src/") or rel in SKIP_FILES:
            continue
        scannable.append((rel, sf.code_with_strings))
    for rel, text in sorted(scannable):
        scan_declarations(graph, rel, text)
    for rel, text in sorted(scannable):
        scan_scopes(graph, rel, text)
    return graph


def to_json(graph: Graph) -> dict:
    return {
        "schema_version": 1,
        "nodes": [
            {"name": name, "declared_at": sites}
            for name, sites in sorted(graph.nodes.items())
        ],
        "edges": [
            {"from": frm, "to": to, "kind": e["kind"], "sites": e["sites"]}
            for (frm, to), e in sorted(graph.edges.items())
        ],
        "cycles": graph.cycles(),
        "blocking_under_lock": graph.blocking,
    }


def to_dot(graph: Graph) -> str:
    cyclic = {n for cycle in graph.cycles() for n in cycle}
    out = ["digraph figdb_lock_order {", "  rankdir=LR;"]
    for name in sorted(graph.nodes):
        attrs = ' [color=red, fontcolor=red]' if name in cyclic else ""
        out.append(f'  "{name}"{attrs};')
    for (frm, to), e in sorted(graph.edges.items()):
        site = e["sites"][0]
        style = {"nested": "solid", "requires": "dashed",
                 "declared": "dotted"}[e["kind"]]
        color = ", color=red" if frm in cyclic and to in cyclic else ""
        out.append(
            f'  "{frm}" -> "{to}" '
            f'[style={style}, label="{site["file"]}:{site["line"]}"{color}];'
        )
    out.append("}")
    return "\n".join(out) + "\n"


# --------------------------------------------------------------------------
# Self-test fixtures: one deliberate ABBA inversion (must yield exactly one
# cycle through its two roles) and one consistently ordered pair (must
# contribute edges but no cycle).
# --------------------------------------------------------------------------

SELF_TEST_SEEDS = {
    "src/serve/abba_seed.cpp": """\
#include "util/thread_annotations.hpp"
namespace figdb::serve {
class AbbaSeed {
 public:
  void Forward() {
    util::MutexLock first(alpha_);
    util::MutexLock second(beta_);
  }
  void Backward() {
    util::MutexLock first(beta_);
    util::MutexLock second(alpha_);
  }

 private:
  util::Mutex alpha_{"selftest.Abba.alpha"};
  util::Mutex beta_{"selftest.Abba.beta"};
};
}  // namespace figdb::serve
""",
    "src/serve/ordered_seed.cpp": """\
#include "util/thread_annotations.hpp"
namespace figdb::serve {
class OrderedSeed {
 public:
  void Publish() {
    util::MutexLock first(outer_);
    util::MutexLock second(inner_);
  }
  void Drain() {
    util::MutexLock first(outer_);
    util::MutexLock second(inner_);
  }

 private:
  util::Mutex outer_{"selftest.Ordered.outer"};
  util::Mutex inner_{"selftest.Ordered.inner"};
};
}  // namespace figdb::serve
""",
}


def self_test() -> int:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import figdb_lint

    with tempfile.TemporaryDirectory(prefix="figdb-lockgraph-selftest-") as tmp:
        for rel, content in SELF_TEST_SEEDS.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        files = [
            figdb_lint.SourceFile(os.path.join(dirpath, name))
            for dirpath, _, names in os.walk(tmp)
            for name in sorted(names)
        ]
        graph = analyze(files, tmp)
        cycles = graph.cycles()
        errors = []
        abba = [
            c for c in cycles
            if {n.split(".")[-1] for n in c} >= {"alpha", "beta"}
            or any("Abba" in n for n in c)
        ]
        if not abba:
            errors.append(
                "expected the seeded ABBA inversion to form a cycle, got none"
            )
        ordered = [c for c in cycles if any("Ordered" in n for n in c)]
        if ordered:
            errors.append(
                f"ordered no-cycle seed appeared in a cycle: {ordered[0]}"
            )
        if len(cycles) != len(abba):
            errors.append(f"unexpected extra cycles: {cycles}")
        if errors:
            print("lock-graph: SELF-TEST FAILED")
            for e in errors:
                print(f"  {e}")
            return 1
        print(
            f"lock-graph: self-test ok ({len(graph.nodes)} seeded locks, "
            f"{len(graph.edges)} edges, exactly the seeded ABBA cycle found)"
        )
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        ),
        help="repository root (default: this script's repo)",
    )
    ap.add_argument("--json-out", help="write the graph as JSON here")
    ap.add_argument("--dot-out", help="write a Graphviz DOT rendering here")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify cycle detection on seeded fixtures, then exit",
    )
    args = ap.parse_args()
    if args.self_test:
        return self_test()

    # Deferred import: figdb_lint imports this module at top level, so the
    # reverse import lives inside main() to keep module load acyclic —
    # fitting, for this tool.
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import figdb_lint

    files = []
    src = os.path.join(args.root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                files.append(figdb_lint.SourceFile(os.path.join(dirpath, name)))
    graph = analyze(files, args.root)
    cycles = graph.cycles()

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(to_json(graph), f, indent=2, sort_keys=True)
            f.write("\n")
    if args.dot_out:
        with open(args.dot_out, "w", encoding="utf-8") as f:
            f.write(to_dot(graph))

    n_edges = len(graph.edges)
    print(
        f"lock-graph: {len(graph.nodes)} locks, {n_edges} ordered edges, "
        f"{len(cycles)} cycle(s)"
    )
    for cycle in cycles:
        print(f"  cycle: {' -> '.join(cycle)} -> {cycle[0]}")
        for frm, to, e in graph.cycle_edges(cycle):
            site = e["sites"][0]
            print(
                f"    {frm} -> {to} ({e['kind']} at "
                f"{site['file']}:{site['line']})"
            )
    return 1 if cycles else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Exception as exc:  # stable exit-code contract: 2 = tool error
        print(f"lock-graph: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
