#!/usr/bin/env python3
"""lifetime_graph: cross-TU snapshot-escape / pin-outlived analysis.

The static half of the epoch-lifetime safety layer (util/lifetime.hpp's
poison quarantine is the dynamic half). Every pointer derived from a
published snapshot is only valid while an EpochReclaimer reader pin is
alive; this pass reconstructs, lexically and across TUs, where pins are
held and where snapshot-derived values flow, and flags flows that can
outlive their pin:

  pins      RAII reader-pin scopes: `EpochReclaimer::ReadGuard g(...)`
            declarations, `std::make_unique<...ReadGuard>` bound to a
            variable, and `ServingStore::Acquire()` handles (a
            SnapshotHandle owns its guard, so the handle variable is both
            a pin and a tracked value). A variable that RECEIVES a
            ReadGuard into a container it owns (`view->guards.push_back(
            make_unique<ReadGuard>(...))`) becomes a PIN CARRIER: values
            stored next to the pins it carries share their lifetime.
  bindings  variables bound to snapshot-derived values: loads of the
            published atomic (`current_.load(...)`, `...current.load`),
            `SnapshotOf(...)`, `Acquire()`, typed snapshot-pointer
            declarations/assignments, and pointer/reference derivations
            off an already-tracked variable.
  findings  two rules, both wired into figdb_lint.py:
            snapshot-escape  a tracked value stored into a member,
                             returned from a function, or captured by a
                             lambda handed to a thread/pool/deferred sink
                             — unless the escaping statement also carries
                             a pin (SnapshotHandle construction) or the
                             destination is a pin carrier (PinnedView).
            pin-outlived     a snapshot load with no live pin in scope,
                             or a use of a tracked variable after the pin
                             it was bound under has left scope.

Waiver: FIGDB_PIN_ESCAPE_OK("reason") on the flagged line or up to three
lines above (util/lifetime.hpp also rejects an empty reason at compile
time). figdb-lint's comment waivers (`// figdb-lint: allow(rule): why`)
work as everywhere else.

Like lock_graph.py this is a lexical pass on purpose: no compiler, runs
in milliseconds on every build. What lexical analysis cannot see —
pointers laundered through containers, fields, or call chains — is
exactly what the FIGDB_LIFETIME_POISON tree catches at run time.

Standalone usage (figdb_lint.py also imports this module as two rules):
  tools/lint/lifetime_graph.py [--root DIR] [--json-out F] [--dot-out F]
                               [--self-test]
Exit codes: 0 clean, 1 findings (or self-test failure), 2 internal error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

# The reclaimer/canary implementation defines the vocabulary this pass
# greps for; scanning it would hallucinate pins out of the definitions.
SKIP_FILES = {
    "src/util/epoch.hpp",
    "src/util/epoch.cpp",
    "src/util/lifetime.hpp",
    "src/util/lifetime.cpp",
}

# --- pins ------------------------------------------------------------------
PIN_DECL_RE = re.compile(
    r"\b(?:util::)?EpochReclaimer::ReadGuard\s+(\w+)\s*[({]"
)
PIN_UNIQUE_RE = re.compile(
    r"std::make_unique<\s*(?:util::)?EpochReclaimer::ReadGuard\s*>"
)
PIN_UNIQUE_BIND_RE = re.compile(
    r"\b(?:auto|std::unique_ptr<[^;=]*>)\s*(\w+)\s*=\s*"
    r"std::make_unique<\s*(?:util::)?EpochReclaimer::ReadGuard\s*>"
)
# `view->guards.push_back(make_unique<ReadGuard>(...))`: `view` carries
# the pin from here on.
PIN_CARRIER_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)[\w.\->\[\]]*?(?:push_back|emplace_back)\s*\(\s*"
    r"std::make_unique<\s*(?:util::)?EpochReclaimer::ReadGuard\s*>"
)

# --- snapshot sources ------------------------------------------------------
# Reader-side loads only: `.exchange(...)` is the writer swapping a
# snapshot OUT (the retire path), not a reader acquiring one.
SOURCE_RES = (
    ("load", re.compile(r"\bcurrent_?\s*\.\s*load\s*\(")),
    ("snapshot-of", re.compile(r"(?:\.|->)\s*SnapshotOf\s*\(")),
    ("acquire", re.compile(r"(?:\.|->)\s*Acquire\s*\(\s*\)")),
)
# Acquire returns a self-pinning handle: its binding is a pin, and the
# source expression needs no surrounding pin of its own.
SELF_PINNING = {"acquire"}

SNAPSHOT_TYPE_RE = r"(?:Store|Shard)Snapshot"
# `const StoreSnapshot* snap = <expr>` — typed pointer/reference binding.
TYPED_BIND_RE = re.compile(
    r"\b(?:const\s+)?[\w:]*" + SNAPSHOT_TYPE_RE + r"\s*[*&]\s*(\w+)\s*=\s*(.+)"
)
# `const StoreSnapshot* snap = nullptr;` / bare declaration: registers the
# variable's scope depth so a later assignment-bind can outlive blocks.
TYPED_DECL_RE = re.compile(
    r"\b(?:const\s+)?[\w:]*" + SNAPSHOT_TYPE_RE + r"\s*\*\s*(\w+)\s*(?:=\s*nullptr\s*)?;"
)
# `auto handle = <expr>` — tracked only if the RHS contains a source.
AUTO_BIND_RE = re.compile(r"\bauto\s*[&*]?\s*(\w+)\s*=\s*(.+)")
# `snap = current_.load(...)` — rebinding an existing variable.
ASSIGN_BIND_RE = re.compile(r"^\s*(\w+)\s*=\s*(.+)")

# --- escapes ---------------------------------------------------------------
# `cached_ = snap;` / `this->last_ = ...` — member-store by the `name_`
# convention every figdb member follows.
MEMBER_STORE_RE = re.compile(r"(?:this->)?\b(\w+_)\s*=\s*")
# `owner->snaps.push_back(<expr>)` — container store; group 1 is the
# owning object (sanctioned when it is a pin carrier).
CONTAINER_STORE_RE = re.compile(
    r"\b(\w+)\s*(?:\.|->)[\w.\->\[\]]*?(?:push_back|emplace_back|insert|assign)\s*\("
)
RETURN_RE = re.compile(r"^\s*return\b")
# Statements that hand a lambda to something that may outlive the scope.
ASYNC_SINK_RE = re.compile(
    r"std::thread\b|std::async\b|(?:\.|->)\s*(?:Submit|ParallelFor|Retire|Detach|detach)\s*\("
)

MACRO_WAIVER_RE = re.compile(r'FIGDB_PIN_ESCAPE_OK\s*\(\s*"([^"]*)"\s*\)')
MACRO_ANY_RE = re.compile(r"FIGDB_PIN_ESCAPE_OK\s*\(")
# A waiver covers its own line plus the next three (wrapped statements).
MACRO_WAIVER_REACH = 3


def escaping_sources(stmt: str) -> list[str]:
    """Source expressions whose RESULT can leave the statement as a
    pointer. `current_.load(...)->Epoch()` dereferences in place — only a
    value extracted under the statement's own pin travels, never the
    pointer — so immediately-dereferenced sources don't count."""
    out = []
    for kind, pat in SOURCE_RES:
        for m in pat.finditer(stmt):
            i = stmt.find("(", m.end() - 1)
            if i < 0:
                continue
            depth = 0
            while i < len(stmt):
                if stmt[i] == "(":
                    depth += 1
                elif stmt[i] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            rest = stmt[i + 1 :].lstrip()
            if not (rest.startswith("->") or rest.startswith(".")):
                out.append(kind)
                break
    return out


def bare_use_re(var: str) -> re.Pattern:
    """A mention of `var` as a whole value — not the receiver of a member
    access or call, which extracts FROM the snapshot rather than moving
    the pointer itself."""
    return re.compile(r"\b" + re.escape(var) + r"\b(?!\s*(?:\.|->|\(|_))")


def any_use_re(var: str) -> re.Pattern:
    return re.compile(r"\b" + re.escape(var) + r"\b")


class Graph:
    """Everything the pass learned: pins, bindings, findings, waivers."""

    def __init__(self):
        # [{"file", "line", "var", "kind"}] kind: guard|handle|carrier
        self.pins: list[dict] = []
        # [{"file", "line", "var", "source", "pin"}] pin: var name or None
        self.bindings: list[dict] = []
        # [{"file", "line", "rule", "message"}]
        self.findings: list[dict] = []
        # [{"file", "line", "reason"}] — FIGDB_PIN_ESCAPE_OK sites
        self.waivers: list[dict] = []
        # escapes sanctioned by a co-located pin (kept for the artifacts:
        # they are the sanctioned hand-off points reviewers care about)
        self.sanctioned: list[dict] = []
        self.files_scanned = 0


def scan_file(graph: Graph, rel: str, text: str) -> None:
    """One brace-depth walk over a comment-stripped file. Line-oriented:
    each statement is analyzed joined to its ';' (bounded look-ahead), on
    the line where it starts; continuation lines only update depth."""
    lines = text.splitlines()

    waive_until: dict[int, str] = {}  # line -> reason, from macro waivers
    for lineno, line in enumerate(lines, start=1):
        m = MACRO_WAIVER_RE.search(line)
        if m:
            graph.waivers.append(
                {"file": rel, "line": lineno, "reason": m.group(1)}
            )
            for covered in range(lineno, lineno + MACRO_WAIVER_REACH + 1):
                waive_until[covered] = m.group(1)
        elif MACRO_ANY_RE.search(line):
            # Reason blanked or malformed; still positionally a waiver —
            # figdb_lint's `waiver` rule rejects the missing reason.
            graph.waivers.append({"file": rel, "line": lineno, "reason": ""})
            for covered in range(lineno, lineno + MACRO_WAIVER_REACH + 1):
                waive_until[covered] = ""

    depth = 0
    # var -> {"depth", "line", "pin"(var|None), "stale_line"(int|None)}
    tracked: dict[str, dict] = {}
    # var -> {"depth", "line", "kind"} for live pins/carriers
    pins: dict[str, dict] = {}
    # typed snapshot-pointer declarations awaiting a later assignment-bind
    declared: dict[str, int] = {}
    prev_code = ";"  # last non-blank stripped line (for continuations)

    def live_pin() -> str | None:
        return next(iter(pins), None)

    def emit(lineno: int, rule: str, message: str) -> None:
        if lineno in waive_until:
            return
        graph.findings.append(
            {"file": rel, "line": lineno, "rule": rule, "message": message}
        )

    def stmt_mentions_pin(stmt: str) -> str | None:
        for var in pins:
            if any_use_re(var).search(stmt):
                return var
        return None

    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        is_continuation = bool(prev_code) and not prev_code.endswith(
            (";", "{", "}", ":", ">")
        ) and not prev_code.startswith("#")
        if stripped:
            prev_code = stripped

        if stripped and not is_continuation:
            stmt = line
            for follow in lines[lineno : lineno + 4]:
                if ";" in stmt or "{" in stmt:
                    break
                stmt += " " + follow

            sources = [
                kind for kind, pat in SOURCE_RES if pat.search(stmt)
            ]

            # --- pins -------------------------------------------------
            pm = PIN_DECL_RE.search(stmt)
            if pm and pm.group(1) != "ReadGuard":
                pins[pm.group(1)] = {
                    "depth": depth, "line": lineno, "kind": "guard"
                }
                graph.pins.append(
                    {"file": rel, "line": lineno, "var": pm.group(1),
                     "kind": "guard"}
                )
            um = PIN_UNIQUE_BIND_RE.search(stmt)
            if um:
                pins[um.group(1)] = {
                    "depth": depth, "line": lineno, "kind": "guard"
                }
                graph.pins.append(
                    {"file": rel, "line": lineno, "var": um.group(1),
                     "kind": "guard"}
                )
            cm = PIN_CARRIER_RE.search(stmt)
            if cm:
                pins[cm.group(1)] = {
                    "depth": depth, "line": lineno, "kind": "carrier"
                }
                graph.pins.append(
                    {"file": rel, "line": lineno, "var": cm.group(1),
                     "kind": "carrier"}
                )

            # --- stale / unpinned uses --------------------------------
            for var, info in tracked.items():
                if info.get("stale") and any_use_re(var).search(stmt):
                    emit(
                        lineno,
                        "pin-outlived",
                        f"use of '{var}' after its reader pin left scope "
                        f"(pinned binding at line {info['line']}) — the "
                        "snapshot may already be reclaimed; widen the "
                        "pin's scope to cover every use",
                    )
                    info["stale"] = False  # one finding per escape site

            unpinned_source = [
                k for k in sources if k not in SELF_PINNING
            ] and live_pin() is None and not cm
            if unpinned_source and not stmt_mentions_pin(stmt):
                emit(
                    lineno,
                    "pin-outlived",
                    "snapshot pointer loaded with no live reader pin in "
                    "scope — construct util::EpochReclaimer::ReadGuard "
                    "(pin first, load second) so reclamation cannot race "
                    "this read",
                )

            # --- bindings ---------------------------------------------
            bound_var = None
            tm = TYPED_BIND_RE.search(stmt)
            am = AUTO_BIND_RE.search(stmt)
            sm = ASSIGN_BIND_RE.match(stmt)
            rhs_tracked = [
                v for v in tracked
                if not tracked[v].get("stale") and bare_use_re(v).search(stmt)
            ]
            if tm and (sources or rhs_tracked):
                bound_var = tm.group(1)
                bind_depth = depth
            elif am and sources:
                bound_var = am.group(1)
                bind_depth = depth
            elif sm and sm.group(1) in declared and (sources or rhs_tracked):
                bound_var = sm.group(1)
                bind_depth = declared[sm.group(1)]
            if bound_var:
                is_handle = "acquire" in sources
                tracked[bound_var] = {
                    "depth": bind_depth,
                    "line": lineno,
                    "pin": bound_var if is_handle else live_pin(),
                    "stale": False,
                }
                if is_handle:
                    pins[bound_var] = {
                        "depth": depth, "line": lineno, "kind": "handle"
                    }
                    graph.pins.append(
                        {"file": rel, "line": lineno, "var": bound_var,
                         "kind": "handle"}
                    )
                graph.bindings.append(
                    {
                        "file": rel,
                        "line": lineno,
                        "var": bound_var,
                        "source": (sources + ["derived"])[0],
                        "pin": tracked[bound_var]["pin"],
                    }
                )
            dm = TYPED_DECL_RE.search(stmt)
            if dm:
                declared[dm.group(1)] = depth

            # --- escapes ----------------------------------------------
            escaping = rhs_tracked if not bound_var else [
                v for v in rhs_tracked if v != bound_var
            ]
            escape_payload = bool(escaping) or bool(
                [k for k in escaping_sources(stmt) if k not in SELF_PINNING]
            )
            what = (
                f"snapshot-derived value '{escaping[0]}'" if escaping
                else "a snapshot-derived value"
            )
            pin_on_stmt = stmt_mentions_pin(stmt)

            msm = MEMBER_STORE_RE.search(stmt)
            csm = CONTAINER_STORE_RE.search(stmt)
            if escape_payload and msm and not bound_var:
                emit(
                    lineno,
                    "snapshot-escape",
                    f"{what} stored into member '{msm.group(1)}', which "
                    "outlives the reader pin — keep it in a structure "
                    "that also owns the pin (SnapshotHandle / a pinned "
                    "view), or waive with FIGDB_PIN_ESCAPE_OK(reason)",
                )
            elif escape_payload and csm and not cm:
                owner = csm.group(1)
                if pins.get(owner, {}).get("kind") == "carrier":
                    graph.sanctioned.append(
                        {"file": rel, "line": lineno, "owner": owner,
                         "kind": "carrier-store"}
                    )
                else:
                    emit(
                        lineno,
                        "snapshot-escape",
                        f"{what} stored into container owned by "
                        f"'{owner}', which does not carry the reader pin "
                        "— store the ReadGuard in the same structure "
                        "first (PinnedView pattern), or waive with "
                        "FIGDB_PIN_ESCAPE_OK(reason)",
                    )
            elif escape_payload and RETURN_RE.search(stmt):
                if pin_on_stmt:
                    graph.sanctioned.append(
                        {"file": rel, "line": lineno, "owner": pin_on_stmt,
                         "kind": "return-with-pin"}
                    )
                else:
                    emit(
                        lineno,
                        "snapshot-escape",
                        f"{what} returned while its reader pin dies at "
                        "scope exit — return a pin-owning handle "
                        "(ServingStore::Acquire style) instead, or waive "
                        "with FIGDB_PIN_ESCAPE_OK(reason)",
                    )
            elif escaping and ASYNC_SINK_RE.search(stmt):
                if pin_on_stmt:
                    graph.sanctioned.append(
                        {"file": rel, "line": lineno, "owner": pin_on_stmt,
                         "kind": "async-with-pin"}
                    )
                else:
                    emit(
                        lineno,
                        "snapshot-escape",
                        f"{what} captured by a lambda handed to a "
                        "thread/pool/deferred sink that can outlive the "
                        "pin scope — capture a pin-owning handle or a "
                        "pinned view instead, or waive with "
                        "FIGDB_PIN_ESCAPE_OK(reason)",
                    )

        # --- scope bookkeeping (every line, continuations included) ---
        for ch in line:
            if ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                dead_pins = [
                    v for v, p in pins.items() if p["depth"] > depth
                ]
                for v in dead_pins:
                    del pins[v]
                if dead_pins:
                    for var, info in tracked.items():
                        if (
                            info["pin"] in dead_pins
                            and info["depth"] <= depth
                        ):
                            info["stale"] = True
                tracked = {
                    v: i for v, i in tracked.items() if i["depth"] <= depth
                }
                declared = {
                    v: d for v, d in declared.items() if d <= depth
                }


def analyze(files, root: str) -> Graph:
    """Builds the lifetime graph from SourceFile-like objects (need .path
    and .code). Only src/ participates: the production pin discipline is
    the contract; tests seed deliberate violations."""
    graph = Graph()
    for sf in sorted(files, key=lambda s: s.path):
        rel = os.path.relpath(sf.path, root).replace(os.sep, "/")
        if not rel.startswith("src/") or rel in SKIP_FILES:
            continue
        if not rel.endswith((".hpp", ".cpp", ".h", ".cc")):
            continue
        text = getattr(sf, "code_with_strings", None) or sf.code
        scan_file(graph, rel, text)
        graph.files_scanned += 1
    return graph


def to_json(graph: Graph) -> dict:
    return {
        "schema_version": 1,
        "pins": graph.pins,
        "bindings": graph.bindings,
        "findings": graph.findings,
        "sanctioned_escapes": graph.sanctioned,
        "waivers": graph.waivers,
        "summary": {
            "files_scanned": graph.files_scanned,
            "pins": len(graph.pins),
            "bindings": len(graph.bindings),
            "findings": len(graph.findings),
        },
    }


def to_dot(graph: Graph) -> str:
    """Pins as boxes, bindings as edges pin -> var, findings in red."""
    out = ["digraph figdb_lifetime {", "  rankdir=LR;"]
    for p in graph.pins:
        label = f"{p['var']}\\n{p['file']}:{p['line']}"
        out.append(
            f'  "pin:{p["file"]}:{p["line"]}" '
            f'[shape=box, label="{label}", color=blue];'
        )
    for b in graph.bindings:
        label = f"{b['var']}\\n{b['file']}:{b['line']}"
        node = f'bind:{b["file"]}:{b["line"]}'
        out.append(f'  "{node}" [label="{label}"];')
        if b["pin"]:
            pin_sites = [
                p for p in graph.pins
                if p["file"] == b["file"] and p["var"] == b["pin"]
                and p["line"] <= b["line"]
            ]
            if pin_sites:
                p = pin_sites[-1]
                out.append(
                    f'  "pin:{p["file"]}:{p["line"]}" -> "{node}";'
                )
    for i, f in enumerate(graph.findings):
        label = f"{f['rule']}\\n{f['file']}:{f['line']}"
        out.append(
            f'  "finding:{i}" [shape=octagon, label="{label}", '
            "color=red, fontcolor=red];"
        )
    out.append("}")
    return "\n".join(out) + "\n"


# --------------------------------------------------------------------------
# Self-test: seeded escape/outlived fixtures plus clean and waived
# counterparts, mirroring figdb_lint's EXPECT_SEEDED / EXPECT_CLEAN split.
# --------------------------------------------------------------------------

SELF_TEST_SEEDS = {
    # A pinned load whose result is parked in a member: the member
    # outlives the guard, so this is the canonical snapshot-escape.
    "src/serve/escape_member.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
class WarmCache {
 public:
  void Warm() {
    util::EpochReclaimer::ReadGuard guard(ebr_);
    const StoreSnapshot* snap = current_.load(std::memory_order_seq_cst);
    cached_ = snap;  // escapes the pin
  }
 private:
  util::EpochReclaimer ebr_;
  std::atomic<const StoreSnapshot*> current_;
  const StoreSnapshot* cached_ = nullptr;
};
}  // namespace figdb::serve
""",
    # Returning the raw pointer: the pin dies at the closing brace.
    "src/serve/escape_return.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
const StoreSnapshot* Leak(const Published& p) {
  util::EpochReclaimer::ReadGuard guard(p.ebr);
  const StoreSnapshot* snap = p.current_.load(std::memory_order_seq_cst);
  return snap;  // escapes the pin
}
}  // namespace figdb::serve
""",
    # Captured by a pool task that may run after the guard is gone.
    "src/serve/escape_lambda.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
void Fan(util::ThreadPool& pool, const Published& p) {
  util::EpochReclaimer::ReadGuard guard(p.ebr);
  const StoreSnapshot* snap = p.current_.load(std::memory_order_seq_cst);
  pool.Submit([snap] { snap->Engine(); });  // outlives the pin
}
}  // namespace figdb::serve
""",
    # Bound under a pin in an inner block, used after the block closed.
    "src/serve/outlived_use.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
void Stale(const Published& p) {
  const StoreSnapshot* snap = nullptr;
  {
    util::EpochReclaimer::ReadGuard guard(p.ebr);
    snap = p.current_.load(std::memory_order_seq_cst);
  }
  snap->Engine();  // the pin died at the brace above
}
}  // namespace figdb::serve
""",
    # A load with no pin anywhere in scope.
    "src/serve/unpinned_load.cpp": """\
#include "shard/sharded_store.hpp"
namespace figdb::serve {
std::uint64_t Hot(const shard::ShardedStore& store) {
  return store.SnapshotOf(0)->Lsn();  // no ReadGuard in scope
}
}  // namespace figdb::serve
""",
    # Clean: pin first, load second, every use inside the pin's scope.
    "src/serve/clean_pinned.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
void Serve(const Published& p) {
  util::EpochReclaimer::ReadGuard guard(p.ebr);
  const StoreSnapshot* snap = p.current_.load(std::memory_order_seq_cst);
  Use(snap->Engine());
  Use(snap->Lsn());
}
}  // namespace figdb::serve
""",
    # Clean: the sanctioned hand-off — pointer and guard escape together
    # inside one handle, so the pin travels with the value.
    "src/serve/handle_return.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
SnapshotHandle AcquireLike(const Published& p) {
  auto guard = std::make_unique<util::EpochReclaimer::ReadGuard>(p.ebr);
  const StoreSnapshot* snap = p.current_.load(std::memory_order_seq_cst);
  return SnapshotHandle(std::move(guard), snap);
}
}  // namespace figdb::serve
""",
    # Clean: the PinnedView pattern — the container receives the guards
    # FIRST, making it a pin carrier; snapshots stored next to them are
    # covered for exactly as long as the pins are.
    "src/serve/carrier_view.cpp": """\
#include "shard/sharded_store.hpp"
namespace figdb::serve {
void Gather(const shard::ShardedStore& store) {
  auto view = std::make_shared<PinnedView>();
  for (std::uint32_t s = 0; s < store.NumShards(); ++s) {
    view->guards.push_back(std::make_unique<util::EpochReclaimer::ReadGuard>(
        store.Reclaimer()));
    view->snaps.push_back(store.SnapshotOf(s));
  }
}
}  // namespace figdb::serve
""",
    # Clean: an explicitly waived escape (the documented reader contract).
    "src/serve/waived_escape.cpp": """\
#include "shard/sharded_store.hpp"
namespace figdb::serve {
const shard::ShardSnapshot* Peek(const shard::ShardedStore& store) {
  FIGDB_PIN_ESCAPE_OK("callers pin via Reclaimer() before loading");
  return store.SnapshotOf(0);
}
}  // namespace figdb::serve
""",
}

EXPECT_SEEDED = {
    ("src/serve/escape_member.cpp", "snapshot-escape"),
    ("src/serve/escape_return.cpp", "snapshot-escape"),
    ("src/serve/escape_lambda.cpp", "snapshot-escape"),
    ("src/serve/outlived_use.cpp", "pin-outlived"),
    ("src/serve/unpinned_load.cpp", "pin-outlived"),
}

EXPECT_CLEAN = {
    "src/serve/clean_pinned.cpp",
    "src/serve/handle_return.cpp",
    "src/serve/carrier_view.cpp",
    "src/serve/waived_escape.cpp",
}


def self_test() -> int:
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import figdb_lint

    with tempfile.TemporaryDirectory(prefix="figdb-lifetime-selftest-") as tmp:
        for rel, content in SELF_TEST_SEEDS.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        files = [
            figdb_lint.SourceFile(os.path.join(dirpath, name))
            for dirpath, _, names in os.walk(tmp)
            for name in sorted(names)
        ]
        graph = analyze(files, tmp)
        got = {(f["file"], f["rule"]) for f in graph.findings}
        missing = EXPECT_SEEDED - got
        dirty = {
            (f["file"], f["rule"])
            for f in graph.findings
            if f["file"] in EXPECT_CLEAN
        }
        if missing or dirty:
            print("lifetime-graph: SELF-TEST FAILED")
            for rel, rule in sorted(missing):
                print(f"  {rel}: expected a [{rule}] finding, got none")
            for rel, rule in sorted(dirty):
                print(f"  {rel}: unexpected [{rule}] finding on a clean seed")
            return 1
        print(
            f"lifetime-graph: self-test ok ({len(graph.findings)} seeded "
            f"findings, all {len(EXPECT_SEEDED)} expectations hit, "
            f"{len(EXPECT_CLEAN)} clean fixtures clean)"
        )
        return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        ),
        help="repository root (default: this script's repo)",
    )
    ap.add_argument("--json-out", help="write the lifetime graph as JSON here")
    ap.add_argument("--dot-out", help="write a Graphviz DOT rendering here")
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify the rules fire on seeded fixtures, then exit",
    )
    args = ap.parse_args()
    if args.self_test:
        return self_test()

    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    import figdb_lint

    files = []
    src = os.path.join(args.root, "src")
    for dirpath, _, names in os.walk(src):
        for name in sorted(names):
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                files.append(figdb_lint.SourceFile(os.path.join(dirpath, name)))
    graph = analyze(files, args.root)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(to_json(graph), f, indent=2, sort_keys=True)
            f.write("\n")
    if args.dot_out:
        with open(args.dot_out, "w", encoding="utf-8") as f:
            f.write(to_dot(graph))

    print(
        f"lifetime-graph: {graph.files_scanned} files, {len(graph.pins)} "
        f"pins, {len(graph.bindings)} bindings, "
        f"{len(graph.sanctioned)} sanctioned escapes, "
        f"{len(graph.waivers)} waivers, {len(graph.findings)} finding(s)"
    )
    for f in graph.findings:
        print(f"  {f['file']}:{f['line']}: [{f['rule']}] {f['message']}")
    return 1 if graph.findings else 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Exception as exc:  # stable exit-code contract: 2 = tool error
        print(f"lifetime-graph: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
