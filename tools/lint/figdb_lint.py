#!/usr/bin/env python3
"""figdb-lint: machine-checked repo invariants over compile_commands.json.

The Clang Thread Safety build (-DFIGDB_THREAD_SAFETY=ON) proves lock
discipline, but several figdb contracts live outside what a compiler
attribute can express. This checker enforces those, with file:line
diagnostics and a non-zero exit on any finding:

  discarded-status       No discarded Try*/Status-returning call results
                         outside tests — including `(void)` silencing,
                         which the [[nodiscard]] attribute cannot catch.
  raw-mutex              No raw std::mutex/lock/condition_variable outside
                         src/util: concurrency primitives must be the
                         annotated wrappers in util/thread_annotations.hpp,
                         or Thread Safety Analysis silently sees nothing.
  raw-new                No raw `new` outside src/util: ownership is
                         make_unique/containers everywhere else.
  snapshot-immutability  StoreSnapshot immutability is type-level const;
                         the two escape hatches — a `friend` in
                         snapshot.hpp or a `const_cast` in src/serve/ —
                         are banned (snapshot.hpp documents the contract).
  atomic-file-io         Truncating writes (fopen "w" modes, std::ofstream)
                         route through util/atomic_file so every durable
                         file keeps its crash-safety story.
  failpoint-registry     The fail-point sites used in code and the
                         canonical list in util/failpoint_sites.hpp are
                         EXACTLY equal as sets, so FIGDB_FAILPOINTS env
                         validation and the fault drills never disagree
                         with reality.
  raw-randomness         No rand(), std::random_device, or unseeded
                         std::mt19937 outside util/rng and fuzz/: every
                         random sequence in figdb flows from util::Rng so
                         a failing seed reproduces exactly.
  fuzz-entrypoint        Every LLVMFuzzerTestOneInput definition routes
                         through a shared fuzz::Check*OneInput harness in
                         fuzz_util — a target with private decode logic
                         would drift from the in-tree regression tests.
  shard-status-completeness
                         Any file consuming sharded scatter-gather results
                         (ShardedSearchResult / ShardRouter) must consult
                         the completeness annotation (Complete() or
                         shards_answered) somewhere, or carry a waiver: a
                         PARTIAL answer passed off as the full top-k is a
                         silent wrong answer.
  deadline-propagation   Search dispatch in the serving layers (src/net,
                         src/serve) — TrySearch/TryRank/.Search(...) call
                         statements — must pass a deadline-bearing budget
                         argument. The engine APIs default the budget to
                         unlimited, so dropping the argument silently
                         dispatches an unbounded query a remote client has
                         long stopped waiting for.
  segment-timestamp-monotonicity
                         Inside src/temporal, only the segment clock
                         (segmented_store.cpp) may mutate a segment's
                         store or corpus (Ingest/Remove/Add call sites).
                         Any other append path bypasses the epoch
                         clamp/roll, so a skewed timestamp could land in a
                         sealed bucket and break the per-segment epoch
                         ranges the merge-time decay weights rely on.
  lock-order-cycle       The global lock-acquisition-order graph (built
                         cross-TU by tools/lint/lock_graph.py from named
                         Mutex/SharedMutex declarations, nested scoped
                         acquisitions, FIGDB_REQUIRES/FIGDB_ACQUIRE
                         implications, and FIGDB_ACQUIRED_BEFORE/AFTER
                         declarations) must be acyclic: a cycle is a
                         potential ABBA deadlock that TSan only reports
                         if the fatal interleaving actually fires.
  blocking-under-lock    No sleeps, file I/O, or FigClient/socket network
                         calls while a MutexLock/SharedLock guard is live
                         in the enclosing scope — a blocked lock holder
                         convoys every thread behind that lock.
  snapshot-escape        A snapshot-derived pointer must not outlive its
                         reader pin: no storing into members, returning
                         raw, or capturing into thread/pool lambdas
                         unless the pin travels with it (SnapshotHandle,
                         PinnedView). Built cross-TU by
                         tools/lint/lifetime_graph.py (also runnable
                         standalone for lifetime_graph.json/.dot).
  pin-outlived           Snapshot loads need a live ReadGuard in scope
                         (pin first, load second), and a variable bound
                         under a pin dies with the pin's scope.

Waivers: a justified exception carries, on the same line or the line
above:   // figdb-lint: allow(<rule-id>): <reason>
The reason is mandatory; a waiver without one is itself a finding. The
lifetime rules also accept the in-language FIGDB_PIN_ESCAPE_OK("reason")
macro (util/lifetime.hpp), which additionally rejects an empty reason at
compile time.

Usage:
  tools/lint/figdb_lint.py [-p BUILD_DIR] [--self-test] [--json]
                           [--sarif PATH]

Exit codes: 0 clean, 1 findings (or self-test failure), 2 internal or
usage error — stable for CI consumption, as is the --json schema
(schema_version bumps on any incompatible change).

The compilation database (BUILD_DIR/compile_commands.json, default
build/) supplies the translation-unit universe; headers under src/ are
added by walk since compile databases do not list them. --self-test runs
every rule against seeded violations in a temp tree and fails unless each
one is detected — proof the teeth are real, run by ci/check.sh lint.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import lifetime_graph  # noqa: E402  (sibling module, path set above)
import lock_graph  # noqa: E402  (sibling module, path set above)

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

RULES = (
    "discarded-status",
    "raw-mutex",
    "raw-new",
    "snapshot-immutability",
    "atomic-file-io",
    "failpoint-registry",
    "raw-randomness",
    "fuzz-entrypoint",
    "shard-status-completeness",
    "deadline-propagation",
    "segment-timestamp-monotonicity",
    "lock-order-cycle",
    "blocking-under-lock",
    "snapshot-escape",
    "pin-outlived",
)

WAIVER_RE = re.compile(r"figdb-lint:\s*allow\(([A-Za-z0-9_-]+)\)(:?\s*\S?)")


class Finding:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        rel = os.path.relpath(self.path, REPO)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str, keep_strings: bool) -> str:
    """Blanks comments (and optionally string/char literals) while
    preserving every newline, so line numbers survive."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j, n - 1)
            literal = text[i : j + 1]
            if keep_strings:
                out.append(literal)
            else:
                out.append(quote + " " * max(0, len(literal) - 2) + quote)
                out.append("\n" * literal.count("\n"))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class SourceFile:
    """One file plus its comment-stripped views and waiver map."""

    def __init__(self, path: str):
        self.path = path
        with open(path, encoding="utf-8", errors="replace") as f:
            self.raw = f.read()
        self.code = strip_comments(self.raw, keep_strings=False)
        self.code_with_strings = strip_comments(self.raw, keep_strings=True)
        self.waivers: dict[int, set[str]] = {}
        self.bad_waivers: list[int] = []
        raw_lines = self.raw.splitlines()
        code_lines = self.code.splitlines()
        for lineno, line in enumerate(raw_lines, start=1):
            m = WAIVER_RE.search(line)
            if not m:
                continue
            if not m.group(2).startswith(":") or not m.group(2).strip(": \t"):
                self.bad_waivers.append(lineno)
            self.waivers.setdefault(lineno, set()).add(m.group(1))
            # A waiver inside a comment block covers the code line the
            # block precedes, however many comment lines the reason takes.
            landing = lineno
            while landing < len(raw_lines):
                code = code_lines[landing] if landing < len(code_lines) else ""
                if code.strip():
                    break
                landing += 1
            self.waivers.setdefault(landing + 1, set()).add(m.group(1))

    def waived(self, line: int, rule: str) -> bool:
        return rule in self.waivers.get(line, set()) or rule in self.waivers.get(
            line - 1, set()
        )

    def rel(self) -> str:
        return os.path.relpath(self.path, REPO).replace(os.sep, "/")


def grep(
    sf: SourceFile, pattern: re.Pattern, rule: str, message: str, with_strings=False
) -> list[Finding]:
    text = sf.code_with_strings if with_strings else sf.code
    found = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if pattern.search(line) and not sf.waived(lineno, rule):
            found.append(Finding(sf.path, lineno, rule, message))
    return found


# --------------------------------------------------------------------------
# File universe
# --------------------------------------------------------------------------


def load_universe(build_dir: str, root: str) -> list[SourceFile]:
    db_path = os.path.join(build_dir, "compile_commands.json")
    paths: set[str] = set()
    if os.path.exists(db_path):
        with open(db_path, encoding="utf-8") as f:
            for entry in json.load(f):
                p = os.path.normpath(
                    os.path.join(entry.get("directory", ""), entry["file"])
                )
                if p.startswith(os.path.join(root, "")) and p.endswith(".cpp"):
                    paths.add(p)
    else:
        print(
            f"figdb-lint: note: no {db_path}; falling back to a source walk "
            "(configure a build tree for the exact TU universe)",
            file=sys.stderr,
        )
    # Headers never appear in a compilation database; benches/examples do.
    # Walk the interesting roots for anything the database missed.
    for sub in ("src", "examples", "bench", "tests", "tools", "fuzz"):
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in names:
                if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    paths.add(os.path.join(dirpath, name))
    return [SourceFile(p) for p in sorted(paths)]


def rel_of(path: str, root: str) -> str:
    return os.path.relpath(path, root).replace(os.sep, "/")


def in_dir(rel: str, prefix: str) -> bool:
    return rel.startswith(prefix + "/")


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

STATUS_DECL_RE = re.compile(
    r"\b(?:util::)?(?:Status|StatusOr<[^;{}()=]*>)\s+([A-Z]\w*)\s*\("
)


def collect_status_functions(files: list[SourceFile], root: str) -> set[str]:
    """Names of functions declared (in src/ headers) to return Status or
    StatusOr — the set whose results must never be dropped."""
    names: set[str] = set()
    for sf in files:
        rel = rel_of(sf.path, root)
        if not in_dir(rel, "src") or not rel.endswith(".hpp"):
            continue
        # Join wrapped declarations so `StatusOr<T>\n  Name(...)` matches.
        joined = re.sub(r"\s*\n\s*", " ", sf.code)
        names.update(STATUS_DECL_RE.findall(joined))
    return names


def rule_discarded_status(files: list[SourceFile], root: str) -> list[Finding]:
    names = collect_status_functions(files, root)
    if not names:
        return []
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if in_dir(rel, "tools"):
            continue  # lint fixtures seed violations on purpose
        # tests/ is checked too: a silently dropped Status in test setup
        # turns the assertions that follow into vacuous passes. Intentional
        # drops (e.g. exercising an error path for its side effect) carry
        # a reasoned waiver.
        if not rel.endswith((".cpp", ".cc")):
            continue
        # A file-local `void Name(...)` definition shadows a same-named
        # Status-returning API (e.g. a demo Shell::Ingest wrapping
        # ServingStore::Ingest): drop those names for this file.
        local_void = set(
            re.findall(r"\bvoid\s+([A-Z]\w*)\s*\(", sf.code)
        )
        file_names = names - local_void
        if not file_names:
            continue
        alt = "|".join(sorted(file_names))
        # A whole-line expression statement whose call target is a
        # Status-returning name: `obj.Sync();`, `wal->Append(rec);`,
        # `util::SyncParentDirectory(p);`. The receiver prefix is a chain
        # of plain identifiers only, so a wrapping macro or function call
        # (`FIGDB_RETURN_IF_ERROR(store.Reset());`) never matches.
        stmt = re.compile(
            r"^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*(?:"
            + alt
            + r")\s*\(.*\)\s*;\s*$"
        )
        # `(void)` defeats [[nodiscard]] — the compiler cannot catch this.
        voided = re.compile(
            r"\(\s*void\s*\)\s*[\w\.\->:]*(?:" + alt + r")\s*\("
        )
        lines = sf.code.splitlines()
        prev_code = ""  # last non-blank stripped line before the current
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            # Continuation lines (previous line left an expression open)
            # are arguments, not discarded statements.
            is_continuation = prev_code.endswith(
                ("=", "(", ",", "+", "-", "*", "/", "<", ">", "&", "|", "?", ":", "return")
            )
            if stripped:
                prev_code = stripped
            if is_continuation:
                continue
            if stmt.search(line) and not sf.waived(lineno, "discarded-status"):
                found.append(
                    Finding(
                        sf.path,
                        lineno,
                        "discarded-status",
                        "result of a Status-returning call is discarded "
                        "(handle it or FIGDB_RETURN_IF_ERROR it)",
                    )
                )
            elif voided.search(line) and not sf.waived(lineno, "discarded-status"):
                found.append(
                    Finding(
                        sf.path,
                        lineno,
                        "discarded-status",
                        "(void)-cast silences a [[nodiscard]] Status — "
                        "handle it, or waive with the reason the drop "
                        "is intended",
                    )
                )
    return found


RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd::condition_variable(?:_any)?\b"
    r"|\bstd::(?:lock_guard|scoped_lock|unique_lock|shared_lock)\b"
)


def rule_raw_mutex(files: list[SourceFile], root: str) -> list[Finding]:
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        # tests/ and bench/ are in scope too: an unannotated mutex in a
        # test harness hides lock-order edges from lock_graph.py and
        # guarded-by violations from TSA just as surely as one in src/.
        checked = (
            in_dir(rel, "src") or in_dir(rel, "tests") or in_dir(rel, "bench")
        )
        if not checked or in_dir(rel, "src/util"):
            continue
        found += grep(
            sf,
            RAW_MUTEX_RE,
            "raw-mutex",
            "raw std synchronization primitive outside src/util — use the "
            "annotated wrappers in util/thread_annotations.hpp so Thread "
            "Safety Analysis can see the lock",
        )
    return found


RAW_NEW_RE = re.compile(r"(?:^|[^\w.])new\b(?!\s*\()")


def rule_raw_new(files: list[SourceFile], root: str) -> list[Finding]:
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if not in_dir(rel, "src") or in_dir(rel, "src/util"):
            continue
        found += grep(
            sf,
            RAW_NEW_RE,
            "raw-new",
            "raw `new` outside src/util — use std::make_unique or a "
            "container (waiver requires a justified allow comment)",
        )
    return found


def rule_snapshot_immutability(files: list[SourceFile], root: str) -> list[Finding]:
    found = []
    friend_re = re.compile(r"\bfriend\b")
    const_cast_re = re.compile(r"\bconst_cast\b")
    mutable_re = re.compile(r"\bmutable\b")
    for sf in files:
        rel = rel_of(sf.path, root)
        if rel == "src/serve/snapshot.hpp":
            found += grep(
                sf,
                friend_re,
                "snapshot-immutability",
                "`friend` in snapshot.hpp would let another type mutate a "
                "published StoreSnapshot behind its const interface",
            )
            found += grep(
                sf,
                mutable_re,
                "snapshot-immutability",
                "`mutable` member in snapshot.hpp breaks the frozen-after-"
                "Capture contract",
            )
        if in_dir(rel, "src/serve"):
            found += grep(
                sf,
                const_cast_re,
                "snapshot-immutability",
                "const_cast in the serving layer can unfreeze a published "
                "snapshot — forbidden",
            )
    return found


FOPEN_WRITE_RE = re.compile(r"\bfopen\s*\([^;]*?,\s*\"w[^\"]*\"")
OFSTREAM_RE = re.compile(r"\bstd::ofstream\b|\bstd::fstream\b")


def rule_atomic_file_io(files: list[SourceFile], root: str) -> list[Finding]:
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if not in_dir(rel, "src") or rel.startswith("src/util/atomic_file"):
            continue
        msg = (
            "truncating file write outside util/atomic_file — a crash "
            "mid-write leaves a torn file; route through AtomicWriteFile"
        )
        found += grep(sf, FOPEN_WRITE_RE, "atomic-file-io", msg, with_strings=True)
        found += grep(sf, OFSTREAM_RE, "atomic-file-io", msg)
    return found


FAILPOINT_USE_RE = re.compile(r"FIGDB_FAILPOINT\(\s*\"([^\"]+)\"\s*\)")
FAILPOINT_FIELD_RE = re.compile(r"\.(?:write_io|fsync|rename)\s*=\s*\"([^\"]+)\"")
SITE_LIST_RE = re.compile(r"^\s*\"([^\"]+)\"")


def rule_failpoint_registry(files: list[SourceFile], root: str) -> list[Finding]:
    canonical: dict[str, tuple[str, int]] = {}
    used: dict[str, tuple[str, int]] = {}
    sites_hpp = None
    for sf in files:
        rel = rel_of(sf.path, root)
        if not in_dir(rel, "src"):
            continue
        lines = sf.code_with_strings.splitlines()
        if rel == "src/util/failpoint_sites.hpp":
            sites_hpp = sf
            in_list = False
            for lineno, line in enumerate(lines, start=1):
                if "kFailPointSites[]" in line:
                    in_list = True
                if in_list:
                    m = SITE_LIST_RE.match(line)
                    if m:
                        canonical[m.group(1)] = (sf.path, lineno)
                    if "};" in line:
                        in_list = False
            continue
        for lineno, line in enumerate(lines, start=1):
            for m in FAILPOINT_USE_RE.finditer(line):
                used.setdefault(m.group(1), (sf.path, lineno))
            for m in FAILPOINT_FIELD_RE.finditer(line):
                used.setdefault(m.group(1), (sf.path, lineno))
    found = []
    if sites_hpp is None:
        # No canonical list at all — every use is unregistered.
        anchor = next(iter(used.values()), (os.path.join(root, "src"), 1))
        found.append(
            Finding(
                anchor[0],
                anchor[1],
                "failpoint-registry",
                "util/failpoint_sites.hpp not found: fail-point sites have "
                "no canonical registry",
            )
        )
        return found
    for name, (path, lineno) in sorted(used.items()):
        if name not in canonical:
            found.append(
                Finding(
                    path,
                    lineno,
                    "failpoint-registry",
                    f"fail-point site '{name}' is not in "
                    "util/failpoint_sites.hpp — add it so FIGDB_FAILPOINTS "
                    "env validation knows it exists",
                )
            )
    for name, (path, lineno) in sorted(canonical.items()):
        if name not in used:
            found.append(
                Finding(
                    path,
                    lineno,
                    "failpoint-registry",
                    f"registered fail-point site '{name}' has no code site — "
                    "remove it or re-add the injection point",
                )
            )
    return found


# `\brand\s*\(` keeps identifiers like operand()/strand() safe (no word
# boundary before their 'r'); srand( is caught deliberately — a global
# reseed is exactly the reproducibility leak the rule exists to stop.
RAW_RAND_CALL_RE = re.compile(r"\bs?rand\s*\(")
RANDOM_DEVICE_RE = re.compile(r"\bstd::random_device\b")
UNSEEDED_MT_RE = re.compile(r"\bstd::mt19937(?:_64)?\s+\w+\s*(?:;|\{\s*\})")


def rule_raw_randomness(files: list[SourceFile], root: str) -> list[Finding]:
    """Randomness outside util::Rng breaks replayability: a fuzz harness
    or randomized test that mixes in rand()/random_device state cannot be
    re-run from its printed seed. util/rng owns entropy; fuzz/ is exempt
    because libFuzzer owns the byte stream there."""
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if rel.startswith("src/util/rng") or in_dir(rel, "fuzz"):
            continue
        msg = (
            "raw randomness outside util/rng — draw from util::Rng so the "
            "sequence replays from a single seed"
        )
        found += grep(sf, RAW_RAND_CALL_RE, "raw-randomness", msg)
        found += grep(sf, RANDOM_DEVICE_RE, "raw-randomness", msg)
        found += grep(
            sf,
            UNSEEDED_MT_RE,
            "raw-randomness",
            "default-constructed std::mt19937 has an implementation-defined "
            "seed — construct util::Rng with an explicit seed instead",
        )
    return found


FUZZ_ENTRY_RE = re.compile(r"\bLLVMFuzzerTestOneInput\s*\(")
FUZZ_HARNESS_CALL_RE = re.compile(r"\bfuzz::Check\w+OneInput\s*\(")


def rule_fuzz_entrypoint(files: list[SourceFile], root: str) -> list[Finding]:
    """Every libFuzzer entry point must be a thin wrapper over a shared
    fuzz::Check*OneInput harness. Only definitions-with-body count: the
    replay driver's `extern "C" ... ;` declaration is fine."""
    found = []
    for sf in files:
        if not rel_of(sf.path, root).endswith((".cpp", ".cc")):
            continue
        lines = sf.code.splitlines()
        for lineno, line in enumerate(lines, start=1):
            m = FUZZ_ENTRY_RE.search(line)
            if not m:
                continue
            # Walk forward from the match until the declarator resolves:
            # `;` → declaration (ignore), `{` → definition (check body).
            tail = line[m.end() :] + "\n" + "\n".join(lines[lineno:])
            is_definition = False
            for ch in tail:
                if ch == ";":
                    break
                if ch == "{":
                    is_definition = True
                    break
            if not is_definition:
                continue
            if not FUZZ_HARNESS_CALL_RE.search(tail) and not sf.waived(
                lineno, "fuzz-entrypoint"
            ):
                found.append(
                    Finding(
                        sf.path,
                        lineno,
                        "fuzz-entrypoint",
                        "LLVMFuzzerTestOneInput does not route through a "
                        "shared fuzz::Check*OneInput harness — private "
                        "decode logic drifts from the regression replay "
                        "tests (see fuzz/fuzz_util.hpp)",
                    )
                )
    return found


SHARD_RESULT_RE = re.compile(r"\bShardedSearchResult\b|\bShardRouter\b")
SHARD_COMPLETENESS_RE = re.compile(r"\bshards_answered\b|\bComplete\s*\(")


def rule_shard_status_completeness(
    files: list[SourceFile], root: str
) -> list[Finding]:
    """A sharded answer is only meaningful next to its completeness
    annotation: the router degrades to PARTIAL instead of failing, so a
    caller that reads `response.results` without ever looking at
    Complete()/shards_answered silently treats a best-effort subset as the
    full top-k. File granularity on purpose — the check is about whether a
    consumer *ever* consults completeness, not about each expression."""
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        # The shard layer defines the types; tests/tools/fuzz assert on
        # them their own way.
        if (
            in_dir(rel, "src/shard")
            or in_dir(rel, "tests")
            or in_dir(rel, "tools")
            or in_dir(rel, "fuzz")
        ):
            continue
        first = None
        for lineno, line in enumerate(sf.code.splitlines(), start=1):
            if SHARD_RESULT_RE.search(line):
                first = lineno
                break
        if first is None:
            continue
        if SHARD_COMPLETENESS_RE.search(sf.code):
            continue
        if sf.waived(first, "shard-status-completeness"):
            continue
        found.append(
            Finding(
                sf.path,
                first,
                "shard-status-completeness",
                "consumes sharded results (ShardedSearchResult/ShardRouter) "
                "but never checks the completeness annotation — read "
                "Complete() or shards_answered so a PARTIAL answer is not "
                "passed off as the full top-k, or carry a waiver",
            )
        )
    return found


DEADLINE_DISPATCH_RE = re.compile(r"(?:\.|->)\s*(?:TrySearch|TryRank|Search)\s*\(")
DEADLINE_TOKEN_RE = re.compile(r"budget|Budget|deadline|Deadline")


def rule_deadline_propagation(files: list[SourceFile], root: str) -> list[Finding]:
    """Every search dispatched from the serving layers must carry the
    client's deadline. TrySearch/TryRank/QueryExecutor::Search default
    their budget parameter to unlimited, so a call that simply omits the
    argument compiles fine and silently runs unbounded — precisely the
    query a remote client's RPC deadline was supposed to cap. Statement
    granularity: the call statement (joined to its `;`) must mention a
    budget/deadline-bearing argument, or carry a waiver."""
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if not (in_dir(rel, "src/net") or in_dir(rel, "src/serve")):
            continue
        if not rel.endswith((".cpp", ".cc")):
            continue
        lines = sf.code.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not DEADLINE_DISPATCH_RE.search(line):
                continue
            # Join the statement to its terminator so multi-line argument
            # lists are inspected whole (bounded: a dispatch statement
            # longer than 8 lines is its own problem).
            stmt = line
            for follow in lines[lineno : lineno + 8]:
                if ";" in stmt:
                    break
                stmt += " " + follow
            if DEADLINE_TOKEN_RE.search(stmt):
                continue
            if sf.waived(lineno, "deadline-propagation"):
                continue
            found.append(
                Finding(
                    sf.path,
                    lineno,
                    "deadline-propagation",
                    "search dispatch without a deadline-bearing budget "
                    "argument — the engine defaults to unlimited, so this "
                    "query outlives any client deadline; pass the "
                    "propagated QueryBudget (or waive with a reason)",
                )
            )
    return found


SEGMENT_MUTATION_RE = re.compile(r"(?:\.|->)\s*(?:Ingest|Remove|Add)\s*\(")


def rule_segment_timestamp_monotonicity(
    files: list[SourceFile], root: str
) -> list[Finding]:
    """Segment stores are append-only THROUGH the segment clock: ingest
    routes by month (clamp below the active floor, roll past the bucket
    ceiling) inside segmented_store.cpp, which is what keeps every
    segment's [min_epoch, max_epoch] honest. A direct Ingest/Remove/Add on
    a segment's FigDbStore or corpus from anywhere else in src/temporal
    skips that routing, so a skewed timestamp could land in a sealed
    bucket and silently corrupt the merge-time decay weights."""
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if not in_dir(rel, "src/temporal"):
            continue
        if rel == "src/temporal/segmented_store.cpp":
            continue  # the segment clock itself
        found += grep(
            sf,
            SEGMENT_MUTATION_RE,
            "segment-timestamp-monotonicity",
            "segment store/corpus mutation outside the segment clock "
            "(segmented_store.cpp) — route through SegmentedStore::Ingest/"
            "Remove so the epoch clamp/roll keeps segment timestamp ranges "
            "monotone, or carry a waiver",
        )
    return found


def rule_lock_order_cycle(files: list[SourceFile], root: str) -> list[Finding]:
    """The cross-TU lock-acquisition-order graph must be acyclic. The
    graph construction lives in lock_graph.py (also runnable standalone
    to emit lock_graph.json/.dot artifacts); this rule turns each cycle
    into one finding anchored at the first edge site. A waiver on ANY
    edge of the cycle suppresses it — waiving one edge is exactly the
    'this inversion is safe because X' claim that breaks the cycle."""
    graph = lock_graph.analyze(files, root)
    by_rel = {rel_of(sf.path, root): sf for sf in files}
    found = []
    for cycle in graph.cycles():
        edges = graph.cycle_edges(cycle)
        waived = False
        for frm, to, e in edges:
            for site in e["sites"]:
                sf = by_rel.get(site["file"])
                if sf and sf.waived(site["line"], "lock-order-cycle"):
                    waived = True
        if waived or not edges:
            continue
        desc = "; ".join(
            f"{frm} -> {to} ({e['kind']} at "
            f"{e['sites'][0]['file']}:{e['sites'][0]['line']})"
            for frm, to, e in edges
        )
        anchor = edges[0][2]["sites"][0]
        found.append(
            Finding(
                os.path.join(root, anchor["file"]),
                anchor["line"],
                "lock-order-cycle",
                f"lock acquisition order cycle {' -> '.join(cycle)} -> "
                f"{cycle[0]}: {desc} — pick one global order (document it "
                "with FIGDB_ACQUIRED_BEFORE) or waive one edge with the "
                "reason the inversion cannot deadlock",
            )
        )
    return found


def rule_blocking_under_lock(files: list[SourceFile], root: str) -> list[Finding]:
    """A thread that sleeps, touches disk, or waits on the network while
    holding a lock convoys every thread behind that lock — and under the
    serving deadline contract that is a latency cliff, not a hang. The
    scope tracking (which guards are live at which source position) is
    shared with the lock-graph pass in lock_graph.py."""
    graph = lock_graph.analyze(files, root)
    by_rel = {rel_of(sf.path, root): sf for sf in files}
    found = []
    for b in graph.blocking:
        sf = by_rel.get(b["file"])
        if sf is None or sf.waived(b["line"], "blocking-under-lock"):
            continue
        found.append(
            Finding(
                sf.path,
                b["line"],
                "blocking-under-lock",
                f"{b['what']} while holding {b['lock']} — move the slow "
                "call outside the critical section (stage under the lock, "
                "execute after release), or waive with the reason the "
                "stall is intended",
            )
        )
    return found


def _lifetime_findings(
    files: list[SourceFile], root: str, rule: str
) -> list[Finding]:
    """Shared driver for the two lifetime rules: run the cross-TU pass in
    lifetime_graph.py, keep findings of `rule`, drop comment-waived ones
    (FIGDB_PIN_ESCAPE_OK waivers are already applied inside the pass)."""
    graph = lifetime_graph.analyze(files, root)
    by_rel = {rel_of(sf.path, root): sf for sf in files}
    found = []
    for f in graph.findings:
        if f["rule"] != rule:
            continue
        sf = by_rel.get(f["file"])
        if sf is not None and sf.waived(f["line"], rule):
            continue
        found.append(
            Finding(os.path.join(root, f["file"]), f["line"], rule, f["message"])
        )
    return found


def rule_snapshot_escape(files: list[SourceFile], root: str) -> list[Finding]:
    """A pointer derived from a published snapshot is only valid while a
    reader pin is alive; storing it into a member, returning it raw, or
    capturing it into a deferred lambda detaches the value from the pin.
    The FIGDB_LIFETIME_POISON tree catches what slips past this pass —
    but only on the interleavings the tests happen to drive."""
    return _lifetime_findings(files, root, "snapshot-escape")


def rule_pin_outlived(files: list[SourceFile], root: str) -> list[Finding]:
    """Pin first, load second — and every use of the loaded pointer stays
    inside the pin's scope. An unpinned load races reclamation directly;
    a use after the pin's closing brace races the very next Publish."""
    return _lifetime_findings(files, root, "pin-outlived")


# FIGDB_PIN_ESCAPE_OK with a blanked-out or absent reason. The compiler
# already rejects an empty string literal (static_assert on its size),
# so this mostly guards `FIGDB_PIN_ESCAPE_OK()` in headers that a given
# TU never instantiates — and keeps the contract visible in lint output.
EMPTY_PIN_WAIVER_RE = re.compile(r'FIGDB_PIN_ESCAPE_OK\s*\(\s*(?:\)|""\s*\))')


def rule_bad_waivers(files: list[SourceFile], root: str) -> list[Finding]:
    found = []
    for sf in files:
        rel = rel_of(sf.path, root)
        if rel != "src/util/lifetime.hpp":  # the macro's own definition
            for lineno, line in enumerate(
                sf.code_with_strings.splitlines(), start=1
            ):
                if EMPTY_PIN_WAIVER_RE.search(line):
                    found.append(
                        Finding(
                            sf.path,
                            lineno,
                            "waiver",
                            "FIGDB_PIN_ESCAPE_OK without a reason — every "
                            "pin-escape waiver must say why the pointer "
                            "outliving its pin is safe",
                        )
                    )
        for lineno in sf.bad_waivers:
            found.append(
                Finding(
                    sf.path,
                    lineno,
                    "waiver",
                    "figdb-lint waiver without a reason — write "
                    "`// figdb-lint: allow(rule): why this is safe`",
                )
            )
        for lineno, rules in sf.waivers.items():
            for rule in rules - set(RULES):
                found.append(
                    Finding(
                        sf.path,
                        lineno,
                        "waiver",
                        f"waiver names unknown rule '{rule}' "
                        f"(known: {', '.join(RULES)})",
                    )
                )
    return found


ALL_RULES = (
    rule_discarded_status,
    rule_raw_mutex,
    rule_raw_new,
    rule_snapshot_immutability,
    rule_atomic_file_io,
    rule_failpoint_registry,
    rule_raw_randomness,
    rule_fuzz_entrypoint,
    rule_shard_status_completeness,
    rule_deadline_propagation,
    rule_segment_timestamp_monotonicity,
    rule_lock_order_cycle,
    rule_blocking_under_lock,
    rule_snapshot_escape,
    rule_pin_outlived,
    rule_bad_waivers,
)


def run_all(files: list[SourceFile], root: str) -> list[Finding]:
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings += rule(files, root)
    findings.sort(key=lambda f: (f.path, f.line))
    return findings


# --------------------------------------------------------------------------
# Self-test: seed one violation per rule in a temp tree and require the
# checker to flag every one. ci/check.sh lint runs this before the real
# pass, so a silently broken rule fails CI instead of passing vacuously.
# --------------------------------------------------------------------------

SEEDS = {
    "src/index/seeded.cpp": """\
#include <fstream>
#include <mutex>
namespace figdb {
std::mutex naked_mutex;                       // raw-mutex
void Seeded() {
  int* leak = new int(7);                     // raw-new
  (void)leak;
  std::ofstream torn("out.bin");              // atomic-file-io
  if (FIGDB_FAILPOINT("seeded/unregistered")) // failpoint-registry
    return;
}
void Discards() {
  SaveCorpus(nullptr, "x");                   // discarded-status
}
void Entropy() {
  int dice = rand() % 6;                      // raw-randomness
  (void)dice;
  std::random_device rd;                      // raw-randomness
  std::mt19937 unseeded;                      // raw-randomness
}
}  // namespace figdb
""",
    "src/index/seeded.hpp": """\
namespace figdb {
Status SaveCorpus(void* corpus, const char* path);
}  // namespace figdb
""",
    "src/serve/snapshot.hpp": """\
class StoreSnapshot {
  friend class Backdoor;                      // snapshot-immutability
  mutable int oops_;                          // snapshot-immutability
};
""",
    "src/serve/evil.cpp": """\
void Unfreeze(const int* frozen) {
  *const_cast<int*>(frozen) = 1;              // snapshot-immutability
}
""",
    "src/util/failpoint_sites.hpp": """\
inline constexpr const char* kFailPointSites[] = {
    "seeded/never_used",
};
""",
    # Rolls its own decode loop instead of a fuzz::Check* harness.
    "fuzz/targets/fuzz_rogue.cpp": """\
extern "C" int LLVMFuzzerTestOneInput(const unsigned char* data,
                                      unsigned long size) {  // fuzz-entrypoint
  return data && size ? 0 : 0;
}
""",
    # Negative controls: a conforming target and a declaration-only
    # driver must both stay clean, or the rule is shooting bystanders.
    "fuzz/targets/fuzz_conforming.cpp": """\
extern "C" int LLVMFuzzerTestOneInput(const unsigned char* data,
                                      unsigned long size) {
  fuzz::CheckSnapshotOneInput(data, size);
  return 0;
}
""",
    "fuzz/driver_decl_only.cpp": """\
extern "C" int LLVMFuzzerTestOneInput(const unsigned char* data,
                                      unsigned long size);
int Replay() { return 0; }
""",
    # Consumes a scatter-gather answer without ever consulting the
    # completeness annotation — a PARTIAL answer would pass as the full
    # top-k.
    "src/serve/rogue_consumer.cpp": """\
#include "shard/shard_router.hpp"
void Serve(const figdb::shard::ShardedSearchResult& r) {
  for (const auto& hit : r.response.results) (void)hit;  // no Complete()
}
""",
    # Negative controls for shard-status-completeness: a consumer that
    # checks Complete(), and one that carries an explicit waiver.
    "src/serve/good_consumer.cpp": """\
#include "shard/shard_router.hpp"
bool Serve(const figdb::shard::ShardedSearchResult& r) {
  if (!r.Complete()) return false;
  return !r.response.results.empty();
}
""",
    "src/serve/waived_consumer.cpp": """\
#include "shard/shard_router.hpp"
// figdb-lint: allow(shard-status-completeness): metrics-only reader
void Count(const figdb::shard::ShardedSearchResult& r) {
  (void)r.response.results.size();
}
""",
    # Dispatches a search with the budget argument silently defaulted —
    # the query runs unbounded while the remote client's deadline lapses.
    "src/net/rogue_dispatch.cpp": """\
#include "index/retrieval_engine.hpp"
void Dispatch(const figdb::index::FigRetrievalEngine& engine,
              const figdb::corpus::MediaObject& query) {
  auto r = engine.TrySearch(query, 10);  // deadline-propagation
  (void)r;
}
""",
    # Negative controls: a dispatch that passes the propagated budget, and
    # a justified waiver (a stats probe that wants the unbounded default).
    "src/net/good_dispatch.cpp": """\
#include "index/retrieval_engine.hpp"
void Dispatch(const figdb::index::FigRetrievalEngine& engine,
              const figdb::corpus::MediaObject& query,
              const figdb::util::QueryBudget& budget) {
  auto r = engine.TrySearch(query, 10,
                            budget);
  (void)r;
}
""",
    "src/net/waived_dispatch.cpp": """\
#include "index/retrieval_engine.hpp"
void Probe(const figdb::index::FigRetrievalEngine& engine,
           const figdb::corpus::MediaObject& query) {
  // figdb-lint: allow(deadline-propagation): offline warmup probe
  auto r = engine.TrySearch(query, 1);
  (void)r;
}
""",
    # Appends to a segment store directly, bypassing the segment clock's
    # epoch clamp/roll — a skewed month could land in a sealed bucket.
    "src/temporal/rogue_append.cpp": """\
#include "index/figdb_store.hpp"
void Backfill(figdb::index::FigDbStore& segment,
              figdb::corpus::MediaObject obj) {
  auto id = segment.Ingest(std::move(obj));  // segment-timestamp-monotonicity
  (void)id;
}
""",
    # Negative controls: the segment clock itself is the one sanctioned
    # mutation path, and a read-only temporal file must stay clean.
    "src/temporal/segmented_store.cpp": """\
#include "index/figdb_store.hpp"
void Route(figdb::index::FigDbStore& active,
           figdb::corpus::MediaObject obj) {
  auto id = active.Ingest(std::move(obj));
  (void)id;
}
""",
    "src/temporal/reader_only.cpp": """\
#include "temporal/burst_detector.hpp"
void Feed(figdb::temporal::BurstDetector& detector,
          const figdb::corpus::MediaObject& obj) {
  detector.ObserveObject(obj);
}
""",
    # ABBA: two functions acquire the same pair of named locks in
    # opposite orders — the cross-TU graph closes the cycle even though
    # each function is individually lock-consistent.
    "src/serve/abba_order.cpp": """\
#include "util/thread_annotations.hpp"
namespace figdb::serve {
class AbbaPair {
 public:
  void Forward() {
    util::MutexLock first(alpha_);
    util::MutexLock second(beta_);
  }
  void Backward() {
    util::MutexLock first(beta_);
    util::MutexLock second(alpha_);  // lock-order-cycle
  }

 private:
  util::Mutex alpha_{"seed.AbbaPair.alpha"};
  util::Mutex beta_{"seed.AbbaPair.beta"};
};
}  // namespace figdb::serve
""",
    # Negative control: the same nesting in a consistent order is fine.
    "src/serve/ordered_pair.cpp": """\
#include "util/thread_annotations.hpp"
namespace figdb::serve {
class OrderedPair {
 public:
  void Publish() {
    util::MutexLock first(outer_);
    util::MutexLock second(inner_);
  }
  void Drain() {
    util::MutexLock first(outer_);
    util::MutexLock second(inner_);
  }

 private:
  util::Mutex outer_{"seed.OrderedPair.outer"};
  util::Mutex inner_{"seed.OrderedPair.inner"};
};
}  // namespace figdb::serve
""",
    # Negative control: a cycle whose inverted edge carries a reasoned
    # waiver is accepted (the waiver IS the deadlock-freedom argument).
    "src/serve/waived_abba.cpp": """\
#include "util/thread_annotations.hpp"
namespace figdb::serve {
class WaivedAbba {
 public:
  void Forward() {
    util::MutexLock first(left_);
    util::MutexLock second(right_);
  }
  void Backward() {
    util::MutexLock first(right_);
    // figdb-lint: allow(lock-order-cycle): only ever called single-threaded
    util::MutexLock second(left_);
  }

 private:
  util::Mutex left_{"seed.WaivedAbba.left"};
  util::Mutex right_{"seed.WaivedAbba.right"};
};
}  // namespace figdb::serve
""",
    # Sleeps while a scoped guard is live in the enclosing scope.
    "src/serve/blocking_seed.cpp": """\
#include <chrono>
#include <thread>

#include "util/thread_annotations.hpp"
namespace figdb::serve {
class Stalls {
 public:
  void Slow() {
    util::MutexLock lock(mu_);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));  // under lock
  }

 private:
  util::Mutex mu_{"seed.Stalls.mu"};
};
}  // namespace figdb::serve
""",
    # Negative controls: the same sleep after the guard's scope closes,
    # and a deliberate stall carrying a reasoned waiver.
    "src/serve/blocking_clean.cpp": """\
#include <chrono>
#include <thread>

#include "util/thread_annotations.hpp"
namespace figdb::serve {
class NoStalls {
 public:
  void Fine() {
    {
      util::MutexLock lock(mu_);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  void Intended() {
    util::MutexLock lock(mu_);
    // figdb-lint: allow(blocking-under-lock): fault-injection stall is the point
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

 private:
  util::Mutex mu_{"seed.NoStalls.mu"};
};
}  // namespace figdb::serve
""",
    # A snapshot pointer returned raw: the ReadGuard dies at the closing
    # brace, the caller dereferences reclaimed (or poisoned) memory.
    "src/serve/pin_leak.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
const StoreSnapshot* PinLeak(const Published& p) {
  util::EpochReclaimer::ReadGuard guard(p.ebr);
  const StoreSnapshot* snap = p.current_.load(std::memory_order_seq_cst);
  return snap;
}
}  // namespace figdb::serve
""",
    # A load with no pin anywhere in scope races reclamation directly.
    "src/serve/unpinned_read.cpp": """\
#include "shard/sharded_store.hpp"
namespace figdb::serve {
std::uint64_t UnpinnedRead(const shard::ShardedStore& store) {
  return store.SnapshotOf(0)->Lsn();
}
}  // namespace figdb::serve
""",
    # Negative controls for the lifetime rules: the same escapes carrying
    # the in-language macro waiver and the comment waiver respectively.
    "src/serve/waived_pin_escape.cpp": """\
#include "shard/sharded_store.hpp"
namespace figdb::serve {
const shard::ShardSnapshot* WaivedPeek(const shard::ShardedStore& store) {
  FIGDB_PIN_ESCAPE_OK("callers pin via Reclaimer() before loading");
  return store.SnapshotOf(0);
}
}  // namespace figdb::serve
""",
    "src/serve/comment_waived_escape.cpp": """\
#include "shard/sharded_store.hpp"
namespace figdb::serve {
const shard::ShardSnapshot* CommentWaived(const shard::ShardedStore& store) {
  // figdb-lint: allow(snapshot-escape): caller owns a longer-lived pin
  // figdb-lint: allow(pin-outlived): caller owns a longer-lived pin
  return store.SnapshotOf(0);
}
}  // namespace figdb::serve
""",
    # A pin-escape waiver with no reason: the `waiver` rule must reject it
    # even though no TU ever instantiates the macro to hit static_assert.
    "src/serve/bad_pin_waiver.cpp": """\
#include "serve/serving_store.hpp"
namespace figdb::serve {
void BadWaiver() {
  FIGDB_PIN_ESCAPE_OK();
}
}  // namespace figdb::serve
""",
}

EXPECT_SEEDED = {
    ("src/index/seeded.cpp", "raw-mutex"),
    ("src/index/seeded.cpp", "raw-new"),
    ("src/index/seeded.cpp", "atomic-file-io"),
    ("src/index/seeded.cpp", "failpoint-registry"),  # unregistered use
    ("src/index/seeded.cpp", "discarded-status"),
    ("src/serve/snapshot.hpp", "snapshot-immutability"),
    ("src/serve/evil.cpp", "snapshot-immutability"),
    ("src/util/failpoint_sites.hpp", "failpoint-registry"),  # dead entry
    ("src/index/seeded.cpp", "raw-randomness"),
    ("fuzz/targets/fuzz_rogue.cpp", "fuzz-entrypoint"),
    ("src/serve/rogue_consumer.cpp", "shard-status-completeness"),
    ("src/net/rogue_dispatch.cpp", "deadline-propagation"),
    ("src/temporal/rogue_append.cpp", "segment-timestamp-monotonicity"),
    ("src/serve/abba_order.cpp", "lock-order-cycle"),
    ("src/serve/blocking_seed.cpp", "blocking-under-lock"),
    ("src/serve/pin_leak.cpp", "snapshot-escape"),
    ("src/serve/unpinned_read.cpp", "pin-outlived"),
    ("src/serve/bad_pin_waiver.cpp", "waiver"),
}

# Seeds that must NOT produce the paired finding — false-positive guards.
EXPECT_CLEAN = {
    ("fuzz/targets/fuzz_conforming.cpp", "fuzz-entrypoint"),
    ("fuzz/driver_decl_only.cpp", "fuzz-entrypoint"),
    ("src/serve/good_consumer.cpp", "shard-status-completeness"),
    ("src/serve/waived_consumer.cpp", "shard-status-completeness"),
    ("src/net/good_dispatch.cpp", "deadline-propagation"),
    ("src/net/waived_dispatch.cpp", "deadline-propagation"),
    ("src/temporal/segmented_store.cpp", "segment-timestamp-monotonicity"),
    ("src/temporal/reader_only.cpp", "segment-timestamp-monotonicity"),
    ("src/serve/ordered_pair.cpp", "lock-order-cycle"),
    ("src/serve/waived_abba.cpp", "lock-order-cycle"),
    ("src/serve/blocking_clean.cpp", "blocking-under-lock"),
    ("src/serve/waived_pin_escape.cpp", "snapshot-escape"),
    ("src/serve/waived_pin_escape.cpp", "pin-outlived"),
    ("src/serve/comment_waived_escape.cpp", "snapshot-escape"),
    ("src/serve/comment_waived_escape.cpp", "pin-outlived"),
    ("src/serve/waived_pin_escape.cpp", "waiver"),
}


def self_test() -> int:
    with tempfile.TemporaryDirectory(prefix="figdb-lint-selftest-") as tmp:
        for rel, content in SEEDS.items():
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        files = [
            SourceFile(os.path.join(dirpath, name))
            for dirpath, _, names in os.walk(tmp)
            for name in sorted(names)
        ]
        findings = run_all(files, tmp)
        got = {(rel_of(f.path, tmp), f.rule) for f in findings}
        missing = EXPECT_SEEDED - got
        false_positives = EXPECT_CLEAN & got
        if missing or false_positives:
            print("figdb-lint: SELF-TEST FAILED")
            for rel, rule in sorted(missing):
                print(f"  {rel}: expected a [{rule}] finding, got none")
            for rel, rule in sorted(false_positives):
                print(f"  {rel}: unexpected [{rule}] finding on a clean seed")
            return 1
        print(
            f"figdb-lint: self-test ok ({len(findings)} seeded findings, "
            f"all {len(EXPECT_SEEDED)} expectations hit)"
        )
        return 0


# One-line rule summaries for the SARIF rules table ("waiver" is the
# meta-rule findings about waivers themselves are filed under).
RULE_SUMMARIES = {
    "discarded-status": "Status/StatusOr results must be handled",
    "raw-mutex": "use the annotated wrappers in util/thread_annotations.hpp",
    "raw-new": "raw `new` outside src/util",
    "snapshot-immutability": "published snapshots stay deeply immutable",
    "atomic-file-io": "persistence goes through util/file_io atomic writes",
    "failpoint-registry": "every failpoint is registered and exercised",
    "raw-randomness": "entropy flows through util::Rng for replayability",
    "fuzz-entrypoint": "fuzz targets route through shared Check*OneInput",
    "shard-status-completeness": "sharded answers carry completeness",
    "deadline-propagation": "deadlines propagate into shard fan-out",
    "segment-timestamp-monotonicity": "segment appends stay monotonic",
    "lock-order-cycle": "the cross-TU lock-order graph stays acyclic",
    "blocking-under-lock": "no sleeps/IO/network under a held lock",
    "snapshot-escape": "snapshot pointers must not outlive their pin",
    "pin-outlived": "pin first, load second, use inside the pin's scope",
    "waiver": "waivers carry a reason and name a known rule",
}


def to_sarif(findings: list[Finding], files_checked: int) -> dict:
    """SARIF 2.1.0 — the same findings --json carries, in the exchange
    format code-review UIs ingest. Repo-relative URIs, one run."""
    return {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "figdb-lint",
                        "informationUri": "tools/lint/figdb_lint.py",
                        "version": "1.0.0",
                        "rules": [
                            {
                                "id": rule,
                                "shortDescription": {
                                    "text": RULE_SUMMARIES[rule]
                                },
                            }
                            for rule in (*RULES, "waiver")
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule,
                        "level": "error",
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": rel_of(f.path, REPO),
                                        "uriBaseId": "SRCROOT",
                                    },
                                    "region": {"startLine": f.line},
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
                "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
                "properties": {"files_checked": files_checked},
            }
        ],
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "-p",
        "--build-dir",
        default=os.path.join(REPO, "build"),
        help="build tree holding compile_commands.json (default: build/)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="verify every rule fires on seeded violations, then exit",
    )
    ap.add_argument(
        "--json",
        action="store_true",
        help="emit findings as JSON on stdout (stable schema_version 1, "
        "for CI archival alongside BENCH_*.json); exit codes unchanged",
    )
    ap.add_argument(
        "--sarif",
        metavar="PATH",
        help="additionally write findings as SARIF 2.1.0 to PATH (for "
        "code-review ingestion); composes with --json, exit codes "
        "unchanged",
    )
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    files = load_universe(args.build_dir, REPO)
    findings = run_all(files, REPO)
    if args.sarif:
        with open(args.sarif, "w", encoding="utf-8") as f:
            json.dump(to_sarif(findings, len(files)), f, indent=2, sort_keys=True)
            f.write("\n")
    if args.json:
        print(
            json.dumps(
                {
                    "schema_version": 1,
                    "findings": [
                        {
                            "file": rel_of(f.path, REPO),
                            "line": f.line,
                            "rule": f.rule,
                            "message": f.message,
                        }
                        for f in findings
                    ],
                    "summary": {
                        "files_checked": len(files),
                        "findings": len(findings),
                        "rules": list(RULES),
                    },
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 1 if findings else 0
    for f in findings:
        print(f)
    if findings:
        print(f"figdb-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print(f"figdb-lint: clean ({len(files)} files checked)")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except Exception as exc:  # stable exit-code contract: 2 = tool error
        print(f"figdb-lint: internal error: {exc}", file=sys.stderr)
        sys.exit(2)
