#include "text/porter_stemmer.hpp"

#include <array>

namespace figdb::text {
namespace {

bool IsVowelAt(const std::string& w, std::size_t i) {
  switch (w[i]) {
    case 'a':
    case 'e':
    case 'i':
    case 'o':
    case 'u':
      return true;
    case 'y':
      // 'y' is a vowel when preceded by a consonant.
      return i > 0 && !IsVowelAt(w, i - 1);
    default:
      return false;
  }
}

/// Measure m of the stem w[0..end]: number of VC sequences.
int Measure(const std::string& w, std::size_t len) {
  int m = 0;
  bool prev_vowel = false;
  for (std::size_t i = 0; i < len; ++i) {
    const bool v = IsVowelAt(w, i);
    if (prev_vowel && !v) ++m;
    prev_vowel = v;
  }
  return m;
}

bool ContainsVowel(const std::string& w, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i)
    if (IsVowelAt(w, i)) return true;
  return false;
}

bool EndsWithDoubleConsonant(const std::string& w) {
  const std::size_t n = w.size();
  if (n < 2) return false;
  return w[n - 1] == w[n - 2] && !IsVowelAt(w, n - 1);
}

/// *o condition: stem ends cvc where the final c is not w, x or y.
bool EndsCvc(const std::string& w, std::size_t len) {
  if (len < 3) return false;
  if (IsVowelAt(w, len - 1) || !IsVowelAt(w, len - 2) || IsVowelAt(w, len - 3))
    return false;
  const char c = w[len - 1];
  return c != 'w' && c != 'x' && c != 'y';
}

bool EndsWith(const std::string& w, std::string_view suffix) {
  return w.size() >= suffix.size() &&
         w.compare(w.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// If w ends with \p suffix and the remaining stem has measure > m_min,
/// replaces the suffix and returns true.
bool ReplaceIfMeasure(std::string* w, std::string_view suffix,
                      std::string_view replacement, int m_min) {
  if (!EndsWith(*w, suffix)) return false;
  const std::size_t stem_len = w->size() - suffix.size();
  if (Measure(*w, stem_len) <= m_min) return true;  // matched, no change
  w->resize(stem_len);
  w->append(replacement);
  return true;
}

}  // namespace

std::string PorterStemmer::Stem(std::string_view word) const {
  std::string w(word);
  if (w.size() < 3) return w;

  // ---- Step 1a: plurals.
  if (EndsWith(w, "sses")) {
    w.resize(w.size() - 2);
  } else if (EndsWith(w, "ies")) {
    w.resize(w.size() - 2);
  } else if (!EndsWith(w, "ss") && EndsWith(w, "s")) {
    w.resize(w.size() - 1);
  }

  // ---- Step 1b: -ed / -ing.
  bool step1b_cleanup = false;
  if (EndsWith(w, "eed")) {
    if (Measure(w, w.size() - 3) > 0) w.resize(w.size() - 1);
  } else if (EndsWith(w, "ed") && ContainsVowel(w, w.size() - 2)) {
    w.resize(w.size() - 2);
    step1b_cleanup = true;
  } else if (EndsWith(w, "ing") && ContainsVowel(w, w.size() - 3)) {
    w.resize(w.size() - 3);
    step1b_cleanup = true;
  }
  if (step1b_cleanup) {
    if (EndsWith(w, "at") || EndsWith(w, "bl") || EndsWith(w, "iz")) {
      w.push_back('e');
    } else if (EndsWithDoubleConsonant(w) && !EndsWith(w, "l") &&
               !EndsWith(w, "s") && !EndsWith(w, "z")) {
      w.resize(w.size() - 1);
    } else if (Measure(w, w.size()) == 1 && EndsCvc(w, w.size())) {
      w.push_back('e');
    }
  }

  // ---- Step 1c: terminal y -> i when the stem has a vowel.
  if (EndsWith(w, "y") && ContainsVowel(w, w.size() - 1)) {
    w.back() = 'i';
  }

  // ---- Step 2: double suffixes, m > 0.
  static constexpr std::array<std::pair<std::string_view, std::string_view>,
                              20>
      kStep2 = {{{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
                 {"anci", "ance"},   {"izer", "ize"},    {"abli", "able"},
                 {"alli", "al"},     {"entli", "ent"},   {"eli", "e"},
                 {"ousli", "ous"},   {"ization", "ize"}, {"ation", "ate"},
                 {"ator", "ate"},    {"alism", "al"},    {"iveness", "ive"},
                 {"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
                 {"iviti", "ive"},   {"biliti", "ble"}}};
  for (const auto& [suffix, repl] : kStep2) {
    if (ReplaceIfMeasure(&w, suffix, repl, 0)) break;
  }

  // ---- Step 3: -icate, -ful, -ness etc., m > 0.
  static constexpr std::array<std::pair<std::string_view, std::string_view>,
                              7>
      kStep3 = {{{"icate", "ic"},
                 {"ative", ""},
                 {"alize", "al"},
                 {"iciti", "ic"},
                 {"ical", "ic"},
                 {"ful", ""},
                 {"ness", ""}}};
  for (const auto& [suffix, repl] : kStep3) {
    if (ReplaceIfMeasure(&w, suffix, repl, 0)) break;
  }

  // ---- Step 4: strip residual suffixes when m > 1.
  static constexpr std::array<std::string_view, 19> kStep4 = {
      "al",   "ance", "ence", "er",  "ic",  "able", "ible", "ant", "ement",
      "ment", "ent",  "ou",   "ism", "ate", "iti",  "ous",  "ive", "ize",
      "ion"};
  for (std::string_view suffix : kStep4) {
    if (!EndsWith(w, suffix)) continue;
    const std::size_t stem_len = w.size() - suffix.size();
    if (suffix == "ion" && stem_len > 0 && w[stem_len - 1] != 's' &&
        w[stem_len - 1] != 't') {
      break;
    }
    if (Measure(w, stem_len) > 1) w.resize(stem_len);
    break;
  }

  // ---- Step 5a: drop terminal e.
  if (EndsWith(w, "e")) {
    const std::size_t stem_len = w.size() - 1;
    const int m = Measure(w, stem_len);
    if (m > 1 || (m == 1 && !EndsCvc(w, stem_len))) w.resize(stem_len);
  }

  // ---- Step 5b: -ll -> -l when m > 1.
  if (EndsWith(w, "ll") && Measure(w, w.size()) > 1) w.resize(w.size() - 1);

  return w;
}

}  // namespace figdb::text
