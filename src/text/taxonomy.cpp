#include "text/taxonomy.hpp"

#include "util/check.hpp"

namespace figdb::text {

NodeId Taxonomy::AddRoot(std::string name) {
  FIGDB_CHECK_MSG(parent_.empty(), "root must be the first node");
  parent_.push_back(kInvalidNode);
  depth_.push_back(1);
  name_.push_back(std::move(name));
  return 0;
}

NodeId Taxonomy::AddChild(NodeId parent, std::string name) {
  FIGDB_CHECK(parent < parent_.size());
  const NodeId id = static_cast<NodeId>(parent_.size());
  parent_.push_back(parent);
  depth_.push_back(depth_[parent] + 1);
  name_.push_back(std::move(name));
  return id;
}

void Taxonomy::AttachTerm(std::uint32_t term_id, NodeId node) {
  FIGDB_CHECK(node < parent_.size());
  term_to_node_[term_id] = node;
}

NodeId Taxonomy::NodeOfTerm(std::uint32_t term_id) const {
  auto it = term_to_node_.find(term_id);
  return it == term_to_node_.end() ? kInvalidNode : it->second;
}

std::uint32_t Taxonomy::Depth(NodeId node) const {
  FIGDB_CHECK(node < depth_.size());
  return depth_[node];
}

const std::string& Taxonomy::Name(NodeId node) const {
  FIGDB_CHECK(node < name_.size());
  return name_[node];
}

NodeId Taxonomy::Parent(NodeId node) const {
  FIGDB_CHECK(node < parent_.size());
  return parent_[node];
}

NodeId Taxonomy::LowestCommonSubsumer(NodeId a, NodeId b) const {
  FIGDB_CHECK(a < parent_.size() && b < parent_.size());
  while (a != b) {
    if (depth_[a] >= depth_[b]) {
      a = parent_[a];
    } else {
      b = parent_[b];
    }
  }
  return a;
}

double Taxonomy::Wup(NodeId a, NodeId b) const {
  const NodeId lcs = LowestCommonSubsumer(a, b);
  return 2.0 * depth_[lcs] / (double(depth_[a]) + double(depth_[b]));
}

double Taxonomy::WupTerms(std::uint32_t term_a, std::uint32_t term_b) const {
  const NodeId na = NodeOfTerm(term_a);
  const NodeId nb = NodeOfTerm(term_b);
  if (na == kInvalidNode || nb == kInvalidNode) return 0.0;
  return Wup(na, nb);
}

}  // namespace figdb::text
