#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

/// \file vocabulary.hpp
/// Term <-> id mapping with corpus-frequency pruning.
///
/// The paper prunes tags with corpus frequency below 5 ("generally noise or
/// typo"), ending at ~60,000 textual dimensions. Vocabulary supports the
/// same flow: intern terms while counting, then Prune(min_frequency) to get
/// a compacted id space.

namespace figdb::text {

using TermId = std::uint32_t;
inline constexpr TermId kInvalidTerm = static_cast<TermId>(-1);

class Vocabulary {
 public:
  /// Interns \p term, bumping its corpus frequency by \p count.
  TermId AddOccurrence(std::string_view term, std::uint32_t count = 1);

  /// Returns the id of \p term or kInvalidTerm if unknown.
  TermId Lookup(std::string_view term) const;

  /// Inverse mapping; \p id must be valid.
  const std::string& TermOf(TermId id) const;

  std::uint32_t Frequency(TermId id) const;
  std::size_t Size() const { return terms_.size(); }

  /// Drops every term with frequency < \p min_frequency and compacts ids.
  /// Returns old-id -> new-id (kInvalidTerm for dropped terms).
  std::vector<TermId> Prune(std::uint32_t min_frequency);

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
  std::vector<std::uint32_t> freq_;
};

}  // namespace figdb::text
