#include "text/tokenizer.hpp"

#include <cctype>

namespace figdb::text {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> out;
  std::string current;
  bool has_alpha = false;
  auto flush = [&] {
    if (current.size() >= options_.min_token_length &&
        (!options_.require_alpha || has_alpha)) {
      out.push_back(current);
    }
    current.clear();
    has_alpha = false;
  };
  for (char raw : text) {
    const unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (std::isalpha(c)) has_alpha = true;
      current.push_back(static_cast<char>(std::tolower(c)));
    } else {
      flush();
    }
  }
  flush();
  return out;
}

}  // namespace figdb::text
