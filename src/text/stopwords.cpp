#include "text/stopwords.hpp"

#include <string>
#include <unordered_set>

namespace figdb::text {
namespace {

const std::unordered_set<std::string>& StopwordSet() {
  // The snowball English stop-word list.
  static const std::unordered_set<std::string> kSet = {
      "i",          "me",      "my",       "myself",  "we",       "our",
      "ours",       "ourselves", "you",    "your",    "yours",    "yourself",
      "yourselves", "he",      "him",      "his",     "himself",  "she",
      "her",        "hers",    "herself",  "it",      "its",      "itself",
      "they",       "them",    "their",    "theirs",  "themselves", "what",
      "which",      "who",     "whom",     "this",    "that",     "these",
      "those",      "am",      "is",       "are",     "was",      "were",
      "be",         "been",    "being",    "have",    "has",      "had",
      "having",     "do",      "does",     "did",     "doing",    "would",
      "should",     "could",   "ought",    "a",       "an",       "the",
      "and",        "but",     "if",       "or",      "because",  "as",
      "until",      "while",   "of",       "at",      "by",       "for",
      "with",       "about",   "against",  "between", "into",     "through",
      "during",     "before",  "after",    "above",   "below",    "to",
      "from",       "up",      "down",     "in",      "out",      "on",
      "off",        "over",    "under",    "again",   "further",  "then",
      "once",       "here",    "there",    "when",    "where",    "why",
      "how",        "all",     "any",      "both",    "each",     "few",
      "more",       "most",    "other",    "some",    "such",     "no",
      "nor",        "not",     "only",     "own",     "same",     "so",
      "than",       "too",     "very",     "can",     "will",     "just",
      "don",        "now",     "cannot",   "im",      "ive",      "id",
      "youre",      "hes",     "shes",     "theyre",  "weve",     "isnt",
      "arent",      "wasnt",   "werent",   "hasnt",   "havent",   "hadnt",
      "doesnt",     "dont",    "didnt",    "wont",    "wouldnt",  "shouldnt",
      "couldnt",    "lets",    "thats",    "whos",    "whats",    "heres",
      "theres",     "whens",   "wheres",   "whys",    "hows"};
  return kSet;
}

}  // namespace

bool IsStopword(std::string_view word) {
  return StopwordSet().count(std::string(word)) > 0;
}

std::size_t StopwordCount() { return StopwordSet().size(); }

}  // namespace figdb::text
