#include "text/vocabulary.hpp"

#include "util/check.hpp"

namespace figdb::text {

TermId Vocabulary::AddOccurrence(std::string_view term, std::uint32_t count) {
  auto it = index_.find(std::string(term));
  if (it == index_.end()) {
    const TermId id = static_cast<TermId>(terms_.size());
    terms_.emplace_back(term);
    freq_.push_back(count);
    index_.emplace(terms_.back(), id);
    return id;
  }
  freq_[it->second] += count;
  return it->second;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTerm : it->second;
}

const std::string& Vocabulary::TermOf(TermId id) const {
  FIGDB_CHECK(id < terms_.size());
  return terms_[id];
}

std::uint32_t Vocabulary::Frequency(TermId id) const {
  FIGDB_CHECK(id < freq_.size());
  return freq_[id];
}

std::vector<TermId> Vocabulary::Prune(std::uint32_t min_frequency) {
  std::vector<TermId> remap(terms_.size(), kInvalidTerm);
  std::vector<std::string> kept_terms;
  std::vector<std::uint32_t> kept_freq;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    if (freq_[i] >= min_frequency) {
      remap[i] = static_cast<TermId>(kept_terms.size());
      kept_terms.push_back(std::move(terms_[i]));
      kept_freq.push_back(freq_[i]);
    }
  }
  terms_ = std::move(kept_terms);
  freq_ = std::move(kept_freq);
  index_.clear();
  for (std::size_t i = 0; i < terms_.size(); ++i)
    index_.emplace(terms_[i], static_cast<TermId>(i));
  return remap;
}

}  // namespace figdb::text
