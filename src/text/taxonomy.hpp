#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

/// \file taxonomy.hpp
/// Rooted IS-A hierarchy with Wu-Palmer (WUP) similarity.
///
/// The paper derives intra-textual correlation edges from WordNet using the
/// WUP measure [26]: WUP(a, b) = 2*depth(LCS) / (depth(a) + depth(b)).
/// WordNet itself is not redistributable here, so the corpus generator
/// builds a synthetic hierarchy with the same structural properties (tags of
/// one latent topic share low ancestors, unrelated tags only meet near the
/// root). The WUP computation itself is exact.

namespace figdb::text {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class Taxonomy {
 public:
  /// Creates the (single) root. Must be called exactly once, first.
  NodeId AddRoot(std::string name = "entity");

  /// Adds a child of \p parent.
  NodeId AddChild(NodeId parent, std::string name);

  /// Associates a vocabulary term with a taxonomy node (many terms may map
  /// to the same node; a term maps to at most one node).
  void AttachTerm(std::uint32_t term_id, NodeId node);

  /// Node for a term, or kInvalidNode if the term is unattached.
  NodeId NodeOfTerm(std::uint32_t term_id) const;

  std::size_t NodeCount() const { return parent_.size(); }

  /// Depth with the root at depth 1 (the WUP convention, so the root is
  /// never a zero-depth LCS).
  std::uint32_t Depth(NodeId node) const;

  const std::string& Name(NodeId node) const;
  NodeId Parent(NodeId node) const;

  /// Lowest common subsumer of two nodes.
  NodeId LowestCommonSubsumer(NodeId a, NodeId b) const;

  /// Wu-Palmer similarity in (0, 1]; 1 iff a == b.
  double Wup(NodeId a, NodeId b) const;

  /// WUP between the nodes of two terms; 0 if either is unattached.
  double WupTerms(std::uint32_t term_a, std::uint32_t term_b) const;

  /// All term -> node attachments (serialization / introspection).
  const std::unordered_map<std::uint32_t, NodeId>& TermNodes() const {
    return term_to_node_;
  }

 private:
  std::vector<NodeId> parent_;
  std::vector<std::uint32_t> depth_;
  std::vector<std::string> name_;
  std::unordered_map<std::uint32_t, NodeId> term_to_node_;
};

}  // namespace figdb::text
