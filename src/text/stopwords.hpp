#pragma once

#include <string_view>

/// \file stopwords.hpp
/// Snowball-style English stop-word list (paper §5.1.3 eliminates stop words
/// with "a snowball stop word list" before building the tag vocabulary).

namespace figdb::text {

/// Returns true if \p word (lower-cased) is on the embedded snowball English
/// stop-word list.
bool IsStopword(std::string_view word);

/// Number of entries on the embedded list (for tests).
std::size_t StopwordCount();

}  // namespace figdb::text
