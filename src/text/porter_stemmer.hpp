#pragma once

#include <string>
#include <string_view>

/// \file porter_stemmer.hpp
/// Classic Porter (1980) suffix-stripping stemmer.
///
/// The paper uses "a WordNet stemmer" to normalise tags; Porter stemming is
/// the standard stand-in and produces the same effect for the pipeline:
/// inflected tag variants ("hamsters", "eating") collapse to one vocabulary
/// entry before frequency pruning.

namespace figdb::text {

/// Stateless; all methods are const and thread-compatible.
class PorterStemmer {
 public:
  /// Returns the stem of an already lower-cased ASCII word. Words shorter
  /// than 3 characters are returned unchanged (per the original algorithm).
  std::string Stem(std::string_view word) const;
};

}  // namespace figdb::text
