#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file tokenizer.hpp
/// Tag/title tokenisation for the textual feature pipeline (paper §5.1.3).
///
/// The paper's pipeline is: tokenise free-style tags, stem with a WordNet
/// stemmer, drop snowball stop words, and prune tags with corpus frequency
/// below 5. Tokenizer implements the first step; see porter_stemmer.hpp,
/// stopwords.hpp and vocabulary.hpp for the rest.

namespace figdb::text {

struct TokenizerOptions {
  /// Drop tokens shorter than this after normalisation.
  std::size_t min_token_length = 2;
  /// Drop tokens that contain no alphabetic character (e.g. "2008").
  bool require_alpha = true;
};

/// Splits free text into lower-cased alphanumeric tokens.
class Tokenizer {
 public:
  explicit Tokenizer(TokenizerOptions options = {}) : options_(options) {}

  /// Tokenises \p textIntoLowercase word tokens, splitting on anything that
  /// is not [a-z0-9].
  std::vector<std::string> Tokenize(std::string_view text) const;

 private:
  TokenizerOptions options_;
};

}  // namespace figdb::text
