#pragma once

#include <memory>
#include <vector>

#include "corpus/media_object.hpp"
#include "stats/feature_matrix.hpp"
#include "util/memo_cache.hpp"

/// \file cors.hpp
/// The CorS(n1, ..., nm) correlation-strength clique weight of paper Eq. 8:
///
///   CorS = (1/|D|) * sum_i  prod_j  (n_{j,i} - n̄_j) / sqrt(var(n_j))
///
/// For m == 2 this is exactly the Pearson correlation of the two features'
/// occurrence vectors (the paper notes the covariance equivalence); for
/// m > 2 it is the standardised cross-moment generalisation.
///
/// Deviations from the paper, both documented in DESIGN.md:
///  * we normalise by |D| so the weight is scale-free across database sizes
///    (the paper's raw sum grows linearly with |D|, which only rescales all
///    scores uniformly within one database);
///  * CorS of a single feature is defined as 1 (the raw Eq. 8 value is
///    identically 0 for m == 1, which would erase all unigram-clique
///    evidence from the model);
///  * negative values are clamped to 0 — an anti-correlated clique carries
///    no positive importance.
///
/// The naive evaluation is O(m * |D|) per clique because (n_{j,i} - n̄_j) is
/// non-zero even for objects that lack the feature. Compute() instead uses
/// the exact subset expansion
///
///   sum_i prod_j (x_{j,i} - c_j)
///     = sum_{S subset of [m]} (prod_{j not in S} -c_j) * T(S),
///
/// with x_{j,i} = n_{j,i}/sigma_j, c_j = n̄_j/sigma_j, T(empty) = |D| and
/// T(S) a sparse posting-list intersection — O(2^m * shortest-posting-list)
/// per clique, with m <= 4 in practice. ComputeBrute() keeps the naive form
/// as a test oracle.

namespace figdb::stats {

class CorSCalculator {
 public:
  explicit CorSCalculator(std::shared_ptr<const FeatureMatrix> matrix);

  /// CorS of a clique's feature set (sorted or not). Memoised; safe to call
  /// from concurrent serving readers (the memo is internally sharded and
  /// locked — see util/memo_cache.hpp).
  double Compute(const std::vector<corpus::FeatureKey>& features) const;

  /// O(m * |D|) reference implementation (test oracle).
  double ComputeBrute(const std::vector<corpus::FeatureKey>& features) const;

  std::size_t CacheSize() const { return cache_.Size(); }

 private:
  double ComputeUncached(std::vector<corpus::FeatureKey> features) const;

  std::shared_ptr<const FeatureMatrix> matrix_;
  // The only mutable state on the const scoring path; thread safety is
  // the annotated per-shard locking inside util/memo_cache.hpp.
  mutable util::ShardedMemoCache cache_;
};

}  // namespace figdb::stats
