#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "corpus/corpus.hpp"
#include "corpus/media_object.hpp"

/// \file feature_matrix.hpp
/// Feature-by-object occurrence statistics.
///
/// Each feature node n can be "associated with vector n⃗ where each dimension
/// ... equals the frequency of n appearing in this object" (paper §3.2).
/// FeatureMatrix materialises those vectors as per-feature posting lists,
/// plus the per-feature mean and variance needed by the CorS clique weight
/// (Eq. 8).

namespace figdb::stats {

/// One posting: the feature occurs in \p object with \p frequency.
struct Posting {
  corpus::ObjectId object;
  std::uint32_t frequency;
};

class FeatureMatrix {
 public:
  /// Scans the corpus once and builds all posting lists (sorted by object).
  static FeatureMatrix Build(const corpus::Corpus& corpus);

  std::size_t NumObjects() const { return num_objects_; }
  std::size_t NumFeatures() const { return postings_.size(); }

  /// Posting list of a feature (empty list for unseen features).
  const std::vector<Posting>& Postings(corpus::FeatureKey feature) const;

  /// Number of objects containing the feature.
  std::size_t DocumentFrequency(corpus::FeatureKey feature) const;

  /// Mean frequency of the feature over ALL objects (absent = 0), i.e. the
  /// n̄_j of Eq. 8.
  double Mean(corpus::FeatureKey feature) const;

  /// Population variance of the feature's frequency over all objects.
  double Variance(corpus::FeatureKey feature) const;

  /// Cosine similarity between two features' occurrence vectors — the
  /// paper's Eq. 1 inter-type correlation.
  double Cosine(corpus::FeatureKey a, corpus::FeatureKey b) const;

 private:
  struct Stats {
    std::uint64_t total = 0;     // sum of frequencies
    std::uint64_t total_sq = 0;  // sum of squared frequencies
  };

  std::size_t num_objects_ = 0;
  std::unordered_map<corpus::FeatureKey, std::vector<Posting>> postings_;
  std::unordered_map<corpus::FeatureKey, Stats> stats_;
  std::vector<Posting> empty_;
};

}  // namespace figdb::stats
