#include "stats/feature_matrix.hpp"

#include <cmath>

namespace figdb::stats {

FeatureMatrix FeatureMatrix::Build(const corpus::Corpus& corpus) {
  FeatureMatrix m;
  m.num_objects_ = corpus.Size();
  for (const corpus::MediaObject& obj : corpus.Objects()) {
    for (const corpus::FeatureOccurrence& f : obj.features) {
      m.postings_[f.feature].push_back({obj.id, f.frequency});
      Stats& s = m.stats_[f.feature];
      s.total += f.frequency;
      s.total_sq += std::uint64_t(f.frequency) * f.frequency;
    }
  }
  // Objects are scanned in id order, so posting lists are already sorted.
  return m;
}

const std::vector<Posting>& FeatureMatrix::Postings(
    corpus::FeatureKey feature) const {
  auto it = postings_.find(feature);
  return it == postings_.end() ? empty_ : it->second;
}

std::size_t FeatureMatrix::DocumentFrequency(
    corpus::FeatureKey feature) const {
  return Postings(feature).size();
}

double FeatureMatrix::Mean(corpus::FeatureKey feature) const {
  if (num_objects_ == 0) return 0.0;
  auto it = stats_.find(feature);
  if (it == stats_.end()) return 0.0;
  return double(it->second.total) / double(num_objects_);
}

double FeatureMatrix::Variance(corpus::FeatureKey feature) const {
  if (num_objects_ == 0) return 0.0;
  auto it = stats_.find(feature);
  if (it == stats_.end()) return 0.0;
  const double mean = double(it->second.total) / double(num_objects_);
  const double mean_sq = double(it->second.total_sq) / double(num_objects_);
  return std::max(0.0, mean_sq - mean * mean);
}

double FeatureMatrix::Cosine(corpus::FeatureKey a,
                             corpus::FeatureKey b) const {
  const auto& pa = Postings(a);
  const auto& pb = Postings(b);
  if (pa.empty() || pb.empty()) return 0.0;
  double dot = 0.0;
  std::size_t i = 0, j = 0;
  while (i < pa.size() && j < pb.size()) {
    if (pa[i].object == pb[j].object) {
      dot += double(pa[i].frequency) * double(pb[j].frequency);
      ++i;
      ++j;
    } else if (pa[i].object < pb[j].object) {
      ++i;
    } else {
      ++j;
    }
  }
  if (dot == 0.0) return 0.0;
  double na = 0.0, nb = 0.0;
  for (const Posting& p : pa) na += double(p.frequency) * p.frequency;
  for (const Posting& p : pb) nb += double(p.frequency) * p.frequency;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace figdb::stats
