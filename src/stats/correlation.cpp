#include "stats/correlation.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace figdb::stats {

using corpus::FeatureKey;
using corpus::FeatureType;
using corpus::IdOf;
using corpus::TypeOf;

CorrelationModel::CorrelationModel(
    std::shared_ptr<const corpus::Context> context,
    std::shared_ptr<const FeatureMatrix> matrix, CorrelationOptions options)
    : context_(std::move(context)),
      matrix_(std::move(matrix)),
      options_(options),
      cache_(options.cache_capacity) {
  FIGDB_CHECK(context_ != nullptr);
  FIGDB_CHECK(matrix_ != nullptr);
}

double CorrelationModel::Cor(FeatureKey a, FeatureKey b) const {
  if (a == b) return 1.0;
  const FeatureType ta = TypeOf(a), tb = TypeOf(b);
  if (ta != tb) return InterType(a, b);
  switch (ta) {
    case FeatureType::kText:
      return IntraText(IdOf(a), IdOf(b));
    case FeatureType::kVisual:
      return IntraVisual(IdOf(a), IdOf(b));
    case FeatureType::kUser:
      return IntraUser(IdOf(a), IdOf(b));
  }
  return 0.0;
}

double CorrelationModel::ThresholdFor(FeatureKey a, FeatureKey b) const {
  const FeatureType ta = TypeOf(a), tb = TypeOf(b);
  if (ta != tb) return options_.inter_type_threshold;
  switch (ta) {
    case FeatureType::kText:
      return options_.text_similarity == TextSimilarity::kCooccurrence
                 ? options_.text_cooccurrence_threshold
                 : options_.text_text_threshold;
    case FeatureType::kVisual:
      return options_.visual_visual_threshold;
    case FeatureType::kUser:
      return options_.user_user_threshold;
  }
  return 1.0;
}

bool CorrelationModel::Correlated(FeatureKey a, FeatureKey b) const {
  return Cor(a, b) >= ThresholdFor(a, b);
}

double CorrelationModel::IntraText(std::uint32_t a, std::uint32_t b) const {
  if (options_.text_similarity == TextSimilarity::kCooccurrence) {
    return InterType(
        corpus::MakeFeatureKey(corpus::FeatureType::kText, a),
        corpus::MakeFeatureKey(corpus::FeatureType::kText, b));
  }
  return context_->taxonomy.WupTerms(a, b);
}

double CorrelationModel::IntraVisual(std::uint32_t a, std::uint32_t b) const {
  const auto& vocab = context_->visual_vocabulary;
  if (a >= vocab.WordCount() || b >= vocab.WordCount()) return 0.0;
  return vocab.Similarity(a, b);
}

double CorrelationModel::IntraUser(std::uint32_t a, std::uint32_t b) const {
  const auto& graph = context_->user_graph;
  if (a >= graph.UserCount() || b >= graph.UserCount()) return 0.0;
  if (!graph.SharesGroup(a, b)) return 0.0;
  // The paper's rule is binary (shared group => correlated); we grade the
  // strength inside [0.5, 1] by the group-set Jaccard so CorS and smoothing
  // see a real value while any shared group still clears the 0.5 threshold.
  return 0.5 + 0.5 * graph.GroupJaccard(a, b);
}

double CorrelationModel::InterType(FeatureKey a, FeatureKey b) const {
  const std::uint64_t key =
      (std::uint64_t(std::min(a, b)) << 32) | std::uint64_t(std::max(a, b));
  double v;
  if (cache_.Lookup(key, &v)) return v;
  v = matrix_->Cosine(a, b);
  cache_.Insert(key, v);  // capacity-capped internally
  return v;
}

}  // namespace figdb::stats
