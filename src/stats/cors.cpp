#include "stats/cors.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace figdb::stats {
namespace {

/// Order-insensitive 64-bit key for a feature set (FNV over sorted keys).
std::uint64_t HashFeatures(const std::vector<corpus::FeatureKey>& sorted) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (corpus::FeatureKey f : sorted) {
    h ^= f;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// T(S): sum over objects in the intersection of the features' supports of
/// the product of scaled frequencies freq/sigma.
double IntersectionMoment(const FeatureMatrix& matrix,
                          const std::vector<corpus::FeatureKey>& subset,
                          const std::vector<double>& sigma_of_subset) {
  std::vector<const std::vector<Posting>*> lists;
  lists.reserve(subset.size());
  for (corpus::FeatureKey f : subset) lists.push_back(&matrix.Postings(f));

  std::vector<std::size_t> pos(lists.size(), 0);
  double total = 0.0;
  for (;;) {
    // Advance to a common object id across all lists.
    corpus::ObjectId target = 0;
    bool done = false;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      if (pos[l] >= lists[l]->size()) {
        done = true;
        break;
      }
      target = std::max(target, (*lists[l])[pos[l]].object);
    }
    if (done) break;
    bool aligned = true;
    for (std::size_t l = 0; l < lists.size(); ++l) {
      while (pos[l] < lists[l]->size() &&
             (*lists[l])[pos[l]].object < target) {
        ++pos[l];
      }
      if (pos[l] >= lists[l]->size()) {
        aligned = false;
        done = true;
        break;
      }
      if ((*lists[l])[pos[l]].object != target) aligned = false;
    }
    if (done) break;
    if (aligned) {
      double prod = 1.0;
      for (std::size_t l = 0; l < lists.size(); ++l)
        prod *= double((*lists[l])[pos[l]].frequency) / sigma_of_subset[l];
      total += prod;
      for (auto& p : pos) ++p;
    }
  }
  return total;
}

}  // namespace

CorSCalculator::CorSCalculator(std::shared_ptr<const FeatureMatrix> matrix)
    : matrix_(std::move(matrix)) {
  FIGDB_CHECK(matrix_ != nullptr);
}

double CorSCalculator::Compute(
    const std::vector<corpus::FeatureKey>& features) const {
  if (features.size() <= 1) return 1.0;
  std::vector<corpus::FeatureKey> sorted = features;
  std::sort(sorted.begin(), sorted.end());
  const std::uint64_t key = HashFeatures(sorted);
  double v;
  if (cache_.Lookup(key, &v)) return v;
  v = ComputeUncached(std::move(sorted));
  cache_.Insert(key, v);
  return v;
}

double CorSCalculator::ComputeUncached(
    std::vector<corpus::FeatureKey> features) const {
  const std::size_t m = features.size();
  const double n = double(matrix_->NumObjects());
  if (n <= 0.0) return 0.0;

  std::vector<double> sigma(m), c(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double var = matrix_->Variance(features[j]);
    if (var <= 0.0) return 0.0;  // constant feature: undefined weight
    sigma[j] = std::sqrt(var);
    c[j] = matrix_->Mean(features[j]) / sigma[j];
  }

  // Subset expansion over the 2^m subsets S of the clique's features.
  double sum = 0.0;
  const std::size_t subsets = std::size_t(1) << m;
  std::vector<corpus::FeatureKey> subset;
  std::vector<double> subset_sigma;
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    double coeff = 1.0;
    subset.clear();
    subset_sigma.clear();
    for (std::size_t j = 0; j < m; ++j) {
      if (mask & (std::size_t(1) << j)) {
        subset.push_back(features[j]);
        subset_sigma.push_back(sigma[j]);
      } else {
        coeff *= -c[j];
      }
    }
    const double t =
        subset.empty() ? n
                       : IntersectionMoment(*matrix_, subset, subset_sigma);
    sum += coeff * t;
  }
  return std::max(0.0, sum / n);
}

double CorSCalculator::ComputeBrute(
    const std::vector<corpus::FeatureKey>& features) const {
  if (features.size() <= 1) return 1.0;
  const std::size_t m = features.size();
  const double n = double(matrix_->NumObjects());
  if (n <= 0.0) return 0.0;

  std::vector<double> sigma(m), mean(m);
  for (std::size_t j = 0; j < m; ++j) {
    const double var = matrix_->Variance(features[j]);
    if (var <= 0.0) return 0.0;
    sigma[j] = std::sqrt(var);
    mean[j] = matrix_->Mean(features[j]);
  }

  // Dense per-object frequencies, reconstructed from posting lists.
  std::vector<std::vector<double>> freq(
      m, std::vector<double>(matrix_->NumObjects(), 0.0));
  for (std::size_t j = 0; j < m; ++j)
    for (const Posting& p : matrix_->Postings(features[j]))
      freq[j][p.object] = double(p.frequency);

  double sum = 0.0;
  for (std::size_t i = 0; i < matrix_->NumObjects(); ++i) {
    double prod = 1.0;
    for (std::size_t j = 0; j < m; ++j)
      prod *= (freq[j][i] - mean[j]) / sigma[j];
    sum += prod;
  }
  return std::max(0.0, sum / n);
}

}  // namespace figdb::stats
