#pragma once

#include <cstdint>
#include <memory>

#include "corpus/corpus.hpp"
#include "corpus/media_object.hpp"
#include "stats/feature_matrix.hpp"
#include "util/memo_cache.hpp"

/// \file correlation.hpp
/// The Cor(·,·) feature-correlation function of paper §3.2.
///
/// Intra-type:
///  * text  x text   -> WUP similarity over the taxonomy [26]
///  * visual x visual -> Euclidean-derived similarity between word centroids
///  * user  x user   -> shared-group membership (binary), graded by the
///                      Jaccard of the users' group sets for use as a
///                      real-valued strength
/// Inter-type: cosine of the features' occurrence vectors (Eq. 1).
///
/// An edge is drawn in the FIG when Cor exceeds the trained per-kind
/// threshold. This object plays the role of the paper's "6 pair-wise feature
/// correlation tables" (§3.5), computed lazily with memoisation instead of
/// being fully materialised (T x T alone would be ~60k^2 entries).

namespace figdb::stats {

/// Strategy for intra-textual correlation (§3.2: WUP by default; term
/// co-occurrence [6] is the paper's noted orthogonal alternative).
enum class TextSimilarity { kWup, kCooccurrence };

struct CorrelationOptions {
  TextSimilarity text_similarity = TextSimilarity::kWup;
  /// Edge thresholds per relation kind (the paper's "trained threshold").
  double text_text_threshold = 0.55;
  /// Threshold used when text_similarity is kCooccurrence (cosine scale,
  /// much smaller than the WUP scale).
  double text_cooccurrence_threshold = 0.15;
  double visual_visual_threshold = 0.80;
  double user_user_threshold = 0.5;
  double inter_type_threshold = 0.12;
  /// Memoisation cap for inter-type cosine lookups (entries).
  std::size_t cache_capacity = 1 << 22;
};

class CorrelationModel {
 public:
  CorrelationModel(std::shared_ptr<const corpus::Context> context,
                   std::shared_ptr<const FeatureMatrix> matrix,
                   CorrelationOptions options = {});

  /// Correlation strength in [0, 1].
  double Cor(corpus::FeatureKey a, corpus::FeatureKey b) const;

  /// True iff Cor(a, b) reaches the threshold for the pair's relation kind
  /// — i.e. whether the FIG has an edge between the two features.
  bool Correlated(corpus::FeatureKey a, corpus::FeatureKey b) const;

  /// Threshold that applies to a given feature pair.
  double ThresholdFor(corpus::FeatureKey a, corpus::FeatureKey b) const;

  const CorrelationOptions& Options() const { return options_; }
  const corpus::Context& Context() const { return *context_; }
  const FeatureMatrix& Matrix() const { return *matrix_; }

 private:
  double IntraText(std::uint32_t a, std::uint32_t b) const;
  double IntraVisual(std::uint32_t a, std::uint32_t b) const;
  double IntraUser(std::uint32_t a, std::uint32_t b) const;
  double InterType(corpus::FeatureKey a, corpus::FeatureKey b) const;

  std::shared_ptr<const corpus::Context> context_;
  std::shared_ptr<const FeatureMatrix> matrix_;
  CorrelationOptions options_;

  // Memo for inter-type cosines (the only expensive kind). Sharded and
  // internally locked: the model is shared by every serving snapshot, so
  // concurrent readers memoise through it in parallel. This is the one
  // mutable member reachable from the const read path; its lock
  // discipline lives (annotated, per shard) in util/memo_cache.hpp, so
  // this class carries no capability of its own.
  mutable util::ShardedMemoCache cache_;
};

}  // namespace figdb::stats
