#pragma once

#include <cstddef>
#include <string>
#include <string_view>

/// \file admission.hpp
/// The one formatter for admission-control rejection messages.
///
/// Three layers reject on concurrency caps — the executor's process-wide
/// RAII admission control, the shard router's scatter admission, and the
/// network front-end's per-tenant quotas — and operators triage all three
/// from the same log stream. PR 6 established the convention (name the cap
/// that fired, the load it saw, and both thresholds, and say explicitly
/// that the soft cap degrades instead of rejecting); this header makes it
/// a single function instead of three hand-assembled copies that drift.

namespace figdb::util {

/// "admission rejected by <cap_name>: N queries already in flight, hard
/// cap H rejects, soft cap S sheds the rerank stage instead of rejecting".
///
/// \p cap_name names the cap that fired ("the hard concurrency cap", "the
/// serve/overload fail-point", `tenant "acme" hard cap`); \p in_flight is
/// the load the admission check observed (EXCLUDING the rejected query, so
/// the number reads as "already in flight").
inline std::string AdmissionRejection(std::string_view cap_name,
                                      std::size_t in_flight,
                                      std::size_t hard_cap,
                                      std::size_t soft_cap) {
  std::string msg = "admission rejected by ";
  msg += cap_name;
  msg += ": ";
  msg += std::to_string(in_flight);
  msg += " queries already in flight, hard cap ";
  msg += std::to_string(hard_cap);
  msg += " rejects, soft cap ";
  msg += std::to_string(soft_cap);
  msg += " sheds the rerank stage instead of rejecting";
  return msg;
}

/// Tenant-scoped cap name for the network front-end's quota rejections:
/// `tenant "acme" hard cap` — the tenant id is quoted so log greps for a
/// tenant never match a prefix of another tenant's id.
inline std::string TenantCapName(std::string_view tenant) {
  std::string name = "tenant \"";
  name += tenant;
  name += "\" hard cap";
  return name;
}

}  // namespace figdb::util
