#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

/// \file failpoint.hpp
/// Deterministic fail-point registry for fault-injection testing.
///
/// A fail-point is a named site in production code (storage IO, snapshot
/// parsing, index build, the TA merge loop) where a test can deterministically
/// inject a failure — truncation, corruption, IO error, deadline pressure —
/// without mocks or build-time seams. Sites call FIGDB_FAILPOINT("name"),
/// which is zero-cost when nothing is activated: a single relaxed atomic load
/// of the global activation count guards the (slow, locked) name lookup.
///
/// Activation supports fire-after-N-hits counters so tests can target e.g.
/// "the third section read" or "the fifth TA depth", and a bounded fire
/// count ("fail once, then recover") for retry-path testing. The registry is
/// process-global and thread-safe; tests use ScopedFailPoint so activation
/// never leaks across test cases.

namespace figdb::util {

struct FailPointSpec {
  /// The point fires on hit number (skip_hits + 1); earlier hits pass.
  std::uint64_t skip_hits = 0;
  /// Number of firings before the point deactivates itself;
  /// kForever = fire on every eligible hit.
  std::uint64_t max_fires = kForever;

  static constexpr std::uint64_t kForever = ~std::uint64_t{0};
};

class FailPoints {
 public:
  /// (Re-)activates \p name with \p spec, resetting its hit counter.
  static void Activate(std::string_view name, FailPointSpec spec = {});
  static void Deactivate(std::string_view name);
  static void DeactivateAll();

  /// True iff the point is active and this hit should inject the failure.
  /// Every call counts one hit against the point's counters.
  static bool Fire(std::string_view name);

  /// Hits recorded against \p name since activation (0 if inactive).
  /// Lets tests assert a site was actually reached.
  static std::uint64_t HitCount(std::string_view name);

  /// Fast path: true iff any point is active anywhere in the process.
  static bool AnyActive() {
    return active_count_.load(std::memory_order_relaxed) != 0;
  }

  /// Activates every fail-point named in \p spec, a comma-separated list of
  ///   name[:skip_hits[:max_fires]]
  /// entries, e.g. "wal/fsync,checkpoint/rename:2:1". Passing nullptr reads
  /// the FIGDB_FAILPOINTS environment variable, so binaries (shell, benches)
  /// can run fault drills without recompiling. Returns the number of points
  /// activated; malformed entries AND names not in the canonical site list
  /// (util/failpoint_sites.hpp) are skipped with a warning on stderr, so a
  /// typo'd drill fails loudly instead of silently injecting nothing.
  /// \p quiet suppresses those warnings — for harnesses (fuzz_failpoint_spec)
  /// that feed adversarial specs by the thousand and only care about the
  /// return value.
  static std::size_t ActivateFromEnv(const char* spec = nullptr,
                                     bool quiet = false);

 private:
  static std::atomic<std::uint64_t> active_count_;
};

/// RAII activation for tests: active for the scope's lifetime.
class ScopedFailPoint {
 public:
  explicit ScopedFailPoint(std::string name, FailPointSpec spec = {})
      : name_(std::move(name)) {
    FailPoints::Activate(name_, spec);
  }
  ~ScopedFailPoint() { FailPoints::Deactivate(name_); }
  ScopedFailPoint(const ScopedFailPoint&) = delete;
  ScopedFailPoint& operator=(const ScopedFailPoint&) = delete;

  std::uint64_t HitCount() const { return FailPoints::HitCount(name_); }

 private:
  std::string name_;
};

}  // namespace figdb::util

/// Evaluates to true when the named fail-point should inject its failure.
/// Zero-cost (one relaxed atomic load) while no point is active.
#define FIGDB_FAILPOINT(name)           \
  (::figdb::util::FailPoints::AnyActive() && \
   ::figdb::util::FailPoints::Fire(name))
