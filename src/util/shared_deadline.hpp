#pragma once

#include <atomic>
#include <chrono>

#include "util/query_budget.hpp"

/// \file shared_deadline.hpp
/// Thread-safe deadline shared by the parallel legs of one query.
///
/// A BudgetTracker is single-threaded by design, so the parallel sections
/// of a query — the executor's per-clique shards, the shard router's
/// scatter legs — poll a precomputed monotonic time point instead and
/// latch expiry into a relaxed atomic flag; the dispatching thread folds
/// the flag back into the tracker (ForceDeadline) once the stage has
/// joined. The flag is LATCHED: once any poller observes expiry, every
/// later Expired()/ExpiredNow() on any thread reports it, so a stage that
/// joined after a partial expiry cannot un-see it.
///
/// Expiry is only latched by a POLL (or ForceExpire) — Expired() alone
/// never consults the clock. A dispatcher that wants "did the deadline
/// pass between dispatch and merge?" must call ExpiredNow() at the merge
/// boundary, not Expired(); the query executor and the shard router both
/// do. Fault injection stays at the call sites (`serve/slow_worker`,
/// `shard/slow`): the sites fire their own fail-point and call
/// ForceExpire()/sleep, which keeps this type mechanism-only and lets each
/// layer name its own drill.
///
/// An unarmed deadline (budget with wall_limit_seconds <= 0) never expires
/// on its own but can still be ForceExpire()d — the executor uses that for
/// fail-point-injected expiry under unlimited budgets.

namespace figdb::util {

class SharedDeadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Arms iff the budget carries a positive wall limit (the QueryBudget
  /// contract: <= 0 means no deadline).
  explicit SharedDeadline(const QueryBudget& budget) {
    if (budget.wall_limit_seconds > 0.0) {
      armed_ = true;
      at_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   budget.wall_limit_seconds));
    }
  }

  /// Arms at an explicit instant — which may already be in the past (a
  /// scatter dispatched with zero or negative remaining budget observes
  /// expiry on its first poll).
  explicit SharedDeadline(Clock::time_point at) : armed_(true), at_(at) {}

  /// One poll: consults the latch, then the clock; latches on expiry.
  bool ExpiredNow() {
    if (expired_.load(std::memory_order_relaxed)) return true;
    if (armed_ && Clock::now() > at_) {
      expired_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Latch-only read: true iff some poll (or ForceExpire) already expired
  /// the deadline. Never reads the clock.
  bool Expired() const { return expired_.load(std::memory_order_relaxed); }

  /// Latches expiry regardless of the clock — the hook fail-point sites
  /// use to inject deadline pressure deterministically.
  void ForceExpire() { expired_.store(true, std::memory_order_relaxed); }

  bool Armed() const { return armed_; }
  /// Meaningful only when Armed(); the instant polls compare against.
  Clock::time_point At() const { return at_; }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
  std::atomic<bool> expired_{false};
};

}  // namespace figdb::util
