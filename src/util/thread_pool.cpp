#include "util/thread_pool.hpp"

#include <atomic>
#include <memory>

namespace figdb::util {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  wake_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) wake_.Wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t shards,
                             const std::function<void(std::size_t)>& fn) {
  if (shards == 0) return;
  if (threads_.empty() || shards == 1) {
    for (std::size_t i = 0; i < shards; ++i) fn(i);
    return;
  }

  // One shared cursor; helpers and the caller race to claim shards, and the
  // caller waits for SHARD COMPLETIONS, not for helper exits. The
  // distinction matters on an oversubscribed host: a helper that was
  // enqueued but never scheduled must not hold the caller hostage — if the
  // caller drained every shard itself it returns immediately, and the stale
  // helper later claims past the end and exits without touching anything.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done_count{0};
    Mutex done_mutex{"util.ThreadPool.batch_done"};
    CondVar done;
  };
  auto batch = std::make_shared<Batch>();
  // `fn` is captured by reference. That is safe because a helper only
  // dereferences it after claiming a shard index < shards, and an
  // unfinished shard keeps the caller (and therefore `fn`) alive: the
  // caller cannot pass its done_count wait until every claimed shard ran.
  auto drain = [batch, shards, &fn] {
    for (;;) {
      const std::size_t i =
          batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards) return;
      fn(i);
      if (batch->done_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shards) {
        MutexLock lock(batch->done_mutex);
        batch->done.NotifyAll();
      }
    }
  };

  const std::size_t helpers = std::min(threads_.size(), shards - 1);
  for (std::size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();
  MutexLock lock(batch->done_mutex);
  while (batch->done_count.load(std::memory_order_acquire) != shards)
    batch->done.Wait(lock);
}

}  // namespace figdb::util
