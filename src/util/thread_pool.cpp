#include "util/thread_pool.hpp"

#include <atomic>

namespace figdb::util {

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t shards,
                             const std::function<void(std::size_t)>& fn) {
  if (shards == 0) return;
  if (threads_.empty() || shards == 1) {
    for (std::size_t i = 0; i < shards; ++i) fn(i);
    return;
  }

  // One shared cursor; helpers and the caller race to claim shards, and the
  // caller waits for SHARD COMPLETIONS, not for helper exits. The
  // distinction matters on an oversubscribed host: a helper that was
  // enqueued but never scheduled must not hold the caller hostage — if the
  // caller drained every shard itself it returns immediately, and the stale
  // helper later claims past the end and exits without touching anything.
  struct Batch {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done_count{0};
    std::mutex done_mutex;
    std::condition_variable done;
  };
  auto batch = std::make_shared<Batch>();
  // `fn` is captured by reference. That is safe because a helper only
  // dereferences it after claiming a shard index < shards, and an
  // unfinished shard keeps the caller (and therefore `fn`) alive: the
  // caller cannot pass its done_count wait until every claimed shard ran.
  auto drain = [batch, shards, &fn] {
    for (;;) {
      const std::size_t i =
          batch->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shards) return;
      fn(i);
      if (batch->done_count.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          shards) {
        std::lock_guard<std::mutex> lock(batch->done_mutex);
        batch->done.notify_all();
      }
    }
  };

  const std::size_t helpers = std::min(threads_.size(), shards - 1);
  for (std::size_t h = 0; h < helpers; ++h) Submit(drain);
  drain();
  std::unique_lock<std::mutex> lock(batch->done_mutex);
  batch->done.wait(lock, [&] {
    return batch->done_count.load(std::memory_order_acquire) == shards;
  });
}

}  // namespace figdb::util
