#include "util/lifetime.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>

namespace figdb::util::lifetime {
namespace {

/// "file:line" trimmed to the repo-relative tail, matching the deadlock
/// registry's reports (and lint findings) so the two read alike.
std::string Site(const char* file, std::uint32_t line) {
  std::string site = file != nullptr ? file : "<unknown>";
  for (const char* dir : {"/src/", "/tests/", "/bench/", "/examples/"}) {
    const auto at = site.rfind(dir);
    if (at != std::string::npos) {
      site.erase(0, at + 1);
      break;
    }
  }
  site += ":" + std::to_string(line);
  return site;
}

void DefaultHandler(const std::string& report) {
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&DefaultHandler};
std::atomic<std::uint64_t> g_quarantined{0};
std::atomic<std::uint64_t> g_verified{0};
std::atomic<std::uint64_t> g_violations{0};

/// Nested-pin stack per thread. Deeper nesting than kMaxPinDepth keeps
/// counting (so pops stay balanced) but only the first levels record an
/// epoch — 8 is already far beyond any real reader's nesting.
constexpr int kMaxPinDepth = 8;
struct PinStack {
  std::uint64_t epochs[kMaxPinDepth];
  int depth = 0;
};
thread_local PinStack tls_pins;

}  // namespace

void Canary::Check(std::source_location deref_site) const {
  const std::uint64_t seen = magic;
  if (seen == kAliveMagic) return;
  std::ostringstream report;
  if (seen == kPoisonMagic) {
    report << "figdb lifetime: use-after-reclaim\n"
           << "  object retired at " << Site(retire_file, retire_line)
           << " under epoch " << retired_epoch << "\n"
           << "  dereferenced at "
           << Site(deref_site.file_name(), deref_site.line());
    const std::uint64_t pin = ThreadPinEpoch();
    if (pin == 0) {
      report << " with no live reader pin\n";
    } else {
      report << " by a reader pinned at epoch " << pin
             << " (pin acquired after retirement cannot protect it)\n";
    }
    report << "  the static pass (figdb-lint snapshot-escape/pin-outlived) "
              "should have flagged the escape\n";
  } else {
    report << "figdb lifetime: canary destroyed (magic=0x" << std::hex << seen
           << std::dec << ")\n"
           << "  dereferenced at "
           << Site(deref_site.file_name(), deref_site.line())
           << " — the header was overwritten while the object was live "
              "(wild pointer or buffer overrun)\n";
  }
  ReportViolation(report.str());
}

void PoisonStorage(void* storage, std::size_t bytes, const Canary* canary,
                   std::uint64_t retired_epoch, const char* retire_file,
                   std::uint32_t retire_line) {
  std::memset(storage, kPoisonByte, bytes);
  // Rewrite the canary in place: the object is destroyed, so this is raw
  // storage again and a placement re-initialisation is the legal way to
  // plant the poisoned header a stale reader will trip over.
  auto* poisoned = ::new (const_cast<Canary*>(canary)) Canary();
  poisoned->magic = kPoisonMagic;
  poisoned->retired_epoch = retired_epoch;
  poisoned->retire_file = retire_file;
  poisoned->retire_line = retire_line;
}

bool VerifyPoison(const void* storage, std::size_t bytes,
                  const Canary* canary) {
  const auto* bytes_begin = static_cast<const unsigned char*>(storage);
  const auto* canary_begin = reinterpret_cast<const unsigned char*>(canary);
  const std::size_t canary_at =
      static_cast<std::size_t>(canary_begin - bytes_begin);
  for (std::size_t i = 0; i < bytes; ++i) {
    if (i >= canary_at && i < canary_at + sizeof(Canary)) continue;
    if (bytes_begin[i] != kPoisonByte) return false;
  }
  return canary->magic == kPoisonMagic;
}

Stats GetStats() {
  Stats s;
  s.quarantined = g_quarantined.load(std::memory_order_relaxed);
  s.verified = g_verified.load(std::memory_order_relaxed);
  s.violations = g_violations.load(std::memory_order_relaxed);
  return s;
}

void ResetStatsForTest() {
  g_quarantined.store(0, std::memory_order_relaxed);
  g_verified.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
}

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &DefaultHandler);
}

void ReportViolation(const std::string& report) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
  g_handler.load()(report);
}

void NoteQuarantined() { g_quarantined.fetch_add(1, std::memory_order_relaxed); }
void NoteVerified() { g_verified.fetch_add(1, std::memory_order_relaxed); }

void PushThreadPin(std::uint64_t epoch) {
  if (tls_pins.depth < kMaxPinDepth) tls_pins.epochs[tls_pins.depth] = epoch;
  ++tls_pins.depth;
}

void PopThreadPin() {
  if (tls_pins.depth > 0) --tls_pins.depth;
}

std::uint64_t ThreadPinEpoch() {
  if (tls_pins.depth == 0) return 0;
  const int top = tls_pins.depth < kMaxPinDepth ? tls_pins.depth : kMaxPinDepth;
  return tls_pins.epochs[top - 1];
}

}  // namespace figdb::util::lifetime
