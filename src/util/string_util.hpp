#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file string_util.hpp
/// Small string helpers shared by the text pipeline and report printers.

namespace figdb::util {

/// ASCII lower-casing (tags in the synthetic corpus are ASCII).
std::string ToLower(std::string_view s);

/// Splits on any character in \p delims, dropping empty pieces.
std::vector<std::string> Split(std::string_view s, std::string_view delims);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Trims ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace figdb::util
