#include "util/epoch.hpp"

#include "util/check.hpp"

namespace figdb::util {

EpochReclaimer::EpochReclaimer() : slots_(kMaxReaders) {
  for (auto& s : slots_) s.store(kIdle, std::memory_order_relaxed);
}

EpochReclaimer::~EpochReclaimer() {
  FIGDB_CHECK_MSG(ActiveReaders() == 0,
                  "EpochReclaimer destroyed with active readers");
  MutexLock lock(retired_mutex_);
  for (Retired& r : retired_) r.free_fn();
  retired_.clear();
}

EpochReclaimer::ReadGuard::ReadGuard(EpochReclaimer& r) : reclaimer_(&r) {
  // Claim a slot, then publish the epoch we are entering under. seq_cst on
  // the slot store orders it against the writer's subsequent min-scan: by
  // the time Retire() tags an object, either this reader's epoch is visible
  // (blocking the free) or the reader entered after the tag epoch advanced
  // (and can only load the NEW pointer).
  for (std::size_t i = 0;; i = (i + 1) % kMaxReaders) {
    std::uint64_t idle = kIdle;
    // Reserve the slot with the epoch placeholder 0 (below any real epoch)
    // so a concurrent reclaim can never free under us between the claim and
    // the epoch publish.
    if (reclaimer_->slots_[i].compare_exchange_weak(
            idle, 0, std::memory_order_seq_cst,
            std::memory_order_relaxed)) {
      slot_ = i;
      break;
    }
  }
  reclaimer_->slots_[slot_].store(
      reclaimer_->epoch_.load(std::memory_order_seq_cst),
      std::memory_order_seq_cst);
}

EpochReclaimer::ReadGuard::~ReadGuard() {
  reclaimer_->slots_[slot_].store(kIdle, std::memory_order_release);
}

std::uint64_t EpochReclaimer::MinActiveEpoch() const {
  std::uint64_t min_epoch = kIdle;
  for (const auto& s : slots_) {
    const std::uint64_t e = s.load(std::memory_order_seq_cst);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochReclaimer::Retire(std::function<void()> free_fn) {
  {
    MutexLock lock(retired_mutex_);
    retired_.push_back(
        {epoch_.load(std::memory_order_relaxed), std::move(free_fn)});
  }
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  TryReclaim();
}

std::size_t EpochReclaimer::TryReclaim() {
  std::vector<std::function<void()>> to_free;
  {
    MutexLock lock(retired_mutex_);
    const std::uint64_t min_active = MinActiveEpoch();
    std::size_t kept = 0;
    for (Retired& r : retired_) {
      // A reader pinned at epoch e may hold any pointer retired at >= e.
      if (r.epoch < min_active)
        to_free.push_back(std::move(r.free_fn));
      else
        retired_[kept++] = std::move(r);
    }
    retired_.resize(kept);
  }
  // Run deleters outside the lock: snapshot destructors are heavy.
  for (auto& fn : to_free) fn();
  reclaimed_.fetch_add(to_free.size(), std::memory_order_relaxed);
  return to_free.size();
}

std::size_t EpochReclaimer::PendingRetired() const {
  MutexLock lock(retired_mutex_);
  return retired_.size();
}

std::size_t EpochReclaimer::ActiveReaders() const {
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s.load(std::memory_order_acquire) != kIdle) ++n;
  return n;
}

}  // namespace figdb::util
