#include "util/epoch.hpp"

#include <sstream>

#include "util/check.hpp"

namespace figdb::util {
namespace {

/// Quarantine bound in the FIGDB_LIFETIME_POISON tree: deep enough that a
/// stale pointer from the previous few epochs still lands on poisoned
/// (mapped) storage, small enough that the instrumented tree's memory
/// ceiling stays close to the plain tree's.
constexpr std::size_t kDefaultQuarantineCapacity = 8;

}  // namespace

EpochReclaimer::EpochReclaimer() : slots_(kMaxReaders) {
  for (auto& s : slots_) s.store(kIdle, std::memory_order_relaxed);
#ifdef FIGDB_LIFETIME_POISON
  EnableLifetimePoison(kDefaultQuarantineCapacity);
#endif
}

EpochReclaimer::~EpochReclaimer() {
  FIGDB_CHECK_MSG(ActiveReaders() == 0,
                  "EpochReclaimer destroyed with active readers");
  MutexLock lock(retired_mutex_);
  for (Retired& r : retired_) {
    if (r.object != nullptr) {
      // Tracked entries skip the quarantine at teardown — there is no
      // "later" left to catch a stale reader in — but not the destroy/
      // deallocate split, which must mirror the reclaim path exactly.
      r.destroy();
      ::operator delete(const_cast<void*>(r.object));
    } else {
      r.free_fn();
    }
  }
  retired_.clear();
  for (const Quarantined& q : quarantine_) VerifyAndFree(q);
  quarantine_.clear();
}

EpochReclaimer::ReadGuard::ReadGuard(EpochReclaimer& r) : reclaimer_(&r) {
  // Claim a slot, then publish the epoch we are entering under. seq_cst on
  // the slot store orders it against the writer's subsequent min-scan: by
  // the time Retire() tags an object, either this reader's epoch is visible
  // (blocking the free) or the reader entered after the tag epoch advanced
  // (and can only load the NEW pointer).
  for (std::size_t i = 0;; i = (i + 1) % kMaxReaders) {
    std::uint64_t idle = kIdle;
    // Reserve the slot with the epoch placeholder 0 (below any real epoch)
    // so a concurrent reclaim can never free under us between the claim and
    // the epoch publish.
    if (reclaimer_->slots_[i].compare_exchange_weak(
            idle, 0, std::memory_order_seq_cst,
            std::memory_order_relaxed)) {
      slot_ = i;
      break;
    }
  }
  const std::uint64_t pinned =
      reclaimer_->epoch_.load(std::memory_order_seq_cst);
  reclaimer_->slots_[slot_].store(pinned, std::memory_order_seq_cst);
  // Two thread-local writes so a use-after-reclaim report can name the
  // offending thread's pin epoch (see lifetime.hpp); cheap enough to keep
  // in every build rather than gating on FIGDB_LIFETIME_POISON.
  lifetime::PushThreadPin(pinned);
}

EpochReclaimer::ReadGuard::~ReadGuard() {
  lifetime::PopThreadPin();
  reclaimer_->slots_[slot_].store(kIdle, std::memory_order_release);
}

std::uint64_t EpochReclaimer::MinActiveEpoch() const {
  std::uint64_t min_epoch = kIdle;
  for (const auto& s : slots_) {
    const std::uint64_t e = s.load(std::memory_order_seq_cst);
    if (e < min_epoch) min_epoch = e;
  }
  return min_epoch;
}

void EpochReclaimer::Retire(std::function<void()> free_fn) {
  {
    MutexLock lock(retired_mutex_);
    Retired r;
    r.epoch = epoch_.load(std::memory_order_relaxed);
    r.free_fn = std::move(free_fn);
    retired_.push_back(std::move(r));
  }
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  TryReclaim();
}

void EpochReclaimer::RetireTracked(const void* object, std::size_t bytes,
                                   const lifetime::Canary* canary,
                                   std::function<void()> destroy,
                                   std::source_location retire_site) {
  bool duplicate = false;
  {
    MutexLock lock(retired_mutex_);
    for (const Retired& r : retired_) duplicate |= r.object == object;
    for (const Quarantined& q : quarantine_) duplicate |= q.storage == object;
    if (!duplicate) {
      Retired r;
      r.epoch = epoch_.load(std::memory_order_relaxed);
      r.object = object;
      r.bytes = bytes;
      r.canary = canary;
      r.destroy = std::move(destroy);
      r.retire_file = retire_site.file_name();
      r.retire_line = retire_site.line();
      retired_.push_back(std::move(r));
    }
  }
  if (duplicate) {
    // Report and DROP: enqueueing the second retirement would turn the
    // caller's bookkeeping bug into a double destroy + double free.
    std::ostringstream report;
    report << "figdb lifetime: double retire of object @" << object
           << "\n  second retirement at " << retire_site.file_name() << ":"
           << retire_site.line()
           << " (the first is still pending reclamation)\n";
    lifetime::ReportViolation(report.str());
    return;
  }
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  TryReclaim();
}

void EpochReclaimer::EnableLifetimePoison(std::size_t quarantine_capacity) {
  MutexLock lock(retired_mutex_);
  poison_enabled_ = true;
  quarantine_capacity_ = quarantine_capacity;
}

std::size_t EpochReclaimer::QuarantineDepth() const {
  MutexLock lock(retired_mutex_);
  return quarantine_.size();
}

void EpochReclaimer::VerifyAndFree(const Quarantined& q) {
  if (lifetime::VerifyPoison(q.storage, q.bytes, q.canary)) {
    lifetime::NoteVerified();
  } else {
    std::ostringstream report;
    report << "figdb lifetime: reclaimed-memory corruption @" << q.storage
           << "\n  a stale write landed after retirement (object retired at "
           << (q.canary->retire_file != nullptr ? q.canary->retire_file
                                                : "<unknown>")
           << ":" << q.canary->retire_line << ", epoch "
           << q.canary->retired_epoch << ")\n";
    lifetime::ReportViolation(report.str());
  }
  ::operator delete(const_cast<void*>(q.storage));
}

void EpochReclaimer::ReclaimTracked(Retired&& r,
                                    std::vector<Quarantined>& evicted) {
  // Destructor first — poisoning live members would hand the destructor
  // garbage. Runs outside retired_mutex_ like every other deleter here.
  r.destroy();
  bool quarantine_this = false;
  {
    MutexLock lock(retired_mutex_);
    quarantine_this = poison_enabled_;
  }
  if (!quarantine_this) {
    ::operator delete(const_cast<void*>(r.object));
    return;
  }
  lifetime::PoisonStorage(const_cast<void*>(r.object), r.bytes, r.canary,
                          r.epoch, r.retire_file, r.retire_line);
  lifetime::NoteQuarantined();
  Quarantined q{r.object, r.bytes, r.canary};
  {
    MutexLock lock(retired_mutex_);
    quarantine_.push_back(q);
    while (quarantine_.size() > quarantine_capacity_) {
      evicted.push_back(quarantine_.front());
      quarantine_.pop_front();
    }
  }
}

std::size_t EpochReclaimer::TryReclaim() {
  std::vector<Retired> to_free;
  {
    MutexLock lock(retired_mutex_);
    const std::uint64_t min_active = MinActiveEpoch();
    std::size_t kept = 0;
    for (Retired& r : retired_) {
      // A reader pinned at epoch e may hold any pointer retired at >= e.
      if (r.epoch < min_active)
        to_free.push_back(std::move(r));
      else
        retired_[kept++] = std::move(r);
    }
    retired_.resize(kept);
  }
  // Run deleters (and poison fills / quarantine evictions) outside the
  // lock: snapshot destructors are heavy.
  std::vector<Quarantined> evicted;
  for (Retired& r : to_free) {
    if (r.object != nullptr)
      ReclaimTracked(std::move(r), evicted);
    else
      r.free_fn();
  }
  for (const Quarantined& q : evicted) VerifyAndFree(q);
  reclaimed_.fetch_add(to_free.size(), std::memory_order_relaxed);
  return to_free.size();
}

std::size_t EpochReclaimer::PendingRetired() const {
  MutexLock lock(retired_mutex_);
  return retired_.size();
}

std::size_t EpochReclaimer::ActiveReaders() const {
  std::size_t n = 0;
  for (const auto& s : slots_)
    if (s.load(std::memory_order_acquire) != kIdle) ++n;
  return n;
}

}  // namespace figdb::util
