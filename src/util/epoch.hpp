#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/thread_annotations.hpp"

/// \file epoch.hpp
/// Epoch-based reclamation for the serving layer's snapshot lifecycle.
///
/// The serving store publishes immutable snapshots through an atomic
/// pointer. Readers must be able to pin the snapshot they loaded without
/// taking a lock, and the single writer must be able to free a replaced
/// snapshot only after every reader that could still see it has drained.
/// That is exactly epoch-based reclamation:
///
///   * a global epoch counter advances on every retirement;
///   * a reader ENTERs by publishing the current epoch into one of a fixed
///     array of slots (lock-free: one CAS to claim a slot, one store to
///     publish the epoch), reads the shared pointer, and EXITs by clearing
///     the slot;
///   * the writer tags each retired object with the epoch at retirement and
///     frees it once min(active reader epochs) has moved PAST the tag — a
///     reader pinned at epoch e blocks every retirement tagged >= e, which
///     over-approximates "might still hold the old pointer" safely.
///
/// Reader enter/exit is wait-free apart from the slot-claim CAS loop, which
/// only contends when more than kMaxReaders threads read simultaneously
/// (enter then spins; sized generously above any sane reader count).
/// Retire/TryReclaim are writer-side and serialized by a mutex — the
/// serving store has a single writer, so this is never contended.

namespace figdb::util {

class EpochReclaimer {
 public:
  static constexpr std::size_t kMaxReaders = 64;

  EpochReclaimer();
  ~EpochReclaimer();  // frees everything still pending (no readers may
                      // be active at destruction)

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  /// RAII reader pin. While alive, no object retired at or after the epoch
  /// observed at construction is freed.
  class ReadGuard {
   public:
    explicit ReadGuard(EpochReclaimer& r);
    ~ReadGuard();
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    EpochReclaimer* reclaimer_;
    std::size_t slot_;
  };

  /// Writer-side: schedules \p free_fn to run once every reader active at
  /// (or before) this instant has drained; advances the global epoch and
  /// opportunistically reclaims whatever is already safe.
  void Retire(std::function<void()> free_fn) FIGDB_EXCLUDES(retired_mutex_);

  /// Frees every retired object no active reader can still see. Returns the
  /// number freed. Called internally by Retire; exposed so the writer can
  /// sweep without retiring (e.g. on an idle tick).
  std::size_t TryReclaim() FIGDB_EXCLUDES(retired_mutex_);

  std::uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  std::size_t PendingRetired() const;
  std::size_t ActiveReaders() const;
  std::uint64_t TotalReclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  /// min over active reader slots (kIdle when no reader is active).
  std::uint64_t MinActiveEpoch() const;

  struct Retired {
    std::uint64_t epoch;
    std::function<void()> free_fn;
  };

  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::vector<std::atomic<std::uint64_t>> slots_;

  /// Leaf lock: Retire/TryReclaim never acquire anything while holding it
  /// (deleters run after release — see epoch.cpp).
  mutable Mutex retired_mutex_{"util.EpochReclaimer.retired"};
  std::vector<Retired> retired_ FIGDB_GUARDED_BY(retired_mutex_);
};

}  // namespace figdb::util
