#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <source_location>
#include <vector>

#include "util/lifetime.hpp"
#include "util/thread_annotations.hpp"

/// \file epoch.hpp
/// Epoch-based reclamation for the serving layer's snapshot lifecycle.
///
/// The serving store publishes immutable snapshots through an atomic
/// pointer. Readers must be able to pin the snapshot they loaded without
/// taking a lock, and the single writer must be able to free a replaced
/// snapshot only after every reader that could still see it has drained.
/// That is exactly epoch-based reclamation:
///
///   * a global epoch counter advances on every retirement;
///   * a reader ENTERs by publishing the current epoch into one of a fixed
///     array of slots (lock-free: one CAS to claim a slot, one store to
///     publish the epoch), reads the shared pointer, and EXITs by clearing
///     the slot;
///   * the writer tags each retired object with the epoch at retirement and
///     frees it once min(active reader epochs) has moved PAST the tag — a
///     reader pinned at epoch e blocks every retirement tagged >= e, which
///     over-approximates "might still hold the old pointer" safely.
///
/// Reader enter/exit is wait-free apart from the slot-claim CAS loop, which
/// only contends when more than kMaxReaders threads read simultaneously
/// (enter then spins; sized generously above any sane reader count).
/// Retire/TryReclaim are writer-side and serialized by a mutex — the
/// serving store has a single writer, so this is never contended.

namespace figdb::util {

class EpochReclaimer {
 public:
  static constexpr std::size_t kMaxReaders = 64;

  EpochReclaimer();
  ~EpochReclaimer();  // frees everything still pending (no readers may
                      // be active at destruction)

  EpochReclaimer(const EpochReclaimer&) = delete;
  EpochReclaimer& operator=(const EpochReclaimer&) = delete;

  /// RAII reader pin. While alive, no object retired at or after the epoch
  /// observed at construction is freed.
  class ReadGuard {
   public:
    explicit ReadGuard(EpochReclaimer& r);
    ~ReadGuard();
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    EpochReclaimer* reclaimer_;
    std::size_t slot_;
  };

  /// Writer-side: schedules \p free_fn to run once every reader active at
  /// (or before) this instant has drained; advances the global epoch and
  /// opportunistically reclaims whatever is already safe.
  void Retire(std::function<void()> free_fn) FIGDB_EXCLUDES(retired_mutex_);

  /// Writer-side retirement for canary-headed objects (the snapshots).
  /// With lifetime poisoning off this is exactly `Retire([p]{ delete p; })`
  /// — destructor, then ::operator delete. With it on (always in the
  /// -DFIGDB_LIFETIME_POISON tree, or via EnableLifetimePoison), reclaim
  /// destroys the object, pattern-fills its storage, plants a poisoned
  /// canary carrying the retiring epoch and \p retire_site, and parks the
  /// storage in a bounded FIFO quarantine whose eviction verifies the
  /// pattern before the final free. Retiring the same object twice is a
  /// violation (reported, second retirement dropped). \p T must expose
  /// `const lifetime::Canary* LifetimeCanary() const`.
  template <typename T>
  void RetireObject(const T* object, std::source_location retire_site =
                                         std::source_location::current()) {
    RetireTracked(object, sizeof(T), object->LifetimeCanary(),
                  [object] { object->~T(); }, retire_site);
  }

  /// Untemplated core of RetireObject. \p destroy must only run the
  /// destructor — deallocation is the reclaimer's (it frees with
  /// ::operator delete once the quarantine lets go of the storage).
  void RetireTracked(const void* object, std::size_t bytes,
                     const lifetime::Canary* canary,
                     std::function<void()> destroy,
                     std::source_location retire_site)
      FIGDB_EXCLUDES(retired_mutex_);

  /// Turns the poison quarantine on at runtime (any build; the
  /// FIGDB_LIFETIME_POISON tree constructs with it already on). Capacity
  /// bounds the FIFO: pushing past it evicts the oldest entry through the
  /// verify-then-free path, and capacity 0 degenerates to verify-and-free
  /// immediately — the canary check is never skipped, only the parking.
  void EnableLifetimePoison(std::size_t quarantine_capacity)
      FIGDB_EXCLUDES(retired_mutex_);

  std::size_t QuarantineDepth() const FIGDB_EXCLUDES(retired_mutex_);

  /// Frees every retired object no active reader can still see. Returns the
  /// number freed. Called internally by Retire; exposed so the writer can
  /// sweep without retiring (e.g. on an idle tick).
  std::size_t TryReclaim() FIGDB_EXCLUDES(retired_mutex_);

  std::uint64_t CurrentEpoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  std::size_t PendingRetired() const;
  std::size_t ActiveReaders() const;
  std::uint64_t TotalReclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kIdle = ~std::uint64_t{0};

  /// min over active reader slots (kIdle when no reader is active).
  std::uint64_t MinActiveEpoch() const;

  struct Retired {
    std::uint64_t epoch = 0;
    std::function<void()> free_fn;  ///< legacy untracked path
    // Tracked (RetireObject) path: destroy runs the destructor, the
    // reclaimer owns deallocation so it can interpose the quarantine.
    const void* object = nullptr;
    std::size_t bytes = 0;
    const lifetime::Canary* canary = nullptr;
    std::function<void()> destroy;
    const char* retire_file = nullptr;
    std::uint32_t retire_line = 0;
  };

  /// Destroyed-and-poisoned storage awaiting its final free.
  struct Quarantined {
    const void* storage = nullptr;
    std::size_t bytes = 0;
    const lifetime::Canary* canary = nullptr;
  };

  /// Destroys a reclaimable tracked entry and either frees it (poison
  /// off) or poisons + quarantines it, appending evictions to \p evicted.
  void ReclaimTracked(Retired&& r, std::vector<Quarantined>& evicted)
      FIGDB_EXCLUDES(retired_mutex_);

  /// Verifies the poison pattern survived quarantine, reporting a
  /// lifetime violation if a stale write landed, then frees the storage.
  static void VerifyAndFree(const Quarantined& q);

  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> reclaimed_{0};
  std::vector<std::atomic<std::uint64_t>> slots_;

  /// Leaf lock: Retire/TryReclaim never acquire anything while holding it
  /// (deleters run after release — see epoch.cpp).
  mutable Mutex retired_mutex_{"util.EpochReclaimer.retired"};
  std::vector<Retired> retired_ FIGDB_GUARDED_BY(retired_mutex_);
  std::deque<Quarantined> quarantine_ FIGDB_GUARDED_BY(retired_mutex_);
  bool poison_enabled_ FIGDB_GUARDED_BY(retired_mutex_) = false;
  std::size_t quarantine_capacity_ FIGDB_GUARDED_BY(retired_mutex_) = 0;
};

}  // namespace figdb::util
