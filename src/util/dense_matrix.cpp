#include "util/dense_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace figdb::util {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void DenseMatrix::FillGaussian(Rng* rng) {
  for (auto& x : data_) x = rng->Gaussian();
}

DenseMatrix DenseMatrix::Multiply(const DenseMatrix& other) const {
  FIGDB_CHECK(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* a = RowPtr(i);
    double* o = out.RowPtr(i);
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = other.RowPtr(k);
      for (std::size_t j = 0; j < other.cols_; ++j) o[j] += aik * b[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::TransposeMultiply(const DenseMatrix& other) const {
  FIGDB_CHECK(rows_ == other.rows_);
  DenseMatrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* a = RowPtr(k);
    const double* b = other.RowPtr(k);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double aki = a[i];
      if (aki == 0.0) continue;
      double* o = out.RowPtr(i);
      for (std::size_t j = 0; j < other.cols_; ++j) o[j] += aki * b[j];
    }
  }
  return out;
}

DenseMatrix DenseMatrix::Transposed() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out.At(j, i) = At(i, j);
  return out;
}

void DenseMatrix::OrthonormalizeColumns() {
  for (std::size_t j = 0; j < cols_; ++j) {
    // Subtract projections onto previous columns (modified Gram-Schmidt).
    for (std::size_t k = 0; k < j; ++k) {
      double dot = 0.0;
      for (std::size_t i = 0; i < rows_; ++i) dot += At(i, k) * At(i, j);
      for (std::size_t i = 0; i < rows_; ++i) At(i, j) -= dot * At(i, k);
    }
    double norm = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) norm += At(i, j) * At(i, j);
    norm = std::sqrt(norm);
    if (norm < 1e-12) {
      for (std::size_t i = 0; i < rows_; ++i) At(i, j) = 0.0;
    } else {
      for (std::size_t i = 0; i < rows_; ++i) At(i, j) /= norm;
    }
  }
}

double DenseMatrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double x : data_) s += x * x;
  return std::sqrt(s);
}

void SymmetricEigen(const DenseMatrix& m, std::vector<double>* eigvals,
                    DenseMatrix* eigvecs) {
  FIGDB_CHECK(m.Rows() == m.Cols());
  const std::size_t n = m.Rows();
  DenseMatrix a = m;
  DenseMatrix v(n, n);
  for (std::size_t i = 0; i < n; ++i) v.At(i, i) = 1.0;

  // Cyclic Jacobi sweeps; n is small (the LSA rank, <= a few hundred).
  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a.At(p, q) * a.At(p, q);
    if (off < 1e-20) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a.At(p, q);
        if (std::fabs(apq) < 1e-15) continue;
        const double app = a.At(p, p), aqq = a.At(q, q);
        const double theta = 0.5 * (aqq - app) / apq;
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a.At(i, p), aiq = a.At(i, q);
          a.At(i, p) = c * aip - s * aiq;
          a.At(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a.At(p, i), aqi = a.At(q, i);
          a.At(p, i) = c * api - s * aqi;
          a.At(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v.At(i, p), viq = v.At(i, q);
          v.At(i, p) = c * vip - s * viq;
          v.At(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a.At(x, x) > a.At(y, y);
  });
  eigvals->resize(n);
  *eigvecs = DenseMatrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    (*eigvals)[j] = a.At(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i)
      eigvecs->At(i, j) = v.At(i, order[j]);
  }
}

}  // namespace figdb::util
