#include "util/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace figdb::util {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> Split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace figdb::util
