#include "util/sparse_vector.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace figdb::util {

void SparseVector::Add(std::uint32_t dim, float value) {
  terms_.push_back({dim, value});
  finalized_ = false;
}

void SparseVector::Finalize() {
  if (finalized_) return;
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.dim < b.dim; });
  std::size_t out = 0;
  for (std::size_t i = 0; i < terms_.size();) {
    std::uint32_t dim = terms_[i].dim;
    float sum = 0.0f;
    while (i < terms_.size() && terms_[i].dim == dim) {
      sum += terms_[i].value;
      ++i;
    }
    if (sum != 0.0f) terms_[out++] = {dim, sum};
  }
  terms_.resize(out);
  finalized_ = true;
}

float SparseVector::Get(std::uint32_t dim) const {
  FIGDB_DCHECK(finalized_);
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), dim,
      [](const Term& t, std::uint32_t d) { return t.dim < d; });
  if (it != terms_.end() && it->dim == dim) return it->value;
  return 0.0f;
}

double SparseVector::Norm() const {
  double s = 0.0;
  for (const Term& t : terms_) s += double(t.value) * double(t.value);
  return std::sqrt(s);
}

double SparseVector::Sum() const {
  double s = 0.0;
  for (const Term& t : terms_) s += t.value;
  return s;
}

double SparseVector::Dot(const SparseVector& a, const SparseVector& b) {
  FIGDB_DCHECK(a.finalized_ && b.finalized_);
  double s = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.terms_.size() && j < b.terms_.size()) {
    const std::uint32_t da = a.terms_[i].dim, db = b.terms_[j].dim;
    if (da == db) {
      s += double(a.terms_[i].value) * double(b.terms_[j].value);
      ++i;
      ++j;
    } else if (da < db) {
      ++i;
    } else {
      ++j;
    }
  }
  return s;
}

double SparseVector::Cosine(const SparseVector& a, const SparseVector& b) {
  const double na = a.Norm(), nb = b.Norm();
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

void SparseVector::Scale(float factor) {
  for (Term& t : terms_) t.value *= factor;
}

void SparseVector::AddScaled(const SparseVector& b, float s) {
  FIGDB_DCHECK(finalized_ && b.finalized_);
  std::vector<Term> merged;
  merged.reserve(terms_.size() + b.terms_.size());
  std::size_t i = 0, j = 0;
  while (i < terms_.size() || j < b.terms_.size()) {
    if (j >= b.terms_.size() ||
        (i < terms_.size() && terms_[i].dim < b.terms_[j].dim)) {
      merged.push_back(terms_[i++]);
    } else if (i >= terms_.size() || b.terms_[j].dim < terms_[i].dim) {
      merged.push_back({b.terms_[j].dim, s * b.terms_[j].value});
      ++j;
    } else {
      const float v = terms_[i].value + s * b.terms_[j].value;
      if (v != 0.0f) merged.push_back({terms_[i].dim, v});
      ++i;
      ++j;
    }
  }
  terms_ = std::move(merged);
}

}  // namespace figdb::util
