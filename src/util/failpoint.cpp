#include "util/failpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/failpoint_sites.hpp"
#include "util/thread_annotations.hpp"

namespace figdb::util {
namespace {

struct FailPointState {
  FailPointSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  bool active = false;  // stays in the map after deactivation (keeps hits)
};

struct Registry {
  Mutex mu{"util.FailPoints.registry"};
  std::unordered_map<std::string, FailPointState> points FIGDB_GUARDED_BY(mu);
  std::uint64_t active FIGDB_GUARDED_BY(mu) = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

}  // namespace

std::atomic<std::uint64_t> FailPoints::active_count_{0};

void FailPoints::Activate(std::string_view name, FailPointSpec spec) {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  FailPointState& state = reg.points[std::string(name)];
  if (!state.active) ++reg.active;
  state = FailPointState{spec, /*hits=*/0, /*fires=*/0, /*active=*/true};
  active_count_.store(reg.active, std::memory_order_relaxed);
}

void FailPoints::Deactivate(std::string_view name) {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  auto it = reg.points.find(std::string(name));
  if (it == reg.points.end() || !it->second.active) return;
  it->second.active = false;
  --reg.active;
  active_count_.store(reg.active, std::memory_order_relaxed);
}

void FailPoints::DeactivateAll() {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  for (auto& [name, state] : reg.points) state.active = false;
  reg.active = 0;
  active_count_.store(0, std::memory_order_relaxed);
}

bool FailPoints::Fire(std::string_view name) {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  auto it = reg.points.find(std::string(name));
  if (it == reg.points.end() || !it->second.active) return false;
  FailPointState& state = it->second;
  const std::uint64_t hit = state.hits++;
  if (hit < state.spec.skip_hits) return false;
  if (state.fires >= state.spec.max_fires) return false;
  ++state.fires;
  if (state.fires >= state.spec.max_fires) {
    state.active = false;
    --reg.active;
    active_count_.store(reg.active, std::memory_order_relaxed);
  }
  return true;
}

std::size_t FailPoints::ActivateFromEnv(const char* spec, bool quiet) {
  if (spec == nullptr) spec = std::getenv("FIGDB_FAILPOINTS");
  if (spec == nullptr || *spec == '\0') return 0;
  std::size_t activated = 0;
  const std::string all(spec);
  std::size_t start = 0;
  while (start <= all.size()) {
    std::size_t end = all.find(',', start);
    if (end == std::string::npos) end = all.size();
    const std::string entry = all.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;
    // Split "name[:skip_hits[:max_fires]]" — names contain '/' but no ':'.
    std::vector<std::string> parts;
    std::size_t p = 0;
    while (p <= entry.size()) {
      std::size_t q = entry.find(':', p);
      if (q == std::string::npos) q = entry.size();
      parts.push_back(entry.substr(p, q - p));
      p = q + 1;
    }
    FailPointSpec fp;
    bool ok = !parts[0].empty() && parts.size() <= 3;
    char* parse_end = nullptr;
    if (ok && parts.size() >= 2) {
      fp.skip_hits = std::strtoull(parts[1].c_str(), &parse_end, 10);
      ok = parse_end != nullptr && *parse_end == '\0' && !parts[1].empty();
    }
    if (ok && parts.size() == 3) {
      fp.max_fires = std::strtoull(parts[2].c_str(), &parse_end, 10);
      ok = parse_end != nullptr && *parse_end == '\0' && !parts[2].empty();
    }
    if (!ok) {
      if (!quiet)
        std::fprintf(stderr,
                     "FIGDB_FAILPOINTS: skipping malformed entry '%s' "
                     "(want name[:skip_hits[:max_fires]])\n",
                     entry.c_str());
      continue;
    }
    // A typo'd site name would activate a point nothing ever fires — the
    // drill silently injects no faults. Env activation therefore only
    // accepts names from the canonical site list (failpoint_sites.hpp);
    // programmatic Activate() stays unvalidated for test scratch names.
    if (!IsKnownFailPointSite(parts[0])) {
      if (!quiet)
        std::fprintf(stderr,
                     "FIGDB_FAILPOINTS: skipping unknown site '%s' "
                     "(not in util/failpoint_sites.hpp)\n",
                     parts[0].c_str());
      continue;
    }
    Activate(parts[0], fp);
    ++activated;
  }
  return activated;
}

std::uint64_t FailPoints::HitCount(std::string_view name) {
  Registry& reg = GetRegistry();
  MutexLock lock(reg.mu);
  auto it = reg.points.find(std::string(name));
  return it == reg.points.end() ? 0 : it->second.hits;
}

}  // namespace figdb::util
