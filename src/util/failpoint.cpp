#include "util/failpoint.hpp"

#include <mutex>
#include <string>
#include <unordered_map>

namespace figdb::util {
namespace {

struct FailPointState {
  FailPointSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  bool active = false;  // stays in the map after deactivation (keeps hits)
};

struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, FailPointState> points;
  std::uint64_t active = 0;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // leaked: outlives all users
  return *registry;
}

}  // namespace

std::atomic<std::uint64_t> FailPoints::active_count_{0};

void FailPoints::Activate(std::string_view name, FailPointSpec spec) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  FailPointState& state = reg.points[std::string(name)];
  if (!state.active) ++reg.active;
  state = FailPointState{spec, /*hits=*/0, /*fires=*/0, /*active=*/true};
  active_count_.store(reg.active, std::memory_order_relaxed);
}

void FailPoints::Deactivate(std::string_view name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(std::string(name));
  if (it == reg.points.end() || !it->second.active) return;
  it->second.active = false;
  --reg.active;
  active_count_.store(reg.active, std::memory_order_relaxed);
}

void FailPoints::DeactivateAll() {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (auto& [name, state] : reg.points) state.active = false;
  reg.active = 0;
  active_count_.store(0, std::memory_order_relaxed);
}

bool FailPoints::Fire(std::string_view name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(std::string(name));
  if (it == reg.points.end() || !it->second.active) return false;
  FailPointState& state = it->second;
  const std::uint64_t hit = state.hits++;
  if (hit < state.spec.skip_hits) return false;
  if (state.fires >= state.spec.max_fires) return false;
  ++state.fires;
  if (state.fires >= state.spec.max_fires) {
    state.active = false;
    --reg.active;
    active_count_.store(reg.active, std::memory_order_relaxed);
  }
  return true;
}

std::uint64_t FailPoints::HitCount(std::string_view name) {
  Registry& reg = GetRegistry();
  std::lock_guard<std::mutex> lock(reg.mu);
  auto it = reg.points.find(std::string(name));
  return it == reg.points.end() ? 0 : it->second.hits;
}

}  // namespace figdb::util
