#pragma once

#include <string>
#include <string_view>

#include "util/status.hpp"

/// \file atomic_file.hpp
/// Crash-safe whole-file replacement: write-temp → fsync → atomic-rename.
///
/// Every durable artifact figdb produces (corpus snapshots, store
/// checkpoints) goes through AtomicWriteFile so that a crash at ANY point
/// leaves either the complete previous file or the complete new file on
/// disk — never a torn hybrid. The sequence is the classic one:
///
///   1. write the full payload to `<path>.tmp`;
///   2. fsync the temp file (contents durable before the name flips);
///   3. rename(tmp, path)   — atomic on POSIX filesystems;
///   4. fsync the parent directory (the rename itself durable).
///
/// On any failure the temp file is removed and the previous `path` is left
/// untouched.
///
/// Fault injection: callers pass their own fail-point names so the same
/// helper serves `storage/save_*` and `checkpoint/*` drills without the
/// sites colliding. A null name disables that injection site.

namespace figdb::util {

/// Fail-point names for the three failure classes of an atomic write.
/// Null members mean "no injection site here".
struct AtomicWriteFailPoints {
  const char* write_io = nullptr;  ///< short write into the temp file
  const char* fsync = nullptr;     ///< temp-file fsync failure
  const char* rename = nullptr;    ///< rename(tmp, path) failure
};

/// Atomically replaces \p path with \p bytes via `<path>.tmp`.
/// Returns kUnavailable (with the failing step named) on any IO error;
/// the previous file at \p path survives every failure mode.
[[nodiscard]] Status AtomicWriteFile(
    const std::string& path, std::string_view bytes,
    const AtomicWriteFailPoints& fail_points = {});

/// fsyncs the directory containing \p path (making a rename durable).
/// Best-effort on filesystems that reject directory fsync; real IO errors
/// are reported as kUnavailable.
[[nodiscard]] Status SyncParentDirectory(const std::string& path);

}  // namespace figdb::util
