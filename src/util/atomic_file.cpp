#include "util/atomic_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/failpoint.hpp"

namespace figdb::util {
namespace {

Status Unavailable(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " '" + path + "': " +
                             std::strerror(errno));
}

/// Fires \p name when it is a registered injection site.
bool InjectedFault(const char* name) {
  return name != nullptr && FIGDB_FAILPOINT(name);
}

}  // namespace

Status SyncParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Unavailable("cannot open directory", dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  // EINVAL: the filesystem does not support directory fsync (e.g. some
  // overlay/network mounts) — the rename is still atomic, just not yet
  // guaranteed durable; treat as best-effort rather than failing the save.
  if (rc != 0 && errno != EINVAL)
    return Unavailable("fsync failed for directory", dir);
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, std::string_view bytes,
                       const AtomicWriteFailPoints& fail_points) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Unavailable("cannot open temp file", tmp);

  const std::size_t written =
      InjectedFault(fail_points.write_io)
          ? (bytes.empty() ? 0 : bytes.size() - 1)  // injected short write
          : std::fwrite(bytes.data(), 1, bytes.size(), f);
  if (written != bytes.size()) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Status::Unavailable("short write to '" + tmp + "' (" +
                               std::to_string(written) + " of " +
                               std::to_string(bytes.size()) + " bytes)");
  }
  if (std::fflush(f) != 0 || ::fsync(::fileno(f)) != 0 ||
      InjectedFault(fail_points.fsync)) {
    std::fclose(f);
    std::remove(tmp.c_str());
    return Unavailable("fsync failed for", tmp);
  }
  if (std::fclose(f) != 0) {
    std::remove(tmp.c_str());
    return Unavailable("close failed for", tmp);
  }
  if (InjectedFault(fail_points.rename) ||
      std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Unavailable("rename failed for", path);
  }
  return SyncParentDirectory(path);
}

}  // namespace figdb::util
