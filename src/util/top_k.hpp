#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

/// \file top_k.hpp
/// Bounded top-k collector used by every retrieval path.

namespace figdb::util {

/// Keeps the k largest (score, id) pairs seen so far in a min-heap.
///
/// Ties on score are broken towards the smaller id so that every retrieval
/// method in figdb produces a deterministic ranking.
template <typename Id = std::uint32_t>
class TopK {
 public:
  struct Entry {
    double score;
    Id id;
  };

  explicit TopK(std::size_t k) : k_(k) {}

  /// Offers a candidate; O(log k) when it displaces the current minimum.
  void Offer(double score, Id id) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back({score, id});
      std::push_heap(heap_.begin(), heap_.end(), Greater);
      return;
    }
    if (Less(heap_.front(), Entry{score, id})) {
      std::pop_heap(heap_.begin(), heap_.end(), Greater);
      heap_.back() = {score, id};
      std::push_heap(heap_.begin(), heap_.end(), Greater);
    }
  }

  /// Current k-th best score, or -infinity while underfull. This is the TA
  /// early-termination threshold.
  double KthScore() const {
    if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
    return heap_.front().score;
  }

  bool Full() const { return heap_.size() >= k_; }
  std::size_t Size() const { return heap_.size(); }
  std::size_t Capacity() const { return k_; }

  /// Extracts results best-first; the collector is left empty.
  std::vector<Entry> Take() {
    std::vector<Entry> out = std::move(heap_);
    heap_.clear();
    std::sort(out.begin(), out.end(),
              [](const Entry& a, const Entry& b) { return Less(b, a); });
    return out;
  }

 private:
  // Strict ordering: higher score wins; on a tie the smaller id wins.
  static bool Less(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id > b.id;
  }
  static bool Greater(const Entry& a, const Entry& b) { return Less(b, a); }

  std::size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace figdb::util
