#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>

/// \file backoff.hpp
/// Deterministic exponential backoff for bounded retry loops.
///
/// The shard router retries a failed scatter leg against the shard's last
/// good snapshot; the delays between attempts are the classic doubling
/// sequence initial, 2*initial, 4*initial, ... capped at a maximum. There
/// is deliberately NO jitter: figdb replays fault schedules bit-for-bit in
/// tests (and the `raw-randomness` lint bans ad-hoc entropy sources in
/// src/), and the router's retry fan-in is a single gather thread, so the
/// thundering-herd argument for jitter does not apply here. If a future
/// caller needs jitter, thread a util::Rng through explicitly.

namespace figdb::util {

/// Delay before retry attempt \p attempt (0-based: the delay between the
/// initial try and the first retry is Delay(0) = initial).
inline std::chrono::duration<double> BackoffDelay(double initial_seconds,
                                                  std::size_t attempt,
                                                  double max_seconds) {
  double d = std::max(0.0, initial_seconds);
  for (std::size_t i = 0; i < attempt && d < max_seconds; ++i) d *= 2.0;
  return std::chrono::duration<double>(std::min(d, max_seconds));
}

/// Stateful form: each Next() yields the following delay in the sequence.
class Backoff {
 public:
  Backoff(double initial_seconds, double max_seconds)
      : initial_(initial_seconds), max_(max_seconds) {}

  std::chrono::duration<double> Next() {
    return BackoffDelay(initial_, attempt_++, max_);
  }

  /// Retries taken so far (Next() calls).
  std::size_t Attempts() const { return attempt_; }

 private:
  double initial_;
  double max_;
  std::size_t attempt_ = 0;
};

}  // namespace figdb::util
