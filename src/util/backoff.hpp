#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>

#include "util/rng.hpp"
#include "util/status.hpp"

/// \file backoff.hpp
/// Deterministic exponential backoff for bounded retry loops.
///
/// The shard router retries a failed scatter leg against the shard's last
/// good snapshot; the delays between attempts are the classic doubling
/// sequence initial, 2*initial, 4*initial, ... capped at a maximum. There
/// is deliberately NO jitter in the base sequence: figdb replays fault
/// schedules bit-for-bit in tests (and the `raw-randomness` lint bans
/// ad-hoc entropy sources in src/), and the router's retry fan-in is a
/// single gather thread, so the thundering-herd argument for jitter does
/// not apply there.
///
/// The network client IS a thundering herd: after a RETRY_LATER drain or a
/// connection reset, every client of a server would otherwise retry on the
/// same doubling schedule and re-collide. Those callers pass an explicit
/// util::Rng (seeded, so drills still replay) and get equal-jitter delays —
/// uniform in [d/2, d] where d is the deterministic delay — which keeps
/// the cap and the expected growth rate while decorrelating the herd.

namespace figdb::util {

/// Delay before retry attempt \p attempt (0-based: the delay between the
/// initial try and the first retry is Delay(0) = initial).
inline std::chrono::duration<double> BackoffDelay(double initial_seconds,
                                                  std::size_t attempt,
                                                  double max_seconds) {
  double d = std::max(0.0, initial_seconds);
  for (std::size_t i = 0; i < attempt && d < max_seconds; ++i) d *= 2.0;
  return std::chrono::duration<double>(std::min(d, max_seconds));
}

/// Equal-jitter variant: uniform in [d/2, d] where d = BackoffDelay(...).
/// The lower bound keeps a floor under the spacing (no client retries
/// instantly), the upper bound keeps the deterministic cap. A zero base
/// delay jitters to zero.
inline std::chrono::duration<double> JitteredBackoffDelay(
    double initial_seconds, std::size_t attempt, double max_seconds,
    Rng* rng) {
  const double d =
      BackoffDelay(initial_seconds, attempt, max_seconds).count();
  return std::chrono::duration<double>(d / 2.0 +
                                       rng->UniformReal() * (d / 2.0));
}

/// True iff a failed attempt with this code may be retried: the condition
/// was transient (server draining, connection dropped, shard wounded) and
/// an identical retry can succeed. Everything else is terminal — the
/// request itself is wrong (kInvalidArgument, kNotFound), retrying cannot
/// beat a clock that already ran out (kDeadlineExceeded), the payload is
/// damaged and will be damaged again (kDataLoss), or the server explicitly
/// shed load (kResourceExhausted: retrying into an overloaded server is
/// how retry storms start; callers back off at a higher level or give up).
inline bool IsRetriableStatus(StatusCode code) {
  return code == StatusCode::kUnavailable;
}
inline bool IsRetriableStatus(const Status& status) {
  return IsRetriableStatus(status.code());
}

/// Stateful form: each Next() yields the following delay in the sequence.
/// With a jitter Rng (explicitly threaded, never ambient — see file
/// comment) the delays are equal-jittered; without one they are the exact
/// deterministic sequence.
class Backoff {
 public:
  Backoff(double initial_seconds, double max_seconds, Rng* jitter_rng = nullptr)
      : initial_(initial_seconds), max_(max_seconds), rng_(jitter_rng) {}

  std::chrono::duration<double> Next() {
    const std::size_t attempt = attempt_++;
    if (rng_ != nullptr)
      return JitteredBackoffDelay(initial_, attempt, max_, rng_);
    return BackoffDelay(initial_, attempt, max_);
  }

  /// Retries taken so far (Next() calls).
  std::size_t Attempts() const { return attempt_; }

 private:
  double initial_;
  double max_;
  Rng* rng_;
  std::size_t attempt_ = 0;
};

}  // namespace figdb::util
