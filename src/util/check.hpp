#pragma once

#include <cstdio>
#include <cstdlib>

/// \file check.hpp
/// Lightweight invariant-checking macros.
///
/// FIGDB_CHECK is always on (cheap conditions guarding API misuse);
/// FIGDB_DCHECK compiles out in release builds and is meant for hot paths.

#define FIGDB_CHECK(cond)                                                     \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "FIGDB_CHECK failed: %s at %s:%d\n", #cond,        \
                   __FILE__, __LINE__);                                       \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#define FIGDB_CHECK_MSG(cond, msg)                                            \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "FIGDB_CHECK failed: %s (%s) at %s:%d\n", #cond,   \
                   msg, __FILE__, __LINE__);                                  \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define FIGDB_DCHECK(cond) ((void)0)
#else
#define FIGDB_DCHECK(cond) FIGDB_CHECK(cond)
#endif
