#include "util/deadlock.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace figdb::util::deadlock {
namespace {

using NodeId = std::uint32_t;

/// "file:line" of the acquisition that first put an endpoint on an edge.
std::string SiteOf(const std::source_location& loc) {
  std::string site = loc.file_name();
  // Trim to the repo-relative tail: the build invokes the compiler with
  // absolute paths and the reports should read like lint findings.
  const auto src = site.rfind("/src/");
  if (src != std::string::npos) site.erase(0, src + 1);
  site += ":" + std::to_string(loc.line());
  return site;
}

struct Node {
  std::string name;      ///< role name, or "mutex@0x..." for unnamed locks
  std::size_t refs = 0;  ///< live lock objects mapped to this node
};

struct Edge {
  std::string from_site;  ///< acquisition holding `from` when observed
  std::string to_site;    ///< acquisition of `to` that observed the edge
};

struct HeldLock {
  const void* lock;
  NodeId node;
  std::string site;
};

/// One entry per lock this thread holds, acquisition order. thread_local
/// lifetime means a lock held across thread exit is the caller's bug (a
/// scoped acquirer cannot outlive its frame, let alone its thread).
thread_local std::vector<HeldLock> tls_held;

void DefaultHandler(const std::string& report) {
  std::fprintf(stderr, "%s", report.c_str());
  std::fflush(stderr);
  std::abort();
}

struct Registry {
  /// Raw std::mutex on purpose: the annotated wrappers call in here, so
  /// the registry must not be built out of the thing it instruments.
  std::mutex mu;
  std::unordered_map<const void*, NodeId> by_object;
  std::unordered_map<std::string, NodeId> by_name;
  std::unordered_map<NodeId, Node> nodes;
  /// adjacency: from -> (to -> first-observed sites)
  std::unordered_map<NodeId, std::unordered_map<NodeId, Edge>> edges;
  NodeId next_id = 1;
  std::uint64_t violations = 0;
  ViolationHandler handler = &DefaultHandler;

  /// DFS: is `target` reachable from `start` over recorded edges?
  /// Collects one path into \p path when it is (for the report).
  bool Reaches(NodeId start, NodeId target, std::vector<NodeId>* path) {
    std::unordered_set<NodeId> seen;
    path->clear();
    return ReachesFrom(start, target, &seen, path);
  }

  bool ReachesFrom(NodeId at, NodeId target, std::unordered_set<NodeId>* seen,
                   std::vector<NodeId>* path) {
    if (!seen->insert(at).second) return false;
    path->push_back(at);
    if (at == target) return true;
    auto it = edges.find(at);
    if (it != edges.end())
      for (const auto& [next, edge] : it->second)
        if (ReachesFrom(next, target, seen, path)) return true;
    path->pop_back();
    return false;
  }

  const Edge* EdgeBetween(NodeId from, NodeId to) const {
    auto it = edges.find(from);
    if (it == edges.end()) return nullptr;
    auto jt = it->second.find(to);
    return jt == it->second.end() ? nullptr : &jt->second;
  }
};

Registry& Reg() {
  static Registry* registry = new Registry();  // leaked: outlives all locks
  return *registry;
}

std::string UnnamedLabel(const void* lock) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "mutex@%p", lock);
  return buf;
}

/// The full violation report: what was being acquired, what was held, and
/// the already-established path that the new edge would close into a
/// cycle — every hop with the acquisition sites that established it.
std::string BuildReport(Registry& reg, const Node& acquiring,
                        const std::string& acquire_site, const HeldLock& held,
                        const std::vector<NodeId>& path) {
  std::string r = "figdb deadlock detector: lock-order cycle\n";
  r += "  acquiring: " + acquiring.name + " (at " + acquire_site + ")\n";
  r += "  while holding: " + reg.nodes[held.node].name + " (acquired at " +
       held.site + ")\n";
  r += "  established order that the acquisition contradicts:\n";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Edge* e = reg.EdgeBetween(path[i], path[i + 1]);
    r += "    " + reg.nodes[path[i]].name + " -> " +
         reg.nodes[path[i + 1]].name;
    if (e != nullptr)
      r += "  (held at " + e->from_site + ", acquired at " + e->to_site + ")";
    r += "\n";
  }
  r += "  fix: acquire " + acquiring.name + " before " +
       reg.nodes[held.node].name +
       " everywhere, or break the nesting (see DESIGN.md on deadlock "
       "analysis)\n";
  return r;
}

std::string RecursionReport(const Node& node, const std::string& first_site,
                            const std::string& second_site) {
  return "figdb deadlock detector: recursive acquisition of " + node.name +
         "\n  first acquired at " + first_site + "\n  re-acquired at " +
         second_site + " (figdb mutexes are non-recursive: this blocks "
         "forever)\n";
}

}  // namespace

void OnCreate(const void* lock, const char* name) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  NodeId id;
  if (name != nullptr) {
    auto [it, inserted] = reg.by_name.try_emplace(name, reg.next_id);
    id = it->second;
    if (inserted) reg.nodes[id] = Node{name, 0}, ++reg.next_id;
  } else {
    id = reg.next_id++;
    reg.nodes[id] = Node{UnnamedLabel(lock), 0};
  }
  ++reg.nodes[id].refs;
  reg.by_object[lock] = id;
}

void OnDestroy(const void* lock) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.by_object.find(lock);
  if (it == reg.by_object.end()) return;  // pre-registry static init order
  const NodeId id = it->second;
  reg.by_object.erase(it);
  Node& node = reg.nodes[id];
  if (--node.refs > 0) return;
  // Last instance of the role: the node and every incident edge leave the
  // graph (a fresh same-named lock starts with a clean slate — test
  // fixtures construct and destruct freely without cross-test ghosts).
  reg.by_name.erase(node.name);
  reg.nodes.erase(id);
  reg.edges.erase(id);
  for (auto& [from, out] : reg.edges) out.erase(id);
}

void OnAcquire(const void* lock, Kind kind, const std::source_location& loc) {
  Registry& reg = Reg();
  const std::string site = SiteOf(loc);
  // Recursive re-acquisition: same OBJECT already on this thread's stack.
  // (Same-name sibling instances fall through to the self-edge check.)
  for (const HeldLock& h : tls_held)
    if (h.lock == lock) {
      std::string report;
      ViolationHandler handler;
      {
        std::lock_guard<std::mutex> lk(reg.mu);
        ++reg.violations;
        handler = reg.handler;
        auto it = reg.by_object.find(lock);
        const Node fallback{UnnamedLabel(lock), 0};
        const Node& node =
            it == reg.by_object.end() ? fallback : reg.nodes[it->second];
        report = RecursionReport(node, h.site, site);
      }
      handler(report);
      return;  // handler returned (test mode): record nothing
    }

  std::string report;
  ViolationHandler handler = nullptr;
  NodeId id = 0;
  {
    std::lock_guard<std::mutex> lk(reg.mu);
    auto it = reg.by_object.find(lock);
    if (it == reg.by_object.end()) return;  // constructed before registry
    id = it->second;
    for (const HeldLock& h : tls_held) {
      if (h.node == id) {
        // Two instances of one named role held at once: order within the
        // role is undefined — report it as the self-cycle it is.
        ++reg.violations;
        handler = reg.handler;
        std::vector<NodeId> self_path = {id, id};
        report = BuildReport(reg, reg.nodes[id], site, h, self_path);
        break;
      }
      if (reg.EdgeBetween(h.node, id) != nullptr) continue;  // steady state
      std::vector<NodeId> path;
      if (reg.Reaches(id, h.node, &path)) {
        // h.node -> ... -> id exists transitively the OTHER way round:
        // inserting h.node -> id would close the cycle. Report with the
        // established path id -> ... -> h.node.
        ++reg.violations;
        handler = reg.handler;
        report = BuildReport(reg, reg.nodes[id], site, h, path);
        break;
      }
      reg.edges[h.node][id] = Edge{h.site, site};
    }
  }
  if (handler != nullptr) {
    handler(report);
    // Handler returned (test mode): skip recording the offending edge and
    // still push the hold so the matching OnRelease stays balanced.
  }
  (void)kind;  // shared vs exclusive order identically; kept for reports
  tls_held.push_back(HeldLock{lock, id, site});
}

void OnRelease(const void* lock) {
  // LIFO in the common scoped case, but search back-to-front so an
  // out-of-order release (interleaved scopes via moved guards) stays
  // balanced instead of corrupting the stack.
  for (std::size_t i = tls_held.size(); i-- > 0;) {
    if (tls_held[i].lock == lock) {
      tls_held.erase(tls_held.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

Stats GetStats() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  Stats s;
  s.nodes = reg.nodes.size();
  for (const auto& [from, out] : reg.edges) s.edges += out.size();
  s.violations = reg.violations;
  return s;
}

std::size_t HeldByThisThread() { return tls_held.size(); }

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  ViolationHandler prev = reg.handler;
  reg.handler = handler == nullptr ? &DefaultHandler : handler;
  return prev == &DefaultHandler ? nullptr : prev;
}

void ResetForTest() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> lk(reg.mu);
  reg.edges.clear();
  reg.violations = 0;
}

}  // namespace figdb::util::deadlock
