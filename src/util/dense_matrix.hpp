#pragma once

#include <cstddef>
#include <vector>

/// \file dense_matrix.hpp
/// Small dense linear algebra used by the LSA baseline's truncated SVD.
///
/// The LSA baseline (Wang et al. [22]) needs the leading singular
/// subspace of a (features x objects) matrix. We compute it with randomised
/// subspace iteration, which only needs dense matrix products, QR
/// orthonormalisation and a tiny eigendecomposition — all implemented here.

namespace figdb::util {

class Rng;

/// Row-major dense matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  std::size_t Rows() const { return rows_; }
  std::size_t Cols() const { return cols_; }

  double& At(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double At(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(std::size_t r) { return data_.data() + r * cols_; }
  const double* RowPtr(std::size_t r) const { return data_.data() + r * cols_; }

  /// Fills every entry with i.i.d. standard normals.
  void FillGaussian(Rng* rng);

  /// this * other.
  DenseMatrix Multiply(const DenseMatrix& other) const;

  /// this^T * other.
  DenseMatrix TransposeMultiply(const DenseMatrix& other) const;

  /// Returns the transpose.
  DenseMatrix Transposed() const;

  /// In-place modified Gram-Schmidt; columns become orthonormal. Columns
  /// that collapse to (near-)zero norm are re-set to zero.
  void OrthonormalizeColumns();

  /// Frobenius norm.
  double FrobeniusNorm() const;

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Jacobi eigendecomposition of a small symmetric matrix.
/// Eigenvalues are returned in descending order with matching eigenvectors
/// as columns of \p eigvecs.
void SymmetricEigen(const DenseMatrix& m, std::vector<double>* eigvals,
                    DenseMatrix* eigvecs);

}  // namespace figdb::util
