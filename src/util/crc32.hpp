#pragma once

#include <array>
#include <cstdint>
#include <string_view>

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte buffers.
/// Used by the snapshot format for per-section integrity: a flipped bit in a
/// stored corpus must surface as a precise kDataLoss error, not as a silently
/// mis-scored database. Table-based, one table generated at static init.

namespace figdb::util {

namespace detail {

inline const std::array<std::uint32_t, 256>& Crc32Table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of \p bytes, optionally continuing from a previous value
/// (pass the prior result as \p seed to checksum in chunks).
inline std::uint32_t Crc32(std::string_view bytes, std::uint32_t seed = 0) {
  const auto& table = detail::Crc32Table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (unsigned char b : bytes)
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace figdb::util
