#pragma once

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <string>

/// \file lifetime.hpp
/// Epoch-lifetime safety: the dynamic half of the snapshot use-after-
/// reclaim defense (tools/lint/lifetime_graph.py is the static half).
///
/// Every pointer derived from a pinned snapshot is only valid while the
/// RAII reader pin (EpochReclaimer::ReadGuard) is alive. Nothing in the
/// existing tooling checks that contract: TSan sees no data race in a
/// use-after-reclaim (the racing write is the allocator's), the Clang
/// thread-safety annotations only track mutexes, and the lock-order
/// layers only order acquisitions. This module closes the gap the way
/// GWP-ASan / allocator quarantines do in production stacks:
///
///   * every snapshot carries a Canary header, stamped kAliveMagic at
///     construction and never written again while the object lives (the
///     snapshot immutability contract forbids `mutable` members);
///   * when the EpochReclaimer reclaims a retired snapshot it runs the
///     destructor, PATTERN-FILLS the storage with kPoisonByte, rewrites
///     the canary in place with kPoisonMagic + the retiring epoch + the
///     retire site, and parks the storage in a bounded FIFO quarantine
///     instead of freeing it;
///   * accessors in the instrumented tree (-DFIGDB_LIFETIME_POISON) call
///     FIGDB_LIFETIME_CHECK on every dereference: a stale pointer now
///     lands on poisoned-but-mapped storage and aborts with the retiring
///     epoch, the reader's pin epoch (or "no live pin"), and both
///     std::source_location sites — instead of silently reading freed
///     memory that usually still looks plausible;
///   * quarantine eviction verifies the poison pattern is intact before
///     the final ::operator delete, so a stale WRITE is caught too.
///
/// Like util/deadlock.hpp, everything here compiles in every build so
/// unit tests can drive it directly; only the per-dereference
/// FIGDB_LIFETIME_CHECK hook and the default-on quarantine are gated on
/// the FIGDB_LIFETIME_POISON CMake option.

namespace figdb::util::lifetime {

/// Canary magics. kAlive is stamped at construction; PoisonStorage
/// rewrites it to kPoisoned after the destructor has run. Any other
/// value means the header itself was trampled.
inline constexpr std::uint64_t kAliveMagic = 0xF16DBA11CE5A11FEull;
inline constexpr std::uint64_t kPoisonMagic = 0xDEADF16DB5A1E11Full;

/// Fill byte for reclaimed storage (distinct from ASan's 0xBE/0xFE and
/// MSVC's 0xDD so a pattern in a debugger reads unambiguously as ours).
inline constexpr unsigned char kPoisonByte = 0xEF;

/// Lifetime header embedded in every epoch-managed snapshot. While the
/// object is alive the struct is written exactly once (construction), so
/// it is safe inside the write-once-then-frozen snapshot types; the
/// poison fields are only written by the reclaimer, after the destructor
/// has already run.
struct Canary {
  std::uint64_t magic = kAliveMagic;
  /// Epoch the object was retired under (written at poison time).
  std::uint64_t retired_epoch = 0;
  /// Retire call site (std::source_location file_name/line; the pointer
  /// is into static storage so it survives the object).
  const char* retire_file = nullptr;
  std::uint32_t retire_line = 0;

  /// Verifies this header still says "alive". On kPoisonMagic the report
  /// carries the retiring epoch, the retire site, the dereference site
  /// (this call, via the defaulted source_location), and the calling
  /// thread's pin epoch; any other magic reports header corruption. The
  /// default violation handler aborts.
  void Check(std::source_location deref_site =
                 std::source_location::current()) const;
};

/// Pattern-fills \p storage (an object whose destructor has run) and
/// rewrites the canary at \p canary — which must point inside the
/// storage — with kPoisonMagic plus the retirement provenance.
void PoisonStorage(void* storage, std::size_t bytes, const Canary* canary,
                   std::uint64_t retired_epoch, const char* retire_file,
                   std::uint32_t retire_line);

/// True iff every poisoned byte outside the canary still holds
/// kPoisonByte — i.e. nobody wrote through a stale pointer while the
/// storage sat in quarantine.
bool VerifyPoison(const void* storage, std::size_t bytes,
                  const Canary* canary);

/// Introspection (tests, tools). Counters are process-global, like the
/// deadlock registry's.
struct Stats {
  std::uint64_t quarantined = 0;  ///< objects parked in a quarantine
  std::uint64_t verified = 0;     ///< evictions with the pattern intact
  std::uint64_t violations = 0;   ///< reports since process start / reset
};
Stats GetStats();
void ResetStatsForTest();

/// Counter bumps for the EpochReclaimer's quarantine (kept here so the
/// counters live next to the ones Canary::Check maintains).
void NoteQuarantined();
void NoteVerified();

/// Violation sink, mirroring deadlock::SetViolationHandler: the default
/// prints the report to stderr and aborts; tests install a capturing
/// handler, and a handler that returns suppresses the abort (the
/// offending operation is dropped, not performed twice).
using ViolationHandler = void (*)(const std::string& report);
ViolationHandler SetViolationHandler(ViolationHandler handler);

/// Routes \p report through the installed handler and bumps the
/// violation counter. Called by Canary::Check and the reclaimer's
/// quarantine; exposed for the tests that drive those paths directly.
void ReportViolation(const std::string& report);

/// Per-thread pin bookkeeping, maintained by EpochReclaimer::ReadGuard
/// so a use-after-reclaim report can say what the offending thread was
/// (or was not) pinned at. Pins nest; epoch 0 means "no live pin".
void PushThreadPin(std::uint64_t epoch);
void PopThreadPin();
std::uint64_t ThreadPinEpoch();

}  // namespace figdb::util::lifetime

/// Waiver for tools/lint/lifetime_graph.py: placed on (or up to three
/// lines above) a line the snapshot-escape / pin-outlived rules would
/// flag, it suppresses the finding. The reason must be a non-empty
/// string literal — enforced here at compile time (sizeof("") == 1) and
/// by `ci/check.sh lint`, which fails on reason-less waivers.
#define FIGDB_PIN_ESCAPE_OK(reason) \
  static_assert(sizeof(reason) > 1, "FIGDB_PIN_ESCAPE_OK needs a reason")

/// Per-dereference canary check, compiled in only under the
/// -DFIGDB_LIFETIME_POISON tree (ci/check.sh lifetime). The plain tree
/// pays nothing; tests can still call Canary::Check directly.
#ifdef FIGDB_LIFETIME_POISON
#define FIGDB_LIFETIME_CHECK(canary) (canary).Check()
#else
#define FIGDB_LIFETIME_CHECK(canary) (static_cast<void>(0))
#endif
