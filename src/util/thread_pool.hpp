#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

/// \file thread_pool.hpp
/// Fixed-size worker pool for the concurrent serving layer (serve/).
///
/// The pool is deliberately minimal: a bounded set of threads draining one
/// FIFO task queue. The serving layer's unit of work is a *shard* of one
/// query stage (per-clique candidate generation, per-candidate rerank
/// scoring), and shards are dispatched through ParallelFor, which
/// dynamically load-balances via an atomic cursor while writing results
/// into caller-owned slots indexed by shard — so the OUTPUT of a parallel
/// stage never depends on which worker ran which shard.
///
/// Blocking discipline (deadlock safety): pool workers only ever run leaf
/// tasks — they never call ParallelFor themselves, and nothing a worker
/// runs blocks on another task. External reader threads call ParallelFor
/// and participate in the loop, so a fully saturated pool still makes
/// progress on the caller's thread.

namespace figdb::util {

class ThreadPool {
 public:
  /// \p workers may be 0: every ParallelFor then runs inline on the caller
  /// (the sequential baseline, used by tests and the workers=1-vs-N bench).
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t Workers() const { return threads_.size(); }

  /// Enqueues one task. Tasks must not block on other pool tasks.
  void Submit(std::function<void()> task) FIGDB_EXCLUDES(mutex_);

  /// Runs fn(i) for every i in [0, shards), spreading shards over the pool
  /// workers AND the calling thread; returns when all shards completed.
  /// Shard order is unspecified; callers own determinism by writing shard
  /// results into slots indexed by i. Must not be called from a pool worker.
  void ParallelFor(std::size_t shards,
                   const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop() FIGDB_EXCLUDES(mutex_);

  Mutex mutex_{"util.ThreadPool.queue"};
  CondVar wake_;
  std::deque<std::function<void()>> queue_ FIGDB_GUARDED_BY(mutex_);
  /// Written only by the constructor, before any worker exists; const after.
  std::vector<std::thread> threads_;
  bool stopping_ FIGDB_GUARDED_BY(mutex_) = false;
};

}  // namespace figdb::util
