#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace figdb::util {

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  FIGDB_DCHECK(bound > 0);
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  FIGDB_DCHECK(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::UniformReal() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * UniformReal();
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformReal();
  } while (u1 <= 1e-300);
  const double u2 = UniformReal();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformReal() < p; }

int Rng::Poisson(double mean) {
  FIGDB_DCHECK(mean >= 0.0);
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    const double v = Gaussian(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<int>(v + 0.5);
  }
  const double limit = std::exp(-mean);
  double prod = UniformReal();
  int n = 0;
  while (prod > limit) {
    prod *= UniformReal();
    ++n;
  }
  return n;
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  FIGDB_DCHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return UniformInt(weights.size());
  double x = UniformReal() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::size_t Rng::Zipf(std::size_t n, double s) {
  FIGDB_DCHECK(n > 0);
  // Linear CDF walk; harmonic normalisation computed on the fly. Intended
  // for corpus generation where n is at most a few hundred thousand and the
  // walk almost always terminates within the first few ranks.
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) h += 1.0 / std::pow(double(i), s);
  double x = UniformReal() * h;
  for (std::size_t i = 1; i <= n; ++i) {
    x -= 1.0 / std::pow(double(i), s);
    if (x <= 0.0) return i - 1;
  }
  return n - 1;
}

double Rng::Gamma(double shape) {
  FIGDB_DCHECK(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    const double u = std::max(UniformReal(), 1e-300);
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = Gaussian();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = UniformReal();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(std::size_t k, double alpha) {
  FIGDB_DCHECK(k > 0);
  std::vector<double> out(k);
  double total = 0.0;
  for (auto& x : out) {
    x = Gamma(alpha);
    total += x;
  }
  if (total <= 0.0) {
    for (auto& x : out) x = 1.0 / static_cast<double>(k);
    return out;
  }
  for (auto& x : out) x /= total;
  return out;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t k) {
  std::vector<std::size_t> out;
  if (k >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    Shuffle(&out);
    return out;
  }
  // Floyd's algorithm: k iterations, O(k) expected set operations.
  std::unordered_set<std::size_t> seen;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = UniformInt(j + 1);
    if (seen.insert(t).second) {
      out.push_back(t);
    } else {
      seen.insert(j);
      out.push_back(j);
    }
  }
  Shuffle(&out);
  return out;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace figdb::util
