#pragma once

#include <cstdint>
#include <vector>

/// \file sparse_vector.hpp
/// Sorted sparse vectors over 32-bit dimension ids.
///
/// Feature-occurrence vectors in figdb are extremely sparse (an image has a
/// handful of tags out of ~60k, a few hundred visual words out of 1022, a
/// few users out of ~270k), so all correlation statistics (Eq. 1, Eq. 8 of
/// the paper) run on this representation.

namespace figdb::util {

/// Immutable-after-finalise sparse vector of (dimension, value) pairs kept
/// sorted by dimension.
class SparseVector {
 public:
  struct Term {
    std::uint32_t dim;
    float value;
  };

  SparseVector() = default;

  /// Accumulates \p value onto dimension \p dim (duplicates are merged by
  /// Finalize).
  void Add(std::uint32_t dim, float value);

  /// Sorts by dimension and merges duplicate dimensions by summing. Must be
  /// called before any query method.
  void Finalize();

  std::size_t NonZeros() const { return terms_.size(); }
  bool Empty() const { return terms_.empty(); }
  const std::vector<Term>& Terms() const { return terms_; }

  /// Value at \p dim, 0 if absent. O(log nnz).
  float Get(std::uint32_t dim) const;

  /// L2 norm.
  double Norm() const;

  /// Sum of values (L1 mass for non-negative vectors).
  double Sum() const;

  /// Dot product with another finalized vector. O(nnz_a + nnz_b).
  static double Dot(const SparseVector& a, const SparseVector& b);

  /// Cosine similarity; 0 when either vector is empty. This is exactly the
  /// paper's Eq. 1 co-occurrence correlation when the vectors are feature
  /// occurrence-count columns.
  static double Cosine(const SparseVector& a, const SparseVector& b);

  /// In-place scale.
  void Scale(float factor);

  /// a += s * b (both finalized; result stays finalized).
  void AddScaled(const SparseVector& b, float s);

 private:
  std::vector<Term> terms_;
  bool finalized_ = true;  // an empty vector is trivially finalized
};

}  // namespace figdb::util
