#pragma once

#include <chrono>

/// \file stopwatch.hpp
/// Wall-clock timing for the efficiency experiments (paper Fig. 9).

namespace figdb::util {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace figdb::util
