#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#ifdef FIGDB_DEADLOCK_DETECT
#include <source_location>

#include "util/deadlock.hpp"
#endif

/// \file thread_annotations.hpp
/// Compile-time concurrency contracts: Clang Thread Safety Analysis.
///
/// The serving layer's load-bearing invariants — which mutex guards which
/// member, which functions may only run while holding it, which APIs are
/// writer-thread-only — used to live in comments and in TSan tests that
/// must happen to provoke the race. These macros turn them into machine-
/// checked contracts: under Clang with -Wthread-safety (the
/// FIGDB_THREAD_SAFETY CMake option), reading a FIGDB_GUARDED_BY member
/// without its lock, or calling a FIGDB_REQUIRES function without the
/// capability, is a BUILD FAILURE. Under every other compiler the macros
/// expand to nothing and the wrappers below compile to the std primitives
/// they wrap — zero cost, zero behaviour change.
///
/// Two kinds of capability are expressed:
///
///   LOCKS   `Mutex` / `SharedMutex` wrap std::mutex / std::shared_mutex as
///           annotated capabilities, with scoped `MutexLock` / `SharedLock`
///           acquirers. The std RAII types (std::scoped_lock,
///           std::unique_lock) defeat the analysis — they are not
///           SCOPED_CAPABILITY types over an annotated capability — which
///           is why figdb code uses these wrappers instead (the figdb-lint
///           `raw-mutex` rule enforces it outside src/util).
///
///   ROLES   `RoleCapability` is a zero-cost capability that represents an
///           exclusive *role* rather than a lock — e.g. "the store's single
///           writer thread". Functions annotated FIGDB_REQUIRES(role) can
///           only be reached from code that explicitly claims the role with
///           a ScopedRole, so the claim sites enumerate exactly where the
///           contract's obligation is assumed, and a refactor that reaches
///           a writer-only API from a new code path fails the analysis
///           build instead of failing a stress test.
///
/// Macro vocabulary (mirrors the Clang TSA attribute set):
///   FIGDB_CAPABILITY(name)      class is a capability (lock, role)
///   FIGDB_SCOPED_CAPABILITY     RAII type acquiring in ctor / releasing in dtor
///   FIGDB_GUARDED_BY(c)         member access requires holding c
///   FIGDB_PT_GUARDED_BY(c)      pointee access requires holding c
///   FIGDB_REQUIRES(c...)        caller must hold c exclusively
///   FIGDB_REQUIRES_SHARED(c...) caller must hold c at least shared
///   FIGDB_ACQUIRE(c...)         function acquires c (exclusive)
///   FIGDB_ACQUIRE_SHARED(c...)  function acquires c (shared)
///   FIGDB_RELEASE(c...)         function releases c
///   FIGDB_RELEASE_SHARED(c...)  function releases shared c
///   FIGDB_TRY_ACQUIRE(b, c...)  try-lock returning b on success
///   FIGDB_EXCLUDES(c...)        caller must NOT hold c (deadlock guard)
///   FIGDB_ASSERT_CAPABILITY(c)  runtime assertion that c is held
///   FIGDB_RETURN_CAPABILITY(c)  function returns a reference to c
///   FIGDB_NO_THREAD_SAFETY_ANALYSIS  opt-out (reason required in comment)

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FIGDB_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef FIGDB_THREAD_ANNOTATION
#define FIGDB_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define FIGDB_CAPABILITY(x) FIGDB_THREAD_ANNOTATION(capability(x))
#define FIGDB_SCOPED_CAPABILITY FIGDB_THREAD_ANNOTATION(scoped_lockable)
#define FIGDB_GUARDED_BY(x) FIGDB_THREAD_ANNOTATION(guarded_by(x))
#define FIGDB_PT_GUARDED_BY(x) FIGDB_THREAD_ANNOTATION(pt_guarded_by(x))
#define FIGDB_REQUIRES(...) \
  FIGDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define FIGDB_REQUIRES_SHARED(...) \
  FIGDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define FIGDB_ACQUIRE(...) \
  FIGDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define FIGDB_ACQUIRE_SHARED(...) \
  FIGDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define FIGDB_RELEASE(...) \
  FIGDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define FIGDB_RELEASE_SHARED(...) \
  FIGDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define FIGDB_TRY_ACQUIRE(...) \
  FIGDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define FIGDB_EXCLUDES(...) FIGDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define FIGDB_ASSERT_CAPABILITY(x) \
  FIGDB_THREAD_ANNOTATION(assert_capability(x))
#define FIGDB_RETURN_CAPABILITY(x) FIGDB_THREAD_ANNOTATION(lock_returned(x))
#define FIGDB_NO_THREAD_SAFETY_ANALYSIS \
  FIGDB_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Declares the intended GLOBAL acquisition order on a mutex member:
/// "this lock is acquired before the named ones". Arguments are either
/// same-class capability members or string literals naming locks in other
/// classes/TUs ("figdb::util::EpochReclaimer::retired_mutex_").
///
/// Deliberately NOT the Clang acquired_before beta attribute: that
/// attribute ignores string arguments, and the whole point here is the
/// cross-TU order, which only strings can name. The checkers are ours
/// instead — tools/lint/lock_graph.py parses these declarations, folds
/// them into the observed (nested-scope + REQUIRES-implied) acquisition
/// graph, and fails the `lock-order-cycle` lint rule on any cycle; the
/// runtime registry (util/deadlock.hpp, FIGDB_DEADLOCK_DETECT) verifies
/// the executed order agrees. The macro itself expands to nothing on
/// every compiler.
#define FIGDB_ACQUIRED_BEFORE(...)
/// Inverse direction, for when the later lock is the natural place to
/// document the pair. Same tooling, same no-op expansion.
#define FIGDB_ACQUIRED_AFTER(...)

/// Hooks the runtime lock-order validator into the scoped acquirers
/// below. Expand to nothing unless the build opted in: the production
/// wrappers stay exactly the std primitives they wrap.
#ifdef FIGDB_DEADLOCK_DETECT
#define FIGDB_DL_SITE_PARAM \
  , std::source_location figdb_loc = std::source_location::current()
#define FIGDB_DL_CREATE(lock, name) ::figdb::util::deadlock::OnCreate(lock, name)
#define FIGDB_DL_DESTROY(lock) ::figdb::util::deadlock::OnDestroy(lock)
#define FIGDB_DL_ACQUIRE(lock, kind) \
  ::figdb::util::deadlock::OnAcquire(  \
      lock, ::figdb::util::deadlock::Kind::kind, figdb_loc)
#define FIGDB_DL_RELEASE(lock) ::figdb::util::deadlock::OnRelease(lock)
#else
#define FIGDB_DL_SITE_PARAM
#define FIGDB_DL_CREATE(lock, name) ((void)0)
#define FIGDB_DL_DESTROY(lock) ((void)0)
#define FIGDB_DL_ACQUIRE(lock, kind) ((void)0)
#define FIGDB_DL_RELEASE(lock) ((void)0)
#endif

namespace figdb::util {

class CondVar;

/// std::mutex as an annotated capability. Lock with MutexLock (scoped) —
/// the bare lock()/unlock() exist for the wrappers and for
/// std::unique_lock-shaped interop, but scoped acquisition is the idiom.
///
/// The optional debug name feeds the runtime lock-order validator
/// (util/deadlock.hpp): same-named mutexes share one node in the
/// acquisition-order graph, so the name should denote the lock's ROLE
/// ("serve.ServingStore.writer"), stable across instances. Outside
/// FIGDB_DEADLOCK_DETECT builds the name is discarded at compile time.
class FIGDB_CAPABILITY("mutex") Mutex {
 public:
#ifdef FIGDB_DEADLOCK_DETECT
  Mutex() { FIGDB_DL_CREATE(this, nullptr); }
  explicit Mutex(const char* name) { FIGDB_DL_CREATE(this, name); }
  ~Mutex() { FIGDB_DL_DESTROY(this); }
#else
  Mutex() = default;
  explicit Mutex(const char*) {}
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() FIGDB_ACQUIRE() { mu_.lock(); }
  void unlock() FIGDB_RELEASE() { mu_.unlock(); }
  bool try_lock() FIGDB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// std::shared_mutex as an annotated capability (reader/writer memo locks).
/// Naming: see Mutex.
class FIGDB_CAPABILITY("shared_mutex") SharedMutex {
 public:
#ifdef FIGDB_DEADLOCK_DETECT
  SharedMutex() { FIGDB_DL_CREATE(this, nullptr); }
  explicit SharedMutex(const char* name) { FIGDB_DL_CREATE(this, name); }
  ~SharedMutex() { FIGDB_DL_DESTROY(this); }
#else
  SharedMutex() = default;
  explicit SharedMutex(const char*) {}
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() FIGDB_ACQUIRE() { mu_.lock(); }
  void unlock() FIGDB_RELEASE() { mu_.unlock(); }
  void lock_shared() FIGDB_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() FIGDB_RELEASE_SHARED() { mu_.unlock_shared(); }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock on a Mutex (the annotated std::scoped_lock).
///
/// Under FIGDB_DEADLOCK_DETECT the constructor registers the acquisition
/// (capturing the call site via the defaulted source_location) BEFORE
/// blocking: an order violation is reported at the acquire that would
/// have deadlocked, instead of wedging. The bare Mutex::lock()/try_lock()
/// are NOT instrumented — scoped acquisition is the idiom the raw-mutex
/// lint rule already enforces outside src/util.
class FIGDB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu FIGDB_DL_SITE_PARAM) FIGDB_ACQUIRE(mu)
      : mu_(mu) {
    FIGDB_DL_ACQUIRE(&mu_, kExclusive);
    mu_.lock();
  }
  ~MutexLock() FIGDB_RELEASE() {
    mu_.unlock();
    FIGDB_DL_RELEASE(&mu_);
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex& mu_;
};

/// Scoped exclusive lock on a SharedMutex (writer side).
class FIGDB_SCOPED_CAPABILITY SharedMutexLock {
 public:
  explicit SharedMutexLock(SharedMutex& mu FIGDB_DL_SITE_PARAM)
      FIGDB_ACQUIRE(mu)
      : mu_(mu) {
    FIGDB_DL_ACQUIRE(&mu_, kExclusive);
    mu_.lock();
  }
  ~SharedMutexLock() FIGDB_RELEASE() {
    mu_.unlock();
    FIGDB_DL_RELEASE(&mu_);
  }
  SharedMutexLock(const SharedMutexLock&) = delete;
  SharedMutexLock& operator=(const SharedMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Scoped shared lock on a SharedMutex (reader side). Shared acquisitions
/// participate in the order graph exactly like exclusive ones: a shared
/// holder still deadlocks against a writer queued behind it.
class FIGDB_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(SharedMutex& mu FIGDB_DL_SITE_PARAM)
      FIGDB_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    FIGDB_DL_ACQUIRE(&mu_, kShared);
    mu_.lock_shared();
  }
  ~SharedLock() FIGDB_RELEASE_SHARED() {
    mu_.unlock_shared();
    FIGDB_DL_RELEASE(&mu_);
  }
  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to the annotated Mutex. Wait() takes the held
/// MutexLock: the capability is held (from the analysis' point of view)
/// across the wait, exactly matching the caller's invariant reasoning —
/// the runtime release/reacquire inside std::condition_variable is an
/// implementation detail the analysis need not see. Callers use the manual
/// loop form (`while (!pred) cv.Wait(lock);`) so the predicate reads of
/// guarded members stay inside the annotated critical section instead of
/// inside an unanalyzable lambda.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) {
    // Adopt the already-held std::mutex for the duration of the wait; the
    // release() afterwards hands ownership straight back to the MutexLock.
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    cv_.wait(ul);
    ul.release();
  }

  /// Timed wait (same adopt/release discipline as Wait). Returns false on
  /// timeout, true on notification — including spurious wakeups, so
  /// callers keep the predicate loop:
  ///   while (!pred) if (!cv.WaitUntil(lock, at)) break;
  /// The shard router's gather uses this to abandon a straggler leg whose
  /// sub-deadline passed without an answer.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> ul(lock.mu_.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(ul, deadline);
    ul.release();
    return status == std::cv_status::no_timeout;
  }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// A zero-cost capability expressing an exclusive ROLE rather than a lock:
/// "the single writer thread" of a CliqueIndex or FigDbStore. Acquire and
/// Release are no-ops at runtime — the point is purely static: a function
/// annotated FIGDB_REQUIRES(role) is unreachable (under the analysis build)
/// except through an explicit ScopedRole claim, so the claim sites are a
/// greppable, compiler-verified enumeration of every place the single-
/// writer obligation is assumed. The role does NOT provide mutual
/// exclusion; it documents and checks who must.
class FIGDB_CAPABILITY("role") RoleCapability {
 public:
  RoleCapability() = default;
  /// Copying or assigning an object that embeds a role yields an
  /// INDEPENDENT role on the destination — claims never transfer with the
  /// data (a snapshot's copied index has its own writer role).
  RoleCapability(const RoleCapability&) {}
  RoleCapability& operator=(const RoleCapability&) { return *this; }

  void Acquire() FIGDB_ACQUIRE() {}
  void Release() FIGDB_RELEASE() {}
};

/// Scoped claim of a RoleCapability ("this scope runs as the writer").
class FIGDB_SCOPED_CAPABILITY ScopedRole {
 public:
  explicit ScopedRole(RoleCapability& role) FIGDB_ACQUIRE(role)
      : role_(role) {
    role_.Acquire();
  }
  ~ScopedRole() FIGDB_RELEASE() { role_.Release(); }
  ScopedRole(const ScopedRole&) = delete;
  ScopedRole& operator=(const ScopedRole&) = delete;

 private:
  RoleCapability& role_;
};

}  // namespace figdb::util
