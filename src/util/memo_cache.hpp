#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <unordered_map>

#include "util/thread_annotations.hpp"

/// \file memo_cache.hpp
/// Thread-safe memoisation cache for the scoring substrates.
///
/// CorrelationModel and CorSCalculator memoise expensive per-feature-set
/// values lazily during scoring. Pre-serving, those memos were plain
/// mutable maps — a data race the moment two snapshot readers score
/// concurrently (both substrates are shared across snapshots by design:
/// the store pins them at Create/Recover). This cache makes the memo safe
/// without serialising the hot path: the key space is sharded over
/// independently-locked maps, reads take a shared lock, and misses upgrade
/// to an exclusive lock only on their own shard.
///
/// Value semantics: Insert is last-writer-wins. Two threads missing on the
/// same key both compute the value; the computations are deterministic
/// functions of immutable inputs, so either insert stores the same value
/// and lookups never observe torn or divergent entries.

namespace figdb::util {

class ShardedMemoCache {
 public:
  /// \p capacity caps TOTAL entries across shards (approximately: each
  /// shard holds at most capacity / kShards). 0 = unlimited.
  explicit ShardedMemoCache(std::size_t capacity = 0)
      : per_shard_capacity_(capacity == 0 ? 0 : (capacity / kShards) + 1) {}

  bool Lookup(std::uint64_t key, double* value) const {
    const Shard& shard = shards_[ShardOf(key)];
    SharedLock lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *value = it->second;
    return true;
  }

  void Insert(std::uint64_t key, double value) {
    Shard& shard = shards_[ShardOf(key)];
    SharedMutexLock lock(shard.mutex);
    if (per_shard_capacity_ != 0 && shard.map.size() >= per_shard_capacity_ &&
        shard.map.find(key) == shard.map.end())
      return;  // full: keep serving, just stop memoising
    shard.map[key] = value;
  }

  std::size_t Size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      SharedLock lock(shard.mutex);
      n += shard.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 16;

  static std::size_t ShardOf(std::uint64_t key) {
    // Fibonacci scramble so sequential keys spread across shards.
    return std::size_t((key * 0x9e3779b97f4a7c15ULL) >> 60) & (kShards - 1);
  }

  struct Shard {
    /// All 16 shards share one role node in the lock-order graph, so
    /// holding two shard locks at once is flagged as a self-cycle: the
    /// cache's contract is strictly one-shard-at-a-time (Size() walks the
    /// shards sequentially, never nested).
    mutable SharedMutex mutex{"util.ShardedMemoCache.shard"};
    std::unordered_map<std::uint64_t, double> map FIGDB_GUARDED_BY(mutex);
  };

  std::size_t per_shard_capacity_;
  std::array<Shard, kShards> shards_;
};

}  // namespace figdb::util
