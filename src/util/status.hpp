#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "util/check.hpp"

/// \file status.hpp
/// Error taxonomy for the hardened query and storage paths.
///
/// A long-running figdb server cannot afford the seed-era failure semantics
/// (abort on API misuse, unexplained std::nullopt on corruption). Status
/// carries a small canonical error code plus a human-readable message with
/// the precise reason ("vocabulary section CRC mismatch (stored 0x1234,
/// computed 0x5678)"); StatusOr<T> is the value-or-error return used by the
/// storage layer and the validating TrySearch/TryRank/TryRecommend entry
/// points. The taxonomy deliberately mirrors the canonical gRPC subset the
/// service tier would map these to.

namespace figdb::util {

enum class StatusCode : int {
  kOk = 0,
  /// The caller's request is malformed regardless of system state
  /// (empty query, k = 0, out-of-vocabulary feature, bad option value).
  kInvalidArgument = 1,
  /// A referenced entity does not exist (object id past the corpus end,
  /// snapshot file missing).
  kNotFound = 2,
  /// Stored bytes are unrecoverably corrupt (bad magic, CRC mismatch,
  /// truncated section, dangling internal id).
  kDataLoss = 3,
  /// The query budget expired before any result could be produced.
  /// (Partial results are NOT an error: they come back `truncated`.)
  kDeadlineExceeded = 4,
  /// An explicit resource limit was hit (allocation guard, list cap).
  kResourceExhausted = 5,
  /// A dependency is down or an IO operation failed; retrying may help.
  kUnavailable = 6,
  /// The system is in a state where the operation can never succeed until
  /// the caller fixes it (mutating a wounded store that needs recovery,
  /// appending to a closed WAL). Retrying the same call will not help.
  kFailedPrecondition = 7,
};

inline std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "DATA_LOSS: vocabulary section CRC mismatch" — for logs and shells.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string out(StatusCodeName(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-Status. Accessors FIGDB_CHECK on misuse (asking for the value
/// of an error, or the status of a value is fine — status() is kOk then).
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    FIGDB_CHECK_MSG(!status_.ok(),
                    "StatusOr constructed from OK status without a value");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  /// Alias so StatusOr drops into std::optional-shaped call sites.
  bool has_value() const { return ok(); }

  const Status& status() const { return status_; }

  const T& value() const& {
    FIGDB_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    FIGDB_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    FIGDB_CHECK_MSG(ok(), status_.ToString().c_str());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // kOk iff value_ holds a value
  std::optional<T> value_;
};

}  // namespace figdb::util

/// Propagates a non-OK status to the caller (storage-layer idiom). The
/// macro local is line-unique so a RETURN_IF_ERROR inside a lambda that is
/// itself an argument of an outer RETURN_IF_ERROR does not shadow
/// (-Wshadow-clean under the strict-warnings targets).
#define FIGDB_STATUS_CONCAT_INNER_(a, b) a##b
#define FIGDB_STATUS_CONCAT_(a, b) FIGDB_STATUS_CONCAT_INNER_(a, b)
#define FIGDB_RETURN_IF_ERROR(expr)                                         \
  do {                                                                      \
    ::figdb::util::Status FIGDB_STATUS_CONCAT_(figdb_status_, __LINE__) =   \
        (expr);                                                             \
    if (!FIGDB_STATUS_CONCAT_(figdb_status_, __LINE__).ok())                \
      return FIGDB_STATUS_CONCAT_(figdb_status_, __LINE__);                 \
  } while (0)
