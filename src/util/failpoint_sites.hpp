#pragma once

#include <cstddef>
#include <string_view>

/// \file failpoint_sites.hpp
/// The canonical registry of every fail-point site in the tree.
///
/// Fail-point names are stringly-typed at the injection site
/// (FIGDB_FAILPOINT("wal/fsync"), AtomicWriteFailPoints{...}), which makes
/// two failure modes silent: a typo'd activation never fires, and a site
/// added in code but absent here is invisible to operators reading the
/// list. Both are closed mechanically:
///
///   * figdb-lint's `failpoint-registry` rule extracts every site literal
///     from src/ and fails CI unless the extracted set and kFailPointSites
///     are EXACTLY equal (no unlisted sites, no stale list entries);
///   * FailPoints::ActivateFromEnv rejects (with a stderr warning) any
///     FIGDB_FAILPOINTS entry whose name is not in this list, so a typo'd
///     fault drill fails loudly at activation instead of silently never
///     injecting. Programmatic Activate()/ScopedFailPoint are NOT
///     validated — tests may use scratch names.
///
/// Keep the list sorted; the lint reports diffs against it by name.

namespace figdb::util {

inline constexpr std::string_view kFailPointSites[] = {
    "checkpoint/fsync",           // FigDbStore checkpoint temp-file fsync
    "checkpoint/rename",          // checkpoint rename(tmp, final)
    "checkpoint/write_io",        // short write into checkpoint temp file
    "index/build_truncated",      // CliqueIndex build cut short (OOM model)
    "net/accept_drop",            // server drops a connection at accept
    "net/conn_reset",             // server resets the connection mid-exchange
    "net/frame_corrupt",          // server corrupts a response frame byte
    "net/slow_peer",              // server stalls before writing the response
    "serve/overload",             // executor admission rejects as if at cap
    "serve/slow_worker",          // a worker shard observes deadline expiry
    "shard/rebalance_crash",      // rebalance dies at a numbered crash site
    "shard/scatter_drop",         // a completed scatter answer is lost
    "shard/slow",                 // a scatter leg straggles (real sleep)
    "shard/wounded",              // a scatter leg fails as a wounded shard
    "storage/load_io",            // read error inside LoadCorpus
    "storage/save_fsync",         // SaveCorpus temp-file fsync failure
    "storage/save_io",            // short write inside SaveCorpus
    "storage/save_rename",        // SaveCorpus rename failure
    "storage/section_crc",        // snapshot section CRC mismatch
    "storage/section_truncated",  // snapshot section truncated
    "ta/deadline",                // TA merge loop observes deadline expiry
    "temporal/clock_skew",        // ingest timestamp rewound below the floor
    "temporal/merge_crash",       // seal/roll or segment merge dies at a site
    "temporal/retention_crash",   // retention dies at a numbered crash site
    "wal/append_io",              // WAL append IO error
    "wal/fsync",                  // WAL fsync failure after append
    "wal/torn_tail",              // WAL append writes a torn partial frame
    "wal/truncate",               // WAL post-checkpoint reset failure
};

inline constexpr std::size_t kFailPointSiteCount =
    sizeof(kFailPointSites) / sizeof(kFailPointSites[0]);

/// True iff \p name is a registered injection site.
inline constexpr bool IsKnownFailPointSite(std::string_view name) {
  for (std::string_view site : kFailPointSites)
    if (site == name) return true;
  return false;
}

}  // namespace figdb::util
