#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

/// \file serde.hpp
/// Minimal binary serialization primitives for the persistence layer
/// (index/storage.hpp): LEB128 varints, zig-zag signed encoding,
/// length-prefixed strings and raw little-endian scalars, over an
/// in-memory byte buffer.
///
/// The reader is hardened against adversarial input: every length claim is
/// validated against the remaining bytes BEFORE any allocation (a corrupt
/// 8-byte length prefix must produce a clean decode failure, not a
/// std::bad_alloc), varints reject overlong (> 10 byte) encodings and
/// high-bit overflow, and arithmetic on claimed sizes cannot wrap.

namespace figdb::util {

class BinaryWriter {
 public:
  void PutU8(std::uint8_t v) { buffer_.push_back(char(v)); }

  /// Unsigned LEB128.
  void PutVarint(std::uint64_t v) {
    while (v >= 0x80) {
      buffer_.push_back(char(std::uint8_t(v) | 0x80));
      v >>= 7;
    }
    buffer_.push_back(char(std::uint8_t(v)));
  }

  /// Zig-zag + LEB128 for signed values.
  void PutSignedVarint(std::int64_t v) {
    PutVarint((std::uint64_t(v) << 1) ^ std::uint64_t(v >> 63));
  }

  void PutDouble(double v) {
    static_assert(sizeof(double) == 8);
    const char* p = reinterpret_cast<const char*>(&v);
    buffer_.append(p, 8);
  }

  void PutFloat(float v) {
    static_assert(sizeof(float) == 4);
    const char* p = reinterpret_cast<const char*>(&v);
    buffer_.append(p, 4);
  }

  /// Raw little-endian 32-bit word (used for section checksums, where a
  /// fixed width keeps the checksum outside its own coverage trivially).
  void PutFixed32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buffer_.push_back(char(v >> (8 * i)));
  }

  void PutString(std::string_view s) {
    PutVarint(s.size());
    buffer_.append(s.data(), s.size());
  }

  /// Appends pre-encoded bytes verbatim (section framing).
  void PutRaw(std::string_view s) { buffer_.append(s.data(), s.size()); }

  /// Delta-varint encoding of a sorted id list (postings compression).
  void PutSortedIds(const std::vector<std::uint32_t>& ids) {
    PutVarint(ids.size());
    std::uint32_t prev = 0;
    for (std::uint32_t id : ids) {
      PutVarint(id - prev);
      prev = id;
    }
  }

  const std::string& Buffer() const { return buffer_; }
  std::string Take() { return std::move(buffer_); }

 private:
  std::string buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::string_view data) : data_(data) {}

  bool Ok() const { return ok_; }
  bool AtEnd() const { return pos_ >= data_.size(); }
  std::size_t Position() const { return pos_; }
  /// Bytes left to read. pos_ never exceeds size, so this cannot wrap.
  std::size_t Remaining() const { return data_.size() - pos_; }

  std::uint8_t GetU8() {
    if (pos_ >= data_.size()) return Fail<std::uint8_t>();
    return std::uint8_t(data_[pos_++]);
  }

  std::uint64_t GetVarint() {
    std::uint64_t v = 0;
    int shift = 0;
    while (pos_ < data_.size() && shift < 64) {
      const std::uint8_t b = std::uint8_t(data_[pos_++]);
      // The 10th byte holds bits 63..69 of which only bit 63 exists:
      // anything above it means the encoded value overflows 64 bits.
      if (shift == 63 && (b & 0x7e)) return Fail<std::uint64_t>();
      v |= std::uint64_t(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
    return Fail<std::uint64_t>();
  }

  std::int64_t GetSignedVarint() {
    const std::uint64_t v = GetVarint();
    return std::int64_t(v >> 1) ^ -std::int64_t(v & 1);
  }

  double GetDouble() {
    if (pos_ + 8 > data_.size()) return Fail<double>();
    double v;
    std::memcpy(&v, data_.data() + pos_, 8);
    pos_ += 8;
    return v;
  }

  float GetFloat() {
    if (pos_ + 4 > data_.size()) return Fail<float>();
    float v;
    std::memcpy(&v, data_.data() + pos_, 4);
    pos_ += 4;
    return v;
  }

  std::string GetString() {
    const std::uint64_t n = GetVarint();
    // Compare against Remaining() rather than pos_ + n: a corrupt length
    // near 2^64 would wrap pos_ + n and slip past the bound check.
    if (!ok_ || n > Remaining()) return Fail<std::string>();
    std::string s(data_.substr(pos_, std::size_t(n)));
    pos_ += std::size_t(n);
    return s;
  }

  /// A raw view of the next \p n bytes (no copy); fails cleanly when the
  /// claim exceeds the remaining input. Used for checksummed sections.
  std::string_view GetRaw(std::uint64_t n) {
    if (!ok_ || n > Remaining()) return Fail<std::string_view>();
    std::string_view s = data_.substr(pos_, std::size_t(n));
    pos_ += std::size_t(n);
    return s;
  }

  std::uint32_t GetFixed32() {
    if (Remaining() < 4) return Fail<std::uint32_t>();
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= std::uint32_t(std::uint8_t(data_[pos_++])) << (8 * i);
    return v;
  }

  std::vector<std::uint32_t> GetSortedIds() {
    const std::uint64_t n = GetVarint();
    std::vector<std::uint32_t> ids;
    // Each id costs at least one encoded byte, so a count above the
    // remaining byte count is corrupt — reject BEFORE reserving, or a
    // hostile length claim turns into a multi-gigabyte allocation.
    if (!ok_ || n > Remaining()) {
      Fail<int>();
      return ids;
    }
    ids.reserve(std::size_t(n));
    std::uint32_t prev = 0;
    for (std::uint64_t i = 0; i < n && ok_; ++i) {
      prev += std::uint32_t(GetVarint());
      ids.push_back(prev);
    }
    return ids;
  }

 private:
  template <typename T>
  T Fail() {
    ok_ = false;
    return T{};
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace figdb::util
