#pragma once

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <string>

/// \file deadlock.hpp
/// Runtime lock-order validator (the dynamic half of the deadlock-freedom
/// layer; tools/lint/lock_graph.py is the static half).
///
/// TSan only reports an ABBA deadlock if the fatal interleaving actually
/// fires under the test run. This registry catches the ORDER VIOLATION
/// itself, on the first run that merely exercises both orders — long
/// before any interleaving wedges: every scoped lock acquisition records
/// a directed edge from each lock the thread already holds to the lock it
/// is acquiring, and an edge that closes a cycle in the global
/// acquisition-order graph reports the full cycle (lock names plus the
/// file:line of the acquisitions that established each edge) and aborts.
///
/// The abseil GraphCycles detector is the shape being followed: a global
/// first-observed-edge graph over lock IDENTITIES, a per-thread stack of
/// held locks, an O(edges) reachability check only when a NEW edge is
/// inserted (the steady state — every edge already known — is one hash
/// lookup per held lock).
///
/// Identity. A mutex constructed with a debug name (see the named
/// constructors in util/thread_annotations.hpp) shares one graph node with
/// every other mutex of the same name: the name denotes the lock's ROLE
/// ("serve.ServingStore.writer"), so an inconsistent order between two
/// roles is flagged even when the two runs that exercised the two orders
/// touched different instances. Unnamed mutexes get a per-object node —
/// still protected, just not merged. Same-name nesting (two instances of
/// one role held at once) is reported as a self-cycle: ordering within a
/// role needs an explicit discipline and a waiver-carrying wrapper, not
/// silence.
///
/// The hooks below are called by the scoped acquirers in
/// util/thread_annotations.hpp only when FIGDB_DEADLOCK_DETECT is defined
/// (the CMake option of the same name); the registry itself compiles in
/// every build so its unit tests and tools can drive it directly. The
/// registry's own synchronization is a raw std::mutex on purpose — the
/// instrumented wrappers must not recurse into themselves.
///
/// Interplay with Clang Thread Safety Analysis: TSA proves WHICH lock
/// guards WHAT (thread_annotations.hpp); this layer proves the ORDER of
/// acquisitions is globally consistent. FIGDB_ACQUIRED_BEFORE documents
/// the intended order statically; the registry verifies the observed
/// order dynamically; lock_graph.py cross-checks both cross-TU.

namespace figdb::util::deadlock {

/// Exclusive vs shared acquisition. Both participate identically in the
/// order graph (a shared holder still deadlocks against a writer queued
/// behind it), the kind only improves the report text.
enum class Kind : std::uint8_t { kExclusive, kShared };

/// Registers a lock object. \p name may be nullptr (per-object identity)
/// or a stable role name (instances sharing a name share a graph node).
/// Called by Mutex/SharedMutex constructors under FIGDB_DEADLOCK_DETECT.
void OnCreate(const void* lock, const char* name);

/// Unregisters a lock object; when the last object of a named role goes,
/// the role's node and its incident edges leave the graph with it.
void OnDestroy(const void* lock);

/// Records the acquisition about to happen: checks for recursive
/// re-acquisition, inserts first-observed edges from every lock this
/// thread already holds, and reports a violation if an edge closes a
/// cycle. Call BEFORE blocking on the real lock — that is what turns a
/// would-be deadlock into a report: the second thread of an ABBA pair
/// reports at its acquire instead of wedging.
void OnAcquire(const void* lock, Kind kind, const std::source_location& loc);

/// Pops the lock from the calling thread's held stack.
void OnRelease(const void* lock);

/// Introspection (tests, tools).
struct Stats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::uint64_t violations = 0;  ///< reported since process start / reset
};
Stats GetStats();

/// How many locks the CALLING thread currently holds (test assertion aid).
std::size_t HeldByThisThread();

/// Violation sink. The default handler prints the report to stderr and
/// aborts (the acceptance contract: a seeded ABBA run dies loudly, with
/// both lock names and both acquisition sites in the output). Tests
/// install a capturing handler; a handler that RETURNS suppresses the
/// offending edge (it is not inserted), so a capture-and-continue test
/// leaves the graph exactly as acyclic as it found it.
using ViolationHandler = void (*)(const std::string& report);

/// Installs \p handler (nullptr restores the default abort handler) and
/// returns the previous one.
ViolationHandler SetViolationHandler(ViolationHandler handler);

/// Drops every edge and zeroes the violation counter, keeping the nodes
/// of still-live locks. Test isolation only: production code never calls
/// this — forgetting an observed edge is forgetting evidence.
void ResetForTest();

}  // namespace figdb::util::deadlock
