#pragma once

#include <cstdint>
#include <vector>

/// \file rng.hpp
/// Deterministic random number generation for corpus synthesis and training.
///
/// Everything in figdb that involves randomness (synthetic corpus generation,
/// k-means seeding, query sampling, baseline initialisation) goes through
/// Rng so that a single 64-bit seed reproduces an entire experiment bit-for-
/// bit. The generator is xoshiro256** seeded via splitmix64, which is both
/// fast and statistically strong enough for simulation workloads.

namespace figdb::util {

/// splitmix64 step; used to expand a single seed into generator state.
std::uint64_t SplitMix64(std::uint64_t* state);

/// Deterministic pseudo-random generator (xoshiro256**).
class Rng {
 public:
  /// Constructs a generator whose whole stream is a function of \p seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). \p bound must be > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double UniformReal();

  /// Uniform double in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Standard normal via Box-Muller (cached second deviate).
  double Gaussian();

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli draw with success probability \p p.
  bool Bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth for small means,
  /// normal approximation above 64).
  int Poisson(double mean);

  /// Samples an index according to non-negative \p weights (need not be
  /// normalised). Returns weights.size()-1 if rounding leaves slack.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Zipf-distributed rank in [0, n) with exponent \p s (rejection-free
  /// inverse-CDF over precomputed table is the caller's job for hot loops;
  /// this does a linear CDF walk and is fine for corpus generation).
  std::size_t Zipf(std::size_t n, double s);

  /// Dirichlet sample with symmetric concentration \p alpha over \p k bins.
  std::vector<double> Dirichlet(std::size_t k, double alpha);

  /// Gamma(shape, 1) via Marsaglia-Tsang.
  double Gamma(double shape);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::size_t j = UniformInt(i + 1);
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples \p k distinct indices from [0, n) (Floyd's algorithm); the
  /// result is shuffled. If k >= n, returns the full permuted range.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t k);

  /// Forks a child generator whose stream is independent of this one; used
  /// to give each corpus section / worker its own reproducible stream.
  Rng Fork();

 private:
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace figdb::util
