#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>

/// \file query_budget.hpp
/// Per-query work budget: a wall-clock deadline plus a cap on scored
/// candidates, threaded through Search, the TA merge loop and the stage-2
/// rerank. The paper's pitch for the inverted clique index + Threshold
/// Algorithm is bounded query latency at scale; the budget makes the bound
/// explicit and enforceable. On exhaustion the query path degrades
/// gracefully instead of failing: it returns best-so-far results tagged
/// `truncated`, shedding the rerank stage first (falling back to exact
/// stage-1 scores) before shedding candidates.

namespace figdb::util {

/// The caller-facing budget spec. Default-constructed = unlimited, so every
/// pre-existing call site keeps its exact behaviour.
struct QueryBudget {
  static constexpr std::size_t kUnlimitedCandidates =
      static_cast<std::size_t>(-1);

  /// Wall-clock limit for the whole query; <= 0 means no deadline.
  double wall_limit_seconds = 0.0;
  /// Maximum number of candidates that may be scored across all stages
  /// (stage-1 potential evaluations + rerank evaluations). Note 0 is a
  /// legal value meaning "no scoring work at all".
  std::size_t max_scored_candidates = kUnlimitedCandidates;

  bool Unlimited() const {
    return wall_limit_seconds <= 0.0 &&
           max_scored_candidates == kUnlimitedCandidates;
  }

  static QueryBudget Deadline(double seconds) {
    QueryBudget b;
    b.wall_limit_seconds = seconds;
    return b;
  }
  static QueryBudget Candidates(std::size_t max_scored) {
    QueryBudget b;
    b.max_scored_candidates = max_scored;
    return b;
  }
};

/// Mutable execution-side state of one query's budget. Created at the top
/// of Search/Rank/Recommend and passed down by pointer; a null tracker means
/// unlimited everywhere.
class BudgetTracker {
 public:
  enum class Cause : std::uint8_t { kNone, kDeadline, kCandidates };

  explicit BudgetTracker(const QueryBudget& budget)
      : budget_(budget), start_(Clock::now()) {}

  /// Charges \p n candidate-scoring units. Returns false — and latches the
  /// exhaustion cause — once the candidate cap is exceeded or the deadline
  /// has passed (the clock is polled every kDeadlineStride charges to keep
  /// the hot loop cheap).
  bool ChargeScored(std::size_t n = 1) {
    if (cause_ != Cause::kNone) return false;
    if (budget_.max_scored_candidates != QueryBudget::kUnlimitedCandidates &&
        scored_ + n > budget_.max_scored_candidates) {
      cause_ = Cause::kCandidates;
      return false;
    }
    scored_ += n;
    if ((scored_ & (kDeadlineStride - 1)) == 0 && DeadlinePassed()) {
      cause_ = Cause::kDeadline;
      return false;
    }
    return true;
  }

  /// Explicit deadline poll (used once per TA depth / rerank candidate,
  /// where a syscall-ish clock read per iteration is acceptable).
  bool CheckDeadline() {
    if (cause_ != Cause::kNone) return cause_ == Cause::kDeadline;
    if (DeadlinePassed()) {
      cause_ = Cause::kDeadline;
      return true;
    }
    return false;
  }

  /// Marks the deadline as expired regardless of the clock — the hook the
  /// `ta/deadline` fail-point uses to inject deadline pressure
  /// deterministically.
  void ForceDeadline() { cause_ = Cause::kDeadline; }

  /// Could \p n more units be charged? (No side effects; the stage-shedding
  /// planner uses this to drop the rerank BEFORE dropping candidates.)
  bool HasCandidateAllowance(std::size_t n) const {
    if (cause_ != Cause::kNone) return false;
    if (budget_.max_scored_candidates == QueryBudget::kUnlimitedCandidates)
      return true;
    return scored_ + n <= budget_.max_scored_candidates;
  }

  bool Exhausted() const { return cause_ != Cause::kNone; }
  Cause ExhaustionCause() const { return cause_; }
  std::size_t ScoredCandidates() const { return scored_; }

 private:
  using Clock = std::chrono::steady_clock;
  static constexpr std::size_t kDeadlineStride = 32;  // power of two

  bool DeadlinePassed() const {
    if (budget_.wall_limit_seconds <= 0.0) return false;
    return std::chrono::duration<double>(Clock::now() - start_).count() >
           budget_.wall_limit_seconds;
  }

  QueryBudget budget_;
  Clock::time_point start_;
  std::size_t scored_ = 0;
  Cause cause_ = Cause::kNone;
};

}  // namespace figdb::util
