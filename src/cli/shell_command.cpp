#include "cli/shell_command.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace figdb::cli {
namespace {

using util::Status;
using util::StatusOr;

Status Usage(const std::string& usage) {
  return Status::InvalidArgument("usage: " + usage);
}

/// Extracts one whitespace-delimited token; empty when the line ran out.
std::string NextToken(std::istringstream* in) {
  std::string token;
  *in >> token;
  return token;
}

/// The rest of the line after the verb, with leading whitespace trimmed —
/// free text for query/ingest.
std::string RestOfLine(std::istringstream* in) {
  std::string rest;
  std::getline(*in, rest);
  const std::size_t first = rest.find_first_not_of(" \t\r");
  return first == std::string::npos ? std::string() : rest.substr(first);
}

bool ParseU64(const std::string& token, std::uint64_t* out) {
  if (token.empty()) return false;
  std::uint64_t v = 0;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
    const std::uint64_t digit = std::uint64_t(c - '0');
    if (v > (~std::uint64_t{0} - digit) / 10) return false;  // overflow
    v = v * 10 + digit;
  }
  *out = v;
  return true;
}

bool ParseDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  std::istringstream in(token);
  double v = 0;
  in >> v;
  if (in.fail() || !in.eof()) return false;
  *out = v;
  return true;
}

}  // namespace

StatusOr<ShellCommand> ParseShellCommand(std::string_view line) {
  std::istringstream in{std::string(line)};
  ShellCommand cmd;
  const std::string verb = NextToken(&in);
  if (verb.empty()) return cmd;  // blank line: kNone

  if (verb == "quit" || verb == "exit") {
    cmd.verb = ShellVerb::kQuit;
  } else if (verb == "help") {
    cmd.verb = ShellVerb::kHelp;
  } else if (verb == "stats") {
    cmd.verb = ShellVerb::kStats;
  } else if (verb == "checkpoint") {
    cmd.verb = ShellVerb::kCheckpoint;
  } else if (verb == "recover") {
    cmd.verb = ShellVerb::kRecover;
  } else if (verb == "gen") {
    cmd.verb = ShellVerb::kGen;
    const std::string token = NextToken(&in);
    if (!token.empty()) {
      std::uint64_t n = 0;
      if (!ParseU64(token, &n)) return Usage("gen <n>");
      cmd.count = std::size_t(n);
    }
    cmd.count = std::max(cmd.count, kMinGenObjects);
  } else if (verb == "load" || verb == "save" || verb == "attach") {
    cmd.verb = verb == "load"   ? ShellVerb::kLoad
               : verb == "save" ? ShellVerb::kSave
                                : ShellVerb::kAttach;
    cmd.text = NextToken(&in);
    if (cmd.text.empty()) return Usage(verb + " <path>");
  } else if (verb == "query" || verb == "ingest") {
    cmd.verb = verb == "query" ? ShellVerb::kQuery : ShellVerb::kIngest;
    cmd.text = RestOfLine(&in);
  } else if (verb == "similar" || verb == "show" || verb == "remove") {
    cmd.verb = verb == "similar" ? ShellVerb::kSimilar
               : verb == "show"  ? ShellVerb::kShow
                                 : ShellVerb::kRemove;
    std::uint64_t id = 0;
    if (!ParseU64(NextToken(&in), &id) ||
        id > std::uint64_t(corpus::kInvalidObject))
      return Usage(verb + " <id>");
    cmd.id = corpus::ObjectId(id);
  } else if (verb == "budget") {
    cmd.verb = ShellVerb::kBudget;
    // Lenient by contract: "budget 0 0" and a bare "budget" both mean
    // unlimited; only a present-but-garbage token is an error.
    const std::string ms = NextToken(&in);
    if (!ms.empty()) {
      if (!ParseDouble(ms, &cmd.budget_ms) || !std::isfinite(cmd.budget_ms))
        return Usage("budget <ms> <max_candidates>");
      const std::string cand = NextToken(&in);
      if (!cand.empty()) {
        std::uint64_t c = 0;
        if (!ParseU64(cand, &c)) return Usage("budget <ms> <max_candidates>");
        cmd.budget_candidates = std::size_t(c);
      }
    }
  } else if (verb == "serve") {
    cmd.verb = ShellVerb::kServe;
    // Optional positional arguments; parsing stops at the first absent one.
    // Every accepted value is clamped to the drill's safety envelope so a
    // hostile script cannot request an hour-long or thousand-thread drill.
    const std::string secs = NextToken(&in);
    if (!secs.empty()) {
      double s = 0;
      if (!ParseDouble(secs, &s) || !std::isfinite(s))
        return Usage("serve [secs] [readers] [workers]");
      cmd.serve_seconds = s;
      const std::string readers = NextToken(&in);
      std::uint64_t n = 0;
      if (!readers.empty()) {
        if (!ParseU64(readers, &n))
          return Usage("serve [secs] [readers] [workers]");
        cmd.serve_readers = std::size_t(n);
        const std::string workers = NextToken(&in);
        if (!workers.empty()) {
          if (!ParseU64(workers, &n))
            return Usage("serve [secs] [readers] [workers]");
          cmd.serve_workers = std::size_t(n);
        }
      }
    }
    cmd.serve_seconds =
        std::min(std::max(cmd.serve_seconds, kMinServeSeconds),
                 kMaxServeSeconds);
    cmd.serve_readers = std::min(std::max<std::size_t>(cmd.serve_readers, 1),
                                 kMaxServeThreads);
    cmd.serve_workers = std::min(cmd.serve_workers, kMaxServeThreads);
  } else if (verb == "listen") {
    cmd.verb = ShellVerb::kListen;
    // `listen` with no argument binds an ephemeral port (printed once the
    // server is up) — same contract as ServerOptions.port = 0.
    const std::string token = NextToken(&in);
    if (!token.empty()) {
      std::uint64_t p = 0;
      if (!ParseU64(token, &p) || p > 65535) return Usage("listen [port]");
      cmd.port = std::uint16_t(p);
    }
  } else if (verb == "connect") {
    cmd.verb = ShellVerb::kConnect;
    cmd.host = NextToken(&in);
    std::uint64_t p = 0;
    if (cmd.host.empty() || !ParseU64(NextToken(&in), &p) || p == 0 ||
        p > 65535)
      return Usage("connect <host> <port> <tags…>");
    cmd.port = std::uint16_t(p);
    cmd.text = RestOfLine(&in);
  } else if (verb == "shard") {
    // Sub-verb dispatch for the sharded store. Shapes:
    //   shard attach <dir> [num_shards]
    //   shard status
    //   shard rebalance <num_shards>
    //   shard query <tags...>
    const std::string sub = NextToken(&in);
    if (sub == "attach") {
      cmd.verb = ShellVerb::kShardAttach;
      cmd.text = NextToken(&in);
      if (cmd.text.empty()) return Usage("shard attach <dir> [num_shards]");
      cmd.count = 4;
      const std::string n = NextToken(&in);
      if (!n.empty()) {
        std::uint64_t v = 0;
        if (!ParseU64(n, &v)) return Usage("shard attach <dir> [num_shards]");
        cmd.count = std::size_t(v);
      }
      cmd.count =
          std::min(std::max<std::size_t>(cmd.count, 1), kMaxShellShards);
    } else if (sub == "status") {
      cmd.verb = ShellVerb::kShardStatus;
    } else if (sub == "rebalance") {
      cmd.verb = ShellVerb::kShardRebalance;
      std::uint64_t v = 0;
      if (!ParseU64(NextToken(&in), &v) || v == 0)
        return Usage("shard rebalance <num_shards>");
      cmd.count = std::min(std::size_t(v), kMaxShellShards);
    } else if (sub == "query") {
      cmd.verb = ShellVerb::kShardQuery;
      cmd.text = RestOfLine(&in);
    } else {
      return Usage("shard attach|status|rebalance|query …");
    }
  } else if (verb == "segments") {
    // Sub-verb dispatch for the time-partitioned (temporal) store. Shapes:
    //   segments attach <dir> [epochs_per_segment] [retention_epochs]
    //   segments status
    //   segments merge
    //   segments expire [now_epoch]
    //   segments bursts [k]
    const std::string sub = NextToken(&in);
    if (sub == "attach") {
      cmd.verb = ShellVerb::kSegmentsAttach;
      cmd.text = NextToken(&in);
      if (cmd.text.empty())
        return Usage("segments attach <dir> [epochs_per_segment] [retention]");
      cmd.count = 1;
      const std::string eps = NextToken(&in);
      if (!eps.empty()) {
        std::uint64_t v = 0;
        if (!ParseU64(eps, &v))
          return Usage(
              "segments attach <dir> [epochs_per_segment] [retention]");
        cmd.count = std::size_t(v);
        const std::string keep = NextToken(&in);
        if (!keep.empty()) {
          if (!ParseU64(keep, &v))
            return Usage(
                "segments attach <dir> [epochs_per_segment] [retention]");
          cmd.retention = std::size_t(v);
        }
      }
      cmd.count = std::min(std::max<std::size_t>(cmd.count, 1),
                           kMaxShellEpochsPerSegment);
      cmd.retention = std::min(cmd.retention, kMaxShellRetentionEpochs);
    } else if (sub == "status") {
      cmd.verb = ShellVerb::kSegmentsStatus;
    } else if (sub == "merge") {
      cmd.verb = ShellVerb::kSegmentsMerge;
    } else if (sub == "expire") {
      cmd.verb = ShellVerb::kSegmentsExpire;
      // No epoch on the line = expire against the store's own clock; an
      // explicit epoch must fit the manifest's uint32 epoch domain.
      const std::string now = NextToken(&in);
      if (!now.empty()) {
        std::uint64_t v = 0;
        if (!ParseU64(now, &v) || v > 0xffffffffull)
          return Usage("segments expire [now_epoch]");
        cmd.epoch = v;
      }
    } else if (sub == "bursts") {
      cmd.verb = ShellVerb::kSegmentsBursts;
      cmd.count = 8;
      const std::string k = NextToken(&in);
      if (!k.empty()) {
        std::uint64_t v = 0;
        if (!ParseU64(k, &v) || v == 0)
          return Usage("segments bursts [k]");
        cmd.count = std::size_t(v);
      }
      cmd.count = std::min(cmd.count, kMaxShellBurstEvents);
    } else {
      return Usage("segments attach|status|merge|expire|bursts …");
    }
  } else {
    return Status::InvalidArgument("unknown command '" + verb +
                                   "' — try 'help'");
  }
  return cmd;
}

}  // namespace figdb::cli
