#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "corpus/media_object.hpp"
#include "util/status.hpp"

/// \file shell_command.hpp
/// Parsing of figdb shell command lines into typed commands.
///
/// The interactive shell (examples/figdb_shell.cpp) reads untrusted text —
/// from a terminal, a piped script, or (in the fuzzing layer) from a
/// coverage-guided fuzzer. Pulling the line → command translation out of the
/// shell's REPL loop gives that surface a single, testable entry point:
/// ParseShellCommand either returns a fully-validated ShellCommand whose
/// numeric fields already carry the shell's documented clamps, or a precise
/// kInvalidArgument whose message is exactly what the shell prints.
///
/// Invariants on any OK result (machine-checked by fuzz_shell_command):
///   kGen      count >= kMinGenObjects
///   kServe    seconds in [kMinServeSeconds, kMaxServeSeconds], finite;
///             readers in [1, kMaxServeThreads]; workers <= kMaxServeThreads
///   kLoad/kSave/kAttach  non-empty path
///   kRemove/kSimilar/kShow  id parsed from a real integer token
///   kShardAttach   non-empty path; count in [1, kMaxShellShards]
///   kShardRebalance  count in [1, kMaxShellShards]
///   kListen   port parsed from a real integer token, <= 65535 (0 is the
///             documented "pick an ephemeral port" request)
///   kConnect  non-empty host; port in [1, 65535]
///   kSegmentsAttach  non-empty path; count (epochs per segment) in
///             [1, kMaxShellEpochsPerSegment]; retention (sliding-window
///             epochs, 0 = keep forever) <= kMaxShellRetentionEpochs
///   kSegmentsExpire  epoch parsed from a real integer token that fits a
///             uint32, or kEpochFromClock when absent (use the store clock)
///   kSegmentsBursts  count (events to print) in [1, kMaxShellBurstEvents]

namespace figdb::cli {

enum class ShellVerb {
  kNone,  ///< blank line — the REPL just re-prompts
  kHelp,
  kQuit,
  kGen,
  kLoad,
  kSave,
  kStats,
  kQuery,
  kSimilar,
  kShow,
  kBudget,
  kAttach,
  kIngest,
  kRemove,
  kCheckpoint,
  kRecover,
  kServe,
  kShardAttach,     ///< `shard attach <dir> [n]` — recover or create N shards
  kShardStatus,     ///< `shard status` — placement, per-shard health, stats
  kShardRebalance,  ///< `shard rebalance <n>` — two-phase re-partition
  kShardQuery,      ///< `shard query <tags…>` — scatter-gather top-k
  kListen,          ///< `listen [port]` — serve the store over the wire
  kConnect,         ///< `connect <host> <port> <tags…>` — one wire query
  kSegmentsAttach,  ///< `segments attach <dir> [epochs] [retention]`
  kSegmentsStatus,  ///< `segments status` — window, clock, per-segment health
  kSegmentsMerge,   ///< `segments merge` — compact all sealed segments
  kSegmentsExpire,  ///< `segments expire [now]` — run sliding-window retention
  kSegmentsBursts,  ///< `segments bursts [k]` — top detected burst events
};

inline constexpr std::size_t kMinGenObjects = 50;
inline constexpr double kMinServeSeconds = 0.2;
inline constexpr double kMaxServeSeconds = 60.0;
inline constexpr std::size_t kMaxServeThreads = 16;
/// Shell-level ceiling on shard fan-out (tighter than the manifest's
/// kMaxShards: an interactive drill never needs hundreds of shards).
inline constexpr std::size_t kMaxShellShards = 64;
/// Shell-level ceiling on the temporal bucket width (epochs are corpus
/// months; a year-wide bucket is already one segment for most corpora).
inline constexpr std::size_t kMaxShellEpochsPerSegment = 12;
/// Shell-level ceiling on the sliding retention window, in epochs.
inline constexpr std::size_t kMaxShellRetentionEpochs = 120;
/// Shell-level ceiling on burst events printed by `segments bursts`.
inline constexpr std::size_t kMaxShellBurstEvents = 32;
/// kSegmentsExpire sentinel: no explicit epoch on the line — the shell
/// expires against the segmented store's own clock.
inline constexpr std::uint64_t kEpochFromClock = ~std::uint64_t{0};

struct ShellCommand {
  ShellVerb verb = ShellVerb::kNone;

  /// Free text for kQuery/kIngest (may be empty: "no tags matched" is a
  /// semantic answer, not a parse error); the path for kLoad/kSave/kAttach.
  std::string text;

  /// Object id for kSimilar/kShow/kRemove.
  corpus::ObjectId id = corpus::kInvalidObject;

  /// Database size for kGen (clamped to >= kMinGenObjects); shard fan-out
  /// for kShardAttach/kShardRebalance (clamped to [1, kMaxShellShards]);
  /// epochs per segment for kSegmentsAttach (clamped to
  /// [1, kMaxShellEpochsPerSegment]); events to print for kSegmentsBursts
  /// (clamped to [1, kMaxShellBurstEvents]).
  std::size_t count = 2000;

  /// kSegmentsAttach: sliding-window retention in epochs (0 = keep
  /// forever), clamped to <= kMaxShellRetentionEpochs.
  std::size_t retention = 0;

  /// kSegmentsExpire: the `now` epoch to expire against; kEpochFromClock
  /// (the default) means "use the store's own clock epoch".
  std::uint64_t epoch = kEpochFromClock;

  /// kBudget: 0 = unlimited for either component (the documented contract).
  double budget_ms = 0.0;
  std::size_t budget_candidates = 0;

  /// kServe drill parameters, pre-clamped to the shell's safety bounds.
  double serve_seconds = 3.0;
  std::size_t serve_readers = 4;
  std::size_t serve_workers = 4;

  /// kListen/kConnect: TCP port (kListen: 0 = ephemeral); kConnect: the
  /// peer host in `host`, the query text in `text`.
  std::uint16_t port = 0;
  std::string host;
};

/// Parses one shell line. Never throws; unknown verbs, missing required
/// arguments and unparseable numbers come back as kInvalidArgument with a
/// printable usage message.
[[nodiscard]] util::StatusOr<ShellCommand> ParseShellCommand(
    std::string_view line);

}  // namespace figdb::cli
